#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
# Usage: tools/check.sh  (from anywhere; cds to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> source lint (diag catalogue coverage, unsafe discipline, tag chokepoint)"
# src/bin/lint.rs: every DiagCode has exactly one DESIGN.md catalogue row
# and a mutation test; unsafe only in crates/parallel (SAFETY-documented);
# Machine::tag only from the engine's emission layer.
cargo run -q --release --bin lint

echo "==> verify-schedule smoke run (static certification, passes 6-8)"
cargo run -q --release --bin verify-schedule -- --dataset rdt --gpus 2 --layers 2 --measure
cargo run -q --release --bin verify-schedule -- --dataset rdt --gpus 4 --chunks 8 --overlap doublebuffer --measure
cargo run -q --release --bin verify-schedule -- --dataset rdt --gpus 2 --layers 2 --comm vanilla --memory recompute --mode infer

echo "==> verify-dataflow smoke run (conservation certification, pass 9)"
cargo run -q --release --bin verify-dataflow -- --dataset rdt --gpus 2 --layers 2
cargo run -q --release --bin verify-dataflow -- --dataset rdt --gpus 4 --chunks 8 --overlap doublebuffer --memory recompute
cargo run -q --release --bin verify-dataflow -- --dataset rdt --gpus 2 --comm vanilla --mode infer

echo "==> verify-trace smoke run (happens-before schedule certification)"
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism

echo "==> verify-trace smoke run, parallel executor (certified against the sequential reference)"
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --exec parallel

echo "==> verify-trace smoke run, double-buffered overlap (both execution modes)"
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --overlap doublebuffer
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --overlap doublebuffer --exec parallel

echo "==> verify-trace smoke run, forward-only inference (both execution modes)"
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --mode infer --overlap doublebuffer
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --mode infer --overlap doublebuffer --exec parallel

echo "==> infer CLI smoke run (forward-only serving path)"
cargo run -q --release -p hongtu-bench --bin infer -- --dataset rdt --gpus 4 --chunks 4 --overlap doublebuffer --quiet
cargo run -q --release -p hongtu-bench --bin infer -- --dataset rdt --gpus 4 --chunks 4 --exec parallel --quiet

echo "==> parallel executor certification, release profile"
cargo test -q --release --test parallel_executor

echo "==> overlap executor certification, release profile"
cargo test -q --release --test overlap_executor

echo "==> inference executor certification, release profile"
cargo test -q --release --test inference_executor

echo "==> serving layer certification, release profile"
cargo test -q --release -p hongtu-serving
cargo test -q --release --test serving_executor

echo "==> delta subsystem certification, release profile"
cargo test -q --release -p hongtu-delta
cargo test -q --release --test delta_executor

echo "==> hot-vertex cache certification, release profile"
cargo test -q --release -p hongtu-cache
cargo test -q --release -p hongtu-verify --test bad_cache
cargo test -q --release --test cache_executor

echo "==> bench smoke: sequential vs parallel wall-clock (BENCH_parallel.json)"
cargo run -q --release -p hongtu-bench --bin bench_parallel -- --out BENCH_parallel.json

echo "==> bench smoke: additive vs double-buffered sim time (BENCH_overlap.json)"
cargo run -q --release -p hongtu-bench --bin bench_overlap -- --out BENCH_overlap.json

echo "==> bench smoke: infer vs train-epoch sim time and memory (BENCH_infer.json)"
cargo run -q --release -p hongtu-bench --bin bench_infer -- --out BENCH_infer.json

echo "==> bench smoke: serving path, pruned sweep vs full + open-loop load (BENCH_serving.json)"
cargo run -q --release -p hongtu-bench --bin bench_serving -- --out BENCH_serving.json

echo "==> bench smoke: delta path, incremental vs full recompute + cone/graph scaling (BENCH_delta.json)"
cargo run -q --release -p hongtu-bench --bin bench_delta -- --out BENCH_delta.json

echo "==> bench smoke: hot-vertex cache, H2D reduction at bitwise-equal digests (BENCH_cache.json)"
cargo run -q --release -p hongtu-bench --bin bench_cache -- --out BENCH_cache.json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> all checks passed"
