#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
# Usage: tools/check.sh  (from anywhere; cds to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> unsafe-code lint (forbidden outside crates/parallel; SAFETY-documented inside)"
# Every crate but hongtu-parallel carries #![forbid(unsafe_code)]; that
# attribute does not cover bin/test targets, so grep closes the gap.
if grep -rn --include='*.rs' -l 'unsafe ' src crates --exclude-dir=parallel | grep -v '^$'; then
  echo 'unsafe code outside crates/parallel' >&2
  exit 1
fi
# Inside crates/parallel, every line containing `unsafe` must either be a
# comment or be preceded by a SAFETY comment within the previous 8 lines.
while IFS=: read -r file line _; do
  start=$((line > 8 ? line - 8 : 1))
  if ! sed -n "${start},$((line - 1))p" "$file" | grep -q 'SAFETY'; then
    echo "undocumented unsafe at ${file}:${line} (add a // SAFETY: comment)" >&2
    exit 1
  fi
done < <(grep -rn --include='*.rs' 'unsafe ' crates/parallel | grep -v '^\s*//' | grep -v ':\s*//')

echo "==> verify-schedule smoke run (static certification, passes 6-8)"
cargo run -q --release --bin verify-schedule -- --dataset rdt --gpus 2 --layers 2 --measure
cargo run -q --release --bin verify-schedule -- --dataset rdt --gpus 4 --chunks 8 --overlap doublebuffer --measure
cargo run -q --release --bin verify-schedule -- --dataset rdt --gpus 2 --layers 2 --comm vanilla --memory recompute --mode infer

echo "==> verify-trace smoke run (happens-before schedule certification)"
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism

echo "==> verify-trace smoke run, parallel executor (certified against the sequential reference)"
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --exec parallel

echo "==> verify-trace smoke run, double-buffered overlap (both execution modes)"
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --overlap doublebuffer
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --overlap doublebuffer --exec parallel

echo "==> verify-trace smoke run, forward-only inference (both execution modes)"
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --mode infer --overlap doublebuffer
cargo run -q --release --bin verify-trace -- --dataset rdt --gpus 4 --chunks 8 --determinism --mode infer --overlap doublebuffer --exec parallel

echo "==> infer CLI smoke run (forward-only serving path)"
cargo run -q --release -p hongtu-bench --bin infer -- --dataset rdt --gpus 4 --chunks 4 --overlap doublebuffer --quiet
cargo run -q --release -p hongtu-bench --bin infer -- --dataset rdt --gpus 4 --chunks 4 --exec parallel --quiet

echo "==> parallel executor certification, release profile"
cargo test -q --release --test parallel_executor

echo "==> overlap executor certification, release profile"
cargo test -q --release --test overlap_executor

echo "==> inference executor certification, release profile"
cargo test -q --release --test inference_executor

echo "==> bench smoke: sequential vs parallel wall-clock (BENCH_parallel.json)"
cargo run -q --release -p hongtu-bench --bin bench_parallel -- --out BENCH_parallel.json

echo "==> bench smoke: additive vs double-buffered sim time (BENCH_overlap.json)"
cargo run -q --release -p hongtu-bench --bin bench_overlap -- --out BENCH_overlap.json

echo "==> bench smoke: infer vs train-epoch sim time and memory (BENCH_infer.json)"
cargo run -q --release -p hongtu-bench --bin bench_infer -- --out BENCH_infer.json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> all checks passed"
