//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::SampleRng;
use std::ops::Range;

/// Length specification for [`vec`]: a half-open range or an exact size.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy producing `Vec`s whose elements are drawn from `element` and
/// whose length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u128;
        let len = self.size.min + ((rng.next_u64() as u128 * span) >> 64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
