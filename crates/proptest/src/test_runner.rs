//! Deterministic case scheduling: configuration, per-case RNG, and the
//! pass/fail/reject outcome type used by the `prop_assert*` macros.

/// How many cases each property runs. Mirrors the fields of the real
/// `ProptestConfig` that this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps tier-1 wall time low while
        // still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert*` failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the inputs were out of scope.
    Reject(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// SplitMix64 over a hash of `(test name, case index)`: every case of every
/// property gets an independent, machine-independent stream.
#[derive(Debug, Clone)]
pub struct SampleRng {
    state: u64,
}

impl SampleRng {
    /// The RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        SampleRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
