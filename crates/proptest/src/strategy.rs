//! Value-generation strategies: the sampled counterpart of proptest's
//! `Strategy` trait, without shrink trees.

use crate::test_runner::SampleRng;
use std::ops::Range;

/// Something that can produce a value from a deterministic RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range {:?}", self);
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                let v = (self.start as f64 + (self.end as f64 - self.start as f64) * unit) as $t;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.end.next_down().max(self.start) } else { v }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;
    fn sample(&self, rng: &mut SampleRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty strategy range");
        loop {
            let span = (hi - lo) as u128;
            let off = (((rng.next_u64() as u128) * span) >> 64) as u32;
            if let Some(c) = char::from_u32(lo + off) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}
