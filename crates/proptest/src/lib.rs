//! Offline stand-in for the `proptest` crate.
//!
//! This workspace must build and test with **no registry access**, so the
//! real proptest cannot be a dependency. This crate implements the subset
//! of its API that the workspace's property tests use — the `proptest!`
//! macro, range/tuple/`collection::vec` strategies, `prop_assert*`, and
//! `ProptestConfig` — with deterministic per-case seeding.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports its case number and the
//!   sampled arguments; re-running is deterministic, so the failure
//!   reproduces exactly.
//! - Sampling is seeded from the test name and case index, not an entropy
//!   source, so runs are stable across machines and invocations.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything the `proptest!` macro and its bodies need in scope.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Supported grammar (a subset of the real one):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u32..9, 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng =
                        $crate::test_runner::SampleRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    // Rendered before the body, which takes the args by value.
                    let __args_desc = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {}/{}: {}\n  args: {}",
                                stringify!($name),
                                case,
                                config.cases,
                                msg,
                                __args_desc,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{} ({:?} != {:?})", format!($($fmt)*), l, r);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{} ({:?} == {:?})", format!($($fmt)*), l, r);
    }};
}

/// Skips the current case (counted as passed) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -4i32..9, f in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..9).contains(&y));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec((0u32..5, 0u32..5), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&(a, b)| a < 5 && b < 5));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let a: Vec<u64> = (0..8)
            .map(|c| (0u64..1000).sample(&mut crate::test_runner::SampleRng::for_case("t", c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| (0u64..1000).sample(&mut crate::test_runner::SampleRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
        // Different cases draw different values (overwhelmingly likely).
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(false, "x was {}", x);
            }
        }
        always_fails();
    }
}
