//! Property-based tests of the tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and data.

use hongtu_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

fn rand_matrix(rng: &mut SeededRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform_range(-2.0, 2.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `(A·B)·x == A·(B·x)` (associativity against a vector), within f32
    /// tolerance — exercises the parallel matmul against itself.
    #[test]
    fn matmul_is_associative(seed in 0u64..1000, n in 1usize..24, k in 1usize..24, m in 1usize..24) {
        let mut rng = SeededRng::new(seed);
        let a = rand_matrix(&mut rng, n, k);
        let b = rand_matrix(&mut rng, k, m);
        let x = rand_matrix(&mut rng, m, 1);
        let left = a.matmul(&b).matmul(&x);
        let right = a.matmul(&b.matmul(&x));
        prop_assert!(left.approx_eq(&right, 1e-3), "max diff {}", left.max_abs_diff(&right));
    }

    /// The fused transpose products agree with explicit transposition.
    #[test]
    fn fused_transpose_products(seed in 0u64..1000, n in 1usize..16, k in 1usize..16, m in 1usize..16) {
        let mut rng = SeededRng::new(seed);
        let a = rand_matrix(&mut rng, n, k);
        let b = rand_matrix(&mut rng, n, m);
        prop_assert!(a.transpose_matmul(&b).approx_eq(&a.transpose().matmul(&b), 1e-4));
        let c = rand_matrix(&mut rng, m, k);
        prop_assert!(a.matmul_transpose(&c).approx_eq(&a.matmul(&c.transpose()), 1e-4));
    }

    /// Gather and scatter-add are adjoint: `<gather(A, idx), B> ==
    /// <A, scatter_add(idx, B)>` — the identity that makes the backward
    /// pass of every neighbor gather correct.
    #[test]
    fn gather_scatter_adjoint(
        seed in 0u64..1000,
        n in 2usize..40,
        picks in 1usize..60,
        dim in 1usize..8,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = rand_matrix(&mut rng, n, dim);
        let idx: Vec<usize> = (0..picks).map(|_| rng.index(n)).collect();
        let b = rand_matrix(&mut rng, picks, dim);
        let lhs: f32 = a.gather_rows(&idx).hadamard(&b).sum();
        let mut scat = Matrix::zeros(n, dim);
        scat.scatter_add_rows(&idx, &b);
        let rhs: f32 = a.hadamard(&scat).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// Softmax rows are a probability distribution for any input.
    #[test]
    fn softmax_rows_are_distributions(seed in 0u64..1000, n in 1usize..12, c in 1usize..12) {
        let mut rng = SeededRng::new(seed);
        let x = Matrix::from_fn(n, c, |_, _| rng.uniform_range(-30.0, 30.0));
        let y = hongtu_tensor::softmax_rows(&x);
        for r in 0..n {
            let s: f32 = y.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(y.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// `hstack` then `columns` round-trips.
    #[test]
    fn hstack_columns_roundtrip(seed in 0u64..1000, n in 1usize..10, c1 in 1usize..8, c2 in 1usize..8) {
        let mut rng = SeededRng::new(seed);
        let a = rand_matrix(&mut rng, n, c1);
        let b = rand_matrix(&mut rng, n, c2);
        let s = a.hstack(&b);
        prop_assert_eq!(s.columns(0..c1), a);
        prop_assert_eq!(s.columns(c1..c1 + c2), b);
    }
}
