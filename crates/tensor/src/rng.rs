//! Deterministic random-number utilities.
//!
//! Every experiment in the repository is seeded; [`SeededRng`] is a thin
//! wrapper around `StdRng` that also supports cheap *forking*, so that
//! independent components (feature init, weight init, graph generation)
//! derive decorrelated-but-reproducible streams from a single master seed.

/// A seedable RNG with stream forking.
///
/// The generator is xoshiro256++ with its state expanded from the 64-bit
/// seed by SplitMix64 — self-contained so the workspace builds without any
/// external crate, and with well-studied statistical quality.
#[derive(Debug)]
pub struct SeededRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step: advances `x` and returns the next output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let state = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SeededRng { state, seed }
    }

    /// The master seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream labelled by `stream`.
    ///
    /// Forking with the same `(seed, stream)` pair always yields the same
    /// sequence, regardless of how much the parent has been consumed.
    ///
    /// ```
    /// use hongtu_tensor::SeededRng;
    /// let mut parent = SeededRng::new(7);
    /// let _ = parent.next_u64(); // consuming the parent ...
    /// let mut a = parent.fork(1);
    /// let mut b = SeededRng::new(7).fork(1); // ... does not change forks
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn fork(&self, stream: u64) -> SeededRng {
        // SplitMix64-style mixing of (seed, stream) into a child seed.
        let mut z = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SeededRng::new(z)
    }

    /// Derives `n` independent child streams, one per work-item index.
    ///
    /// This is the RNG discipline of the parallel executor: randomness is
    /// keyed by *item index* (GPU id, chunk id, ...), never by thread id,
    /// so draws are identical under any worker count or schedule.
    pub fn streams(&self, n: usize) -> Vec<SeededRng> {
        (0..n as u64).map(|i| self.fork(i)).collect()
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high bits → the full f32 mantissa resolution in [0, 1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform `usize` in `[0, n)`. `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "SeededRng::index: empty range");
        // Lemire's widening-multiply range reduction (bias < 2^-64).
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.uniform().max(1e-12);
        let u2: f32 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        if k * 4 >= n {
            // Dense regime: shuffle a full index vector.
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            all
        } else {
            // Sparse regime: rejection sampling with a seen-set.
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let v = self.index(n);
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent_of_parent_state() {
        let mut parent = SeededRng::new(7);
        let pristine = SeededRng::new(7);
        let _ = parent.next_u64(); // consume parent
        let mut f1 = parent.fork(3);
        let mut f2 = pristine.fork(3);
        for _ in 0..16 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let r = SeededRng::new(9);
        let mut a = r.fork(0);
        let mut b = r.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_are_schedule_independent() {
        // Draw from 4 item streams in two different "schedules" (orders);
        // each stream's sequence must not depend on the order of use.
        let master = SeededRng::new(99);
        let mut forward: Vec<Vec<u64>> = master
            .streams(4)
            .into_iter()
            .map(|mut s| (0..8).map(|_| s.next_u64()).collect())
            .collect();
        let mut reversed: Vec<(usize, Vec<u64>)> = master
            .streams(4)
            .into_iter()
            .enumerate()
            .rev()
            .map(|(i, mut s)| (i, (0..8).map(|_| s.next_u64()).collect()))
            .collect();
        reversed.sort_by_key(|&(i, _)| i);
        let reordered: Vec<Vec<u64>> = reversed.into_iter().map(|(_, v)| v).collect();
        assert_eq!(forward, reordered);
        // And distinct items get distinct streams.
        forward.dedup();
        assert_eq!(forward.len(), 4);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SeededRng::new(5);
        for _ in 0..1000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn index_respects_bound() {
        let mut r = SeededRng::new(5);
        for n in 1..20 {
            for _ in 0..50 {
                assert!(r.index(n) < n);
            }
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut r = SeededRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_complete() {
        let mut r = SeededRng::new(3);
        // Sparse regime
        let s = r.sample_indices(1000, 10);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 10);
        // Dense regime: k == n must be a permutation
        let mut s = r.sample_indices(8, 8);
        s.sort_unstable();
        assert_eq!(s, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SeededRng::new(17);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
