//! Optimizers for full-batch gradient descent.
//!
//! Full-graph GNN training performs one optimizer step per epoch using the
//! *global* gradient (paper §2.3). Parameters across simulated GPUs are
//! replicated and synchronized with an all-reduce before the step
//! (Algorithm 1, line 21); the optimizer itself then runs identically on each
//! replica, so a single host-side instance is sufficient.

use crate::matrix::Matrix;

/// A pluggable parameter-update rule.
pub trait Optimizer {
    /// Applies one update step to `param` given its gradient `grad`.
    ///
    /// `slot` identifies the parameter so that stateful optimizers (Adam)
    /// keep per-parameter moments; callers must use a stable, unique slot for
    /// each trainable tensor.
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix);

    /// Advances the global step counter (call once per epoch, after all
    /// parameters were stepped).
    fn advance(&mut self) {}
}

/// Plain stochastic gradient descent: `w ← w − lr·∇w`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Optional L2 weight decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            weight_decay: 0.0,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _slot: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "Sgd::step: shape mismatch");
        if self.weight_decay != 0.0 {
            let wd = self.weight_decay;
            let lr = self.lr;
            for (p, g) in param.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *p -= lr * (g + wd * *p);
            }
        } else {
            param.axpy(-self.lr, grad);
        }
    }
}

/// Adam optimizer (Kingma & Ba), the default for the paper's accuracy runs.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    t: u64,
    moments: Vec<Option<(Matrix, Matrix)>>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "Adam::step: shape mismatch");
        if self.moments.len() <= slot {
            self.moments.resize_with(slot + 1, || None);
        }
        let (m, v) = self.moments[slot].get_or_insert_with(|| {
            (
                Matrix::zeros(param.rows(), param.cols()),
                Matrix::zeros(param.rows(), param.cols()),
            )
        });
        assert_eq!(
            m.shape(),
            param.shape(),
            "Adam::step: slot {slot} reused with a different shape"
        );
        let t = (self.t + 1) as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        for i in 0..param.len() {
            let g = grad.as_slice()[i] + wd * param.as_slice()[i];
            let mi = &mut m.as_mut_slice()[i];
            *mi = b1 * *mi + (1.0 - b1) * g;
            let vi = &mut v.as_mut_slice()[i];
            *vi = b2 * *vi + (1.0 - b2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            param.as_mut_slice()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    fn advance(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(w) = (w - 3)², minimized at w = 3; gradient 2(w - 3).
    fn quad_grad(w: &Matrix) -> Matrix {
        w.map(|v| 2.0 * (v - 3.0))
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut w = Matrix::full(1, 1, 0.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = quad_grad(&w);
            opt.step(0, &mut w, &g);
            opt.advance();
        }
        assert!((w.get(0, 0) - 3.0).abs() < 1e-3, "w = {}", w.get(0, 0));
    }

    #[test]
    fn sgd_single_step_is_exact() {
        let mut w = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let g = Matrix::from_vec(1, 2, vec![0.5, 0.25]);
        Sgd::new(0.2).step(0, &mut w, &g);
        assert_eq!(w.as_slice(), &[0.9, -2.05]);
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let mut w = Matrix::full(1, 1, 10.0);
        let g = Matrix::zeros(1, 1);
        let mut opt = Sgd::new(0.1);
        opt.weight_decay = 1.0;
        opt.step(0, &mut w, &g);
        assert!((w.get(0, 0) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut w = Matrix::full(2, 2, -5.0);
        let mut opt = Adam::new(0.5);
        for _ in 0..300 {
            let g = quad_grad(&w);
            opt.step(0, &mut w, &g);
            opt.advance();
        }
        for &v in w.as_slice() {
            assert!((v - 3.0).abs() < 1e-2, "v = {v}");
        }
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ≈ lr.
        let mut w = Matrix::full(1, 1, 0.0);
        let g = Matrix::full(1, 1, 123.0);
        let mut opt = Adam::new(0.01);
        opt.step(0, &mut w, &g);
        assert!((w.get(0, 0) + 0.01).abs() < 1e-4, "w = {}", w.get(0, 0));
    }

    #[test]
    fn adam_slots_are_independent() {
        let mut a = Matrix::full(1, 1, 0.0);
        let mut b = Matrix::full(2, 2, 0.0);
        let mut opt = Adam::new(0.1);
        // Interleave two different-shaped parameters; must not cross-talk.
        for _ in 0..10 {
            let ga = quad_grad(&a);
            let gb = quad_grad(&b);
            opt.step(0, &mut a, &ga);
            opt.step(1, &mut b, &gb);
            opt.advance();
        }
        assert_eq!(opt.steps(), 10);
        assert!(a.get(0, 0) > 0.0 && b.get(1, 1) > 0.0);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn adam_rejects_slot_shape_reuse() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::zeros(1, 1);
        let g = Matrix::zeros(1, 1);
        opt.step(0, &mut a, &g);
        let mut b = Matrix::zeros(2, 2);
        let g2 = Matrix::zeros(2, 2);
        opt.step(0, &mut b, &g2);
    }
}
