//! Activation functions and their derivatives, plus row-wise softmax.
//!
//! These are exactly the nonlinearities used by the paper's two reference
//! models: GCN uses `ReLU` in UPDATE; GAT uses `LeakyReLU` on attention
//! coefficients and a neighbor-oriented softmax for edge weights.

use crate::matrix::Matrix;

/// Slope used by GAT's LeakyReLU, matching the GAT reference implementation.
pub const LEAKY_RELU_SLOPE: f32 = 0.2;

/// Rows per pool job for the row-parallel softmax kernels. Each row is
/// normalized independently with the same scalar reduction, so chunking
/// never changes results bitwise.
const PAR_SOFTMAX_ROWS_PER_CHUNK: usize = 256;

/// `ReLU(x) = max(x, 0)`, element-wise.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// Backward of ReLU: `grad * 1[pre > 0]`.
///
/// `pre` is the *pre-activation* input (the paper's `a × W`), which in the
/// recomputation-based scheme is regenerated in the backward pass.
pub fn relu_backward(pre: &Matrix, grad: &Matrix) -> Matrix {
    assert_eq!(pre.shape(), grad.shape(), "relu_backward: shape mismatch");
    Matrix::from_vec(
        pre.rows(),
        pre.cols(),
        pre.as_slice()
            .iter()
            .zip(grad.as_slice())
            .map(|(&p, &g)| if p > 0.0 { g } else { 0.0 })
            .collect(),
    )
}

/// `LeakyReLU(x)` with slope [`LEAKY_RELU_SLOPE`] on the negative side.
pub fn leaky_relu(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        LEAKY_RELU_SLOPE * x
    }
}

/// Derivative of LeakyReLU at pre-activation `x`.
pub fn leaky_relu_backward(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        LEAKY_RELU_SLOPE
    }
}

/// Element-wise logistic sigmoid.
pub fn sigmoid(x: &Matrix) -> Matrix {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Derivative of the sigmoid given its *output* `y`: `y · (1 − y)`.
pub fn sigmoid_backward_from_output(y: &Matrix, grad: &Matrix) -> Matrix {
    assert_eq!(y.shape(), grad.shape(), "sigmoid_backward: shape mismatch");
    let mut out = y.clone();
    for ((o, &yv), &g) in out
        .as_mut_slice()
        .iter_mut()
        .zip(y.as_slice())
        .zip(grad.as_slice())
    {
        *o = g * yv * (1.0 - yv);
    }
    out
}

/// Element-wise hyperbolic tangent.
pub fn tanh(x: &Matrix) -> Matrix {
    x.map(f32::tanh)
}

/// Derivative of tanh given its *output* `y`: `1 − y²`.
pub fn tanh_backward_from_output(y: &Matrix, grad: &Matrix) -> Matrix {
    assert_eq!(y.shape(), grad.shape(), "tanh_backward: shape mismatch");
    let mut out = y.clone();
    for ((o, &yv), &g) in out
        .as_mut_slice()
        .iter_mut()
        .zip(y.as_slice())
        .zip(grad.as_slice())
    {
        *o = g * (1.0 - yv * yv);
    }
    out
}

/// Numerically-stable softmax applied independently to every row
/// (row-parallel on the global pool).
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    hongtu_parallel::par_chunks_mut(
        out.as_mut_slice(),
        PAR_SOFTMAX_ROWS_PER_CHUNK * cols,
        |_, chunk| {
            for row in chunk.chunks_exact_mut(cols) {
                softmax_in_place(row);
            }
        },
    );
    out
}

/// Numerically-stable log-softmax applied independently to every row
/// (row-parallel on the global pool).
pub fn log_softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    hongtu_parallel::par_chunks_mut(
        out.as_mut_slice(),
        PAR_SOFTMAX_ROWS_PER_CHUNK * cols,
        |_, chunk| {
            for row in chunk.chunks_exact_mut(cols) {
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
                for v in row.iter_mut() {
                    *v -= log_sum;
                }
            }
        },
    );
    out
}

/// In-place stable softmax over a slice (used for per-neighbor-set softmax in
/// GAT, where the "row" is a variable-length neighbor segment).
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Backward of an in-place softmax segment: given the softmax output `y` and
/// upstream gradient `dy`, returns `dx` where
/// `dx_i = y_i * (dy_i - Σ_j y_j dy_j)`.
pub fn softmax_backward_segment(y: &[f32], dy: &[f32], dx: &mut [f32]) {
    debug_assert_eq!(y.len(), dy.len());
    debug_assert_eq!(y.len(), dx.len());
    let dot: f32 = y.iter().zip(dy).map(|(a, b)| a * b).sum();
    for ((o, &yi), &dyi) in dx.iter_mut().zip(y).zip(dy) {
        *o = yi * (dyi - dot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.0, 0.5, 3.0]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn relu_backward_masks_by_preactivation() {
        let pre = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 1.0, 2.0]);
        let grad = Matrix::from_vec(1, 4, vec![10.0, 10.0, 10.0, 10.0]);
        assert_eq!(
            relu_backward(&pre, &grad).as_slice(),
            &[0.0, 0.0, 10.0, 10.0]
        );
    }

    #[test]
    fn leaky_relu_matches_slope() {
        assert_eq!(leaky_relu(2.0), 2.0);
        assert!((leaky_relu(-2.0) + 2.0 * LEAKY_RELU_SLOPE).abs() < 1e-7);
        assert_eq!(leaky_relu_backward(1.0), 1.0);
        assert_eq!(leaky_relu_backward(-1.0), LEAKY_RELU_SLOPE);
    }

    #[test]
    fn sigmoid_and_tanh_values() {
        let x = Matrix::from_vec(1, 3, vec![0.0, 100.0, -100.0]);
        let s = sigmoid(&x);
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-6);
        assert!(s.get(0, 2).abs() < 1e-6);
        let t = tanh(&x);
        assert!(t.get(0, 0).abs() < 1e-6);
        assert!((t.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_backward_matches_finite_difference() {
        let x = Matrix::from_vec(1, 4, vec![0.3, -0.7, 1.1, 0.0]);
        let g = Matrix::from_vec(1, 4, vec![1.0, -0.5, 0.25, 2.0]);
        let y = sigmoid(&x);
        let ana = sigmoid_backward_from_output(&y, &g);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num =
                (sigmoid(&xp).hadamard(&g).sum() - sigmoid(&xm).hadamard(&g).sum()) / (2.0 * eps);
            assert!((num - ana.as_slice()[i]).abs() < 1e-3, "coord {i}");
        }
    }

    #[test]
    fn tanh_backward_matches_finite_difference() {
        let x = Matrix::from_vec(1, 3, vec![0.4, -1.2, 0.0]);
        let g = Matrix::from_vec(1, 3, vec![0.7, 1.3, -2.0]);
        let y = tanh(&x);
        let ana = tanh_backward_from_output(&y, &g);
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (tanh(&xp).hadamard(&g).sum() - tanh(&xm).hadamard(&g).sum()) / (2.0 * eps);
            assert!((num - ana.as_slice()[i]).abs() < 1e-3, "coord {i}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits get larger probabilities.
        assert!(y.get(0, 2) > y.get(0, 1) && y.get(0, 1) > y.get(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        assert!(softmax_rows(&a).approx_eq(&softmax_rows(&b), 1e-6));
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let x = Matrix::from_vec(1, 3, vec![1e30, -1e30, 0.0]);
        let y = softmax_rows(&x);
        assert!((y.get(0, 0) - 1.0).abs() < 1e-6);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = Matrix::from_vec(2, 4, vec![0.5, -1.0, 2.0, 0.0, 3.0, 3.0, 3.0, 3.0]);
        let p = softmax_rows(&x);
        let lp = log_softmax_rows(&x);
        for i in 0..x.len() {
            assert!((p.as_slice()[i].ln() - lp.as_slice()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_zero_for_uniform_upstream() {
        // d/dx softmax with constant upstream gradient is zero (probabilities
        // are invariant to shifts).
        let mut y = vec![1.0_f32, 2.0, 0.5];
        softmax_in_place(&mut y);
        let dy = vec![3.0; 3];
        let mut dx = vec![0.0; 3];
        softmax_backward_segment(&y, &dy, &mut dx);
        assert!(dx.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = [0.3_f32, -0.7, 1.1, 0.2];
        let dy = [0.5_f32, -1.0, 0.25, 2.0];
        let f = |x: &[f32]| -> f32 {
            let mut y = x.to_vec();
            softmax_in_place(&mut y);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let mut y = x.to_vec();
        softmax_in_place(&mut y);
        let mut dx = vec![0.0; 4];
        softmax_backward_segment(&y, &dy, &mut dx);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (num - dx[i]).abs() < 1e-2,
                "component {i}: numeric {num} vs analytic {}",
                dx[i]
            );
        }
    }

    #[test]
    fn empty_segment_softmax_is_noop() {
        let mut empty: [f32; 0] = [];
        softmax_in_place(&mut empty);
    }
}
