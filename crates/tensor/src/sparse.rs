//! Sparse matrices in CSR form and SpMM — the cuSparse analog.
//!
//! The paper's computation engine implements graph operations with
//! cuSparse (§6): neighbor aggregation is a sparse × dense product
//! `A · H` where `A` is the (weighted) chunk adjacency. This module
//! provides that kernel on the host, row-parallelized like the dense
//! matmul, plus the transpose product used by the backward pass.

use crate::matrix::Matrix;

/// Rows per pool job for the row-parallel SpMM. Each output row reduces its
/// own non-zeros in CSR order, so the split never changes results bitwise.
const PAR_SPMM_ROWS_PER_CHUNK: usize = 128;

/// A sparse `rows × cols` matrix in compressed sparse row form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `offsets[r]..offsets[r+1]` indexes `indices`/`values` for row `r`.
    offsets: Vec<usize>,
    /// Column indices per non-zero.
    indices: Vec<u32>,
    /// Non-zero values.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` lists.
    ///
    /// # Panics
    /// Panics if a column index is out of range.
    pub fn from_rows(rows: usize, cols: usize, row_entries: &[Vec<(u32, f32)>]) -> Self {
        assert_eq!(row_entries.len(), rows, "row list length mismatch");
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0usize);
        let nnz: usize = row_entries.iter().map(Vec::len).sum();
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for entries in row_entries {
            for &(c, v) in entries {
                assert!(
                    (c as usize) < cols,
                    "column {c} out of range (cols = {cols})"
                );
                indices.push(c);
                values.push(v);
            }
            offsets.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            offsets,
            indices,
            values,
        }
    }

    /// Builds the CSR matrix directly from raw parts (validated).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        offsets: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(offsets.len(), rows + 1, "offsets length must be rows + 1");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            indices.len(),
            "offsets must end at nnz"
        );
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert!(
            indices.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        CsrMatrix {
            rows,
            cols,
            offsets,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Sparse × dense product `self · dense`
    /// (`rows × cols` · `cols × d` → `rows × d`), row-parallel on the
    /// global pool. Each output row accumulates its non-zeros in CSR
    /// order, so the result is bitwise identical for any thread count.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm: inner dimensions differ");
        let d = dense.cols();
        let mut out = Matrix::zeros(self.rows, d);
        if d == 0 {
            return out;
        }
        hongtu_parallel::par_chunks_mut(
            out.as_mut_slice(),
            PAR_SPMM_ROWS_PER_CHUNK * d,
            |start, chunk| {
                let r0 = start / d;
                for (dr, row_out) in chunk.chunks_exact_mut(d).enumerate() {
                    let r = r0 + dr;
                    for k in self.offsets[r]..self.offsets[r + 1] {
                        let c = self.indices[k] as usize;
                        let w = self.values[k];
                        for (o, &x) in row_out.iter_mut().zip(dense.row(c)) {
                            *o += w * x;
                        }
                    }
                }
            },
        );
        out
    }

    /// Transposed sparse × dense product `selfᵀ · dense`
    /// (`cols × rows` · `rows × d` → `cols × d`) without materializing the
    /// transpose — the scatter pattern of the aggregation backward pass.
    pub fn transpose_spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "transpose_spmm: row counts differ");
        let d = dense.cols();
        let mut out = Matrix::zeros(self.cols, d);
        for r in 0..self.rows {
            let src = dense.row(r);
            for k in self.offsets[r]..self.offsets[r + 1] {
                let c = self.indices[k] as usize;
                let w = self.values[k];
                let row_out = out.row_mut(c);
                for (o, &x) in row_out.iter_mut().zip(src) {
                    *o += w * x;
                }
            }
        }
        out
    }

    /// Materialized transpose (CSC view as a CSR matrix).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for r in 0..self.rows {
            for k in self.offsets[r]..self.offsets[r + 1] {
                let c = self.indices[k] as usize;
                let pos = cursor[c];
                indices[pos] = r as u32;
                values[pos] = self.values[k];
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            offsets,
            indices,
            values,
        }
    }

    /// Densifies (tests / small problems only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.offsets[r]..self.offsets[r + 1] {
                let c = self.indices[k] as usize;
                out.set(r, c, out.get(r, c) + self.values[k]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn random_csr(rng: &mut SeededRng, rows: usize, cols: usize, per_row: usize) -> CsrMatrix {
        let entries: Vec<Vec<(u32, f32)>> = (0..rows)
            .map(|_| {
                (0..per_row)
                    .map(|_| (rng.index(cols) as u32, rng.uniform_range(-1.0, 1.0)))
                    .collect()
            })
            .collect();
        CsrMatrix::from_rows(rows, cols, &entries)
    }

    #[test]
    fn spmm_matches_dense_reference() {
        let mut rng = SeededRng::new(1);
        let a = random_csr(&mut rng, 12, 9, 3);
        let h = Matrix::from_fn(9, 5, |r, c| ((r * 5 + c) as f32 * 0.13).sin());
        let sparse = a.spmm(&h);
        let dense = a.to_dense().matmul(&h);
        assert!(sparse.approx_eq(&dense, 1e-5));
    }

    #[test]
    fn transpose_spmm_matches_explicit_transpose() {
        let mut rng = SeededRng::new(2);
        let a = random_csr(&mut rng, 10, 14, 4);
        let h = Matrix::from_fn(10, 3, |r, c| ((r + c * 7) as f32 * 0.21).cos());
        let fused = a.transpose_spmm(&h);
        let explicit = a.transpose().spmm(&h);
        assert!(fused.approx_eq(&explicit, 1e-5));
    }

    #[test]
    fn transpose_is_involutive() {
        let mut rng = SeededRng::new(3);
        let a = random_csr(&mut rng, 8, 6, 2);
        let back = a.transpose().transpose();
        assert!(back.to_dense().approx_eq(&a.to_dense(), 1e-6));
    }

    #[test]
    fn duplicate_entries_accumulate() {
        let a = CsrMatrix::from_rows(1, 2, &[vec![(1, 2.0), (1, 3.0)]]);
        assert_eq!(a.nnz(), 2);
        let h = Matrix::from_vec(2, 1, vec![10.0, 1.0]);
        assert_eq!(a.spmm(&h).get(0, 0), 5.0);
        assert_eq!(a.to_dense().get(0, 1), 5.0);
    }

    #[test]
    fn empty_rows_are_zero() {
        let a = CsrMatrix::from_rows(3, 3, &[vec![(0, 1.0)], vec![], vec![(2, 4.0)]]);
        let h = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        let out = a.spmm(&h);
        assert!(out.row(1).iter().all(|&v| v == 0.0));
        assert_eq!(out.get(2, 0), 4.0 * h.get(2, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_column() {
        let _ = CsrMatrix::from_rows(1, 2, &[vec![(5, 1.0)]]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_parts_validates() {
        let _ = CsrMatrix::from_parts(3, 2, vec![0, 2, 1, 2], vec![0, 1], vec![1.0, 1.0]);
    }
}
