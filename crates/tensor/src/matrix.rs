//! Row-major dense `f32` matrix and the linear-algebra kernels GNN training
//! needs: `A×B`, `Aᵀ×B`, `A×Bᵀ`, element-wise arithmetic, and row gathers.

use std::fmt;

/// Minimum number of rows per thread before the parallel matmul splits work.
const PAR_MIN_ROWS_PER_THREAD: usize = 64;

/// Rows per pool job for parallel row gathers (pure copies are cheap, so
/// chunks are large to amortize scheduling).
const PAR_GATHER_ROWS_PER_CHUNK: usize = 1024;

/// A dense row-major `f32` matrix.
///
/// The fundamental value type of the workspace: vertex representation blocks
/// (`#vertices × dim`), weight matrices (`dim × dim`) and gradient buffers are
/// all `Matrix` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes of the backing buffer (used by the memory model).
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(
            r < self.rows,
            "row {} out of bounds (rows={})",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(
            r < self.rows,
            "row {} out of bounds (rows={})",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Gathers rows `indices[i]` of `self` into a new `indices.len() × cols`
    /// matrix. This is the sparse "mem_copy_sparse" primitive of the paper's
    /// communication layer, expressed on host buffers. Large gathers are
    /// row-parallel: each output row is a plain copy, so the result is
    /// identical for any worker count.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        if self.cols == 0 {
            return out;
        }
        let cols = self.cols;
        hongtu_parallel::par_chunks_mut(
            &mut out.data,
            PAR_GATHER_ROWS_PER_CHUNK * cols,
            |start, chunk| {
                let r0 = start / cols;
                for (dst, row_out) in chunk.chunks_exact_mut(cols).enumerate() {
                    row_out.copy_from_slice(self.row(indices[r0 + dst]));
                }
            },
        );
        out
    }

    /// Scatter-adds each row `i` of `src` into row `indices[i]` of `self`.
    /// This is the gradient-accumulation primitive of the backward pass.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Matrix) {
        assert_eq!(
            indices.len(),
            src.rows(),
            "scatter_add_rows: index/row count mismatch"
        );
        assert_eq!(self.cols, src.cols(), "scatter_add_rows: column mismatch");
        for (i, &dst) in indices.iter().enumerate() {
            let row = src.row(i);
            let out = self.row_mut(dst);
            for (o, s) in out.iter_mut().zip(row) {
                *o += *s;
            }
        }
    }

    /// Copies each row `i` of `src` over row `indices[i]` of `self`.
    pub fn scatter_rows(&mut self, indices: &[usize], src: &Matrix) {
        assert_eq!(
            indices.len(),
            src.rows(),
            "scatter_rows: index/row count mismatch"
        );
        assert_eq!(self.cols, src.cols(), "scatter_rows: column mismatch");
        for (i, &dst) in indices.iter().enumerate() {
            self.row_mut(dst).copy_from_slice(src.row(i));
        }
    }

    /// `self + other`, element-wise.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// `self - other`, element-wise.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// `alpha * self`, returning a new matrix.
    pub fn scale(&self, alpha: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| alpha * v).collect(),
        }
    }

    /// In-place `self *= alpha`.
    pub fn scale_assign(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Resets all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Horizontal concatenation `[self | other]` (row counts must match).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack: row counts differ");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Column slice copy: columns `range` of every row.
    pub fn columns(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(range.end <= self.cols, "columns: range out of bounds");
        let mut out = Matrix::zeros(self.rows, range.len());
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[range.clone()]);
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max)
    }

    /// True if all elements differ by at most `tol` from `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    /// `self × other` — parallel blocked matrix multiplication.
    ///
    /// ```
    /// use hongtu_tensor::Matrix;
    /// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    /// let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
    /// assert_eq!(a.matmul(&i), a);
    /// ```
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions differ ({}x{} × {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// `selfᵀ × other` without materializing the transpose.
    ///
    /// Used for weight gradients: `∇W = aᵀ × δ`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul: row counts differ ({}x{} vs {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        // out[c1][c2] = sum_r self[r][c1] * other[r][c2]
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (c1, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[c1 * other.cols..(c1 + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materializing the transpose.
    ///
    /// Used for input gradients: `∇a = δ × Wᵀ`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose: column counts differ ({}x{} vs {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let out_row = out.row_mut(r);
            for (c, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(c);
                let mut acc = 0.0;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        out
    }
}

/// Parallel kernel: `out[a_rows × b_cols] = A[a_rows × a_cols] × B[a_cols × b_cols]`.
///
/// Rows of `A` are split across the work-stealing pool when the problem is
/// big enough; each job writes a disjoint row-slice of `out`. Every output
/// row runs the identical per-row reduction, so the split (and hence the
/// thread count) never changes the result bitwise.
fn matmul_into(a: &[f32], a_rows: usize, a_cols: usize, b: &[f32], b_cols: usize, out: &mut [f32]) {
    let threads = hongtu_parallel::global().num_threads();
    if a_rows < PAR_MIN_ROWS_PER_THREAD * 2 || threads <= 1 || b_cols == 0 {
        matmul_rows(a, a_cols, b, b_cols, out, 0, a_rows);
        return;
    }
    let n_workers = threads.min(a_rows / PAR_MIN_ROWS_PER_THREAD).max(1);
    let rows_per = a_rows.div_ceil(n_workers);
    hongtu_parallel::par_chunks_mut(out, rows_per * b_cols, |start, chunk| {
        let r0 = start / b_cols;
        matmul_rows(a, a_cols, b, b_cols, chunk, r0, r0 + chunk.len() / b_cols);
    });
}

/// Sequential row-range matmul: fills `out` (rows `start..end` of the result,
/// re-based to index 0) using the classical ikj loop order for cache locality.
fn matmul_rows(
    a: &[f32],
    a_cols: usize,
    b: &[f32],
    b_cols: usize,
    out: &mut [f32],
    start: usize,
    end: usize,
) {
    for r in start..end {
        let a_row = &a[r * a_cols..(r + 1) * a_cols];
        let out_row = &mut out[(r - start) * b_cols..(r - start + 1) * b_cols];
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[k * b_cols..(k + 1) * b_cols];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

impl Matrix {
    fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op: shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn zeros_shape_and_content() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(z.byte_size(), 48);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(a.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_parallel_matches_sequential() {
        // Big enough to trigger the threaded path.
        let a = Matrix::from_fn(512, 33, |r, c| ((r * 7 + c * 13) % 17) as f32 - 8.0);
        let b = Matrix::from_fn(33, 29, |r, c| ((r * 3 + c * 5) % 11) as f32 - 5.0);
        let par = a.matmul(&b);
        let mut seq = Matrix::zeros(512, 29);
        matmul_rows(
            a.as_slice(),
            33,
            b.as_slice(),
            29,
            seq.as_mut_slice(),
            0,
            512,
        );
        assert_eq!(par, seq);
    }

    #[test]
    fn transpose_matmul_equals_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(5, 4, |r, c| (r * c) as f32 + 1.0);
        let fused = a.transpose_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(fused.approx_eq(&explicit, 1e-6));
    }

    #[test]
    fn matmul_transpose_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 2 + c) as f32);
        let b = Matrix::from_fn(6, 3, |r, c| (r + 2 * c) as f32 - 3.0);
        let fused = a.matmul_transpose(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(fused.approx_eq(&explicit, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn gather_then_scatter_add_roundtrip() {
        let src = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        let idx = [4, 0, 2];
        let g = src.gather_rows(&idx);
        assert_eq!(g.row(0), src.row(4));
        assert_eq!(g.row(1), src.row(0));
        let mut acc = Matrix::zeros(6, 2);
        acc.scatter_add_rows(&idx, &g);
        for r in 0..6 {
            if idx.contains(&r) {
                assert_eq!(acc.row(r), src.row(r));
            } else {
                assert!(acc.row(r).iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let mut acc = Matrix::zeros(3, 1);
        let upd = m(3, 1, &[1.0, 2.0, 4.0]);
        acc.scatter_add_rows(&[1, 1, 1], &upd);
        assert_eq!(acc.get(1, 0), 7.0);
    }

    #[test]
    fn scatter_rows_overwrites() {
        let mut dst = Matrix::full(3, 2, 9.0);
        let src = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        dst.scatter_rows(&[2, 0], &src);
        assert_eq!(dst.row(2), &[1.0, 2.0]);
        assert_eq!(dst.row(0), &[3.0, 4.0]);
        assert_eq!(dst.row(1), &[9.0, 9.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0; 4]);
        assert_eq!(a.sub(&b).as_slice(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[3.0, 3.5, 4.0, 4.5]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(4, 2), a.get(2, 4));
    }

    #[test]
    fn hstack_and_columns_roundtrip() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let b = Matrix::from_fn(3, 3, |r, c| (r + c) as f32 + 100.0);
        let s = a.hstack(&b);
        assert_eq!(s.shape(), (3, 5));
        assert_eq!(s.columns(0..2), a);
        assert_eq!(s.columns(2..5), b);
        assert_eq!(s.get(1, 3), b.get(1, 1));
    }

    #[test]
    #[should_panic(expected = "row counts differ")]
    fn hstack_rejects_mismatched_rows() {
        let _ = Matrix::zeros(2, 1).hstack(&Matrix::zeros(3, 1));
    }

    #[test]
    fn norms_and_sums() {
        let a = m(1, 3, &[3.0, 0.0, 4.0]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }
}
