//! Weight initialization schemes.

use crate::matrix::Matrix;
use crate::rng::SeededRng;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. This matches the initialization used
/// by the reference GCN/GAT implementations the paper builds on.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.uniform_range(-a, a))
}

/// Scaled normal initialization: `N(0, scale²)`.
pub fn normal_init(rows: usize, cols: usize, scale: f32, rng: &mut SeededRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.normal() * scale)
}

/// A zero matrix with the same shape as `m`.
pub fn zeros_like(m: &Matrix) -> Matrix {
    Matrix::zeros(m.rows(), m.cols())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = SeededRng::new(1);
        let w = xavier_uniform(64, 32, &mut rng);
        let a = (6.0_f32 / 96.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= a));
        assert_eq!(w.shape(), (64, 32));
    }

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let w1 = xavier_uniform(8, 8, &mut SeededRng::new(5));
        let w2 = xavier_uniform(8, 8, &mut SeededRng::new(5));
        assert_eq!(w1, w2);
        let w3 = xavier_uniform(8, 8, &mut SeededRng::new(6));
        assert_ne!(w1, w3);
    }

    #[test]
    fn xavier_is_not_degenerate() {
        let mut rng = SeededRng::new(2);
        let w = xavier_uniform(128, 128, &mut rng);
        let mean = w.sum() / w.len() as f32;
        assert!(mean.abs() < 0.01);
        assert!(w.frobenius_norm() > 0.0);
    }

    #[test]
    fn zeros_like_matches_shape() {
        let m = Matrix::full(3, 7, 2.0);
        let z = zeros_like(&m);
        assert_eq!(z.shape(), (3, 7));
        assert_eq!(z.sum(), 0.0);
    }

    #[test]
    fn normal_init_scale() {
        let mut rng = SeededRng::new(3);
        let w = normal_init(100, 100, 0.1, &mut rng);
        let var = w.as_slice().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        assert!((var - 0.01).abs() < 0.002, "var {var}");
    }
}
