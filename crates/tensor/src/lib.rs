//! Dense tensor math substrate for HongTu.
//!
//! This crate stands in for the cuBLAS/PyTorch dense kernels used by the
//! original system. It provides a row-major `f32` matrix type ([`Matrix`]),
//! the activation functions used by the GNN models in the paper (ReLU,
//! LeakyReLU, row-wise softmax), weight initialization, and the optimizers
//! (SGD, Adam) used to update model parameters after each full-graph epoch.
//!
//! Design notes:
//! - Everything is `f32`, matching the paper's training precision.
//! - Matrix multiplication is blocked and parallelized across rows with
//!   std scoped threads; GNN workloads multiply `(#vertices × dim)` by
//!   `(dim × dim)` matrices, so row-parallelism is the right axis.
//! - Shape mismatches are programming errors and panic with a descriptive
//!   message, mirroring the behaviour of mainstream numeric libraries.

#![forbid(unsafe_code)]

pub mod init;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod rng;
pub mod sparse;

pub use init::{xavier_uniform, zeros_like};
pub use matrix::Matrix;
pub use ops::{
    leaky_relu, leaky_relu_backward, log_softmax_rows, relu, relu_backward, sigmoid,
    sigmoid_backward_from_output, softmax_rows, tanh, tanh_backward_from_output,
};
pub use optim::{Adam, Optimizer, Sgd};
pub use rng::SeededRng;
pub use sparse::CsrMatrix;
