//! GNN models with hand-derived backward passes, operating chunk-at-a-time.
//!
//! The original HongTu delegates dense math to PyTorch/cuSparse and gets
//! gradients from autograd. Here every layer implements its backward pass
//! explicitly, which is what makes the paper's *recomputation-caching-
//! hybrid* strategy (§4.2) expressible: a layer exposes
//!
//! - [`layer::GnnLayer::backward_from_input`] — the pure **recomputation**
//!   path: given the reloaded layer input (the vertex representations,
//!   which always live in CPU memory), recompute the forward pass and then
//!   differentiate;
//! - [`layer::GnnLayer::backward_from_agg`] — the **hybrid** path for models
//!   whose AGGREGATE yields no edge intermediates (GCN, GraphSAGE, GIN,
//!   CommNet): given the cached aggregate output `a^l`, skip AGGREGATE and
//!   recompute only UPDATE.
//!
//! Models provided: GCN (Eq. 2), GAT (Eq. 3, single head, plus a
//! multi-head wrapper), GraphSAGE-mean, GIN, CommNet, and a gated GGNN
//! ("GGCN" in the paper's terminology). All are validated against finite
//! differences in [`gradcheck`]. Trained models serialize through
//! [`serialize`].

#![forbid(unsafe_code)]
// Indexed loops over chunk/edge structures are deliberate in the kernels:
// the indices double as positions into parallel edge arrays.
#![allow(clippy::needless_range_loop)]

pub mod commnet;
pub mod gat;
pub mod gat_multihead;
pub mod gcn;
pub mod ggnn;
pub mod gin;
pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod model;
pub mod sage;
pub mod serialize;

pub use commnet::CommNetLayer;
pub use gat::GatLayer;
pub use gat_multihead::MultiHeadGatLayer;
pub use gcn::GcnLayer;
pub use ggnn::GgnnLayer;
pub use gin::GinLayer;
pub use layer::{GnnLayer, LayerFlops, LayerForward, LayerGrads};
pub use loss::{masked_cross_entropy, MaskedLoss};
pub use model::{GnnModel, ModelKind};
pub use sage::SageLayer;
pub use serialize::{load_model, load_model_file, save_model, save_model_file};
