//! GraphSAGE-mean layer:
//! `h_v = ReLU(W_self · h_v + W_nbr · mean_{u∈N(v)} h_u)`.
//!
//! The AGGREGATE (a mean) produces no edge intermediates, so this layer
//! supports hybrid caching. Because UPDATE reads both the mean aggregate
//! and the destination's own representation, the cached checkpoint is the
//! horizontal concatenation `[mean_agg | h_dest]` (`|V_ij| × 2·in_dim`) —
//! the checkpoint tensor is layer-defined and opaque to the engine.

use crate::layer::{self, Activation, GnnLayer, LayerFlops, LayerForward, LayerGrads};
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::{Matrix, SeededRng};

/// One GraphSAGE-mean layer.
#[derive(Debug, Clone)]
pub struct SageLayer {
    w_self: Matrix,
    w_nbr: Matrix,
    /// UPDATE nonlinearity (ReLU for hidden layers, Identity for output).
    pub act: Activation,
}

impl SageLayer {
    /// A layer with Xavier-initialized self and neighbor projections.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        SageLayer {
            w_self: hongtu_tensor::xavier_uniform(in_dim, out_dim, rng),
            w_nbr: hongtu_tensor::xavier_uniform(in_dim, out_dim, rng),
            act: Activation::Relu,
        }
    }

    /// Mean aggregate and gathered destination reps: `(mean_agg, h_dest)`.
    fn aggregate(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> (Matrix, Matrix) {
        let dim = h_nbr.cols();
        let self_pos = layer::self_positions(chunk);
        let mut agg = Matrix::zeros(chunk.num_dests(), dim);
        for k in 0..chunk.num_dests() {
            let range = chunk.in_edges_of(k);
            let inv = 1.0 / range.len().max(1) as f32;
            let out = agg.row_mut(k);
            for e in range {
                let src = chunk.nbr_index[e] as usize;
                for (o, &x) in out.iter_mut().zip(h_nbr.row(src)) {
                    *o += inv * x;
                }
            }
        }
        let h_dest = h_nbr.gather_rows(&self_pos);
        (agg, h_dest)
    }

    /// UPDATE backward from the cached `[agg | h_dest]` checkpoint.
    /// Returns `(grad_agg, grad_dest)` and accumulates parameter grads.
    fn update_backward(
        &self,
        agg: &Matrix,
        h_dest: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> (Matrix, Matrix) {
        let z = h_dest.matmul(&self.w_self).add(&agg.matmul(&self.w_nbr));
        let dz = self.act.backward(&z, grad_out);
        grads.grads[0].add_assign(&h_dest.transpose_matmul(&dz));
        grads.grads[1].add_assign(&agg.transpose_matmul(&dz));
        (
            dz.matmul_transpose(&self.w_nbr),
            dz.matmul_transpose(&self.w_self),
        )
    }

    /// Scatters `(grad_agg, grad_dest)` back onto neighbor rows.
    fn aggregate_backward(
        &self,
        chunk: &ChunkSubgraph,
        grad_agg: &Matrix,
        grad_dest: &Matrix,
    ) -> Matrix {
        let dim = grad_agg.cols();
        let self_pos = layer::self_positions(chunk);
        let mut grad_nbr = Matrix::zeros(chunk.num_neighbors(), dim);
        for k in 0..chunk.num_dests() {
            let range = chunk.in_edges_of(k);
            let inv = 1.0 / range.len().max(1) as f32;
            let ga = grad_agg.row(k);
            for e in range {
                let src = chunk.nbr_index[e] as usize;
                let out = grad_nbr.row_mut(src);
                for (o, &gv) in out.iter_mut().zip(ga) {
                    *o += inv * gv;
                }
            }
        }
        grad_nbr.scatter_add_rows(&self_pos, grad_dest);
        grad_nbr
    }
}

impl GnnLayer for SageLayer {
    fn in_dim(&self) -> usize {
        self.w_self.rows()
    }

    fn out_dim(&self) -> usize {
        self.w_self.cols()
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.w_self, &self.w_nbr]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w_self, &mut self.w_nbr]
    }

    fn supports_agg_cache(&self) -> bool {
        true
    }

    fn forward(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> LayerForward {
        assert_eq!(
            h_nbr.cols(),
            self.in_dim(),
            "SageLayer::forward: input dim mismatch"
        );
        let (agg, h_dest) = self.aggregate(chunk, h_nbr);
        let z = h_dest.matmul(&self.w_self).add(&agg.matmul(&self.w_nbr));
        let checkpoint = agg.hstack(&h_dest);
        LayerForward {
            out: self.act.apply(&z),
            agg: Some(checkpoint),
        }
    }

    fn backward_from_input(
        &self,
        chunk: &ChunkSubgraph,
        h_nbr: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let (agg, h_dest) = self.aggregate(chunk, h_nbr);
        let (grad_agg, grad_dest) = self.update_backward(&agg, &h_dest, grad_out, grads);
        self.aggregate_backward(chunk, &grad_agg, &grad_dest)
    }

    fn backward_from_agg(
        &self,
        chunk: &ChunkSubgraph,
        agg: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let dim = self.in_dim();
        let mean_agg = agg.columns(0..dim);
        let h_dest = agg.columns(dim..2 * dim);
        let (grad_agg, grad_dest) = self.update_backward(&mean_agg, &h_dest, grad_out, grads);
        self.aggregate_backward(chunk, &grad_agg, &grad_dest)
    }

    fn forward_flops(&self, chunk: &ChunkSubgraph) -> LayerFlops {
        let d_in = self.in_dim() as f64;
        let d_out = self.out_dim() as f64;
        let v = chunk.num_dests() as f64;
        let e = chunk.num_edges() as f64;
        LayerFlops {
            dense: 4.0 * v * d_in * d_out,
            edge: 2.0 * e * d_in,
        }
    }

    fn intermediate_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        // agg + h_dest (D × in each) + z (D × out)
        chunk.num_dests() * (2 * self.in_dim() + self.out_dim()) * std::mem::size_of::<f32>()
    }

    fn agg_cache_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        chunk.num_dests() * 2 * self.in_dim() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::{Graph, GraphBuilder};

    fn toy() -> (Graph, ChunkSubgraph) {
        let mut b = GraphBuilder::new(4).keep_self_loops();
        for v in 0..4 {
            b.add_edge(v, v);
        }
        for (s, t) in [(0, 1), (0, 2), (1, 2), (3, 2), (2, 0)] {
            b.add_edge(s, t);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![0, 1, 2, 3]);
        (g, chunk)
    }

    fn inputs(chunk: &ChunkSubgraph, dim: usize) -> Matrix {
        Matrix::from_fn(chunk.num_neighbors(), dim, |r, c| {
            ((r * 2 + c * 7) as f32 * 0.31).sin()
        })
    }

    #[test]
    fn forward_shapes_and_checkpoint_width() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(1);
        let layer = SageLayer::new(3, 5, &mut rng);
        let h = inputs(&chunk, 3);
        let f = layer.forward(&chunk, &h);
        assert_eq!(f.out.shape(), (4, 5));
        assert_eq!(
            f.agg.unwrap().shape(),
            (4, 6),
            "checkpoint is [agg | h_dest]"
        );
        assert_eq!(layer.agg_cache_bytes(&chunk), 4 * 6 * 4);
    }

    #[test]
    fn mean_aggregate_of_uniform_input_is_input() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(2);
        let layer = SageLayer::new(2, 2, &mut rng);
        let h = Matrix::full(chunk.num_neighbors(), 2, 3.5);
        let (agg, h_dest) = layer.aggregate(&chunk, &h);
        assert!(agg.as_slice().iter().all(|&v| (v - 3.5).abs() < 1e-6));
        assert!(h_dest.as_slice().iter().all(|&v| (v - 3.5).abs() < 1e-6));
    }

    #[test]
    fn hybrid_and_recompute_paths_agree() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(3);
        let layer = SageLayer::new(3, 4, &mut rng);
        let h = inputs(&chunk, 3);
        let f = layer.forward(&chunk, &h);
        let grad_out = Matrix::from_fn(4, 4, |r, c| ((r * 3 + c) as f32 * 0.21).cos());
        let mut g1 = LayerGrads::zeros_for(&layer);
        let n1 = layer.backward_from_input(&chunk, &h, &grad_out, &mut g1);
        let mut g2 = LayerGrads::zeros_for(&layer);
        let n2 = layer.backward_from_agg(&chunk, f.agg.as_ref().unwrap(), &grad_out, &mut g2);
        assert!(n1.approx_eq(&n2, 1e-6));
        assert!(g1.grads[0].approx_eq(&g2.grads[0], 1e-6));
        assert!(g1.grads[1].approx_eq(&g2.grads[1], 1e-6));
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(4);
        let mut layer = SageLayer::new(3, 2, &mut rng);
        let h = inputs(&chunk, 3);
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 2e-2);
    }

    #[test]
    fn gradient_check_on_random_graph() {
        let mut rng = SeededRng::new(8);
        let mut b = GraphBuilder::new(15).keep_self_loops();
        for v in 0..15u32 {
            b.add_edge(v, v);
        }
        for _ in 0..45 {
            b.add_edge(rng.index(15) as u32, rng.index(15) as u32);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, (0..15).collect());
        let mut layer = SageLayer::new(4, 3, &mut rng);
        let h = Matrix::from_fn(chunk.num_neighbors(), 4, |r, c| {
            ((r * 5 + c * 3) as f32 * 0.21).cos() * 0.7
        });
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 2e-2);
    }
}
