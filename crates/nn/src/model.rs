//! Multi-layer GNN models and a single-device reference trainer.
//!
//! The reference trainer executes full-graph training on one whole-graph
//! chunk — this is the "DGL single-GPU" semantics the paper compares
//! against, and the ground truth that HongTu's partitioned execution must
//! reproduce exactly (Figure 8: "full-graph GNN can achieve theoretical
//! accuracy in HongTu because its training semantic is not changed").

use crate::commnet::CommNetLayer;
use crate::gat::GatLayer;
use crate::gcn::GcnLayer;
use crate::ggnn::GgnnLayer;
use crate::gin::GinLayer;
use crate::layer::{Activation, GnnLayer, LayerGrads};
use crate::loss::{masked_cross_entropy, MaskedLoss};
use crate::sage::SageLayer;
use hongtu_graph::Graph;
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::{Matrix, Optimizer, SeededRng};

/// Which GNN architecture a model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Graph convolutional network (paper Eq. 2) — light edge computation.
    Gcn,
    /// Graph attention network (paper Eq. 3) — heavy edge computation.
    Gat,
    /// GraphSAGE with mean aggregation.
    Sage,
    /// Graph isomorphism network (sum aggregation).
    Gin,
    /// CommNet (mean communication over the other neighbors).
    CommNet,
    /// Gated graph network (GRU-style UPDATE; the paper's "GGCN").
    Ggnn,
}

impl ModelKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Gat => "GAT",
            ModelKind::Sage => "SAGE",
            ModelKind::Gin => "GIN",
            ModelKind::CommNet => "CommNet",
            ModelKind::Ggnn => "GGNN",
        }
    }

    /// True when the architecture's AGGREGATE has no edge intermediates and
    /// so benefits from the hybrid caching strategy (§4.2).
    pub fn supports_agg_cache(self) -> bool {
        !matches!(self, ModelKind::Gat)
    }
}

/// A stack of GNN layers with dimensions `dims[0] → dims[1] → … → dims[L]`.
pub struct GnnModel {
    /// Architecture.
    pub kind: ModelKind,
    /// Per-boundary dimensions; `dims.len() = L + 1`.
    pub dims: Vec<usize>,
    layers: Vec<Box<dyn GnnLayer>>,
}

impl GnnModel {
    /// Builds a model of `kind` with layer dimensions `dims`
    /// (`dims[0]` = input features, `dims.last()` = #classes).
    pub fn new(kind: ModelKind, dims: &[usize], rng: &mut SeededRng) -> Self {
        assert!(dims.len() >= 2, "need at least one layer (dims.len() >= 2)");
        let last = dims.len() - 2;
        let layers: Vec<Box<dyn GnnLayer>> = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| -> Box<dyn GnnLayer> {
                let mut layer_rng = rng.fork(1000 + l as u64);
                // Hidden layers use ReLU; the output layer stays linear so
                // classifier logits can go negative.
                let act = if l == last {
                    Activation::Identity
                } else {
                    Activation::Relu
                };
                match kind {
                    ModelKind::Gcn => {
                        let mut layer = GcnLayer::new(w[0], w[1], &mut layer_rng);
                        layer.act = act;
                        Box::new(layer)
                    }
                    ModelKind::Gat => {
                        let mut layer = GatLayer::new(w[0], w[1], &mut layer_rng);
                        layer.act = act;
                        Box::new(layer)
                    }
                    ModelKind::Sage => {
                        let mut layer = SageLayer::new(w[0], w[1], &mut layer_rng);
                        layer.act = act;
                        Box::new(layer)
                    }
                    ModelKind::Gin => {
                        let mut layer = GinLayer::new(w[0], w[1], &mut layer_rng);
                        layer.act = act;
                        Box::new(layer)
                    }
                    ModelKind::CommNet => {
                        let mut layer = CommNetLayer::new(w[0], w[1], &mut layer_rng);
                        layer.act = act;
                        Box::new(layer)
                    }
                    ModelKind::Ggnn => {
                        // The gated cell is already nonlinear; only the
                        // output layer's Identity matters.
                        let mut layer = GgnnLayer::new(w[0], w[1], &mut layer_rng);
                        layer.act = act;
                        Box::new(layer)
                    }
                }
            })
            .collect();
        GnnModel {
            kind,
            dims: dims.to_vec(),
            layers,
        }
    }

    /// Builds a model from caller-constructed layers (e.g.
    /// [`crate::MultiHeadGatLayer`] stacks). Layer dimensions must chain:
    /// `layers[i].out_dim() == layers[i+1].in_dim()`.
    ///
    /// `kind` is a label used for reporting and strategy selection; pick
    /// the closest architecture (e.g. `Gat` for attention stacks).
    pub fn custom(kind: ModelKind, layers: Vec<Box<dyn GnnLayer>>) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_dim(),
                w[1].in_dim(),
                "layer dimensions do not chain ({} -> {})",
                w[0].out_dim(),
                w[1].in_dim()
            );
        }
        let mut dims = vec![layers[0].in_dim()];
        dims.extend(layers.iter().map(|l| l.out_dim()));
        GnnModel { kind, dims, layers }
    }

    /// Number of layers `L`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer `l`.
    pub fn layer(&self, l: usize) -> &dyn GnnLayer {
        self.layers[l].as_ref()
    }

    /// All layers.
    pub fn layers(&self) -> &[Box<dyn GnnLayer>] {
        &self.layers
    }

    /// Mutable layers (optimizer access).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn GnnLayer>] {
        &mut self.layers
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.len())
            .sum()
    }

    /// Total parameter bytes (replicated per GPU in HongTu; synchronized
    /// with all-reduce after each epoch).
    pub fn param_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Zero gradient holders for every layer.
    pub fn zero_grads(&self) -> Vec<LayerGrads> {
        self.layers
            .iter()
            .map(|l| LayerGrads::zeros_for(l.as_ref()))
            .collect()
    }

    /// Applies accumulated gradients with `opt` and advances its step.
    pub fn apply_grads(&mut self, grads: &[LayerGrads], opt: &mut dyn Optimizer) {
        assert_eq!(
            grads.len(),
            self.layers.len(),
            "apply_grads: layer count mismatch"
        );
        for (l, (layer, g)) in self.layers.iter_mut().zip(grads).enumerate() {
            for (pi, (param, grad)) in layer.params_mut().into_iter().zip(&g.grads).enumerate() {
                opt.step(l * 8 + pi, param, grad);
            }
        }
        opt.advance();
    }

    /// Reference full-graph forward pass over a chunk that owns **all**
    /// vertices. Returns the per-layer global representations
    /// `[h^1, …, h^L]` (each `|V| × dims[l]`).
    pub fn forward_reference(&self, chunk: &ChunkSubgraph, features: &Matrix) -> Vec<Matrix> {
        let n = features.rows();
        assert_eq!(
            chunk.num_dests(),
            n,
            "reference forward needs a whole-graph chunk"
        );
        let nbr_idx: Vec<usize> = chunk.neighbors.iter().map(|&v| v as usize).collect();
        let dest_idx: Vec<usize> = chunk.dests.iter().map(|&v| v as usize).collect();
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut h = features.clone();
        for layer in &self.layers {
            let h_nbr = h.gather_rows(&nbr_idx);
            let f = layer.forward(chunk, &h_nbr);
            let mut global = Matrix::zeros(n, layer.out_dim());
            global.scatter_rows(&dest_idx, &f.out);
            outs.push(global.clone());
            h = global;
        }
        outs
    }

    /// One reference full-graph training epoch (forward, loss over
    /// `train_mask`, backward, optimizer step). Returns the epoch loss.
    pub fn train_epoch_reference(
        &mut self,
        chunk: &ChunkSubgraph,
        features: &Matrix,
        labels: &[u32],
        train_mask: &[bool],
        opt: &mut dyn Optimizer,
    ) -> MaskedLoss {
        let n = features.rows();
        let nbr_idx: Vec<usize> = chunk.neighbors.iter().map(|&v| v as usize).collect();
        let dest_idx: Vec<usize> = chunk.dests.iter().map(|&v| v as usize).collect();
        let mut reps = vec![features.clone()];
        reps.extend(self.forward_reference(chunk, features));
        let loss = masked_cross_entropy(reps.last().unwrap(), labels, train_mask);

        let mut grads = self.zero_grads();
        let mut grad_global = loss.grad.clone();
        for l in (0..self.layers.len()).rev() {
            let layer = &self.layers[l];
            let h_nbr = reps[l].gather_rows(&nbr_idx);
            let grad_out = grad_global.gather_rows(&dest_idx);
            let grad_nbr = layer.backward_from_input(chunk, &h_nbr, &grad_out, &mut grads[l]);
            let mut prev = Matrix::zeros(n, layer.in_dim());
            prev.scatter_add_rows(&nbr_idx, &grad_nbr);
            grad_global = prev;
        }
        self.apply_grads(&grads, opt);
        loss
    }
}

/// Builds the whole-graph chunk used by the reference trainer.
pub fn whole_graph_chunk(g: &Graph) -> ChunkSubgraph {
    ChunkSubgraph::build(g, 0, 0, (0..g.num_vertices() as u32).collect())
}

impl std::fmt::Debug for GnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GnnModel({:?}, dims={:?}, params={})",
            self.kind,
            self.dims,
            self.param_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::generators;
    use hongtu_tensor::Adam;

    /// Planted-partition dataset small enough for fast epochs.
    fn dataset() -> (Graph, Matrix, Vec<u32>, Vec<bool>) {
        let mut rng = SeededRng::new(7);
        let (mut g, labels) = generators::planted_partition(120, 3, 6.0, 0.9, &mut rng);
        // add self-loops (required by SAGE/GIN/GAT)
        let mut b = hongtu_graph::GraphBuilder::new(g.num_vertices()).keep_self_loops();
        for (s, t) in g.csr.edges() {
            b.add_edge(s, t);
        }
        for v in 0..g.num_vertices() as u32 {
            b.add_edge(v, v);
        }
        g = b.build();
        // features: noisy one-hot of the label
        let mut frng = SeededRng::new(8);
        let feats = Matrix::from_fn(120, 6, |v, c| {
            let base = if labels[v] as usize == c % 3 {
                1.0
            } else {
                0.0
            };
            base + 0.3 * frng.normal()
        });
        let mask: Vec<bool> = (0..120).map(|v| v % 2 == 0).collect();
        (g, feats, labels, mask)
    }

    #[test]
    fn model_construction_and_shapes() {
        let mut rng = SeededRng::new(1);
        let m = GnnModel::new(ModelKind::Gcn, &[6, 8, 3], &mut rng);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.layer(0).in_dim(), 6);
        assert_eq!(m.layer(0).out_dim(), 8);
        assert_eq!(m.layer(1).out_dim(), 3);
        assert_eq!(m.param_count(), 6 * 8 + 8 * 3);
        assert_eq!(m.param_bytes(), m.param_count() * 4);
    }

    #[test]
    fn forward_reference_shapes() {
        let (g, feats, _, _) = dataset();
        let chunk = whole_graph_chunk(&g);
        let mut rng = SeededRng::new(2);
        let m = GnnModel::new(ModelKind::Gcn, &[6, 4, 3], &mut rng);
        let outs = m.forward_reference(&chunk, &feats);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].shape(), (120, 4));
        assert_eq!(outs[1].shape(), (120, 3));
    }

    #[test]
    fn gcn_learns_planted_partition() {
        let (g, feats, labels, mask) = dataset();
        let chunk = whole_graph_chunk(&g);
        let mut rng = SeededRng::new(3);
        let mut m = GnnModel::new(ModelKind::Gcn, &[6, 16, 3], &mut rng);
        let mut opt = Adam::new(0.02);
        let first = m.train_epoch_reference(&chunk, &feats, &labels, &mask, &mut opt);
        let mut last = first.clone();
        for _ in 0..60 {
            last = m.train_epoch_reference(&chunk, &feats, &labels, &mask, &mut opt);
        }
        assert!(
            last.loss < first.loss * 0.5,
            "loss {} -> {}",
            first.loss,
            last.loss
        );
        assert!(last.accuracy > 0.8, "train accuracy {}", last.accuracy);
    }

    #[test]
    fn all_kinds_train_without_panicking_and_reduce_loss() {
        let (g, feats, labels, mask) = dataset();
        let chunk = whole_graph_chunk(&g);
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gat,
            ModelKind::Sage,
            ModelKind::Gin,
            ModelKind::CommNet,
            ModelKind::Ggnn,
        ] {
            let mut rng = SeededRng::new(4);
            let mut m = GnnModel::new(kind, &[6, 8, 3], &mut rng);
            let mut opt = Adam::new(0.01);
            let first = m.train_epoch_reference(&chunk, &feats, &labels, &mask, &mut opt);
            let mut last = first.clone();
            for _ in 0..25 {
                last = m.train_epoch_reference(&chunk, &feats, &labels, &mask, &mut opt);
            }
            assert!(
                last.loss < first.loss,
                "{}: loss did not decrease ({} -> {})",
                kind.name(),
                first.loss,
                last.loss
            );
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (g, feats, labels, mask) = dataset();
        let chunk = whole_graph_chunk(&g);
        let run = || {
            let mut rng = SeededRng::new(5);
            let mut m = GnnModel::new(ModelKind::Gcn, &[6, 8, 3], &mut rng);
            let mut opt = Adam::new(0.01);
            let mut losses = Vec::new();
            for _ in 0..5 {
                losses.push(
                    m.train_epoch_reference(&chunk, &feats, &labels, &mask, &mut opt)
                        .loss,
                );
            }
            losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn custom_model_with_multihead_gat_trains() {
        let (g, feats, labels, mask) = dataset();
        let chunk = whole_graph_chunk(&g);
        let mut rng = SeededRng::new(21);
        let mut l1 = crate::MultiHeadGatLayer::new(6, 8, 2, &mut rng);
        l1.set_activation(crate::layer::Activation::Relu);
        let mut l2 = crate::MultiHeadGatLayer::new(8, 3, 1, &mut rng);
        l2.set_activation(crate::layer::Activation::Identity);
        let mut m = GnnModel::custom(ModelKind::Gat, vec![Box::new(l1), Box::new(l2)]);
        assert_eq!(m.dims, vec![6, 8, 3]);
        let mut opt = Adam::new(0.01);
        let first = m.train_epoch_reference(&chunk, &feats, &labels, &mask, &mut opt);
        let mut last = first.clone();
        for _ in 0..20 {
            last = m.train_epoch_reference(&chunk, &feats, &labels, &mask, &mut opt);
        }
        assert!(
            last.loss < first.loss,
            "loss {} -> {}",
            first.loss,
            last.loss
        );
    }

    #[test]
    #[should_panic(expected = "do not chain")]
    fn custom_model_rejects_dimension_break() {
        let mut rng = SeededRng::new(22);
        let l1 = crate::GcnLayer::new(4, 8, &mut rng);
        let l2 = crate::GcnLayer::new(6, 2, &mut rng);
        let _ = GnnModel::custom(ModelKind::Gcn, vec![Box::new(l1), Box::new(l2)]);
    }

    #[test]
    fn kind_metadata() {
        assert!(ModelKind::Gcn.supports_agg_cache());
        assert!(ModelKind::Sage.supports_agg_cache());
        assert!(ModelKind::Gin.supports_agg_cache());
        assert!(ModelKind::CommNet.supports_agg_cache());
        assert!(ModelKind::Ggnn.supports_agg_cache());
        assert!(!ModelKind::Gat.supports_agg_cache());
        assert_eq!(ModelKind::Gat.name(), "GAT");
    }
}
