//! Masked softmax cross-entropy — the downstream task of Algorithm 1
//! (lines 10–11): loss over the training vertices, gradient `∇h^L` back to
//! the final layer.

use hongtu_tensor::{log_softmax_rows, softmax_rows, Matrix};

/// Result of a loss evaluation.
#[derive(Debug, Clone)]
pub struct MaskedLoss {
    /// Mean negative log-likelihood over masked vertices.
    pub loss: f32,
    /// `∇h^L`: gradient of the loss w.r.t. the logits, zero outside the
    /// mask, already scaled by `1/|mask|`.
    pub grad: Matrix,
    /// Fraction of masked vertices whose argmax matches the label.
    pub accuracy: f32,
}

/// Computes masked softmax cross-entropy.
///
/// `logits` is `|V| × C`, `labels[v] ∈ 0..C`, and `mask[v]` selects the
/// vertices contributing to the loss (the training set during training; the
/// validation/test sets for accuracy reporting).
///
/// # Panics
/// Panics on shape mismatches or an empty mask.
pub fn masked_cross_entropy(logits: &Matrix, labels: &[u32], mask: &[bool]) -> MaskedLoss {
    assert_eq!(logits.rows(), labels.len(), "logits/labels length mismatch");
    assert_eq!(logits.rows(), mask.len(), "logits/mask length mismatch");
    let count = mask.iter().filter(|&&m| m).count();
    assert!(count > 0, "masked_cross_entropy: empty mask");
    let c = logits.cols();
    let lp = log_softmax_rows(logits);
    let p = softmax_rows(logits);
    let inv = 1.0 / count as f32;
    let mut loss = 0.0f32;
    let mut correct = 0usize;
    let mut grad = Matrix::zeros(logits.rows(), c);
    for v in 0..logits.rows() {
        if !mask[v] {
            continue;
        }
        let y = labels[v] as usize;
        assert!(y < c, "label {y} out of range for {c} classes (vertex {v})");
        loss -= lp.get(v, y);
        let row = p.row(v);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        if argmax == y {
            correct += 1;
        }
        let g = grad.row_mut(v);
        for (j, (gj, &pj)) in g.iter_mut().zip(row).enumerate() {
            *gj = inv * (pj - if j == y { 1.0 } else { 0.0 });
        }
    }
    MaskedLoss {
        loss: loss * inv,
        grad,
        accuracy: correct as f32 / count as f32,
    }
}

/// Accuracy of `logits` against `labels` over `mask`, without gradients.
pub fn masked_accuracy(logits: &Matrix, labels: &[u32], mask: &[bool]) -> f32 {
    masked_cross_entropy(logits, labels, mask).accuracy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_logits_give_low_loss_high_accuracy() {
        let mut logits = Matrix::zeros(3, 2);
        logits.set(0, 0, 10.0);
        logits.set(1, 1, 10.0);
        logits.set(2, 0, 10.0);
        let labels = [0, 1, 0];
        let mask = [true, true, true];
        let r = masked_cross_entropy(&logits, &labels, &mask);
        assert!(r.loss < 1e-3, "loss {}", r.loss);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let logits = Matrix::zeros(4, 8);
        let labels = [0, 1, 2, 3];
        let mask = [true; 4];
        let r = masked_cross_entropy(&logits, &labels, &mask);
        assert!((r.loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn mask_excludes_vertices() {
        let mut logits = Matrix::zeros(2, 2);
        logits.set(0, 0, 5.0);
        logits.set(1, 0, 5.0); // wrong for label 1, but masked out
        let r = masked_cross_entropy(&logits, &[0, 1], &[true, false]);
        assert_eq!(r.accuracy, 1.0);
        assert!(r.grad.row(1).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.37).sin());
        let labels = [1u32, 3, 0];
        let mask = [true, false, true];
        let r = masked_cross_entropy(&logits, &labels, &mask);
        let eps = 1e-2;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let num = (masked_cross_entropy(&lp, &labels, &mask).loss
                - masked_cross_entropy(&lm, &labels, &mask).loss)
                / (2.0 * eps);
            let ana = r.grad.as_slice()[i];
            assert!((num - ana).abs() < 2e-3, "coord {i}: {num} vs {ana}");
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // Softmax CE gradient per masked row sums to zero.
        let logits = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.5);
        let r = masked_cross_entropy(&logits, &[2, 1], &[true, true]);
        for v in 0..2 {
            let s: f32 = r.grad.row(v).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "empty mask")]
    fn empty_mask_rejected() {
        let logits = Matrix::zeros(1, 2);
        let _ = masked_cross_entropy(&logits, &[0], &[false]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_rejected() {
        let logits = Matrix::zeros(1, 2);
        let _ = masked_cross_entropy(&logits, &[5], &[true]);
    }
}
