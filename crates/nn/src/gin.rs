//! Graph isomorphism network layer (GIN-ε):
//! `h_v = ReLU(W · ((1+ε) · h_v + Σ_{u∈N(v)} h_u))`.
//!
//! Sum aggregation has no edge intermediates, so GIN supports hybrid
//! caching with a `|V_ij| × in_dim` checkpoint (the combined sum).

use crate::layer::{self, Activation, GnnLayer, LayerFlops, LayerForward, LayerGrads};
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::{Matrix, SeededRng};

/// One GIN layer with fixed ε.
#[derive(Debug, Clone)]
pub struct GinLayer {
    w: Matrix,
    /// The ε of `(1+ε)·h_v`; fixed (GIN-0 uses 0).
    pub epsilon: f32,
    /// UPDATE nonlinearity (ReLU for hidden layers, Identity for output).
    pub act: Activation,
}

impl GinLayer {
    /// A GIN-0 layer (`ε = 0`) with Xavier-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        GinLayer {
            w: hongtu_tensor::xavier_uniform(in_dim, out_dim, rng),
            epsilon: 0.0,
            act: Activation::Relu,
        }
    }

    /// Combined sum `a_k = (1+ε)·h_dest[k] + Σ_e h_nbr[src(e)]`.
    ///
    /// Self-loops contribute to the plain sum, so with `ε = 0` the self term
    /// appears exactly once more than a loop-free GIN would give — the same
    /// convention the self-loop-augmented GCN uses.
    fn aggregate(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> Matrix {
        let dim = h_nbr.cols();
        let self_pos = layer::self_positions(chunk);
        let mut a = Matrix::zeros(chunk.num_dests(), dim);
        for k in 0..chunk.num_dests() {
            let out = a.row_mut(k);
            for e in chunk.in_edges_of(k) {
                let src = chunk.nbr_index[e] as usize;
                for (o, &x) in out.iter_mut().zip(h_nbr.row(src)) {
                    *o += x;
                }
            }
            let sp = self_pos[k];
            for (o, &x) in a.row_mut(k).iter_mut().zip(h_nbr.row(sp)) {
                *o += self.epsilon * x;
            }
        }
        a
    }

    fn update_backward(&self, a: &Matrix, grad_out: &Matrix, grads: &mut LayerGrads) -> Matrix {
        let z = a.matmul(&self.w);
        let dz = self.act.backward(&z, grad_out);
        grads.grads[0].add_assign(&a.transpose_matmul(&dz));
        dz.matmul_transpose(&self.w)
    }

    fn aggregate_backward(&self, chunk: &ChunkSubgraph, grad_a: &Matrix) -> Matrix {
        let dim = grad_a.cols();
        let self_pos = layer::self_positions(chunk);
        let mut grad_nbr = Matrix::zeros(chunk.num_neighbors(), dim);
        for k in 0..chunk.num_dests() {
            let ga = grad_a.row(k);
            for e in chunk.in_edges_of(k) {
                let src = chunk.nbr_index[e] as usize;
                let out = grad_nbr.row_mut(src);
                for (o, &gv) in out.iter_mut().zip(ga) {
                    *o += gv;
                }
            }
            let sp = self_pos[k];
            let out = grad_nbr.row_mut(sp);
            for (o, &gv) in out.iter_mut().zip(ga) {
                *o += self.epsilon * gv;
            }
        }
        grad_nbr
    }
}

impl GnnLayer for GinLayer {
    fn in_dim(&self) -> usize {
        self.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.w.cols()
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.w]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w]
    }

    fn supports_agg_cache(&self) -> bool {
        true
    }

    fn forward(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> LayerForward {
        assert_eq!(
            h_nbr.cols(),
            self.in_dim(),
            "GinLayer::forward: input dim mismatch"
        );
        let a = self.aggregate(chunk, h_nbr);
        let z = a.matmul(&self.w);
        LayerForward {
            out: self.act.apply(&z),
            agg: Some(a),
        }
    }

    fn backward_from_input(
        &self,
        chunk: &ChunkSubgraph,
        h_nbr: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let a = self.aggregate(chunk, h_nbr);
        let grad_a = self.update_backward(&a, grad_out, grads);
        self.aggregate_backward(chunk, &grad_a)
    }

    fn backward_from_agg(
        &self,
        chunk: &ChunkSubgraph,
        agg: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let grad_a = self.update_backward(agg, grad_out, grads);
        self.aggregate_backward(chunk, &grad_a)
    }

    fn forward_flops(&self, chunk: &ChunkSubgraph) -> LayerFlops {
        let d_in = self.in_dim() as f64;
        let d_out = self.out_dim() as f64;
        let v = chunk.num_dests() as f64;
        let e = chunk.num_edges() as f64;
        LayerFlops {
            dense: 2.0 * v * d_in * d_out,
            edge: e * d_in,
        }
    }

    fn intermediate_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        chunk.num_dests() * (self.in_dim() + self.out_dim()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::{Graph, GraphBuilder};

    fn toy() -> (Graph, ChunkSubgraph) {
        let mut b = GraphBuilder::new(4).keep_self_loops();
        for v in 0..4 {
            b.add_edge(v, v);
        }
        for (s, t) in [(0, 1), (0, 2), (1, 2), (3, 2)] {
            b.add_edge(s, t);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![0, 1, 2, 3]);
        (g, chunk)
    }

    fn inputs(chunk: &ChunkSubgraph, dim: usize) -> Matrix {
        Matrix::from_fn(chunk.num_neighbors(), dim, |r, c| {
            ((r + c * 5) as f32 * 0.27).sin()
        })
    }

    #[test]
    fn sum_aggregation_counts_every_edge() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(1);
        let layer = GinLayer::new(2, 2, &mut rng);
        let h = Matrix::full(chunk.num_neighbors(), 2, 1.0);
        let a = layer.aggregate(&chunk, &h);
        // With ε=0 the aggregate of all-ones input equals the in-degree.
        for (k, &d) in chunk.dests.iter().enumerate() {
            let deg = chunk.in_edges_of(k).len() as f32;
            assert!((a.get(k, 0) - deg).abs() < 1e-6, "dest {d}");
        }
    }

    #[test]
    fn epsilon_scales_self_contribution() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(2);
        let mut layer = GinLayer::new(2, 2, &mut rng);
        let h = inputs(&chunk, 2);
        let a0 = layer.aggregate(&chunk, &h);
        layer.epsilon = 1.0;
        let a1 = layer.aggregate(&chunk, &h);
        let self_pos = crate::layer::self_positions(&chunk);
        for k in 0..chunk.num_dests() {
            let expect = a0.get(k, 0) + h.get(self_pos[k], 0);
            assert!((a1.get(k, 0) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn hybrid_and_recompute_paths_agree_exactly() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(3);
        let layer = GinLayer::new(3, 4, &mut rng);
        let h = inputs(&chunk, 3);
        let f = layer.forward(&chunk, &h);
        let grad_out = Matrix::from_fn(4, 4, |r, c| ((r + c) as f32 * 0.4).cos());
        let mut g1 = LayerGrads::zeros_for(&layer);
        let n1 = layer.backward_from_input(&chunk, &h, &grad_out, &mut g1);
        let mut g2 = LayerGrads::zeros_for(&layer);
        let n2 = layer.backward_from_agg(&chunk, f.agg.as_ref().unwrap(), &grad_out, &mut g2);
        assert_eq!(n1, n2);
        assert_eq!(g1.grads[0], g2.grads[0]);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(4);
        let mut layer = GinLayer::new(3, 2, &mut rng);
        let h = inputs(&chunk, 3);
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 2e-2);
    }

    #[test]
    fn gradient_check_on_random_graph() {
        let mut rng = SeededRng::new(8);
        let mut b = GraphBuilder::new(15).keep_self_loops();
        for v in 0..15u32 {
            b.add_edge(v, v);
        }
        for _ in 0..45 {
            b.add_edge(rng.index(15) as u32, rng.index(15) as u32);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, (0..15).collect());
        let mut layer = GinLayer::new(4, 3, &mut rng);
        let h = Matrix::from_fn(chunk.num_neighbors(), 4, |r, c| {
            ((r * 3 + c * 7) as f32 * 0.19).sin() * 0.7
        });
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 2e-2);
    }

    #[test]
    fn gradient_check_with_nonzero_epsilon() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(5);
        let mut layer = GinLayer::new(2, 3, &mut rng);
        layer.epsilon = 0.5;
        let h = inputs(&chunk, 2);
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 2e-2);
    }
}
