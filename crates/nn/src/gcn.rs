//! Graph convolutional network layer (paper Eq. 2):
//! `h_v = ReLU(W ⊗ Σ_{u∈N(v)} d_uv · h_u)`.
//!
//! AGGREGATE is a weighted neighbor sum with the precomputed symmetric
//! normalization `d_uv`; it produces no intermediates of its own, so this
//! layer supports the hybrid caching strategy: cache `a = Σ d_uv h_u` in
//! CPU memory during the forward pass and skip aggregate recomputation in
//! the backward pass (§4.2).

use crate::layer::{Activation, GnnLayer, LayerFlops, LayerForward, LayerGrads};
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::{Matrix, SeededRng};

/// One GCN layer.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    w: Matrix,
    /// UPDATE nonlinearity (ReLU for hidden layers, Identity for output).
    pub act: Activation,
}

impl GcnLayer {
    /// A layer with Xavier-initialized `in_dim × out_dim` weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        GcnLayer {
            w: hongtu_tensor::xavier_uniform(in_dim, out_dim, rng),
            act: Activation::Relu,
        }
    }

    /// Weighted neighbor aggregation: `a[k] = Σ_e d_uv · h_nbr[src(e)]` for
    /// every destination `k` of the chunk.
    fn aggregate(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> Matrix {
        let dim = h_nbr.cols();
        let mut a = Matrix::zeros(chunk.num_dests(), dim);
        for k in 0..chunk.num_dests() {
            let out = a.row_mut(k);
            for e in chunk.in_edges_of(k) {
                let src = chunk.nbr_index[e] as usize;
                let w = chunk.gcn_weights[e];
                for (o, &x) in out.iter_mut().zip(h_nbr.row(src)) {
                    *o += w * x;
                }
            }
        }
        a
    }

    /// Backward of the aggregation: scatters `grad_a` back onto neighbor
    /// rows through the (linear) edge weights.
    fn aggregate_backward(&self, chunk: &ChunkSubgraph, grad_a: &Matrix) -> Matrix {
        let dim = grad_a.cols();
        let mut grad_nbr = Matrix::zeros(chunk.num_neighbors(), dim);
        for k in 0..chunk.num_dests() {
            let ga = grad_a.row(k);
            for e in chunk.in_edges_of(k) {
                let src = chunk.nbr_index[e] as usize;
                let w = chunk.gcn_weights[e];
                let out = grad_nbr.row_mut(src);
                for (o, &gv) in out.iter_mut().zip(ga) {
                    *o += w * gv;
                }
            }
        }
        grad_nbr
    }

    /// Shared UPDATE backward: from the aggregate `a` and upstream
    /// `grad_out`, accumulate `∇W` and return `grad_a`.
    fn update_backward(&self, a: &Matrix, grad_out: &Matrix, grads: &mut LayerGrads) -> Matrix {
        let z = a.matmul(&self.w); // recompute pre-activation (cheap dense op)
        let dz = self.act.backward(&z, grad_out);
        grads.grads[0].add_assign(&a.transpose_matmul(&dz));
        dz.matmul_transpose(&self.w)
    }
}

impl GnnLayer for GcnLayer {
    fn in_dim(&self) -> usize {
        self.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.w.cols()
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.w]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w]
    }

    fn supports_agg_cache(&self) -> bool {
        true
    }

    fn forward(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> LayerForward {
        assert_eq!(
            h_nbr.cols(),
            self.in_dim(),
            "GcnLayer::forward: input dim mismatch"
        );
        assert_eq!(
            h_nbr.rows(),
            chunk.num_neighbors(),
            "GcnLayer::forward: neighbor count"
        );
        let a = self.aggregate(chunk, h_nbr);
        let z = a.matmul(&self.w);
        LayerForward {
            out: self.act.apply(&z),
            agg: Some(a),
        }
    }

    fn backward_from_input(
        &self,
        chunk: &ChunkSubgraph,
        h_nbr: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let a = self.aggregate(chunk, h_nbr); // recomputation path
        let grad_a = self.update_backward(&a, grad_out, grads);
        self.aggregate_backward(chunk, &grad_a)
    }

    fn backward_from_agg(
        &self,
        chunk: &ChunkSubgraph,
        agg: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let grad_a = self.update_backward(agg, grad_out, grads);
        self.aggregate_backward(chunk, &grad_a)
    }

    fn forward_flops(&self, chunk: &ChunkSubgraph) -> LayerFlops {
        let d_in = self.in_dim() as f64;
        let d_out = self.out_dim() as f64;
        let v = chunk.num_dests() as f64;
        let e = chunk.num_edges() as f64;
        LayerFlops {
            dense: 2.0 * v * d_in * d_out, // a × W
            edge: 2.0 * e * d_in,          // weighted gather-sum
        }
    }

    fn intermediate_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        // a (D × in) and z (D × out) are live between forward and backward.
        chunk.num_dests() * (self.in_dim() + self.out_dim()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::{Graph, GraphBuilder};

    fn toy() -> (Graph, ChunkSubgraph) {
        let mut b = GraphBuilder::new(4);
        for (s, t) in [(0, 1), (0, 2), (1, 2), (3, 2), (2, 0)] {
            b.add_edge(s, t);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![0, 1, 2, 3]);
        (g, chunk)
    }

    fn inputs(chunk: &ChunkSubgraph, dim: usize) -> Matrix {
        Matrix::from_fn(chunk.num_neighbors(), dim, |r, c| {
            ((r * 3 + c) as f32 * 0.17).sin()
        })
    }

    #[test]
    fn forward_shapes_and_agg_present() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(1);
        let layer = GcnLayer::new(3, 5, &mut rng);
        let h = inputs(&chunk, 3);
        let f = layer.forward(&chunk, &h);
        assert_eq!(f.out.shape(), (4, 5));
        let agg = f.agg.expect("GCN supports agg caching");
        assert_eq!(agg.shape(), (4, 3));
    }

    #[test]
    fn aggregate_matches_manual_sum() {
        let (g, chunk) = toy();
        let mut rng = SeededRng::new(2);
        let layer = GcnLayer::new(2, 2, &mut rng);
        let h = inputs(&chunk, 2);
        let f = layer.forward(&chunk, &h);
        let agg = f.agg.unwrap();
        // Destination vertex 2 (local index 2) has in-neighbors {0,1,3}.
        let k = chunk.dests.iter().position(|&d| d == 2).unwrap();
        let mut expect = vec![0.0f32; 2];
        for e in chunk.in_edges_of(k) {
            let src = chunk.nbr_index[e] as usize;
            for (o, &x) in expect.iter_mut().zip(h.row(src)) {
                *o += chunk.gcn_weights[e] * x;
            }
        }
        assert!(agg
            .row(k)
            .iter()
            .zip(&expect)
            .all(|(a, b)| (a - b).abs() < 1e-6));
        drop(g);
    }

    #[test]
    fn recompute_and_hybrid_paths_agree_exactly() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(3);
        let layer = GcnLayer::new(3, 4, &mut rng);
        let h = inputs(&chunk, 3);
        let f = layer.forward(&chunk, &h);
        let grad_out = Matrix::from_fn(4, 4, |r, c| ((r + c) as f32 * 0.3).cos());

        let mut g1 = LayerGrads::zeros_for(&layer);
        let grad_nbr1 = layer.backward_from_input(&chunk, &h, &grad_out, &mut g1);
        let mut g2 = LayerGrads::zeros_for(&layer);
        let grad_nbr2 =
            layer.backward_from_agg(&chunk, f.agg.as_ref().unwrap(), &grad_out, &mut g2);

        // Identical op order → bit-identical results.
        assert_eq!(grad_nbr1, grad_nbr2);
        assert_eq!(g1.grads[0], g2.grads[0]);
    }

    #[test]
    fn zero_upstream_gives_zero_grads() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(4);
        let layer = GcnLayer::new(2, 2, &mut rng);
        let h = inputs(&chunk, 2);
        let mut grads = LayerGrads::zeros_for(&layer);
        let gn = layer.backward_from_input(&chunk, &h, &Matrix::zeros(4, 2), &mut grads);
        assert_eq!(gn.sum(), 0.0);
        assert_eq!(grads.grads[0].sum(), 0.0);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(5);
        let mut layer = GcnLayer::new(3, 2, &mut rng);
        let h = inputs(&chunk, 3);
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 2e-2);
    }

    #[test]
    fn aggregate_equals_spmm() {
        // The hand-rolled aggregation loop is exactly the sparse × dense
        // product the paper's cuSparse engine computes.
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(9);
        let layer = GcnLayer::new(3, 3, &mut rng);
        let h = inputs(&chunk, 3);
        let loop_agg = layer.aggregate(&chunk, &h);
        let spmm_agg = chunk.to_csr_matrix().spmm(&h);
        assert!(loop_agg.approx_eq(&spmm_agg, 1e-6));
        // And the backward scatter is the transpose product.
        let grad_a = Matrix::from_fn(chunk.num_dests(), 3, |r, c| ((r + c) as f32 * 0.3).sin());
        let loop_bwd = layer.aggregate_backward(&chunk, &grad_a);
        let spmm_bwd = chunk.to_csr_matrix().transpose_spmm(&grad_a);
        assert!(loop_bwd.approx_eq(&spmm_bwd, 1e-6));
    }

    #[test]
    fn flops_scale_with_dims() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(6);
        let small = GcnLayer::new(4, 4, &mut rng);
        let big = GcnLayer::new(8, 8, &mut rng);
        assert!(big.forward_flops(&chunk).dense > small.forward_flops(&chunk).dense);
        assert!(big.intermediate_bytes(&chunk) > small.intermediate_bytes(&chunk));
        assert_eq!(big.agg_cache_bytes(&chunk), chunk.num_dests() * 8 * 4);
    }
}
