//! Model checkpointing: save/load trained parameters in a small
//! self-describing binary format.
//!
//! Layout (all integers little-endian):
//! `magic "HTGM" | version u32 | kind u8 | dim_count u32 | dims u64×n |
//!  param_count u32 | { rows u64, cols u64, data f32×(rows·cols) }×p`

use crate::model::{GnnModel, ModelKind};
use hongtu_tensor::{Matrix, SeededRng};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HTGM";
const VERSION: u32 = 1;

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid or incompatible file.
    Format(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model I/O error: {e}"),
            ModelIoError::Format(m) => write!(f, "model format error: {m}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

fn kind_tag(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::Gcn => 0,
        ModelKind::Gat => 1,
        ModelKind::Sage => 2,
        ModelKind::Gin => 3,
        ModelKind::CommNet => 4,
        ModelKind::Ggnn => 5,
    }
}

fn kind_from_tag(tag: u8) -> Result<ModelKind, ModelIoError> {
    Ok(match tag {
        0 => ModelKind::Gcn,
        1 => ModelKind::Gat,
        2 => ModelKind::Sage,
        3 => ModelKind::Gin,
        4 => ModelKind::CommNet,
        5 => ModelKind::Ggnn,
        other => {
            return Err(ModelIoError::Format(format!(
                "unknown model kind tag {other}"
            )))
        }
    })
}

/// Serializes a model's architecture and parameters.
pub fn save_model(model: &GnnModel, mut w: impl Write) -> Result<(), ModelIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[kind_tag(model.kind)])?;
    w.write_all(&(model.dims.len() as u32).to_le_bytes())?;
    for &d in &model.dims {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    let params: Vec<&Matrix> = model.layers().iter().flat_map(|l| l.params()).collect();
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        w.write_all(&(p.rows() as u64).to_le_bytes())?;
        w.write_all(&(p.cols() as u64).to_le_bytes())?;
        for &v in p.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Saves to a file path.
pub fn save_model_file(model: &GnnModel, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    let f = std::fs::File::create(path)?;
    save_model(model, io::BufWriter::new(f))
}

/// Deserializes a model saved by [`save_model`].
pub fn load_model(mut r: impl Read) -> Result<GnnModel, ModelIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ModelIoError::Format(
            "bad magic (not a HongTu model file)".into(),
        ));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(ModelIoError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let kind = kind_from_tag(tag[0])?;
    let dim_count = read_u32(&mut r)? as usize;
    if !(2..=64).contains(&dim_count) {
        return Err(ModelIoError::Format(format!(
            "implausible dim count {dim_count}"
        )));
    }
    let mut dims = Vec::with_capacity(dim_count);
    for _ in 0..dim_count {
        dims.push(read_u64(&mut r)? as usize);
    }
    // Rebuild the architecture, then overwrite the parameters.
    let mut model = GnnModel::new(kind, &dims, &mut SeededRng::new(0));
    let param_count = read_u32(&mut r)? as usize;
    let expected: usize = model.layers().iter().map(|l| l.params().len()).sum();
    if param_count != expected {
        return Err(ModelIoError::Format(format!(
            "parameter count {param_count} does not match architecture ({expected})"
        )));
    }
    let mut loaded: Vec<Matrix> = Vec::with_capacity(param_count);
    for _ in 0..param_count {
        let rows = read_u64(&mut r)? as usize;
        let cols = read_u64(&mut r)? as usize;
        if rows.saturating_mul(cols) > (1 << 28) {
            return Err(ModelIoError::Format(format!(
                "implausible tensor {rows}x{cols}"
            )));
        }
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        loaded.push(Matrix::from_vec(rows, cols, data));
    }
    let mut it = loaded.into_iter();
    for layer in model.layers_mut() {
        for param in layer.params_mut() {
            let value = it.next().expect("counted above");
            if value.shape() != param.shape() {
                return Err(ModelIoError::Format(format!(
                    "tensor shape {:?} does not match architecture {:?}",
                    value.shape(),
                    param.shape()
                )));
            }
            *param = value;
        }
    }
    Ok(model)
}

/// Loads from a file path.
pub fn load_model_file(path: impl AsRef<Path>) -> Result<GnnModel, ModelIoError> {
    let f = std::fs::File::open(path)?;
    load_model(io::BufReader::new(f))
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(kind: ModelKind) -> GnnModel {
        GnnModel::new(kind, &[6, 8, 3], &mut SeededRng::new(42))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gat,
            ModelKind::Sage,
            ModelKind::Gin,
            ModelKind::CommNet,
            ModelKind::Ggnn,
        ] {
            let m = model(kind);
            let mut buf = Vec::new();
            save_model(&m, &mut buf).unwrap();
            let m2 = load_model(buf.as_slice()).unwrap();
            assert_eq!(m2.kind, kind);
            assert_eq!(m2.dims, m.dims);
            let p1: Vec<&Matrix> = m.layers().iter().flat_map(|l| l.params()).collect();
            let p2: Vec<&Matrix> = m2.layers().iter().flat_map(|l| l.params()).collect();
            assert_eq!(p1.len(), p2.len());
            for (a, b) in p1.iter().zip(&p2) {
                assert_eq!(a, b, "{}", kind.name());
            }
        }
    }

    #[test]
    fn loaded_model_computes_identically() {
        let mut rng = SeededRng::new(7);
        let mut b = hongtu_graph::GraphBuilder::new(60).keep_self_loops();
        for v in 0..60u32 {
            b.add_edge(v, v);
        }
        for _ in 0..240 {
            b.add_edge(rng.index(60) as u32, rng.index(60) as u32);
        }
        let g = b.build();
        let chunk = crate::model::whole_graph_chunk(&g);
        let feats = Matrix::from_fn(60, 6, |r, c| ((r + c) as f32 * 0.1).sin());
        let m = model(ModelKind::Sage);
        let mut buf = Vec::new();
        save_model(&m, &mut buf).unwrap();
        let m2 = load_model(buf.as_slice()).unwrap();
        let out1 = m.forward_reference(&chunk, &feats).pop().unwrap();
        let out2 = m2.forward_reference(&chunk, &feats).pop().unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load_model(&b"NOPE"[..]),
            Err(ModelIoError::Format(_))
        ));
        assert!(load_model(&b"HT"[..]).is_err()); // truncated
        let mut buf = Vec::new();
        save_model(&model(ModelKind::Gcn), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load_model(buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hongtu_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.htgm");
        let m = model(ModelKind::Gin);
        save_model_file(&m, &path).unwrap();
        let m2 = load_model_file(&path).unwrap();
        assert_eq!(m2.kind, ModelKind::Gin);
        std::fs::remove_file(&path).ok();
    }
}
