//! Gated graph network layer (the paper's "GGCN" [25]) with a GRU-style
//! UPDATE:
//!
//! ```text
//! m_v = Σ_{u∈N(v)} h_u                       (sum aggregate)
//! a   = m_v · W_m          s = h_v · W_s     (projections)
//! z   = σ(a·W_z + s·U_z)   r = σ(a·W_r + s·U_r)
//! h̃   = tanh(a·W_h + (r ⊙ s)·U_h)
//! h'  = (1 − z) ⊙ s + z ⊙ h̃
//! ```
//!
//! The AGGREGATE is a plain (unweighted) sum, so hybrid caching applies
//! with checkpoint `[m_v | h_v]` — but the UPDATE is now a full gated
//! recurrent cell, making GGNN the showcase for §4.2's "recompute only
//! the UPDATE stage": the backward pass reloads an `O(|V|)` checkpoint
//! and re-runs a dense-but-heavy UPDATE instead of touching the edges.

use crate::layer::{self, Activation, GnnLayer, LayerFlops, LayerForward, LayerGrads};
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::ops::{sigmoid, sigmoid_backward_from_output, tanh, tanh_backward_from_output};
use hongtu_tensor::{Matrix, SeededRng};

/// One gated graph layer.
#[derive(Debug, Clone)]
pub struct GgnnLayer {
    w_m: Matrix,
    w_s: Matrix,
    w_z: Matrix,
    u_z: Matrix,
    w_r: Matrix,
    u_r: Matrix,
    w_h: Matrix,
    u_h: Matrix,
    /// Applied on top of the gated output (Identity recommended — the GRU
    /// cell is already nonlinear — but kept for interface uniformity).
    pub act: Activation,
}

/// Forward internals reused by the backward pass.
struct GruForward {
    a: Matrix,
    s: Matrix,
    z: Matrix,
    r: Matrix,
    h_tilde: Matrix,
    h_prime: Matrix,
}

impl GgnnLayer {
    /// A layer with Xavier-initialized projections and gates.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        let mk = |stream: u64, r: usize, c: usize| {
            hongtu_tensor::xavier_uniform(r, c, &mut rng.fork(stream))
        };
        GgnnLayer {
            w_m: mk(1, in_dim, out_dim),
            w_s: mk(2, in_dim, out_dim),
            w_z: mk(3, out_dim, out_dim),
            u_z: mk(4, out_dim, out_dim),
            w_r: mk(5, out_dim, out_dim),
            u_r: mk(6, out_dim, out_dim),
            w_h: mk(7, out_dim, out_dim),
            u_h: mk(8, out_dim, out_dim),
            act: Activation::Identity,
        }
    }

    /// Plain neighbor sum and gathered destination rows: `(m, h_dest)`.
    fn aggregate(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> (Matrix, Matrix) {
        let dim = h_nbr.cols();
        let self_pos = layer::self_positions(chunk);
        let mut m = Matrix::zeros(chunk.num_dests(), dim);
        for k in 0..chunk.num_dests() {
            let out = m.row_mut(k);
            for e in chunk.in_edges_of(k) {
                let src = chunk.nbr_index[e] as usize;
                for (o, &x) in out.iter_mut().zip(h_nbr.row(src)) {
                    *o += x;
                }
            }
        }
        (m, h_nbr.gather_rows(&self_pos))
    }

    /// The GRU-style UPDATE from the checkpointed `(m, h_dest)`.
    fn gru_forward(&self, m: &Matrix, h_dest: &Matrix) -> GruForward {
        let a = m.matmul(&self.w_m);
        let s = h_dest.matmul(&self.w_s);
        let z = sigmoid(&a.matmul(&self.w_z).add(&s.matmul(&self.u_z)));
        let r = sigmoid(&a.matmul(&self.w_r).add(&s.matmul(&self.u_r)));
        let rs = r.hadamard(&s);
        let h_tilde = tanh(&a.matmul(&self.w_h).add(&rs.matmul(&self.u_h)));
        // h' = (1 − z)⊙s + z⊙h̃
        let mut h_prime = s.clone();
        for i in 0..h_prime.len() {
            let zi = z.as_slice()[i];
            h_prime.as_mut_slice()[i] = (1.0 - zi) * s.as_slice()[i] + zi * h_tilde.as_slice()[i];
        }
        GruForward {
            a,
            s,
            z,
            r,
            h_tilde,
            h_prime,
        }
    }

    /// Backward through the GRU given upstream `g = ∂L/∂h'` (pre-act
    /// gradient). Accumulates all eight parameter gradients and returns
    /// `(∂L/∂m, ∂L/∂h_dest)`.
    fn gru_backward(
        &self,
        m: &Matrix,
        h_dest: &Matrix,
        fwd: &GruForward,
        g: &Matrix,
        grads: &mut LayerGrads,
    ) -> (Matrix, Matrix) {
        let GruForward {
            a,
            s,
            z,
            r,
            h_tilde,
            ..
        } = fwd;
        // Output combination.
        let dz = g.hadamard(&h_tilde.sub(s)); // ∂L/∂z
        let dh_tilde = g.hadamard(z);
        let mut ds = g.hadamard(&z.map(|v| 1.0 - v));
        // h̃ = tanh(a·W_h + (r⊙s)·U_h)
        let dh_pre = tanh_backward_from_output(h_tilde, &dh_tilde);
        let rs = r.hadamard(s);
        grads.grads[6].add_assign(&a.transpose_matmul(&dh_pre)); // ∇W_h
        grads.grads[7].add_assign(&rs.transpose_matmul(&dh_pre)); // ∇U_h
        let mut da = dh_pre.matmul_transpose(&self.w_h);
        let drs = dh_pre.matmul_transpose(&self.u_h);
        let dr = drs.hadamard(s);
        ds.add_assign(&drs.hadamard(r));
        // r = σ(a·W_r + s·U_r)
        let dr_pre = sigmoid_backward_from_output(r, &dr);
        grads.grads[4].add_assign(&a.transpose_matmul(&dr_pre)); // ∇W_r
        grads.grads[5].add_assign(&s.transpose_matmul(&dr_pre)); // ∇U_r
        da.add_assign(&dr_pre.matmul_transpose(&self.w_r));
        ds.add_assign(&dr_pre.matmul_transpose(&self.u_r));
        // z = σ(a·W_z + s·U_z)
        let dz_pre = sigmoid_backward_from_output(z, &dz);
        grads.grads[2].add_assign(&a.transpose_matmul(&dz_pre)); // ∇W_z
        grads.grads[3].add_assign(&s.transpose_matmul(&dz_pre)); // ∇U_z
        da.add_assign(&dz_pre.matmul_transpose(&self.w_z));
        ds.add_assign(&dz_pre.matmul_transpose(&self.u_z));
        // Projections a = m·W_m, s = h_dest·W_s.
        grads.grads[0].add_assign(&m.transpose_matmul(&da)); // ∇W_m
        grads.grads[1].add_assign(&h_dest.transpose_matmul(&ds)); // ∇W_s
        (
            da.matmul_transpose(&self.w_m),
            ds.matmul_transpose(&self.w_s),
        )
    }

    /// Scatters `(grad_m, grad_dest)` back onto neighbor rows.
    fn aggregate_backward(
        &self,
        chunk: &ChunkSubgraph,
        grad_m: &Matrix,
        grad_dest: &Matrix,
    ) -> Matrix {
        let dim = grad_m.cols();
        let self_pos = layer::self_positions(chunk);
        let mut grad_nbr = Matrix::zeros(chunk.num_neighbors(), dim);
        for k in 0..chunk.num_dests() {
            let gm = grad_m.row(k);
            for e in chunk.in_edges_of(k) {
                let src = chunk.nbr_index[e] as usize;
                let out = grad_nbr.row_mut(src);
                for (o, &gv) in out.iter_mut().zip(gm) {
                    *o += gv;
                }
            }
        }
        grad_nbr.scatter_add_rows(&self_pos, grad_dest);
        grad_nbr
    }

    fn backward_common(
        &self,
        chunk: &ChunkSubgraph,
        m: &Matrix,
        h_dest: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let fwd = self.gru_forward(m, h_dest);
        let g = self.act.backward(&fwd.h_prime, grad_out);
        let (grad_m, grad_dest) = self.gru_backward(m, h_dest, &fwd, &g, grads);
        self.aggregate_backward(chunk, &grad_m, &grad_dest)
    }
}

impl GnnLayer for GgnnLayer {
    fn in_dim(&self) -> usize {
        self.w_m.rows()
    }

    fn out_dim(&self) -> usize {
        self.w_m.cols()
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![
            &self.w_m, &self.w_s, &self.w_z, &self.u_z, &self.w_r, &self.u_r, &self.w_h, &self.u_h,
        ]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![
            &mut self.w_m,
            &mut self.w_s,
            &mut self.w_z,
            &mut self.u_z,
            &mut self.w_r,
            &mut self.u_r,
            &mut self.w_h,
            &mut self.u_h,
        ]
    }

    fn supports_agg_cache(&self) -> bool {
        true
    }

    fn forward(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> LayerForward {
        assert_eq!(
            h_nbr.cols(),
            self.in_dim(),
            "GgnnLayer::forward: input dim mismatch"
        );
        let (m, h_dest) = self.aggregate(chunk, h_nbr);
        let fwd = self.gru_forward(&m, &h_dest);
        let checkpoint = m.hstack(&h_dest);
        LayerForward {
            out: self.act.apply(&fwd.h_prime),
            agg: Some(checkpoint),
        }
    }

    fn backward_from_input(
        &self,
        chunk: &ChunkSubgraph,
        h_nbr: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let (m, h_dest) = self.aggregate(chunk, h_nbr);
        self.backward_common(chunk, &m, &h_dest, grad_out, grads)
    }

    fn backward_from_agg(
        &self,
        chunk: &ChunkSubgraph,
        agg: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let dim = self.in_dim();
        let m = agg.columns(0..dim);
        let h_dest = agg.columns(dim..2 * dim);
        self.backward_common(chunk, &m, &h_dest, grad_out, grads)
    }

    fn forward_flops(&self, chunk: &ChunkSubgraph) -> LayerFlops {
        let d_in = self.in_dim() as f64;
        let d_out = self.out_dim() as f64;
        let v = chunk.num_dests() as f64;
        let e = chunk.num_edges() as f64;
        LayerFlops {
            // 2 input projections + 6 gate matmuls + element-wise ops
            dense: 2.0 * v * d_in * d_out * 2.0 + 2.0 * v * d_out * d_out * 6.0 + 10.0 * v * d_out,
            edge: e * d_in,
        }
    }

    fn intermediate_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        // m, h_dest (D×in) plus a,s,z,r,h̃,h' (D×out each)
        chunk.num_dests() * (2 * self.in_dim() + 6 * self.out_dim()) * std::mem::size_of::<f32>()
    }

    fn agg_cache_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        chunk.num_dests() * 2 * self.in_dim() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::{Graph, GraphBuilder};

    fn toy() -> (Graph, ChunkSubgraph) {
        let mut b = GraphBuilder::new(4).keep_self_loops();
        for v in 0..4 {
            b.add_edge(v, v);
        }
        for (s, t) in [(0, 1), (0, 2), (1, 2), (3, 2), (2, 0)] {
            b.add_edge(s, t);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![0, 1, 2, 3]);
        (g, chunk)
    }

    fn inputs(chunk: &ChunkSubgraph, dim: usize) -> Matrix {
        Matrix::from_fn(chunk.num_neighbors(), dim, |r, c| {
            ((r * 3 + c * 5) as f32 * 0.23).sin()
        })
    }

    #[test]
    fn forward_shapes_and_gate_ranges() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(1);
        let layer = GgnnLayer::new(3, 4, &mut rng);
        let h = inputs(&chunk, 3);
        let (m, hd) = layer.aggregate(&chunk, &h);
        let fwd = layer.gru_forward(&m, &hd);
        assert_eq!(fwd.h_prime.shape(), (4, 4));
        assert!(fwd.z.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(fwd.r.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(fwd
            .h_tilde
            .as_slice()
            .iter()
            .all(|&v| (-1.0..=1.0).contains(&v)));
        let f = layer.forward(&chunk, &h);
        assert_eq!(f.out.shape(), (4, 4));
        assert_eq!(f.agg.unwrap().shape(), (4, 6));
    }

    #[test]
    fn output_interpolates_between_state_and_candidate() {
        // With z forced to 0 (huge negative gate bias via zeroed weights),
        // h' == s exactly.
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(2);
        let mut layer = GgnnLayer::new(2, 2, &mut rng);
        layer.w_z = Matrix::full(2, 2, -100.0);
        layer.u_z = Matrix::full(2, 2, -100.0);
        let h = Matrix::full(chunk.num_neighbors(), 2, 0.5);
        let (m, hd) = layer.aggregate(&chunk, &h);
        let fwd = layer.gru_forward(&m, &hd);
        assert!(fwd.h_prime.approx_eq(&fwd.s, 1e-4));
    }

    #[test]
    fn hybrid_and_recompute_paths_agree_exactly() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(3);
        let layer = GgnnLayer::new(3, 4, &mut rng);
        let h = inputs(&chunk, 3);
        let f = layer.forward(&chunk, &h);
        let grad_out = Matrix::from_fn(4, 4, |r, c| ((r + 2 * c) as f32 * 0.27).cos());
        let mut g1 = LayerGrads::zeros_for(&layer);
        let n1 = layer.backward_from_input(&chunk, &h, &grad_out, &mut g1);
        let mut g2 = LayerGrads::zeros_for(&layer);
        let n2 = layer.backward_from_agg(&chunk, f.agg.as_ref().unwrap(), &grad_out, &mut g2);
        assert_eq!(n1, n2);
        for (a, b) in g1.grads.iter().zip(&g2.grads) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(4);
        let mut layer = GgnnLayer::new(3, 3, &mut rng);
        let h = inputs(&chunk, 3);
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 3e-2);
    }

    #[test]
    fn gradient_check_with_relu_on_top() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(5);
        let mut layer = GgnnLayer::new(2, 3, &mut rng);
        layer.act = Activation::Relu;
        let h = inputs(&chunk, 2);
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 3e-2);
    }

    #[test]
    fn eight_parameter_tensors() {
        let mut rng = SeededRng::new(6);
        let layer = GgnnLayer::new(5, 7, &mut rng);
        assert_eq!(layer.params().len(), 8);
        assert!(layer.supports_agg_cache());
        assert_eq!(layer.in_dim(), 5);
        assert_eq!(layer.out_dim(), 7);
    }
}
