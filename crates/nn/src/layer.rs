//! The chunk-level layer abstraction.

use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::Matrix;

/// Output of a chunk-level forward pass.
#[derive(Debug, Clone)]
pub struct LayerForward {
    /// New representations of the chunk's destination vertices,
    /// `|V_ij| × out_dim`.
    pub out: Matrix,
    /// AGGREGATE output `a` (`|V_ij| × agg_dim`), present only for layers
    /// that support aggregate caching — this is the tensor the hybrid
    /// strategy checkpoints to CPU memory instead of recomputing.
    pub agg: Option<Matrix>,
}

/// Accumulated parameter gradients, aligned with [`GnnLayer::params`].
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// One gradient matrix per parameter, same shapes as the parameters.
    pub grads: Vec<Matrix>,
}

impl LayerGrads {
    /// Zero gradients matching `layer`'s parameter shapes.
    pub fn zeros_for(layer: &dyn GnnLayer) -> Self {
        LayerGrads {
            grads: layer
                .params()
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect(),
        }
    }

    /// Element-wise accumulation of another gradient set.
    pub fn add(&mut self, other: &LayerGrads) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "LayerGrads::add: arity mismatch"
        );
        for (a, b) in self.grads.iter_mut().zip(&other.grads) {
            a.add_assign(b);
        }
    }

    /// Scales all gradients (e.g. 1/|train| normalization).
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.grads {
            g.scale_assign(s);
        }
    }
}

/// FLOP estimate of one chunk-level pass, split by execution character so
/// the simulator can price dense (tensor-core) and irregular (edge
/// gather/scatter) work differently.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerFlops {
    /// Dense matmul-like FLOPs.
    pub dense: f64,
    /// Irregular per-edge FLOPs.
    pub edge: f64,
}

#[allow(clippy::should_implement_trait)] // plain value helper, not operator overloading
impl LayerFlops {
    /// Component-wise sum.
    pub fn add(self, other: LayerFlops) -> LayerFlops {
        LayerFlops {
            dense: self.dense + other.dense,
            edge: self.edge + other.edge,
        }
    }

    /// Multiplies both components (e.g. backward ≈ 2× forward).
    pub fn scale(self, s: f64) -> LayerFlops {
        LayerFlops {
            dense: self.dense * s,
            edge: self.edge * s,
        }
    }
}

/// The UPDATE nonlinearity of a layer. Hidden layers use ReLU; the output
/// layer is linear so the classifier logits can go negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// `max(x, 0)`.
    #[default]
    Relu,
    /// No activation (output layer).
    Identity,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn apply(self, z: &Matrix) -> Matrix {
        match self {
            Activation::Relu => hongtu_tensor::relu(z),
            Activation::Identity => z.clone(),
        }
    }

    /// Backward through the activation given the pre-activation `z`.
    pub fn backward(self, z: &Matrix, grad: &Matrix) -> Matrix {
        match self {
            Activation::Relu => hongtu_tensor::relu_backward(z, grad),
            Activation::Identity => grad.clone(),
        }
    }
}

/// A GNN layer executable one chunk at a time.
///
/// Layer inputs are the representations of the chunk's deduplicated
/// neighbor list (`|N_ij| × in_dim`), in the order of
/// [`ChunkSubgraph::neighbors`]. Layers that reference the destination's own
/// previous representation (GAT, SAGE, GIN) require each destination to be
/// present in its own neighbor list — guaranteed when the dataset adds
/// self-loops.
pub trait GnnLayer: Send + Sync {
    /// Input feature dimension.
    fn in_dim(&self) -> usize;

    /// Output feature dimension.
    fn out_dim(&self) -> usize;

    /// Trainable parameters.
    fn params(&self) -> Vec<&Matrix>;

    /// Mutable access to trainable parameters (for the optimizer).
    fn params_mut(&mut self) -> Vec<&mut Matrix>;

    /// True when AGGREGATE is a plain weighted sum (no edge intermediates),
    /// enabling the hybrid caching strategy of §4.2.
    fn supports_agg_cache(&self) -> bool;

    /// Forward pass over one chunk.
    fn forward(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> LayerForward;

    /// Recomputation-path backward: recompute the forward internals from
    /// the (reloaded) neighbor input, then differentiate. Returns the
    /// gradient w.r.t. `h_nbr` (`|N_ij| × in_dim`) and accumulates
    /// parameter gradients into `grads`.
    fn backward_from_input(
        &self,
        chunk: &ChunkSubgraph,
        h_nbr: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix;

    /// Hybrid-path backward: differentiate from the cached AGGREGATE output
    /// `agg`, skipping aggregate recomputation. Only valid when
    /// [`Self::supports_agg_cache`] is true.
    ///
    /// # Panics
    /// Default implementation panics; cache-capable layers override it.
    fn backward_from_agg(
        &self,
        _chunk: &ChunkSubgraph,
        _agg: &Matrix,
        _grad_out: &Matrix,
        _grads: &mut LayerGrads,
    ) -> Matrix {
        panic!("this layer does not support aggregate caching (see supports_agg_cache)");
    }

    /// Forward FLOP estimate for one chunk.
    fn forward_flops(&self, chunk: &ChunkSubgraph) -> LayerFlops;

    /// Backward FLOP estimate (defaults to 2× forward, the usual rule of
    /// thumb for reverse-mode differentiation).
    fn backward_flops(&self, chunk: &ChunkSubgraph) -> LayerFlops {
        self.forward_flops(chunk).scale(2.0)
    }

    /// Bytes of intermediate data the forward pass materializes for this
    /// chunk (beyond input and output) — the quantity HongTu avoids keeping
    /// resident (paper Table 1 "Intr Data").
    fn intermediate_bytes(&self, chunk: &ChunkSubgraph) -> usize;

    /// Bytes of the cached aggregate for this chunk (hybrid strategy), if
    /// supported.
    fn agg_cache_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        if self.supports_agg_cache() {
            chunk.num_dests() * self.in_dim() * std::mem::size_of::<f32>()
        } else {
            0
        }
    }
}

/// Gathers, for each destination of `chunk`, its own position in the
/// chunk's neighbor list. Layers that need `h_v^{l-1}` (GAT/SAGE/GIN) use
/// this to read the destination's previous representation out of the
/// neighbor buffer.
///
/// # Panics
/// Panics if a destination is missing from its own neighbor list (i.e. the
/// graph lacks self-loops), with a message pointing at the fix.
pub fn self_positions(chunk: &ChunkSubgraph) -> Vec<usize> {
    chunk
        .dests
        .iter()
        .map(|d| {
            chunk.neighbors.binary_search(d).unwrap_or_else(|_| {
                panic!(
                    "destination {d} absent from its neighbor list; this layer requires \
                     self-loops (add them at dataset construction)"
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::GraphBuilder;

    #[test]
    fn self_positions_found_with_self_loops() {
        let mut b = GraphBuilder::new(3).keep_self_loops();
        for v in 0..3 {
            b.add_edge(v, v);
        }
        b.add_edge(0, 2);
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![1, 2]);
        let pos = self_positions(&chunk);
        assert_eq!(chunk.neighbors[pos[0]], 1);
        assert_eq!(chunk.neighbors[pos[1]], 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_positions_panics_without_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![1]);
        let _ = self_positions(&chunk);
    }

    #[test]
    fn layer_flops_arithmetic() {
        let a = LayerFlops {
            dense: 2.0,
            edge: 3.0,
        };
        let b = LayerFlops {
            dense: 1.0,
            edge: 1.0,
        };
        assert_eq!(
            a.add(b),
            LayerFlops {
                dense: 3.0,
                edge: 4.0
            }
        );
        assert_eq!(
            a.scale(2.0),
            LayerFlops {
                dense: 4.0,
                edge: 6.0
            }
        );
    }
}
