//! Multi-head graph attention.
//!
//! The paper's Eq. 3 is single-head; production GAT stacks `H` independent
//! attention heads and concatenates their outputs (Velickovic et al.).
//! This wrapper composes `H` single-head [`GatLayer`]s, each producing
//! `out_dim / H` features, and splits/merges gradients column-wise. Edge
//! intermediates scale with `H`, amplifying the memory pressure that makes
//! GAT the paper's stress-test model.

use crate::gat::GatLayer;
use crate::layer::{Activation, GnnLayer, LayerFlops, LayerForward, LayerGrads};
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::{Matrix, SeededRng};

/// A concatenating multi-head GAT layer.
#[derive(Debug, Clone)]
pub struct MultiHeadGatLayer {
    heads: Vec<GatLayer>,
    head_dim: usize,
}

impl MultiHeadGatLayer {
    /// `heads` attention heads of `out_dim / heads` features each.
    ///
    /// # Panics
    /// Panics if `out_dim` is not divisible by `heads` or `heads == 0`.
    pub fn new(in_dim: usize, out_dim: usize, heads: usize, rng: &mut SeededRng) -> Self {
        assert!(heads > 0, "need at least one head");
        assert_eq!(
            out_dim % heads,
            0,
            "out_dim {out_dim} must divide into {heads} heads"
        );
        let head_dim = out_dim / heads;
        let heads = (0..heads)
            .map(|h| {
                let mut head_rng = rng.fork(500 + h as u64);
                GatLayer::new(in_dim, head_dim, &mut head_rng)
            })
            .collect();
        MultiHeadGatLayer { heads, head_dim }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Sets the UPDATE activation on every head.
    pub fn set_activation(&mut self, act: Activation) {
        for h in &mut self.heads {
            h.act = act;
        }
    }
}

impl GnnLayer for MultiHeadGatLayer {
    fn in_dim(&self) -> usize {
        self.heads[0].in_dim()
    }

    fn out_dim(&self) -> usize {
        self.head_dim * self.heads.len()
    }

    fn params(&self) -> Vec<&Matrix> {
        self.heads.iter().flat_map(|h| h.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.heads.iter_mut().flat_map(|h| h.params_mut()).collect()
    }

    fn supports_agg_cache(&self) -> bool {
        false // edge intermediates per head, like single-head GAT
    }

    fn forward(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> LayerForward {
        let mut out = self.heads[0].forward(chunk, h_nbr).out;
        for head in &self.heads[1..] {
            out = out.hstack(&head.forward(chunk, h_nbr).out);
        }
        LayerForward { out, agg: None }
    }

    fn backward_from_input(
        &self,
        chunk: &ChunkSubgraph,
        h_nbr: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        assert_eq!(
            grad_out.cols(),
            self.out_dim(),
            "multi-head grad width mismatch"
        );
        let per_head_params = self.heads[0].params().len();
        let mut grad_nbr = Matrix::zeros(h_nbr.rows(), self.in_dim());
        for (h, head) in self.heads.iter().enumerate() {
            let cols = h * self.head_dim..(h + 1) * self.head_dim;
            let head_grad = grad_out.columns(cols);
            // Route this head's parameter gradients into its slice of the
            // flattened gradient list.
            let mut head_grads = LayerGrads {
                grads: grads.grads[h * per_head_params..(h + 1) * per_head_params].to_vec(),
            };
            let gn = head.backward_from_input(chunk, h_nbr, &head_grad, &mut head_grads);
            for (slot, g) in grads.grads[h * per_head_params..(h + 1) * per_head_params]
                .iter_mut()
                .zip(head_grads.grads)
            {
                *slot = g;
            }
            grad_nbr.add_assign(&gn);
        }
        grad_nbr
    }

    fn forward_flops(&self, chunk: &ChunkSubgraph) -> LayerFlops {
        self.heads.iter().fold(LayerFlops::default(), |acc, h| {
            acc.add(h.forward_flops(chunk))
        })
    }

    fn intermediate_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        self.heads.iter().map(|h| h.intermediate_bytes(chunk)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::{Graph, GraphBuilder};

    fn toy() -> (Graph, ChunkSubgraph) {
        let mut b = GraphBuilder::new(5).keep_self_loops();
        for v in 0..5 {
            b.add_edge(v, v);
        }
        for (s, t) in [(0, 1), (0, 2), (1, 2), (3, 2), (2, 0), (4, 1), (1, 4)] {
            b.add_edge(s, t);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![0, 1, 2, 3, 4]);
        (g, chunk)
    }

    fn inputs(chunk: &ChunkSubgraph, dim: usize) -> Matrix {
        Matrix::from_fn(chunk.num_neighbors(), dim, |r, c| {
            ((r * 7 + c) as f32 * 0.17).sin()
        })
    }

    #[test]
    fn shapes_and_metadata() {
        let mut rng = SeededRng::new(1);
        let layer = MultiHeadGatLayer::new(6, 8, 4, &mut rng);
        assert_eq!(layer.num_heads(), 4);
        assert_eq!(layer.in_dim(), 6);
        assert_eq!(layer.out_dim(), 8);
        assert_eq!(layer.params().len(), 4 * 3);
        assert!(!layer.supports_agg_cache());
    }

    #[test]
    fn forward_concatenates_heads() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(2);
        let layer = MultiHeadGatLayer::new(3, 4, 2, &mut rng);
        let h = inputs(&chunk, 3);
        let out = layer.forward(&chunk, &h).out;
        assert_eq!(out.shape(), (5, 4));
        // Each half equals the corresponding head's own forward.
        let h0 = layer.heads[0].forward(&chunk, &h).out;
        let h1 = layer.heads[1].forward(&chunk, &h).out;
        assert_eq!(out.columns(0..2), h0);
        assert_eq!(out.columns(2..4), h1);
    }

    #[test]
    fn single_head_matches_plain_gat_gradients() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(3);
        let multi = MultiHeadGatLayer::new(3, 4, 1, &mut rng);
        let plain = multi.heads[0].clone();
        let h = inputs(&chunk, 3);
        let grad_out = Matrix::from_fn(5, 4, |r, c| ((r + c) as f32 * 0.23).cos());
        let mut gm = LayerGrads::zeros_for(&multi);
        let nm = multi.backward_from_input(&chunk, &h, &grad_out, &mut gm);
        let mut gp = LayerGrads::zeros_for(&plain);
        let np = plain.backward_from_input(&chunk, &h, &grad_out, &mut gp);
        assert_eq!(nm, np);
        assert_eq!(gm.grads[0], gp.grads[0]);
    }

    #[test]
    fn gradient_check_two_heads() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(4);
        let mut layer = MultiHeadGatLayer::new(3, 4, 2, &mut rng);
        let h = inputs(&chunk, 3);
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 3e-2);
    }

    #[test]
    fn more_heads_more_intermediates() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(5);
        let one = MultiHeadGatLayer::new(4, 8, 1, &mut rng);
        let four = MultiHeadGatLayer::new(4, 8, 4, &mut rng);
        assert!(four.intermediate_bytes(&chunk) > one.intermediate_bytes(&chunk) / 2);
        assert!(four.forward_flops(&chunk).edge > one.forward_flops(&chunk).edge);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_heads() {
        let mut rng = SeededRng::new(6);
        let _ = MultiHeadGatLayer::new(4, 7, 2, &mut rng);
    }
}
