//! Graph attention network layer (paper Eq. 3, single head):
//!
//! `h_v = ReLU( Σ_{u∈N(v)} softmax_u( LeakyReLU(aᵀ[W h_v ‖ W h_u]) ) · W h_u )`
//!
//! The attention vector `a` is split into its destination and source halves
//! `a_l, a_r`, so the edge score is `s_v + t_u` with `s_v = a_l·(W h_v)` and
//! `t_u = a_r·(W h_u)` — the standard GAT factorization that avoids
//! materializing the per-edge concatenation.
//!
//! GAT's AGGREGATE produces `O(|E|)` intermediates (edge scores and
//! attention weights), so caching them is more expensive than recomputing —
//! this layer reports `supports_agg_cache() == false` and HongTu falls back
//! to the pure recomputation strategy on it (§4.2).

use crate::layer::{self, Activation, GnnLayer, LayerFlops, LayerForward, LayerGrads};
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::ops::{
    leaky_relu, leaky_relu_backward, softmax_backward_segment, softmax_in_place,
};
use hongtu_tensor::{Matrix, SeededRng};

/// One single-head GAT layer.
#[derive(Debug, Clone)]
pub struct GatLayer {
    w: Matrix,
    /// Destination half of the attention vector, `1 × out_dim`.
    a_l: Matrix,
    /// Source half of the attention vector, `1 × out_dim`.
    a_r: Matrix,
    /// UPDATE nonlinearity (ReLU for hidden layers, Identity for output).
    pub act: Activation,
}

/// Forward-pass internals reused by the backward pass.
struct GatInternals {
    g: Matrix, // W-projected neighbor reps, N × out
    self_pos: Vec<usize>,
    pre: Vec<f32>,   // per-edge pre-activation s_v + t_u
    alpha: Vec<f32>, // per-edge attention weight (post softmax)
    z: Matrix,       // pre-ReLU aggregation, D × out
}

impl GatLayer {
    /// A layer with Xavier-initialized projection and attention parameters.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        GatLayer {
            w: hongtu_tensor::xavier_uniform(in_dim, out_dim, rng),
            a_l: hongtu_tensor::xavier_uniform(1, out_dim, rng),
            a_r: hongtu_tensor::xavier_uniform(1, out_dim, rng),
            act: Activation::Relu,
        }
    }

    fn run_forward(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> GatInternals {
        assert_eq!(
            h_nbr.cols(),
            self.in_dim(),
            "GatLayer::forward: input dim mismatch"
        );
        assert_eq!(
            h_nbr.rows(),
            chunk.num_neighbors(),
            "GatLayer::forward: neighbor count"
        );
        let out_dim = self.out_dim();
        let g = h_nbr.matmul(&self.w);
        let self_pos = layer::self_positions(chunk);
        // t[u] = a_r · g[u] for every neighbor.
        let t: Vec<f32> = (0..g.rows())
            .map(|u| dot(g.row(u), self.a_r.row(0)))
            .collect();
        let mut pre = vec![0.0f32; chunk.num_edges()];
        let mut alpha = vec![0.0f32; chunk.num_edges()];
        let mut z = Matrix::zeros(chunk.num_dests(), out_dim);
        for k in 0..chunk.num_dests() {
            let s_k = dot(g.row(self_pos[k]), self.a_l.row(0));
            let range = chunk.in_edges_of(k);
            for e in range.clone() {
                let u = chunk.nbr_index[e] as usize;
                pre[e] = s_k + t[u];
                alpha[e] = leaky_relu(pre[e]);
            }
            softmax_in_place(&mut alpha[range.clone()]);
            let z_row = z.row_mut(k);
            for e in range {
                let u = chunk.nbr_index[e] as usize;
                let a = alpha[e];
                for (o, &gv) in z_row.iter_mut().zip(g.row(u)) {
                    *o += a * gv;
                }
            }
        }
        GatInternals {
            g,
            self_pos,
            pre,
            alpha,
            z,
        }
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl GnnLayer for GatLayer {
    fn in_dim(&self) -> usize {
        self.w.rows()
    }

    fn out_dim(&self) -> usize {
        self.w.cols()
    }

    fn params(&self) -> Vec<&Matrix> {
        vec![&self.w, &self.a_l, &self.a_r]
    }

    fn params_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w, &mut self.a_l, &mut self.a_r]
    }

    fn supports_agg_cache(&self) -> bool {
        false
    }

    fn forward(&self, chunk: &ChunkSubgraph, h_nbr: &Matrix) -> LayerForward {
        let internals = self.run_forward(chunk, h_nbr);
        LayerForward {
            out: self.act.apply(&internals.z),
            agg: None,
        }
    }

    fn backward_from_input(
        &self,
        chunk: &ChunkSubgraph,
        h_nbr: &Matrix,
        grad_out: &Matrix,
        grads: &mut LayerGrads,
    ) -> Matrix {
        let GatInternals {
            g,
            self_pos,
            pre,
            alpha,
            z,
        } = self.run_forward(chunk, h_nbr);
        let out_dim = self.out_dim();
        let dz = self.act.backward(&z, grad_out);

        let mut grad_g = Matrix::zeros(g.rows(), out_dim);
        let mut grad_t = vec![0.0f32; g.rows()];
        let (mut d_alpha, mut d_pre): (Vec<f32>, Vec<f32>) = (Vec::new(), Vec::new());
        let mut grad_al = vec![0.0f32; out_dim];
        let mut grad_ar = vec![0.0f32; out_dim];

        for k in 0..chunk.num_dests() {
            let range = chunk.in_edges_of(k);
            let seg = range.len();
            d_alpha.clear();
            d_alpha.resize(seg, 0.0);
            d_pre.clear();
            d_pre.resize(seg, 0.0);
            let dz_row = dz.row(k);
            // ∇α[e] = δz_k · g_u ; ∇g_u += α[e] δz_k (value path)
            for (local, e) in range.clone().enumerate() {
                let u = chunk.nbr_index[e] as usize;
                d_alpha[local] = dot(dz_row, g.row(u));
                let a = alpha[e];
                let gu = grad_g.row_mut(u);
                for (o, &dzv) in gu.iter_mut().zip(dz_row) {
                    *o += a * dzv;
                }
            }
            // softmax backward per segment → ∇act, then LeakyReLU.
            let mut d_act = vec![0.0f32; seg];
            softmax_backward_segment(&alpha[range.clone()], &d_alpha, &mut d_act);
            let mut d_s = 0.0f32;
            for (local, e) in range.clone().enumerate() {
                d_pre[local] = d_act[local] * leaky_relu_backward(pre[e]);
                d_s += d_pre[local];
                let u = chunk.nbr_index[e] as usize;
                grad_t[u] += d_pre[local];
            }
            // ∇g[dest] += ∇s · a_l ; ∇a_l += ∇s · g[dest]
            let sp = self_pos[k];
            let g_dest_row: Vec<f32> = g.row(sp).to_vec();
            let gd = grad_g.row_mut(sp);
            for ((o, &al), (ga, &gv)) in gd
                .iter_mut()
                .zip(self.a_l.row(0))
                .zip(grad_al.iter_mut().zip(&g_dest_row))
            {
                *o += d_s * al;
                *ga += d_s * gv;
            }
        }
        // ∇g[u] += ∇t_u · a_r ; ∇a_r += Σ_u ∇t_u · g[u]
        for u in 0..g.rows() {
            let tgrad = grad_t[u];
            if tgrad == 0.0 {
                continue;
            }
            let row = grad_g.row_mut(u);
            for ((o, &ar), (gar, &gv)) in row
                .iter_mut()
                .zip(self.a_r.row(0))
                .zip(grad_ar.iter_mut().zip(g.row(u)))
            {
                *o += tgrad * ar;
                *gar += tgrad * gv;
            }
        }

        grads.grads[0].add_assign(&h_nbr.transpose_matmul(&grad_g));
        grads.grads[1].add_assign(&Matrix::from_vec(1, out_dim, grad_al));
        grads.grads[2].add_assign(&Matrix::from_vec(1, out_dim, grad_ar));
        grad_g.matmul_transpose(&self.w)
    }

    fn forward_flops(&self, chunk: &ChunkSubgraph) -> LayerFlops {
        let d_in = self.in_dim() as f64;
        let d_out = self.out_dim() as f64;
        let n = chunk.num_neighbors() as f64;
        let e = chunk.num_edges() as f64;
        LayerFlops {
            dense: 2.0 * n * d_in * d_out, // projection h × W
            // Edge-wise attention runs several passes over the edge
            // tensors (score, max, exp, sum, normalize, weighted
            // aggregation), each touching O(d_out) data per edge; on real
            // GPUs these passes are memory bound, which is why the paper
            // measures GAT's GPU time at ~4.5× GCN's. We fold that into an
            // effective 6-pass per-edge cost.
            edge: 6.0 * e * (2.0 * d_out + 8.0) + 2.0 * n * d_out,
        }
    }

    fn intermediate_bytes(&self, chunk: &ChunkSubgraph) -> usize {
        // g (N × out), pre + α (2 per edge), z (D × out)
        (chunk.num_neighbors() * self.out_dim()
            + 2 * chunk.num_edges()
            + chunk.num_dests() * self.out_dim())
            * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::{Graph, GraphBuilder};

    /// Toy graph *with self-loops* (required by GAT).
    fn toy() -> (Graph, ChunkSubgraph) {
        let mut b = GraphBuilder::new(4).keep_self_loops();
        for v in 0..4 {
            b.add_edge(v, v);
        }
        for (s, t) in [(0, 1), (0, 2), (1, 2), (3, 2), (2, 0)] {
            b.add_edge(s, t);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![0, 1, 2, 3]);
        (g, chunk)
    }

    fn inputs(chunk: &ChunkSubgraph, dim: usize) -> Matrix {
        Matrix::from_fn(chunk.num_neighbors(), dim, |r, c| {
            ((r * 5 + c * 3) as f32 * 0.23).sin()
        })
    }

    #[test]
    fn forward_shapes() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(1);
        let layer = GatLayer::new(3, 4, &mut rng);
        let h = inputs(&chunk, 3);
        let f = layer.forward(&chunk, &h);
        assert_eq!(f.out.shape(), (4, 4));
        assert!(f.agg.is_none(), "GAT must not offer aggregate caching");
        assert!(!layer.supports_agg_cache());
    }

    #[test]
    fn attention_weights_sum_to_one_per_dest() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(2);
        let layer = GatLayer::new(3, 4, &mut rng);
        let h = inputs(&chunk, 3);
        let internals = layer.run_forward(&chunk, &h);
        for k in 0..chunk.num_dests() {
            let s: f32 = internals.alpha[chunk.in_edges_of(k)].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "dest {k}: Σα = {s}");
        }
    }

    #[test]
    fn attention_is_permutation_invariant_over_neighbors() {
        // Two destinations with identical (multiset of) neighbor reps must
        // get identical outputs regardless of edge order.
        let mut b = GraphBuilder::new(6).keep_self_loops();
        for v in 0..6 {
            b.add_edge(v, v);
        }
        // dest 4 ← {0,1,2}; dest 5 ← {2,1,0} (same set, insertion order differs)
        for s in [0u32, 1, 2] {
            b.add_edge(s, 4);
        }
        for s in [2u32, 1, 0] {
            b.add_edge(s, 5);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![4, 5]);
        let mut rng = SeededRng::new(3);
        let layer = GatLayer::new(2, 3, &mut rng);
        // Give 4 and 5 identical features so s_v matches too.
        let mut h = Matrix::zeros(chunk.num_neighbors(), 2);
        for (i, &nb) in chunk.neighbors.iter().enumerate() {
            let base = if nb >= 4 { 9.0 } else { nb as f32 };
            h.row_mut(i).copy_from_slice(&[base * 0.1, -base * 0.2]);
        }
        let out = layer.forward(&chunk, &h).out;
        assert!(out
            .row(0)
            .iter()
            .zip(out.row(1))
            .all(|(a, b)| (a - b).abs() < 1e-6));
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(4);
        let mut layer = GatLayer::new(3, 3, &mut rng);
        let h = inputs(&chunk, 3);
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 3e-2);
    }

    #[test]
    fn gradient_check_on_random_graph() {
        let mut rng = SeededRng::new(5);
        let mut b = GraphBuilder::new(12).keep_self_loops();
        for v in 0..12u32 {
            b.add_edge(v, v);
        }
        for _ in 0..30 {
            b.add_edge(rng.index(12) as u32, rng.index(12) as u32);
        }
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, (0..12).collect());
        let mut layer = GatLayer::new(4, 3, &mut rng);
        let h = Matrix::from_fn(chunk.num_neighbors(), 4, |r, c| {
            ((r * 7 + c * 11) as f32 * 0.19).cos() * 0.8
        });
        crate::gradcheck::check_layer(&mut layer, &chunk, &h, 3e-2);
    }

    #[test]
    fn intermediates_dominated_by_edges() {
        let (_, chunk) = toy();
        let mut rng = SeededRng::new(6);
        let layer = GatLayer::new(3, 4, &mut rng);
        let bytes = layer.intermediate_bytes(&chunk);
        assert!(bytes >= 2 * chunk.num_edges() * 4);
        assert_eq!(layer.agg_cache_bytes(&chunk), 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn requires_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let chunk = ChunkSubgraph::build(&g, 0, 0, vec![1]);
        let mut rng = SeededRng::new(7);
        let layer = GatLayer::new(2, 2, &mut rng);
        let h = Matrix::zeros(chunk.num_neighbors(), 2);
        let _ = layer.forward(&chunk, &h);
    }
}
