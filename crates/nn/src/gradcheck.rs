//! Finite-difference gradient checking for chunk-level layers.
//!
//! Each layer's hand-derived backward pass is validated against central
//! differences of a scalar objective `L = Σ out ⊙ C` (for a fixed
//! pseudo-random coefficient matrix `C`, so every output coordinate
//! contributes). f32 arithmetic and ReLU/LeakyReLU kinks limit achievable
//! precision, so comparisons are relative with a caller-chosen tolerance
//! and a small bounded fraction of kink-straddling coordinates is
//! tolerated.

use crate::layer::{GnnLayer, LayerGrads};
use hongtu_partition::ChunkSubgraph;
use hongtu_tensor::Matrix;

/// Deterministic coefficient matrix decorrelated from typical inputs.
fn coeffs(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17 + 7) % 13) as f32 - 6.0) * 0.11
    })
}

fn objective(layer: &dyn GnnLayer, chunk: &ChunkSubgraph, h: &Matrix, c: &Matrix) -> f32 {
    let out = layer.forward(chunk, h).out;
    out.hadamard(c).sum()
}

/// Verifies `layer`'s `backward_from_input` against central differences,
/// over both the neighbor input and every trainable parameter.
///
/// Checks a deterministic stride sample of coordinates (everything, for
/// small problems). Panics with the list of mismatches when the relative
/// error exceeds `tol` on more than 2% of checked coordinates.
pub fn check_layer(layer: &mut dyn GnnLayer, chunk: &ChunkSubgraph, h_nbr: &Matrix, tol: f32) {
    let c = coeffs(chunk.num_dests(), layer.out_dim());
    let mut grads = LayerGrads::zeros_for(layer);
    let grad_nbr = layer.backward_from_input(chunk, h_nbr, &c, &mut grads);
    assert_eq!(
        grad_nbr.shape(),
        h_nbr.shape(),
        "grad_nbr must match input shape"
    );

    let mut failures: Vec<String> = Vec::new();
    let mut checked = 0usize;

    // 1. Input gradient.
    let mut h = h_nbr.clone();
    let stride = (h.len() / 400).max(1);
    for i in (0..h.len()).step_by(stride) {
        let x = h.as_slice()[i];
        let eps = 5e-3 * x.abs().max(1.0);
        h.as_mut_slice()[i] = x + eps;
        let lp = objective(layer, chunk, &h, &c);
        h.as_mut_slice()[i] = x - eps;
        let lm = objective(layer, chunk, &h, &c);
        h.as_mut_slice()[i] = x;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grad_nbr.as_slice()[i];
        checked += 1;
        if !close(numeric, analytic, tol) {
            failures.push(format!(
                "input[{i}]: numeric {numeric} vs analytic {analytic}"
            ));
        }
    }

    // 2. Parameter gradients: perturb each parameter in place (reverted
    // after each probe) and re-run the forward pass.
    let num_params = layer.params().len();
    for pi in 0..num_params {
        let plen = grads.grads[pi].len();
        let pstride = (plen / 200).max(1);
        for i in (0..plen).step_by(pstride) {
            let x = layer.params()[pi].as_slice()[i];
            let eps = 5e-3 * x.abs().max(1.0);
            layer.params_mut()[pi].as_mut_slice()[i] = x + eps;
            let lp = objective(layer, chunk, h_nbr, &c);
            layer.params_mut()[pi].as_mut_slice()[i] = x - eps;
            let lm = objective(layer, chunk, h_nbr, &c);
            layer.params_mut()[pi].as_mut_slice()[i] = x;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.grads[pi].as_slice()[i];
            checked += 1;
            if !close(numeric, analytic, tol) {
                failures.push(format!(
                    "param{pi}[{i}]: numeric {numeric} vs analytic {analytic}"
                ));
            }
        }
    }

    let budget = (checked as f32 * 0.02).ceil() as usize;
    assert!(
        failures.len() <= budget,
        "gradient check failed on {}/{} coordinates (budget {}):\n{}",
        failures.len(),
        checked,
        budget,
        failures.join("\n")
    );
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_is_relative() {
        assert!(close(100.0, 100.5, 1e-2));
        assert!(!close(100.0, 110.0, 1e-2));
        assert!(close(1e-9, 0.0, 1e-2)); // both tiny
    }

    #[test]
    fn coeffs_are_mixed_sign() {
        let c = coeffs(6, 6);
        assert!(c.as_slice().iter().any(|&v| v > 0.0));
        assert!(c.as_slice().iter().any(|&v| v < 0.0));
    }
}
