//! Deduplicated communication planning (paper §5.1–5.2).
//!
//! For every *batch* `j` (the `m` concurrently scheduled chunks), the plan
//! records:
//!
//! - the **transition sets** `ℕ_ij`: the batch's deduplicated neighbor
//!   union `ℕ^∪_j = ∪_i N_ij`, split by owning partition so each vertex is
//!   transferred host→GPU exactly once, to the GPU that owns it;
//! - the **intra-GPU split** of each transition set against the previous
//!   batch: `ℕ^gpu_ij = ℕ_ij ∩ ℕ_i,j−1` is reused in place,
//!   `ℕ^cpu_ij = ℕ_ij \ ℕ_i,j−1` is loaded from the CPU;
//! - the **fetch matrix** `fetch[i][k] = |N_ij ∩ ℕ_kj|`: rows GPU `i` reads
//!   from GPU `k`'s transition buffer to assemble its own neighbor data
//!   (`k = i` is a local buffer read, not communication).
//!
//! The plan is pure metadata; the engine uses it for simulator accounting,
//! and `v_ori`/`v_p2p`/`v_ru` reproduce the volume columns of Table 8.

use crate::TwoLevelPartition;
use hongtu_graph::VertexId;

/// Communication plan for one batch.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// `transition[i]` = `ℕ_ij`, sorted ascending.
    pub transition: Vec<Vec<VertexId>>,
    /// `new_from_cpu[i]` = `ℕ^cpu_ij` (loaded host→GPU this batch), sorted.
    pub new_from_cpu: Vec<Vec<VertexId>>,
    /// `reused[i]` = `|ℕ^gpu_ij|` (reused in place from the previous batch).
    pub reused: Vec<usize>,
    /// `fetch[i][k]` = `|N_ij ∩ ℕ_kj|` rows GPU `i` reads from GPU `k`.
    pub fetch: Vec<Vec<usize>>,
}

/// The full per-epoch communication plan.
#[derive(Debug, Clone)]
pub struct DedupPlan {
    /// Number of partitions/GPUs.
    pub m: usize,
    /// Number of batches.
    pub n: usize,
    /// One plan per batch, in schedule order.
    pub batches: Vec<BatchPlan>,
}

impl DedupPlan {
    /// Builds the plan for a 2-level partition. `partition_of` must be the
    /// level-1 assignment the plan was built from (it defines transition
    /// ownership).
    pub fn build(plan: &TwoLevelPartition) -> Self {
        let m = plan.m;
        let n = plan.n;
        let owner = &plan.assignment.partition_of;
        let mut batches = Vec::with_capacity(n);
        let mut prev_transition: Option<Vec<Vec<VertexId>>> = None;
        for j in 0..n {
            // Transition sets: batch neighbor union split by owner.
            let mut transition: Vec<Vec<VertexId>> = vec![Vec::new(); m];
            {
                // Merge the m sorted neighbor lists, dedup, route by owner.
                let mut all: Vec<VertexId> = Vec::new();
                for c in plan.batch(j) {
                    all.extend_from_slice(&c.neighbors);
                }
                all.sort_unstable();
                all.dedup();
                for v in all {
                    transition[owner[v as usize] as usize].push(v);
                }
            }
            // Fetch matrix: every neighbor access of chunk (i, j) is served
            // by the transition buffer of the owner's GPU.
            let mut fetch = vec![vec![0usize; m]; m];
            for (i, c) in plan.batch(j).enumerate() {
                for &v in &c.neighbors {
                    fetch[i][owner[v as usize] as usize] += 1;
                }
            }
            // Intra-GPU split against the previous batch.
            let mut new_from_cpu = Vec::with_capacity(m);
            let mut reused = Vec::with_capacity(m);
            for i in 0..m {
                match &prev_transition {
                    Some(prev) => {
                        let (fresh, hit) = diff_sorted(&transition[i], &prev[i]);
                        new_from_cpu.push(fresh);
                        reused.push(hit);
                    }
                    None => {
                        new_from_cpu.push(transition[i].clone());
                        reused.push(0);
                    }
                }
            }
            prev_transition = Some(transition.clone());
            batches.push(BatchPlan {
                transition,
                new_from_cpu,
                reused,
                fetch,
            });
        }
        DedupPlan { m, n, batches }
    }

    /// `V_ori = Σ_ij |N_ij|`: host→GPU volume (in vertices) of the vanilla
    /// per-chunk transfer scheme.
    pub fn v_ori(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.fetch.iter().flatten().sum::<usize>())
            .sum()
    }

    /// `V_+p2p = Σ_j |∪_i N_ij|`: host→GPU volume with inter-GPU
    /// deduplication only.
    pub fn v_p2p(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.transition.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// `V_+ru`: host→GPU volume with both inter-GPU deduplication and
    /// intra-GPU reuse between adjacent batches.
    pub fn v_ru(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.new_from_cpu.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Inter-GPU rows actually fetched remotely (`k ≠ i`), per epoch layer.
    pub fn d2d_rows(&self) -> usize {
        self.batches
            .iter()
            .map(|b| {
                b.fetch
                    .iter()
                    .enumerate()
                    .map(|(i, row)| {
                        row.iter()
                            .enumerate()
                            .filter(|&(k, _)| k != i)
                            .map(|(_, &c)| c)
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    /// Structural consistency checks (used by tests and debug builds).
    pub fn validate(&self, plan: &TwoLevelPartition) -> Result<(), String> {
        if self.batches.len() != self.n {
            return Err("batch count mismatch".into());
        }
        for (j, b) in self.batches.iter().enumerate() {
            // Transition sets are disjoint and cover exactly the batch union.
            let mut union: Vec<VertexId> = Vec::new();
            for c in plan.batch(j) {
                union.extend_from_slice(&c.neighbors);
            }
            union.sort_unstable();
            union.dedup();
            let mut combined: Vec<VertexId> = b.transition.iter().flatten().copied().collect();
            combined.sort_unstable();
            if combined != union {
                return Err(format!("batch {j}: transition sets do not tile the union"));
            }
            // Fetch matrix accounts for every neighbor access.
            for (i, c) in plan.batch(j).enumerate() {
                let total: usize = b.fetch[i].iter().sum();
                if total != c.num_neighbors() {
                    return Err(format!(
                        "batch {j} gpu {i}: fetch rows {total} != |N_ij| {}",
                        c.num_neighbors()
                    ));
                }
            }
            // reused + new == transition size.
            for i in 0..self.m {
                if b.reused[i] + b.new_from_cpu[i].len() != b.transition[i].len() {
                    return Err(format!("batch {j} gpu {i}: reuse split inconsistent"));
                }
            }
        }
        Ok(())
    }
}

/// Returns `(a \ b, |a ∩ b|)` for sorted slices.
fn diff_sorted(a: &[VertexId], b: &[VertexId]) -> (Vec<VertexId>, usize) {
    let mut fresh = Vec::new();
    let mut hit = 0usize;
    let mut bi = 0usize;
    for &v in a {
        while bi < b.len() && b[bi] < v {
            bi += 1;
        }
        if bi < b.len() && b[bi] == v {
            hit += 1;
        } else {
            fresh.push(v);
        }
    }
    (fresh, hit)
}

/// Intersection size of two sorted slices.
pub fn intersect_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut ai, mut bi, mut count) = (0usize, 0usize, 0usize);
    while ai < a.len() && bi < b.len() {
        match a[ai].cmp(&b[bi]) {
            std::cmp::Ordering::Less => ai += 1,
            std::cmp::Ordering::Greater => bi += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                ai += 1;
                bi += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::generators;
    use hongtu_tensor::SeededRng;

    fn plan(
        n_vertices: usize,
        m: usize,
        n: usize,
        seed: u64,
    ) -> (hongtu_graph::Graph, TwoLevelPartition) {
        let mut rng = SeededRng::new(seed);
        let g = generators::erdos_renyi(n_vertices, 6.0, &mut rng);
        let p = TwoLevelPartition::build(&g, m, n, seed);
        (g, p)
    }

    #[test]
    fn plan_validates_on_random_graphs() {
        for seed in [1, 2, 3] {
            let (_, p) = plan(500, 4, 3, seed);
            let d = DedupPlan::build(&p);
            assert!(d.validate(&p).is_ok(), "{:?}", d.validate(&p));
        }
    }

    #[test]
    fn volume_ordering_invariant() {
        let (_, p) = plan(800, 4, 4, 7);
        let d = DedupPlan::build(&p);
        assert!(d.v_ori() >= d.v_p2p(), "{} < {}", d.v_ori(), d.v_p2p());
        assert!(d.v_p2p() >= d.v_ru(), "{} < {}", d.v_p2p(), d.v_ru());
        assert!(d.v_ru() > 0);
    }

    #[test]
    fn v_ori_matches_partition_accounting() {
        let (_, p) = plan(600, 3, 3, 5);
        let d = DedupPlan::build(&p);
        assert_eq!(d.v_ori(), p.v_ori());
    }

    #[test]
    fn single_gpu_plan_has_no_remote_fetches() {
        let (_, p) = plan(300, 1, 4, 2);
        let d = DedupPlan::build(&p);
        assert_eq!(d.d2d_rows(), 0);
        // With one GPU, p2p dedup cannot help: every chunk's neighbors equal
        // the batch union.
        assert_eq!(d.v_ori(), d.v_p2p());
        // But intra-GPU reuse still can.
        assert!(d.v_ru() <= d.v_p2p());
    }

    #[test]
    fn dedup_reduces_volume_when_duplication_exists() {
        // A hub-heavy graph guarantees duplicated neighbors across chunks.
        let mut rng = SeededRng::new(4);
        let g = generators::rmat(10, 8000, generators::RmatParams::social(), &mut rng);
        let p = TwoLevelPartition::build(&g, 4, 4, 1);
        let d = DedupPlan::build(&p);
        assert!(
            d.v_p2p() < d.v_ori(),
            "p2p dedup must reduce volume: {} vs {}",
            d.v_p2p(),
            d.v_ori()
        );
    }

    #[test]
    fn first_batch_has_no_reuse() {
        let (_, p) = plan(400, 2, 3, 9);
        let d = DedupPlan::build(&p);
        assert!(d.batches[0].reused.iter().all(|&r| r == 0));
        for i in 0..2 {
            assert_eq!(d.batches[0].new_from_cpu[i], d.batches[0].transition[i]);
        }
    }

    #[test]
    fn transition_ownership_matches_assignment() {
        let (_, p) = plan(400, 3, 2, 11);
        let d = DedupPlan::build(&p);
        for b in &d.batches {
            for (i, t) in b.transition.iter().enumerate() {
                for &v in t {
                    assert_eq!(p.assignment.partition_of[v as usize] as usize, i);
                }
            }
        }
    }

    #[test]
    fn diff_sorted_basics() {
        let (fresh, hit) = diff_sorted(&[1, 3, 5, 7], &[3, 4, 7]);
        assert_eq!(fresh, vec![1, 5]);
        assert_eq!(hit, 2);
        let (fresh, hit) = diff_sorted(&[], &[1]);
        assert!(fresh.is_empty());
        assert_eq!(hit, 0);
    }

    #[test]
    fn intersect_size_basics() {
        assert_eq!(intersect_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersect_size(&[], &[1]), 0);
        assert_eq!(intersect_size(&[5], &[5]), 1);
    }
}
