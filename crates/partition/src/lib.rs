//! Graph partitioning for HongTu (paper §4.1).
//!
//! HongTu splits the input graph with **edge-cut 2-level partitioning**:
//! first into `m` (= #GPUs) locality-preserving partitions via METIS, then
//! each partition into `n` computation-balanced *chunks* by range splitting.
//! Every chunk owns a disjoint set of destination vertices together with
//! **all** their in-edges, so full-neighbor aggregation (including GAT's
//! per-neighbor-set softmax) runs on a chunk in isolation.
//!
//! This crate provides:
//! - [`multilevel::MultilevelPartitioner`] — a METIS-style multilevel
//!   partitioner (heavy-edge-matching coarsening → greedy growing →
//!   boundary refinement), the paper's METIS substitute;
//! - [`simple`] — hash and contiguous-range baselines;
//! - [`two_level::TwoLevelPartition`] — the full 2-level plan with per-chunk
//!   subgraphs ([`subgraph::ChunkSubgraph`]);
//! - [`replication`] — the neighbor replication factor α (paper Table 3);
//! - [`metrics`] — edge-cut and balance quality measures;
//! - [`dedup`] — transition-set construction and the per-batch
//!   communication plan (Algorithms 2 & 3, §5.1–5.2);
//! - [`buffers`] — in-place transition/neighbor buffer index planning
//!   (§6: stable slots for reused vertices, freed-slot insertion,
//!   merged-buffer deduplication).
//!
//! `dedup` and `buffers` live here (rather than in `hongtu-core`) so that
//! the static plan verifier (`hongtu-verify`) can see every plan type
//! without depending on the engine.

#![forbid(unsafe_code)]
// Indexed loops are deliberate: indices double as vertex/partition ids.
#![allow(clippy::needless_range_loop)]

pub mod buffers;
pub mod chunking;
pub mod dedup;
pub mod metrics;
pub mod multilevel;
pub mod replication;
pub mod simple;
pub mod subgraph;
pub mod two_level;

pub use buffers::{BatchIndices, GpuBufferPlan};
pub use chunking::balanced_ranges;
pub use dedup::{BatchPlan, DedupPlan};
pub use metrics::PartitionQuality;
pub use multilevel::MultilevelPartitioner;
pub use replication::replication_factor;
pub use simple::{hash_partition, range_partition};
pub use subgraph::ChunkSubgraph;
pub use two_level::TwoLevelPartition;

use hongtu_graph::Graph;

/// A vertex → partition assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `partition_of[v]` is the partition id of vertex `v`.
    pub partition_of: Vec<u32>,
    /// Number of partitions.
    pub num_parts: usize,
}

impl Assignment {
    /// Validates that all labels are within range and every partition is
    /// represented (non-empty partitions are required downstream).
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.num_parts];
        for (v, &p) in self.partition_of.iter().enumerate() {
            if p as usize >= self.num_parts {
                return Err(format!("vertex {v} assigned to out-of-range partition {p}"));
            }
            seen[p as usize] = true;
        }
        if let Some(p) = seen.iter().position(|&s| !s) {
            return Err(format!("partition {p} is empty"));
        }
        Ok(())
    }

    /// Vertices of each partition, in ascending vertex order.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_parts];
        for (v, &p) in self.partition_of.iter().enumerate() {
            out[p as usize].push(v as u32);
        }
        out
    }

    /// Sizes of each partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.num_parts];
        for &p in &self.partition_of {
            out[p as usize] += 1;
        }
        out
    }
}

/// A pluggable graph partitioner.
pub trait Partitioner {
    /// Splits `g` into `parts` partitions.
    fn partition(&self, g: &Graph, parts: usize) -> Assignment;
}
