//! In-place buffer index planning (paper §6).
//!
//! HongTu keeps, per GPU, a single data buffer holding the merged
//! transition + neighbor set `M_ij = ℕ_ij ∪ N_ij` of the currently
//! scheduled chunk ("data buffer deduplication"). When the schedule moves
//! from batch `j−1` to batch `j`:
//!
//! - vertices in `M_ij ∩ M_i,j−1` **keep their buffer positions**, so their
//!   data is reused in place without any copying;
//! - positions of discarded vertices (`M_i,j−1 \ M_ij`) are freed and new
//!   vertices (`M_ij \ M_i,j−1`) are written into those slots (grown at the
//!   end only when the free list runs dry) — the paper's Figure 7(a);
//! - the chunk's edge structure is re-indexed so the computation engine
//!   reads neighbor rows **directly out of the buffer** at their planned
//!   positions, with no compaction pass.
//!
//! All of this is precomputed once per partition plan ("In the
//! preprocessing, we process the transition indices for all subgraphs").
//! [`GpuBufferPlan::execute`] actually moves `f32` rows through the planned
//! positions and is verified against direct gathers by the test suite.

use crate::dedup::DedupPlan;
use crate::TwoLevelPartition;
use hongtu_graph::VertexId;
use hongtu_tensor::Matrix;
use std::collections::HashMap;

/// Index plan for one batch on one GPU.
#[derive(Debug, Clone)]
pub struct BatchIndices {
    /// The merged vertex set `M_ij = ℕ_ij ∪ N_ij`, sorted ascending.
    pub merged: Vec<VertexId>,
    /// `position[t]`: buffer slot of `merged[t]` during this batch.
    pub position: Vec<u32>,
    /// Rows to write this batch (vertex absent from the previous buffer):
    /// `(index into merged, slot)`. Rows not listed are reused in place.
    pub incoming: Vec<(u32, u32)>,
    /// Buffer slot of each entry of the chunk's neighbor list
    /// (`chunk.neighbors[t]` lives at `nbr_slot[t]`), which is what the
    /// computation engine indexes through.
    pub nbr_slot: Vec<u32>,
}

impl BatchIndices {
    /// Number of vertices reused in place from the previous batch.
    pub fn reused(&self) -> usize {
        self.merged.len() - self.incoming.len()
    }
}

/// The per-GPU buffer plan across all batches.
#[derive(Debug, Clone)]
pub struct GpuBufferPlan {
    /// GPU / partition index.
    pub gpu: usize,
    /// Buffer capacity in rows (the high-water mark across batches).
    pub capacity: usize,
    /// One index set per batch, in schedule order.
    pub batches: Vec<BatchIndices>,
}

impl GpuBufferPlan {
    /// Builds the plan for GPU `gpu` from the partition and dedup plans.
    pub fn build(plan: &TwoLevelPartition, dedup: &DedupPlan, gpu: usize) -> Self {
        assert!(gpu < plan.m, "GPU {gpu} out of range (m = {})", plan.m);
        let mut batches = Vec::with_capacity(plan.n);
        // slot_of: vertex → slot for the *previous* batch.
        let mut slot_of: HashMap<VertexId, u32> = HashMap::new();
        let mut capacity = 0usize;
        for j in 0..plan.n {
            let chunk = &plan.chunks[gpu][j];
            let transition = &dedup.batches[j].transition[gpu];
            // Merged set: ℕ_ij ∪ N_ij (both sorted).
            let merged = union_sorted(transition, &chunk.neighbors);

            // Free the slots of vertices leaving the buffer.
            let mut free: Vec<u32> = Vec::new();
            let keep: std::collections::HashSet<VertexId> = merged.iter().copied().collect();
            slot_of.retain(|v, slot| {
                if keep.contains(v) {
                    true
                } else {
                    free.push(*slot);
                    false
                }
            });
            free.sort_unstable_by(|a, b| b.cmp(a)); // pop lowest slots first

            // Assign positions: retained vertices keep theirs; newcomers
            // fill freed slots, then extend the buffer.
            let mut next_fresh = capacity as u32;
            let mut position = Vec::with_capacity(merged.len());
            let mut incoming = Vec::new();
            for (t, &v) in merged.iter().enumerate() {
                let slot = match slot_of.get(&v) {
                    Some(&s) => s,
                    None => {
                        let s = free.pop().unwrap_or_else(|| {
                            let s = next_fresh;
                            next_fresh += 1;
                            s
                        });
                        slot_of.insert(v, s);
                        incoming.push((t as u32, s));
                        s
                    }
                };
                position.push(slot);
            }
            capacity = capacity.max(next_fresh as usize);

            // Neighbor-list slots: where each of the chunk's neighbors sits.
            let nbr_slot = chunk
                .neighbors
                .iter()
                .map(|v| {
                    let t = merged.binary_search(v).expect("neighbor in merged set");
                    position[t]
                })
                .collect();
            batches.push(BatchIndices {
                merged,
                position,
                incoming,
                nbr_slot,
            });
        }
        GpuBufferPlan {
            gpu,
            capacity,
            batches,
        }
    }

    /// Builds the plans for every GPU of the machine.
    pub fn build_all(plan: &TwoLevelPartition, dedup: &DedupPlan) -> Vec<GpuBufferPlan> {
        (0..plan.m).map(|g| Self::build(plan, dedup, g)).collect()
    }

    /// Total rows written host→buffer across the epoch (everything not
    /// reused in place). With the full merged-buffer scheme this equals
    /// the incoming-row count per batch.
    pub fn rows_written(&self) -> usize {
        self.batches.iter().map(|b| b.incoming.len()).sum()
    }

    /// Bytes one staging slot of the double-buffered overlap executor must
    /// hold for this GPU's merged neighbor buffer: the full planned
    /// capacity at `row_bytes` per row. The capacity (not the per-batch
    /// merged size) is the right bound because in-place reuse pins slot
    /// positions across batches — a staging slot that held only one
    /// batch's rows would break the stable-position contract of §6.
    pub fn staging_bytes(&self, row_bytes: usize) -> usize {
        self.capacity * row_bytes
    }

    /// Executes the plan for real data: for each batch, writes incoming
    /// rows from the host matrix `h` into the buffer, then materializes
    /// the chunk's neighbor representations by reading the planned slots.
    /// Returns the per-batch neighbor matrices — byte-identical to a
    /// direct `h.gather_rows(chunk.neighbors)`.
    pub fn execute(&self, plan: &TwoLevelPartition, h: &Matrix) -> Vec<Matrix> {
        let dim = h.cols();
        let mut buffer = Matrix::zeros(self.capacity, dim);
        let mut out = Vec::with_capacity(self.batches.len());
        for (j, b) in self.batches.iter().enumerate() {
            for &(t, slot) in &b.incoming {
                let v = b.merged[t as usize] as usize;
                buffer.row_mut(slot as usize).copy_from_slice(h.row(v));
            }
            let chunk = &plan.chunks[self.gpu][j];
            let mut h_nbr = Matrix::zeros(chunk.num_neighbors(), dim);
            for (t, &slot) in b.nbr_slot.iter().enumerate() {
                h_nbr.row_mut(t).copy_from_slice(buffer.row(slot as usize));
            }
            out.push(h_nbr);
        }
        out
    }

    /// Structural validation: positions are in range, live slots are
    /// unique per batch, retained vertices keep stable slots, and the
    /// neighbor slots resolve to the right vertices.
    pub fn validate(&self, plan: &TwoLevelPartition) -> Result<(), String> {
        let mut prev: HashMap<VertexId, u32> = HashMap::new();
        for (j, b) in self.batches.iter().enumerate() {
            if b.position.len() != b.merged.len() {
                return Err(format!("batch {j}: position/merged length mismatch"));
            }
            let mut seen = vec![false; self.capacity];
            for (&v, &slot) in b.merged.iter().zip(&b.position) {
                if slot as usize >= self.capacity {
                    return Err(format!("batch {j}: slot {slot} beyond capacity"));
                }
                if seen[slot as usize] {
                    return Err(format!("batch {j}: slot {slot} double-booked"));
                }
                seen[slot as usize] = true;
                if let Some(&p) = prev.get(&v) {
                    if p != slot {
                        return Err(format!(
                            "batch {j}: vertex {v} moved from slot {p} to {slot} (reuse broken)"
                        ));
                    }
                }
            }
            // Incoming rows are exactly the vertices absent last batch.
            let incoming: std::collections::HashSet<u32> =
                b.incoming.iter().map(|&(t, _)| t).collect();
            for (t, &v) in b.merged.iter().enumerate() {
                let was_resident = prev.contains_key(&v);
                if was_resident == incoming.contains(&(t as u32)) {
                    return Err(format!(
                        "batch {j}: vertex {v} incoming/resident classification wrong"
                    ));
                }
            }
            // Neighbor slots point at the right data.
            let chunk = &plan.chunks[self.gpu][j];
            for (t, &nv) in chunk.neighbors.iter().enumerate() {
                let ti = b
                    .merged
                    .binary_search(&nv)
                    .map_err(|_| format!("batch {j}: neighbor {nv} missing from merged set"))?;
                if b.nbr_slot[t] != b.position[ti] {
                    return Err(format!("batch {j}: neighbor {nv} slot mismatch"));
                }
            }
            prev = b
                .merged
                .iter()
                .copied()
                .zip(b.position.iter().copied())
                .collect();
        }
        Ok(())
    }
}

/// Union of two sorted, deduplicated slices.
fn union_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut k) = (0usize, 0usize);
    while i < a.len() && k < b.len() {
        match a[i].cmp(&b[k]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[k]);
                k += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                k += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[k..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::generators;
    use hongtu_tensor::SeededRng;

    fn setup(seed: u64, m: usize, n: usize) -> (hongtu_graph::Graph, TwoLevelPartition, DedupPlan) {
        let mut rng = SeededRng::new(seed);
        let g = generators::web_hybrid(1200, 6.0, 0.9, 30.0, &mut rng);
        let plan = TwoLevelPartition::build(&g, m, n, seed);
        let dedup = DedupPlan::build(&plan);
        (g, plan, dedup)
    }

    #[test]
    fn union_sorted_basics() {
        assert_eq!(union_sorted(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_sorted(&[], &[4]), vec![4]);
        assert_eq!(union_sorted(&[7], &[]), vec![7]);
    }

    #[test]
    fn plans_validate_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let (_, plan, dedup) = setup(seed, 3, 4);
            for p in GpuBufferPlan::build_all(&plan, &dedup) {
                assert!(p.validate(&plan).is_ok(), "{:?}", p.validate(&plan));
            }
        }
    }

    #[test]
    fn execution_matches_direct_gather() {
        let (_, plan, dedup) = setup(7, 4, 5);
        let h = Matrix::from_fn(1200, 8, |r, c| ((r * 8 + c) as f32 * 0.013).sin());
        for gpu in 0..4 {
            let bp = GpuBufferPlan::build(&plan, &dedup, gpu);
            let outs = bp.execute(&plan, &h);
            for (j, got) in outs.iter().enumerate() {
                let chunk = &plan.chunks[gpu][j];
                let idx: Vec<usize> = chunk.neighbors.iter().map(|&v| v as usize).collect();
                let want = h.gather_rows(&idx);
                assert_eq!(got, &want, "gpu {gpu} batch {j}");
            }
        }
    }

    #[test]
    fn reuse_matches_dedup_plan_accounting() {
        // The buffer plan's in-place reuse must be at least the dedup
        // plan's transition-set reuse (the merged buffer can only reuse
        // *more*, since N_ij overlap also persists).
        let (_, plan, dedup) = setup(9, 2, 6);
        for gpu in 0..2 {
            let bp = GpuBufferPlan::build(&plan, &dedup, gpu);
            for j in 1..plan.n {
                assert!(
                    bp.batches[j].reused() >= dedup.batches[j].reused[gpu],
                    "gpu {gpu} batch {j}: buffer reuse {} < transition reuse {}",
                    bp.batches[j].reused(),
                    dedup.batches[j].reused[gpu]
                );
            }
        }
    }

    #[test]
    fn capacity_is_bounded_by_peak_merged_size_plus_fragmentation() {
        let (_, plan, dedup) = setup(11, 3, 4);
        for gpu in 0..3 {
            let bp = GpuBufferPlan::build(&plan, &dedup, gpu);
            let peak = bp.batches.iter().map(|b| b.merged.len()).max().unwrap();
            // A fresh slot is only minted when the free list is empty, so
            // capacity never exceeds the largest *union of consecutive*
            // merged sets; sanity-bound it at 2× the peak single batch.
            assert!(
                bp.capacity <= 2 * peak,
                "gpu {gpu}: capacity {} vs peak merged {peak}",
                bp.capacity
            );
            assert!(bp.capacity >= peak);
        }
    }

    #[test]
    fn first_batch_loads_everything() {
        let (_, plan, dedup) = setup(13, 2, 3);
        let bp = GpuBufferPlan::build(&plan, &dedup, 0);
        assert_eq!(bp.batches[0].incoming.len(), bp.batches[0].merged.len());
        assert_eq!(bp.batches[0].reused(), 0);
    }

    #[test]
    fn adjacent_local_chunks_reuse_heavily() {
        // On an id-local graph, adjacent chunks share most of their
        // neighbor windows; the planner should reuse a large fraction.
        let (_, plan, dedup) = setup(17, 1, 8);
        let bp = GpuBufferPlan::build(&plan, &dedup, 0);
        let total: usize = bp.batches[1..].iter().map(|b| b.merged.len()).sum();
        let reused: usize = bp.batches[1..].iter().map(|b| b.reused()).sum();
        assert!(
            reused * 4 >= total,
            "expected ≥25% in-place reuse on a window graph: {reused}/{total}"
        );
    }

    #[test]
    fn staging_bytes_scale_with_capacity_and_row_width() {
        let (_, plan, dedup) = setup(23, 2, 4);
        let bp = GpuBufferPlan::build(&plan, &dedup, 0);
        assert_eq!(bp.staging_bytes(0), 0);
        assert_eq!(bp.staging_bytes(64), bp.capacity * 64);
        let peak = bp.batches.iter().map(|b| b.merged.len()).max().unwrap();
        assert!(bp.staging_bytes(4) >= peak * 4);
    }

    #[test]
    fn single_batch_plan_is_trivial() {
        let (_, plan, dedup) = setup(19, 2, 1);
        let bp = GpuBufferPlan::build(&plan, &dedup, 1);
        assert_eq!(bp.batches.len(), 1);
        assert_eq!(bp.capacity, bp.batches[0].merged.len());
        assert!(bp.validate(&plan).is_ok());
    }
}
