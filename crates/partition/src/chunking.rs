//! Range-based chunking (paper §4.1): a partition's vertex sequence is
//! split into `n` *computation-balanced* chunks, balancing by in-edge count
//! (the aggregation work per destination vertex), following Gemini-style
//! chunked range partitioning.

/// Splits the sequence `items` (with per-item costs) into `n` contiguous
/// ranges whose total costs are as even as a greedy forward sweep allows.
/// Every range is non-empty provided `items.len() >= n`.
pub fn balanced_ranges(costs: &[u64], n: usize) -> Vec<std::ops::Range<usize>> {
    assert!(n >= 1, "need at least one chunk");
    assert!(
        costs.len() >= n,
        "fewer items ({}) than chunks ({n})",
        costs.len()
    );
    let total: u64 = costs.iter().sum();
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut consumed = 0u64;
    for chunk in 0..n {
        let remaining_chunks = (n - chunk) as u64;
        let target = (total - consumed + remaining_chunks - 1) / remaining_chunks.max(1);
        let mut end = start;
        // Must leave at least (n - chunk - 1) items for the remaining chunks.
        let max_end = costs.len() - (n - chunk - 1);
        while end < max_end && (acc < target || end == start) {
            acc += costs[end];
            end += 1;
            if acc >= target && end > start {
                break;
            }
        }
        if chunk == n - 1 {
            end = costs.len();
            acc = total - consumed;
        }
        ranges.push(start..end);
        consumed += acc;
        start = end;
        acc = 0;
    }
    debug_assert_eq!(ranges.last().unwrap().end, costs.len());
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range_cost(costs: &[u64], r: &std::ops::Range<usize>) -> u64 {
        costs[r.clone()].iter().sum()
    }

    #[test]
    fn uniform_costs_split_evenly() {
        let costs = vec![1u64; 12];
        let ranges = balanced_ranges(&costs, 4);
        assert_eq!(ranges.len(), 4);
        for r in &ranges {
            assert_eq!(r.len(), 3);
        }
    }

    #[test]
    fn ranges_tile_the_sequence() {
        let costs: Vec<u64> = (0..37).map(|i| (i % 7) + 1).collect();
        let ranges = balanced_ranges(&costs, 5);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 37);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(ranges.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn skewed_costs_are_balanced() {
        // One huge item at the front; the rest small.
        let mut costs = vec![1u64; 100];
        costs[0] = 100;
        let ranges = balanced_ranges(&costs, 4);
        // First chunk should be just the huge item (or close);
        // remaining chunks split the rest.
        let c0 = range_cost(&costs, &ranges[0]);
        assert!(c0 >= 50, "first chunk cost {c0}");
        let rest_max = ranges[1..]
            .iter()
            .map(|r| range_cost(&costs, r))
            .max()
            .unwrap();
        assert!(rest_max <= 60, "rest max {rest_max}");
    }

    #[test]
    fn single_chunk_takes_everything() {
        let costs = vec![3u64, 1, 4];
        let ranges = balanced_ranges(&costs, 1);
        assert_eq!(ranges, vec![0..3]);
    }

    #[test]
    fn n_equals_len_gives_singletons() {
        let costs = vec![5u64, 1, 9];
        let ranges = balanced_ranges(&costs, 3);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn zero_costs_are_fine() {
        let costs = vec![0u64; 8];
        let ranges = balanced_ranges(&costs, 4);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 8);
        assert!(ranges.iter().all(|r| !r.is_empty()));
    }

    #[test]
    #[should_panic(expected = "fewer items")]
    fn rejects_more_chunks_than_items() {
        let _ = balanced_ranges(&[1, 2], 3);
    }
}
