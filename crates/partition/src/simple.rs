//! Baseline partitioners: hash (locality-destroying) and contiguous range
//! (locality-preserving on id-local graphs). Both are used as ablation
//! baselines against the multilevel partitioner.

use crate::{Assignment, Partitioner};
use hongtu_graph::Graph;

/// Assigns vertex `v` to partition `hash(v) % parts`.
pub fn hash_partition(n: usize, parts: usize) -> Assignment {
    assert!(
        parts >= 1 && parts <= n,
        "hash_partition: need 1 <= parts <= n"
    );
    let partition_of = (0..n)
        .map(|v| {
            // Fibonacci hashing of the vertex id.
            let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            (h % parts as u64) as u32
        })
        .collect();
    let a = Assignment {
        partition_of,
        num_parts: parts,
    };
    debug_assert!(a.validate().is_ok());
    a
}

/// Splits `0..n` into `parts` contiguous, near-equal ranges.
pub fn range_partition(n: usize, parts: usize) -> Assignment {
    assert!(
        parts >= 1 && parts <= n,
        "range_partition: need 1 <= parts <= n"
    );
    let mut partition_of = vec![0u32; n];
    let base = n / parts;
    let extra = n % parts;
    let mut v = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        for _ in 0..size {
            partition_of[v] = p as u32;
            v += 1;
        }
    }
    Assignment {
        partition_of,
        num_parts: parts,
    }
}

/// Hash partitioner as a [`Partitioner`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, g: &Graph, parts: usize) -> Assignment {
        hash_partition(g.num_vertices(), parts)
    }
}

/// Range partitioner as a [`Partitioner`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn partition(&self, g: &Graph, parts: usize) -> Assignment {
        range_partition(g.num_vertices(), parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_partition_is_contiguous_and_balanced() {
        let a = range_partition(10, 3);
        assert_eq!(a.partition_of, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert!(a.validate().is_ok());
        let sizes = a.sizes();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn range_partition_exact_division() {
        let a = range_partition(9, 3);
        assert_eq!(a.sizes(), vec![3, 3, 3]);
    }

    #[test]
    fn hash_partition_is_roughly_balanced() {
        let a = hash_partition(10_000, 8);
        assert!(a.validate().is_ok());
        for &s in &a.sizes() {
            assert!((s as f64 - 1250.0).abs() < 300.0, "size {s}");
        }
    }

    #[test]
    fn single_partition_trivial() {
        let a = range_partition(5, 1);
        assert!(a.partition_of.iter().all(|&p| p == 0));
        assert!(a.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "need 1 <= parts <= n")]
    fn more_parts_than_vertices_rejected() {
        let _ = range_partition(2, 3);
    }
}
