//! Per-chunk subgraph: the unit of GPU execution (paper Figure 5).
//!
//! A chunk owns a disjoint set of destination vertices and **all** their
//! in-edges. Edges reference neighbors through a *local* index into the
//! chunk's deduplicated neighbor list `N_ij`, which is exactly the layout
//! the computation engine needs to read neighbor data out of the on-GPU
//! neighbor buffer (paper §6, "in-place neighbor data management").

use hongtu_graph::{Graph, VertexId};

/// A partitioned subgraph `G_ij`: destination set `V_ij`, in-edges `E_ij`,
/// and deduplicated neighbor list `N_ij`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkSubgraph {
    /// Owning partition id `i` (the GPU this chunk is scheduled on).
    pub part: usize,
    /// Chunk id `j` within the partition (the batch it belongs to).
    pub chunk: usize,
    /// Destination vertices (global ids, ascending). `V_ij`.
    pub dests: Vec<VertexId>,
    /// Deduplicated in-neighbor list (global ids, ascending). `N_ij`.
    pub neighbors: Vec<VertexId>,
    /// Local CSC offsets: in-edges of `dests[k]` occupy
    /// `offsets[k]..offsets[k+1]` of `nbr_index` / `gcn_weights`.
    pub offsets: Vec<usize>,
    /// Per-edge index into `neighbors` (the local neighbor id of the source).
    pub nbr_index: Vec<u32>,
    /// Per-edge symmetric GCN weight `d_uv` (Equation 2).
    pub gcn_weights: Vec<f32>,
}

impl ChunkSubgraph {
    /// Builds the chunk subgraph for destination set `dests` (must be sorted
    /// and unique) against the full graph `g`.
    pub fn build(g: &Graph, part: usize, chunk: usize, dests: Vec<VertexId>) -> Self {
        debug_assert!(
            dests.windows(2).all(|w| w[0] < w[1]),
            "dests must be sorted & unique"
        );
        // Collect the union of in-neighbors.
        let mut neighbors: Vec<VertexId> = Vec::new();
        for &d in &dests {
            neighbors.extend_from_slice(g.in_neighbors(d));
        }
        neighbors.sort_unstable();
        neighbors.dedup();
        // Local edge lists.
        let mut offsets = Vec::with_capacity(dests.len() + 1);
        offsets.push(0usize);
        let mut nbr_index = Vec::new();
        let mut gcn_weights = Vec::new();
        for &d in &dests {
            let dv = (1 + g.in_degree(d)) as f32;
            for &u in g.in_neighbors(d) {
                let local = neighbors
                    .binary_search(&u)
                    .expect("neighbor present by construction");
                nbr_index.push(local as u32);
                let du = (1 + g.out_degree(u)) as f32;
                gcn_weights.push(1.0 / (du * dv).sqrt());
            }
            offsets.push(nbr_index.len());
        }
        ChunkSubgraph {
            part,
            chunk,
            dests,
            neighbors,
            offsets,
            nbr_index,
            gcn_weights,
        }
    }

    /// Number of destination vertices `|V_ij|`.
    #[inline]
    pub fn num_dests(&self) -> usize {
        self.dests.len()
    }

    /// Number of in-edges `|E_ij|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.nbr_index.len()
    }

    /// Number of distinct in-neighbors `|N_ij|`.
    #[inline]
    pub fn num_neighbors(&self) -> usize {
        self.neighbors.len()
    }

    /// Local in-edge range of destination `k` (local index).
    #[inline]
    pub fn in_edges_of(&self, k: usize) -> std::ops::Range<usize> {
        self.offsets[k]..self.offsets[k + 1]
    }

    /// The chunk's weighted adjacency as a sparse matrix
    /// (`|V_ij| × |N_ij|`, GCN-normalized values) — the operand the
    /// paper's cuSparse-based computation engine aggregates with:
    /// `AGGREGATE(H) = A · H_{N_ij}`.
    pub fn to_csr_matrix(&self) -> hongtu_tensor::CsrMatrix {
        hongtu_tensor::CsrMatrix::from_parts(
            self.num_dests(),
            self.num_neighbors(),
            self.offsets.clone(),
            self.nbr_index.clone(),
            self.gcn_weights.clone(),
        )
    }

    /// Bytes of topology this chunk occupies on a device (offsets + edge
    /// indices + weights + the two vertex-id lists).
    pub fn topology_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.nbr_index.len() * std::mem::size_of::<u32>()
            + self.gcn_weights.len() * std::mem::size_of::<f32>()
            + (self.dests.len() + self.neighbors.len()) * std::mem::size_of::<VertexId>()
    }

    /// Structural validation against the source graph.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.offsets.len() != self.dests.len() + 1 {
            return Err("offsets length must be |dests| + 1".into());
        }
        if self.nbr_index.len() != self.gcn_weights.len() {
            return Err("edge arrays disagree in length".into());
        }
        if self.neighbors.windows(2).any(|w| w[0] >= w[1]) {
            return Err("neighbor list not sorted/unique".into());
        }
        for (k, &d) in self.dests.iter().enumerate() {
            let expect = g.in_neighbors(d);
            let got = &self.nbr_index[self.in_edges_of(k)];
            if expect.len() != got.len() {
                return Err(format!(
                    "dest {d}: edge count {} != {}",
                    got.len(),
                    expect.len()
                ));
            }
            for (&want, &li) in expect.iter().zip(got) {
                if self.neighbors[li as usize] != want {
                    return Err(format!("dest {d}: edge resolves to wrong neighbor"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::GraphBuilder;

    fn toy() -> Graph {
        // in-edges: 2←{0,1,3}, 1←{0}, 0←{2}
        let mut b = GraphBuilder::new(4);
        for (s, t) in [(0, 1), (0, 2), (1, 2), (2, 0), (3, 2)] {
            b.add_edge(s, t);
        }
        b.build()
    }

    #[test]
    fn builds_dedup_neighbor_list() {
        let g = toy();
        let c = ChunkSubgraph::build(&g, 0, 0, vec![1, 2]);
        assert_eq!(c.num_dests(), 2);
        assert_eq!(c.num_edges(), 4); // 1←0 plus 2←{0,1,3}
        assert_eq!(c.neighbors, vec![0, 1, 3]);
        assert!(c.validate(&g).is_ok());
    }

    #[test]
    fn full_neighbor_set_per_dest() {
        // Even when a chunk only holds vertex 2, *all* of 2's in-neighbors
        // are present — the property that makes GAT-style softmax work.
        let g = toy();
        let c = ChunkSubgraph::build(&g, 0, 0, vec![2]);
        assert_eq!(c.num_edges(), g.in_degree(2));
        assert_eq!(c.neighbors.len(), 3);
    }

    #[test]
    fn edge_indices_resolve_to_sources() {
        let g = toy();
        let c = ChunkSubgraph::build(&g, 1, 3, vec![0, 2]);
        assert_eq!((c.part, c.chunk), (1, 3));
        for (k, &d) in c.dests.iter().enumerate() {
            let resolved: Vec<VertexId> = c.nbr_index[c.in_edges_of(k)]
                .iter()
                .map(|&i| c.neighbors[i as usize])
                .collect();
            assert_eq!(resolved, g.in_neighbors(d));
        }
    }

    #[test]
    fn gcn_weights_match_global_normalization() {
        let g = toy();
        let c = ChunkSubgraph::build(&g, 0, 0, vec![2]);
        // edge 0→2: out_deg(0)=2 → du=3; in_deg(2)=3 → dv=4
        let w = c.gcn_weights[0];
        assert!((w - 1.0 / (3.0f32 * 4.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_dest_set_is_legal() {
        let g = toy();
        let c = ChunkSubgraph::build(&g, 0, 0, vec![]);
        assert_eq!(c.num_dests(), 0);
        assert_eq!(c.num_edges(), 0);
        assert!(c.validate(&g).is_ok());
    }

    #[test]
    fn isolated_dest_has_no_edges() {
        let g = toy();
        let c = ChunkSubgraph::build(&g, 0, 0, vec![3]);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.num_neighbors(), 0);
        assert!(c.validate(&g).is_ok());
    }

    #[test]
    fn csr_matrix_adapter_matches_edge_lists() {
        let g = toy();
        let c = ChunkSubgraph::build(&g, 0, 0, vec![0, 1, 2, 3]);
        let a = c.to_csr_matrix();
        assert_eq!(a.rows(), c.num_dests());
        assert_eq!(a.cols(), c.num_neighbors());
        assert_eq!(a.nnz(), c.num_edges());
        // Densified row k has mass exactly on k's neighbor positions.
        let dense = a.to_dense();
        for k in 0..c.num_dests() {
            let mut expect = vec![0.0f32; c.num_neighbors()];
            for e in c.in_edges_of(k) {
                expect[c.nbr_index[e] as usize] += c.gcn_weights[e];
            }
            assert_eq!(dense.row(k), &expect[..]);
        }
    }

    #[test]
    fn topology_bytes_is_positive_and_scales() {
        let g = toy();
        let small = ChunkSubgraph::build(&g, 0, 0, vec![1]);
        let big = ChunkSubgraph::build(&g, 0, 0, vec![0, 1, 2, 3]);
        assert!(big.topology_bytes() > small.topology_bytes());
    }
}
