//! The full 2-level partition plan (paper §4.1 and Figure 5).
//!
//! Level 1 splits the graph into `m` locality-preserving partitions (one per
//! GPU) with the multilevel partitioner. Level 2 splits each partition's
//! member list (ascending vertex id, preserving id locality) into `n`
//! chunks balanced by in-edge count. Chunks with the same local position
//! `j` across partitions form *batch* `j` and are scheduled concurrently.

use crate::chunking::balanced_ranges;
use crate::subgraph::ChunkSubgraph;
use crate::{Assignment, Partitioner};
use hongtu_graph::Graph;

/// A complete `m × n` partition plan with materialized chunk subgraphs.
#[derive(Debug, Clone)]
pub struct TwoLevelPartition {
    /// Number of partitions (GPUs).
    pub m: usize,
    /// Number of chunks per partition (batches).
    pub n: usize,
    /// Level-1 vertex assignment.
    pub assignment: Assignment,
    /// `chunks[i][j]` is subgraph `G_ij` (partition `i`, batch `j`).
    pub chunks: Vec<Vec<ChunkSubgraph>>,
}

impl TwoLevelPartition {
    /// Builds the plan with the default partitioner portfolio (multilevel
    /// vs contiguous range, whichever cuts fewer edges).
    pub fn build(g: &Graph, m: usize, n: usize, seed: u64) -> Self {
        let assignment = crate::multilevel::best_of(g, m, seed);
        Self::from_assignment(g, assignment, n)
    }

    /// Builds the plan with a caller-supplied level-1 partitioner.
    pub fn build_with(g: &Graph, m: usize, n: usize, partitioner: &dyn Partitioner) -> Self {
        assert!(m >= 1 && n >= 1, "need m >= 1 and n >= 1");
        let assignment = partitioner.partition(g, m);
        Self::from_assignment(g, assignment, n)
    }

    /// Builds the plan from an existing level-1 assignment.
    pub fn from_assignment(g: &Graph, assignment: Assignment, n: usize) -> Self {
        let m = assignment.num_parts;
        let members = assignment.members();
        let mut chunks = Vec::with_capacity(m);
        for (i, part_members) in members.into_iter().enumerate() {
            assert!(
                part_members.len() >= n,
                "partition {i} has {} vertices, fewer than {n} chunks",
                part_members.len()
            );
            // Balance chunks by aggregation work = in-edge count (+1 so
            // isolated vertices still carry weight for the UPDATE matmul).
            let costs: Vec<u64> = part_members
                .iter()
                .map(|&v| 1 + g.in_degree(v) as u64)
                .collect();
            let ranges = balanced_ranges(&costs, n);
            let part_chunks: Vec<ChunkSubgraph> = ranges
                .into_iter()
                .enumerate()
                .map(|(j, r)| ChunkSubgraph::build(g, i, j, part_members[r].to_vec()))
                .collect();
            chunks.push(part_chunks);
        }
        TwoLevelPartition {
            m,
            n,
            assignment,
            chunks,
        }
    }

    /// All subgraphs of batch `j` (one per partition).
    pub fn batch(&self, j: usize) -> impl Iterator<Item = &ChunkSubgraph> {
        self.chunks.iter().map(move |p| &p[j])
    }

    /// Iterates over all `m × n` chunks, partition-major.
    pub fn all_chunks(&self) -> impl Iterator<Item = &ChunkSubgraph> {
        self.chunks.iter().flatten()
    }

    /// Total neighbor-transfer volume if every chunk's neighbor set is
    /// loaded individually: `V_ori = Σ_ij |N_ij|` (paper §5.3), in vertices.
    pub fn v_ori(&self) -> usize {
        self.all_chunks().map(|c| c.num_neighbors()).sum()
    }

    /// Validates the plan: chunks disjointly cover V, each chunk is valid.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let mut seen = vec![false; g.num_vertices()];
        for c in self.all_chunks() {
            c.validate(g)?;
            for &d in &c.dests {
                if seen[d as usize] {
                    return Err(format!("vertex {d} owned by more than one chunk"));
                }
                seen[d as usize] = true;
            }
        }
        if let Some(v) = seen.iter().position(|&s| !s) {
            return Err(format!("vertex {v} not owned by any chunk"));
        }
        Ok(())
    }

    /// Replaces the chunk grid (used by the reorganization pass); chunk
    /// `part`/`chunk` ids are rewritten to match the new grid positions.
    pub fn with_chunks(mut self, chunks: Vec<Vec<ChunkSubgraph>>) -> Self {
        assert_eq!(chunks.len(), self.m, "chunk grid must keep m rows");
        for (i, row) in chunks.iter().enumerate() {
            assert_eq!(row.len(), self.n, "partition {i} must keep n chunks");
        }
        self.chunks = chunks;
        for (i, row) in self.chunks.iter_mut().enumerate() {
            for (j, c) in row.iter_mut().enumerate() {
                c.part = i;
                c.chunk = j;
            }
        }
        self
    }
}

/// Destination-count weighted mean of `|N_ij|` over chunks — used in memory
/// sizing discussions.
pub fn mean_neighbors(plan: &TwoLevelPartition) -> f64 {
    let total: usize = plan.all_chunks().map(|c| c.num_neighbors()).sum();
    total as f64 / (plan.m * plan.n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::{generators, VertexId};
    use hongtu_tensor::SeededRng;

    fn graph() -> Graph {
        generators::erdos_renyi(400, 5.0, &mut SeededRng::new(2))
    }

    #[test]
    fn plan_covers_all_vertices_disjointly() {
        let g = graph();
        let plan = TwoLevelPartition::build(&g, 4, 3, 1);
        assert_eq!(plan.m, 4);
        assert_eq!(plan.n, 3);
        assert!(plan.validate(&g).is_ok());
    }

    #[test]
    fn batches_group_same_chunk_index() {
        let g = graph();
        let plan = TwoLevelPartition::build(&g, 3, 2, 1);
        let batch1: Vec<_> = plan.batch(1).collect();
        assert_eq!(batch1.len(), 3);
        for (i, c) in batch1.iter().enumerate() {
            assert_eq!(c.part, i);
            assert_eq!(c.chunk, 1);
        }
    }

    #[test]
    fn chunks_are_edge_balanced_within_partition() {
        let g = graph();
        let plan = TwoLevelPartition::build(&g, 2, 4, 1);
        for row in &plan.chunks {
            let loads: Vec<usize> = row.iter().map(|c| c.num_edges() + c.num_dests()).collect();
            let max = *loads.iter().max().unwrap() as f64;
            let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
            assert!(max <= mean * 2.0, "loads {loads:?}");
        }
    }

    #[test]
    fn total_edges_preserved() {
        let g = graph();
        let plan = TwoLevelPartition::build(&g, 4, 2, 3);
        let total: usize = plan.all_chunks().map(|c| c.num_edges()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn v_ori_at_least_distinct_sources() {
        let g = graph();
        let plan = TwoLevelPartition::build(&g, 4, 4, 3);
        // V_ori counts each chunk's neighbor set; must be at least the
        // number of distinct sources in the whole graph.
        let distinct_sources = (0..g.num_vertices())
            .filter(|&v| g.out_degree(v as VertexId) > 0)
            .count();
        assert!(plan.v_ori() >= distinct_sources);
    }

    #[test]
    fn single_gpu_single_chunk_is_whole_graph() {
        let g = graph();
        let plan = TwoLevelPartition::build(&g, 1, 1, 0);
        assert_eq!(plan.chunks[0][0].num_dests(), g.num_vertices());
        assert_eq!(plan.chunks[0][0].num_edges(), g.num_edges());
    }

    #[test]
    #[should_panic(expected = "fewer than")]
    fn rejects_more_chunks_than_partition_vertices() {
        let g = generators::erdos_renyi(12, 2.0, &mut SeededRng::new(1));
        let _ = TwoLevelPartition::build(&g, 4, 10, 0);
    }

    #[test]
    fn with_chunks_renumbers_ids() {
        let g = graph();
        let plan = TwoLevelPartition::build(&g, 2, 2, 1);
        let mut grid = plan.chunks.clone();
        grid[0].reverse(); // permute batch order in partition 0
        let plan2 = plan.with_chunks(grid);
        for (i, row) in plan2.chunks.iter().enumerate() {
            for (j, c) in row.iter().enumerate() {
                assert_eq!((c.part, c.chunk), (i, j));
            }
        }
        assert!(plan2.validate(&g).is_ok());
    }
}
