//! Neighbor replication factor α (paper §2.4, Table 3).
//!
//! When a graph is split into `P` subgraphs, a vertex with out-edges into
//! several subgraphs is replicated to each of them as an in-neighbor. The
//! replication factor `α(P) = Σ_p |N_p| / |V|` measures the average number
//! of neighbor replicas per vertex, and hence the host-GPU communication
//! amplification of naive per-subgraph transfers.

use crate::two_level::TwoLevelPartition;
use crate::Assignment;
use hongtu_graph::{Graph, VertexId};

/// Replication factor of a level-1 assignment: for each partition `p`, the
/// distinct in-neighbor set `N_p = {u : ∃ u→v, v ∈ p}` is counted, and the
/// total is normalized by `|V|`.
pub fn replication_factor(g: &Graph, a: &Assignment) -> f64 {
    assert_eq!(
        a.partition_of.len(),
        g.num_vertices(),
        "assignment/graph size mismatch"
    );
    let mut total = 0usize;
    // Mark-array reused across partitions, versioned by partition id + 1.
    let mut mark = vec![0u32; g.num_vertices()];
    for p in 0..a.num_parts {
        let stamp = p as u32 + 1;
        for v in 0..g.num_vertices() {
            if a.partition_of[v] as usize != p {
                continue;
            }
            for &u in g.in_neighbors(v as VertexId) {
                if mark[u as usize] != stamp {
                    mark[u as usize] = stamp;
                    total += 1;
                }
            }
        }
    }
    total as f64 / g.num_vertices() as f64
}

/// Replication factor at chunk granularity for a 2-level plan:
/// `α(m·n) = Σ_ij |N_ij| / |V|` (the paper's Table 3 is computed over the
/// total number of subgraphs `m·n`).
pub fn replication_factor_chunks(g: &Graph, plan: &TwoLevelPartition) -> f64 {
    plan.v_ori() as f64 / g.num_vertices() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::metis_like;
    use crate::simple::range_partition;
    use hongtu_graph::generators;
    use hongtu_tensor::SeededRng;

    #[test]
    fn single_partition_alpha_counts_distinct_sources() {
        let mut rng = SeededRng::new(1);
        let g = generators::erdos_renyi(200, 4.0, &mut rng);
        let a = range_partition(200, 1);
        let alpha = replication_factor(&g, &a);
        let sources = (0..200)
            .filter(|&v| g.out_degree(v as VertexId) > 0)
            .count() as f64
            / 200.0;
        assert!((alpha - sources).abs() < 1e-9);
        assert!(alpha <= 1.0);
    }

    #[test]
    fn alpha_grows_with_partitions() {
        let mut rng = SeededRng::new(2);
        let g = generators::rmat(12, 40_000, generators::RmatParams::social(), &mut rng);
        let a2 = replication_factor(&g, &metis_like(&g, 2, 1));
        let a8 = replication_factor(&g, &metis_like(&g, 8, 1));
        let a32 = replication_factor(&g, &metis_like(&g, 32, 1));
        assert!(a2 < a8 && a8 < a32, "α: {a2:.2} {a8:.2} {a32:.2}");
    }

    #[test]
    fn alpha_bounded_by_partition_count_and_degree() {
        let mut rng = SeededRng::new(3);
        let g = generators::erdos_renyi(300, 3.0, &mut rng);
        let parts = 5;
        let a = metis_like(&g, parts, 2);
        let alpha = replication_factor(&g, &a);
        assert!(alpha <= parts as f64);
        // Also bounded by total out-degree (each replica needs an out-edge).
        assert!(alpha <= g.num_edges() as f64 / g.num_vertices() as f64);
    }

    #[test]
    fn local_graphs_replicate_less_than_random() {
        let mut rng = SeededRng::new(4);
        let g_local = generators::local_window(3000, 6.0, 20.0, &mut rng);
        let g_rand = generators::erdos_renyi(3000, 6.0, &mut rng);
        let al = replication_factor(&g_local, &range_partition(3000, 16));
        let ar = replication_factor(&g_rand, &range_partition(3000, 16));
        assert!(al < ar * 0.5, "local α {al:.2} vs random α {ar:.2}");
    }

    #[test]
    fn chunk_alpha_at_least_partition_alpha() {
        let mut rng = SeededRng::new(5);
        let g = generators::erdos_renyi(600, 5.0, &mut rng);
        let plan = crate::two_level::TwoLevelPartition::build(&g, 4, 4, 1);
        let a_chunks = replication_factor_chunks(&g, &plan);
        let a_parts = replication_factor(&g, &plan.assignment);
        assert!(a_chunks >= a_parts - 1e-9, "{a_chunks} < {a_parts}");
    }
}
