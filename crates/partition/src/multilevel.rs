//! Multilevel graph partitioner — the METIS stand-in (paper §4.1 uses METIS
//! to "improve load balancing and group closely linked vertices into one
//! partition").
//!
//! The classic three-phase scheme:
//! 1. **Coarsening** by heavy-edge matching: repeatedly contract a maximal
//!    matching that prefers heavy edges, accumulating vertex and edge
//!    weights, until the graph is small.
//! 2. **Initial partitioning** by greedy region growing over the coarsest
//!    graph, respecting vertex-weight balance.
//! 3. **Uncoarsening with refinement**: project the partition back level by
//!    level, and at each level run boundary-vertex Kernighan–Lin-style
//!    passes that move vertices to the neighboring partition with the
//!    highest edge-weight gain, subject to the balance constraint.

use crate::{Assignment, Partitioner};
use hongtu_graph::{Graph, VertexId};
use hongtu_tensor::SeededRng;

/// Weighted undirected working graph used internally by the partitioner.
#[derive(Debug, Clone)]
struct WorkGraph {
    offsets: Vec<usize>,
    nbrs: Vec<u32>,
    weights: Vec<u64>,
    vwgt: Vec<u64>,
}

impl WorkGraph {
    fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u64)> + '_ {
        let r = self.offsets[v]..self.offsets[v + 1];
        self.nbrs[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Symmetrized, weight-merged version of a directed [`Graph`].
    fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges() * 2);
        for (s, t) in g.csr.edges() {
            if s != t {
                pairs.push((s, t));
                pairs.push((t, s));
            }
        }
        pairs.sort_unstable();
        let mut offsets = vec![0usize; n + 1];
        let mut nbrs = Vec::with_capacity(pairs.len());
        let mut weights: Vec<u64> = Vec::with_capacity(pairs.len());
        let mut i = 0;
        while i < pairs.len() {
            let (s, t) = pairs[i];
            let mut w = 0u64;
            while i < pairs.len() && pairs[i] == (s, t) {
                w += 1;
                i += 1;
            }
            nbrs.push(t);
            weights.push(w);
            offsets[s as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        WorkGraph {
            offsets,
            nbrs,
            weights,
            vwgt: vec![1; n],
        }
    }
}

/// METIS-style multilevel partitioner.
#[derive(Debug, Clone)]
pub struct MultilevelPartitioner {
    /// Allowed imbalance: max part weight ≤ `(1 + balance_eps) · total/parts`.
    pub balance_eps: f64,
    /// Stop coarsening once `|V| ≤ coarsen_per_part · parts`.
    pub coarsen_per_part: usize,
    /// Refinement passes per level.
    pub refine_passes: usize,
    /// RNG seed (matching order, seed selection).
    pub seed: u64,
}

impl Default for MultilevelPartitioner {
    fn default() -> Self {
        MultilevelPartitioner {
            balance_eps: 0.10,
            coarsen_per_part: 24,
            refine_passes: 4,
            seed: 1,
        }
    }
}

impl Partitioner for MultilevelPartitioner {
    fn partition(&self, g: &Graph, parts: usize) -> Assignment {
        let n = g.num_vertices();
        assert!(parts >= 1, "need at least one partition");
        assert!(parts <= n, "more partitions ({parts}) than vertices ({n})");
        if parts == 1 {
            return Assignment {
                partition_of: vec![0; n],
                num_parts: 1,
            };
        }
        let mut rng = SeededRng::new(self.seed);
        let base = WorkGraph::from_graph(g);

        // Phase 1: coarsen.
        let mut levels: Vec<(WorkGraph, Vec<u32>)> = Vec::new(); // (fine graph, fine→coarse map)
        let mut cur = base;
        let target = (self.coarsen_per_part * parts).max(64);
        while cur.num_vertices() > target {
            let (coarse, map) = coarsen_once(&cur, &mut rng);
            let shrink = coarse.num_vertices() as f64 / cur.num_vertices() as f64;
            levels.push((cur, map));
            cur = coarse;
            if shrink > 0.95 {
                break; // diminishing returns (e.g. star graphs)
            }
        }

        // Phase 2: initial partition on the coarsest graph.
        let mut labels = greedy_grow(&cur, parts, self.balance_eps, &mut rng);
        refine(
            &cur,
            &mut labels,
            parts,
            self.balance_eps,
            self.refine_passes,
        );

        // Phase 3: project back with refinement at every level.
        while let Some((fine, map)) = levels.pop() {
            let mut fine_labels = vec![0u32; fine.num_vertices()];
            for (v, l) in fine_labels.iter_mut().enumerate() {
                *l = labels[map[v] as usize];
            }
            refine(
                &fine,
                &mut fine_labels,
                parts,
                self.balance_eps,
                self.refine_passes,
            );
            labels = fine_labels;
        }

        ensure_no_empty_parts(&mut labels, parts);
        let a = Assignment {
            partition_of: labels,
            num_parts: parts,
        };
        debug_assert!(a.validate().is_ok());
        a
    }
}

/// One round of heavy-edge matching contraction. Returns the coarse graph
/// and the fine→coarse vertex map.
fn coarsen_once(g: &WorkGraph, rng: &mut SeededRng) -> (WorkGraph, Vec<u32>) {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let mut matched = vec![u32::MAX; n];
    for &v in &order {
        let v = v as usize;
        if matched[v] != u32::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(u32, u64)> = None;
        for (u, w) in g.neighbors(v) {
            if matched[u as usize] == u32::MAX
                && u as usize != v
                && best.is_none_or(|(_, bw)| w > bw)
            {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                matched[v] = u;
                matched[u as usize] = v as u32;
            }
            None => matched[v] = v as u32, // self-matched (stays singleton)
        }
    }
    // Number coarse vertices.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if map[v] != u32::MAX {
            continue;
        }
        map[v] = next;
        let m = matched[v] as usize;
        if m != v && map[m] == u32::MAX {
            map[m] = next;
        }
        next += 1;
    }
    let cn = next as usize;
    // Aggregate vertex weights and edges.
    let mut vwgt = vec![0u64; cn];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vwgt[v];
    }
    let mut pairs: Vec<(u32, u32, u64)> = Vec::new();
    for v in 0..n {
        let cv = map[v];
        for (u, w) in g.neighbors(v) {
            let cu = map[u as usize];
            if cv != cu {
                pairs.push((cv, cu, w));
            }
        }
    }
    pairs.sort_unstable_by_key(|&(a, b, _)| (a, b));
    let mut offsets = vec![0usize; cn + 1];
    let mut nbrs = Vec::new();
    let mut weights = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let (a, b, _) = pairs[i];
        let mut w = 0u64;
        while i < pairs.len() && pairs[i].0 == a && pairs[i].1 == b {
            w += pairs[i].2;
            i += 1;
        }
        nbrs.push(b);
        weights.push(w);
        offsets[a as usize + 1] += 1;
    }
    for v in 0..cn {
        offsets[v + 1] += offsets[v];
    }
    (
        WorkGraph {
            offsets,
            nbrs,
            weights,
            vwgt,
        },
        map,
    )
}

/// Greedy region growing over the (coarse) graph.
fn greedy_grow(g: &WorkGraph, parts: usize, eps: f64, rng: &mut SeededRng) -> Vec<u32> {
    let n = g.num_vertices();
    let total = g.total_vwgt();
    let target = (total as f64 / parts as f64).ceil();
    let cap = (target * (1.0 + eps)).ceil() as u64;
    let mut labels = vec![u32::MAX; n];
    let mut part_wgt = vec![0u64; parts];
    let mut unassigned = n;
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let mut order_cursor = 0;
    for p in 0..parts.saturating_sub(1) {
        // Seed: next unassigned vertex in the shuffled order.
        while order_cursor < n && labels[order[order_cursor] as usize] != u32::MAX {
            order_cursor += 1;
        }
        if order_cursor >= n {
            break;
        }
        let seed = order[order_cursor] as usize;
        let mut frontier = std::collections::VecDeque::from([seed as u32]);
        labels[seed] = p as u32;
        part_wgt[p] += g.vwgt[seed];
        unassigned -= 1;
        while part_wgt[p] < target as u64 && unassigned > 0 {
            let Some(v) = frontier.pop_front() else {
                // Region exhausted; jump to a fresh unassigned seed.
                while order_cursor < n && labels[order[order_cursor] as usize] != u32::MAX {
                    order_cursor += 1;
                }
                if order_cursor >= n {
                    break;
                }
                let s = order[order_cursor] as usize;
                labels[s] = p as u32;
                part_wgt[p] += g.vwgt[s];
                unassigned -= 1;
                frontier.push_back(s as u32);
                continue;
            };
            for (u, _) in g.neighbors(v as usize) {
                let u = u as usize;
                if labels[u] == u32::MAX && part_wgt[p] + g.vwgt[u] <= cap {
                    labels[u] = p as u32;
                    part_wgt[p] += g.vwgt[u];
                    unassigned -= 1;
                    frontier.push_back(u as u32);
                    if part_wgt[p] >= target as u64 {
                        break;
                    }
                }
            }
        }
    }
    // Everything left goes to the last partition (refinement will fix skew).
    for l in labels.iter_mut() {
        if *l == u32::MAX {
            *l = parts as u32 - 1;
        }
    }
    labels
}

/// Boundary refinement: KL-style greedy single-vertex moves.
fn refine(g: &WorkGraph, labels: &mut [u32], parts: usize, eps: f64, passes: usize) {
    let total = g.total_vwgt();
    let cap = ((total as f64 / parts as f64) * (1.0 + eps)).ceil() as u64;
    let mut part_wgt = vec![0u64; parts];
    for (v, &l) in labels.iter().enumerate() {
        part_wgt[l as usize] += g.vwgt[v];
    }
    let mut conn = vec![0u64; parts];
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..g.num_vertices() {
            let from = labels[v] as usize;
            // Connectivity of v to each partition.
            let mut touched: Vec<usize> = Vec::with_capacity(8);
            for (u, w) in g.neighbors(v) {
                let p = labels[u as usize] as usize;
                if conn[p] == 0 {
                    touched.push(p);
                }
                conn[p] += w;
            }
            let own = conn[from];
            let mut best: Option<(usize, u64)> = None;
            for &p in &touched {
                if p != from
                    && conn[p] > own
                    && part_wgt[p] + g.vwgt[v] <= cap
                    && part_wgt[from] > g.vwgt[v]
                    && best.is_none_or(|(_, bw)| conn[p] > bw)
                {
                    best = Some((p, conn[p]));
                }
            }
            if let Some((p, _)) = best {
                labels[v] = p as u32;
                part_wgt[from] -= g.vwgt[v];
                part_wgt[p] += g.vwgt[v];
                moved += 1;
            }
            for &p in &touched {
                conn[p] = 0;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Guarantees every partition label is used (downstream code requires
/// non-empty partitions); steals vertices from the largest partition.
fn ensure_no_empty_parts(labels: &mut [u32], parts: usize) {
    let mut sizes = vec![0usize; parts];
    for &l in labels.iter() {
        sizes[l as usize] += 1;
    }
    for p in 0..parts {
        if sizes[p] == 0 {
            let donor = sizes
                .iter()
                .enumerate()
                .max_by_key(|&(_, &s)| s)
                .map(|(i, _)| i)
                .unwrap();
            let v = labels.iter().position(|&l| l as usize == donor).unwrap();
            labels[v] = p as u32;
            sizes[donor] -= 1;
            sizes[p] += 1;
        }
    }
}

/// Convenience: partition `g` into `parts` with default settings and `seed`.
pub fn metis_like(g: &Graph, parts: usize, seed: u64) -> Assignment {
    MultilevelPartitioner {
        seed,
        ..Default::default()
    }
    .partition(g, parts)
}

/// Portfolio partitioning: runs the multilevel partitioner *and* the
/// contiguous-range baseline and keeps whichever cuts fewer edges. Real
/// METIS dominates both; on id-local graphs (web crawls, citation graphs
/// laid out by publication order) the contiguous split is often already
/// near-optimal, and this guard keeps the heuristic multilevel code from
/// regressing below it.
pub fn best_of(g: &Graph, parts: usize, seed: u64) -> Assignment {
    let ml = metis_like(g, parts, seed);
    let range = crate::simple::range_partition(g.num_vertices(), parts);
    let cut = |a: &Assignment| {
        g.csr
            .edges()
            .filter(|&(s, t)| a.partition_of[s as usize] != a.partition_of[t as usize])
            .count()
    };
    if cut(&range) < cut(&ml) {
        range
    } else {
        ml
    }
}

/// Relabels vertices so each partition's members are contiguous and ordered
/// by original id; returns `(new_id_of, old_id_of, part_ranges)`.
///
/// HongTu's range-based chunking assumes each partition occupies a
/// contiguous id range (Figure 5); this produces that layout.
pub fn contiguous_relabel(
    a: &Assignment,
) -> (Vec<VertexId>, Vec<VertexId>, Vec<std::ops::Range<usize>>) {
    let members = a.members();
    let n = a.partition_of.len();
    let mut new_id_of = vec![0 as VertexId; n];
    let mut old_id_of = vec![0 as VertexId; n];
    let mut ranges = Vec::with_capacity(a.num_parts);
    let mut next = 0usize;
    for part in &members {
        let start = next;
        for &old in part {
            new_id_of[old as usize] = next as VertexId;
            old_id_of[next] = old;
            next += 1;
        }
        ranges.push(start..next);
    }
    (new_id_of, old_id_of, ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use hongtu_graph::generators;

    fn ring_of_cliques(k: usize, clique: usize) -> Graph {
        // k cliques of size `clique`, connected in a ring by single edges.
        let n = k * clique;
        let mut b = hongtu_graph::GraphBuilder::new(n);
        for c in 0..k {
            let base = c * clique;
            for i in 0..clique {
                for j in 0..clique {
                    if i != j {
                        b.add_edge((base + i) as u32, (base + j) as u32);
                    }
                }
            }
            let next = ((c + 1) % k) * clique;
            b.add_undirected(base as u32, next as u32);
        }
        b.build()
    }

    #[test]
    fn recovers_clique_structure() {
        let g = ring_of_cliques(4, 16);
        let a = metis_like(&g, 4, 7);
        assert!(a.validate().is_ok());
        // Each clique should end up (almost) entirely in one partition:
        // cut edges should be close to the 8 ring edges, far below random.
        let q = PartitionQuality::measure(&g, &a);
        assert!(q.cut_edges <= g.num_edges() / 10, "cut = {}", q.cut_edges);
    }

    #[test]
    fn balance_is_respected() {
        let mut rng = hongtu_tensor::SeededRng::new(3);
        let g = generators::erdos_renyi(2000, 6.0, &mut rng);
        let a = metis_like(&g, 8, 5);
        let sizes = a.sizes();
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max <= (2000.0 / 8.0) * 1.25, "max part size {max}");
    }

    #[test]
    fn beats_hash_partitioning_on_local_graphs() {
        let mut rng = hongtu_tensor::SeededRng::new(9);
        let g = generators::local_window(3000, 6.0, 30.0, &mut rng);
        let ml = PartitionQuality::measure(&g, &metis_like(&g, 4, 2));
        let hp = PartitionQuality::measure(&g, &crate::simple::hash_partition(3000, 4));
        assert!(
            ml.cut_fraction < hp.cut_fraction * 0.6,
            "multilevel {} vs hash {}",
            ml.cut_fraction,
            hp.cut_fraction
        );
    }

    #[test]
    fn many_partitions_all_nonempty() {
        let mut rng = hongtu_tensor::SeededRng::new(4);
        let g = generators::erdos_renyi(4000, 4.0, &mut rng);
        let a = metis_like(&g, 128, 11);
        assert!(a.validate().is_ok());
        assert!(a.sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn single_partition_is_identity() {
        let g = ring_of_cliques(2, 4);
        let a = metis_like(&g, 1, 0);
        assert!(a.partition_of.iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = ring_of_cliques(3, 10);
        let a = metis_like(&g, 3, 42);
        let b = metis_like(&g, 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn contiguous_relabel_roundtrips() {
        let g = ring_of_cliques(3, 8);
        let a = metis_like(&g, 3, 1);
        let (new_id, old_id, ranges) = contiguous_relabel(&a);
        for v in 0..g.num_vertices() {
            assert_eq!(old_id[new_id[v] as usize] as usize, v);
        }
        // Ranges tile 0..n and match partition sizes.
        assert_eq!(
            ranges.iter().map(|r| r.len()).sum::<usize>(),
            g.num_vertices()
        );
        let sizes = a.sizes();
        for (p, r) in ranges.iter().enumerate() {
            assert_eq!(r.len(), sizes[p]);
            for i in r.clone() {
                assert_eq!(a.partition_of[old_id[i] as usize] as usize, p);
            }
        }
    }

    #[test]
    fn handles_star_graph_without_stalling() {
        // Stars defeat matching (one round barely shrinks); must terminate.
        let mut b = hongtu_graph::GraphBuilder::new(500);
        for v in 1..500u32 {
            b.add_undirected(0, v);
        }
        let g = b.build();
        let a = metis_like(&g, 4, 13);
        assert!(a.validate().is_ok());
    }
}
