//! Partition quality measures: edge cut and balance.

use crate::Assignment;
use hongtu_graph::Graph;

/// Quality summary of an assignment on a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of directed edges crossing partitions.
    pub cut_edges: usize,
    /// `cut_edges / |E|`.
    pub cut_fraction: f64,
    /// `max part size / ideal part size` (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Partition sizes.
    pub sizes: Vec<usize>,
}

impl PartitionQuality {
    /// Measures `a` against `g`.
    pub fn measure(g: &Graph, a: &Assignment) -> Self {
        assert_eq!(
            a.partition_of.len(),
            g.num_vertices(),
            "assignment/graph size mismatch"
        );
        let cut_edges = g
            .csr
            .edges()
            .filter(|&(s, t)| a.partition_of[s as usize] != a.partition_of[t as usize])
            .count();
        let sizes = a.sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = g.num_vertices() as f64 / a.num_parts as f64;
        PartitionQuality {
            cut_edges,
            cut_fraction: if g.num_edges() == 0 {
                0.0
            } else {
                cut_edges as f64 / g.num_edges() as f64
            },
            imbalance: if ideal == 0.0 { 0.0 } else { max / ideal },
            sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::range_partition;
    use hongtu_graph::GraphBuilder;

    #[test]
    fn cut_counts_cross_partition_edges() {
        // 0→1 (same part), 1→2 (cross), 2→3 (same part), 3→0 (cross)
        let mut b = GraphBuilder::new(4);
        for (s, t) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(s, t);
        }
        let g = b.build();
        let a = range_partition(4, 2);
        let q = PartitionQuality::measure(&g, &a);
        assert_eq!(q.cut_edges, 2);
        assert!((q.cut_fraction - 0.5).abs() < 1e-9);
        assert!((q.imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_skew() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        let g = b.build();
        let a = Assignment {
            partition_of: vec![0, 0, 0, 1],
            num_parts: 2,
        };
        let q = PartitionQuality::measure(&g, &a);
        assert!((q.imbalance - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_edge_set_has_zero_cut() {
        let g = GraphBuilder::new(3).build();
        let a = range_partition(3, 3);
        let q = PartitionQuality::measure(&g, &a);
        assert_eq!(q.cut_edges, 0);
        assert_eq!(q.cut_fraction, 0.0);
    }
}
