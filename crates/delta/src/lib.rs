//! Dynamic-graph subsystem: typed mutations, an epoch-versioned delta
//! log, and the dirty-vertex analysis behind incremental recompute.
//!
//! HongTu keeps every per-layer activation store `h^l` host-resident,
//! which makes recomputing only the part of the graph a mutation
//! touches dramatically cheaper than a full layer-wise sweep. This
//! crate owns the *graph-side* half of that path:
//!
//! * [`Delta`] — the typed mutation API ([`Delta::AddEdge`],
//!   [`Delta::RemoveEdge`], [`Delta::UpdateFeatures`]), validated
//!   against the live topology with typed [`DeltaError`]s;
//! * [`DynamicGraph`] — the evolving `(topology, features)` pair plus
//!   the [`DeltaLog`]: every committed batch bumps the epoch, so a
//!   session, a serving queue, and a rebuild oracle can agree on
//!   exactly which graph version a result reflects;
//! * [`StagedCommit`] — a validated-but-uncommitted batch carrying the
//!   post-commit topology and the **dirty-vertex analysis**: which
//!   `h^1` rows (and which chunk computations, for weight-touching
//!   edits) a commit invalidates.
//!
//! The engine-side half — rewriting the mutated chunks and replaying
//! the upward-closed affected cone through the executor — lives in
//! `hongtu-core` (`Session::apply_deltas`), which consumes
//! [`StagedCommit`]s produced here.
//!
//! ## Dirty-vertex analysis
//!
//! GCN edge weights are global-degree normalized:
//! `w(u→d) = 1/√((1+out_deg(u))·(1+in_deg(d)))`. An edge edit `u→v`
//! therefore invalidates more than the touched edge:
//!
//! * `in_deg(v)` changes → every in-edge weight of `v` changes → `v`'s
//!   aggregation is dirty at every layer;
//! * `out_deg(u)` changes → every edge `u→w` changes weight → each
//!   out-neighbor `w` of `u` (old *or* new topology) is dirty;
//! * a feature update of `v` dirties exactly the layer-0 readers of
//!   `v` — its out-neighbors (including `v` itself via the self-loop).
//!
//! These **structural** seeds need recomputing at *every* layer; the
//! upward-closed cone (see `hongtu_core::cone`) keeps them active as it
//! grows along out-edges, which is exactly the replay induction: every
//! row a replayed chunk reads is either untouched or was recomputed one
//! layer below.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::fmt;

use hongtu_datasets::dataset::Dataset;
use hongtu_graph::{Graph, GraphBuilder, VertexId};
use hongtu_tensor::{Matrix, SeededRng};

/// One typed graph mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Insert the directed edge `src → dst`. Fails with
    /// [`DeltaError::DuplicateEdge`] if already present and
    /// [`DeltaError::SelfLoop`] if `src == dst` (the mandatory
    /// self-loops are structural, not data).
    AddEdge { src: VertexId, dst: VertexId },
    /// Remove the directed edge `src → dst`. Fails with
    /// [`DeltaError::MissingEdge`] if absent and
    /// [`DeltaError::SelfLoop`] if `src == dst`.
    RemoveEdge { src: VertexId, dst: VertexId },
    /// Replace vertex `vertex`'s input-feature row.
    UpdateFeatures {
        vertex: VertexId,
        features: Vec<f32>,
    },
}

impl Delta {
    /// The vertices this mutation names (for range validation).
    fn endpoints(&self) -> (VertexId, Option<VertexId>) {
        match *self {
            Delta::AddEdge { src, dst } | Delta::RemoveEdge { src, dst } => (src, Some(dst)),
            Delta::UpdateFeatures { vertex, .. } => (vertex, None),
        }
    }
}

/// Why a delta batch was rejected. Staging is transactional: a batch
/// with any invalid delta commits nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A named vertex id is outside the graph.
    OutOfRange {
        vertex: VertexId,
        num_vertices: usize,
    },
    /// An edge delta names a self-loop; the per-vertex self-loops are a
    /// dataset invariant (`Dataset::validate`) and cannot be edited.
    SelfLoop { vertex: VertexId },
    /// `AddEdge` of an edge the (staged) topology already contains.
    DuplicateEdge { src: VertexId, dst: VertexId },
    /// `RemoveEdge` of an edge the (staged) topology does not contain.
    MissingEdge { src: VertexId, dst: VertexId },
    /// `UpdateFeatures` with the wrong feature dimension.
    FeatureDimMismatch {
        vertex: VertexId,
        got: usize,
        want: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeltaError::OutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range ({num_vertices} vertices)"),
            DeltaError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop {vertex}→{vertex} is structural and not editable"
                )
            }
            DeltaError::DuplicateEdge { src, dst } => {
                write!(f, "edge {src}→{dst} already present")
            }
            DeltaError::MissingEdge { src, dst } => write!(f, "edge {src}→{dst} not present"),
            DeltaError::FeatureDimMismatch { vertex, got, want } => {
                write!(
                    f,
                    "vertex {vertex}: feature row has {got} columns, want {want}"
                )
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// One committed batch in the [`DeltaLog`].
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The epoch this batch produced (first commit → epoch 1).
    pub epoch: u64,
    /// The mutations, in submission order.
    pub deltas: Vec<Delta>,
    /// The dirty `h^1` seed vertices the batch invalidated (sorted).
    pub dirty: Vec<usize>,
}

/// Epoch-versioned history of committed delta batches.
#[derive(Debug, Clone, Default)]
pub struct DeltaLog {
    entries: Vec<LogEntry>,
}

impl DeltaLog {
    /// Committed batches, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of committed batches (== the current epoch).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True before the first commit.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A validated-but-uncommitted delta batch: the post-commit topology
/// plus the dirty-vertex analysis. Produced by [`DynamicGraph::stage`],
/// consumed by [`DynamicGraph::commit`] (typically via
/// `Session::apply_deltas`, which rebuilds the affected chunks from
/// [`StagedCommit::graph`] before committing).
#[derive(Debug, Clone)]
pub struct StagedCommit {
    base_epoch: u64,
    graph: Graph,
    deltas: Vec<Delta>,
    dirty: Vec<usize>,
    structural: Vec<usize>,
    patches: Vec<(usize, Vec<f32>)>,
    edges_added: usize,
    edges_removed: usize,
}

impl StagedCommit {
    /// The post-commit topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// All dirty `h^1` seed vertices (sorted, deduplicated): structural
    /// seeds plus the layer-0 readers of feature-updated vertices.
    /// Seeds the upward-closed affected cone.
    pub fn dirty(&self) -> &[usize] {
        &self.dirty
    }

    /// The structurally dirty vertices (sorted, deduplicated): those
    /// whose producing chunk computation changed (edge list or
    /// global-degree weights). Every chunk owning one must be rebuilt.
    pub fn structural(&self) -> &[usize] {
        &self.structural
    }

    /// Feature-row replacements `(vertex, row)` to patch into `h^0`.
    pub fn feature_patches(&self) -> &[(usize, Vec<f32>)] {
        &self.patches
    }

    /// The epoch this commit produces (`base + 1`).
    pub fn epoch(&self) -> u64 {
        self.base_epoch + 1
    }

    /// Edges inserted by the batch.
    pub fn edges_added(&self) -> usize {
        self.edges_added
    }

    /// Edges removed by the batch.
    pub fn edges_removed(&self) -> usize {
        self.edges_removed
    }

    /// The staged mutations, in submission order.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }
}

/// Receipt of a committed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitReceipt {
    /// The epoch the graph is now at.
    pub epoch: u64,
    /// The dirty `h^1` seed vertices the batch invalidated (sorted).
    pub dirty: Vec<usize>,
    /// Edges inserted.
    pub edges_added: usize,
    /// Edges removed.
    pub edges_removed: usize,
}

/// The evolving `(topology, features)` pair plus its [`DeltaLog`].
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    graph: Graph,
    features: Matrix,
    log: DeltaLog,
}

impl DynamicGraph {
    /// Wraps a topology and its per-vertex feature matrix at epoch 0.
    ///
    /// # Panics
    ///
    /// Panics if `features` does not have one row per vertex.
    pub fn new(graph: Graph, features: Matrix) -> Self {
        assert_eq!(
            features.rows(),
            graph.num_vertices(),
            "features must have one row per vertex"
        );
        DynamicGraph {
            graph,
            features,
            log: DeltaLog::default(),
        }
    }

    /// Wraps a dataset's graph and features at epoch 0.
    pub fn from_dataset(ds: &Dataset) -> Self {
        DynamicGraph::new(ds.graph.clone(), ds.features.clone())
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current per-vertex features.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The committed-batch history.
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// Current epoch (number of committed batches).
    pub fn epoch(&self) -> u64 {
        self.log.len() as u64
    }

    /// Number of vertices (invariant across mutations).
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Validates `deltas` against the current state and computes the
    /// post-commit topology plus the dirty-vertex analysis, without
    /// committing anything. Deltas are checked in order against the
    /// *staged* edge set, so `AddEdge(u→v)` followed by
    /// `RemoveEdge(u→v)` in one batch is legal (and a no-op edit).
    ///
    /// Staging is also how admission control prices an update before
    /// accepting it: the dirty set seeds the recompute cone.
    pub fn stage(&self, deltas: &[Delta]) -> Result<StagedCommit, DeltaError> {
        let n = self.graph.num_vertices();
        let feat_dim = self.features.cols();
        let mut edges: HashSet<(VertexId, VertexId)> = self.graph.csr.edges().collect();
        let mut patches: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut edge_srcs: Vec<VertexId> = Vec::new();
        let mut seeds: HashSet<usize> = HashSet::new();
        let mut structural: HashSet<usize> = HashSet::new();
        let mut feature_rows: Vec<VertexId> = Vec::new();
        let (mut added, mut removed) = (0usize, 0usize);

        for d in deltas {
            let (a, b) = d.endpoints();
            for v in [Some(a), b].into_iter().flatten() {
                if v as usize >= n {
                    return Err(DeltaError::OutOfRange {
                        vertex: v,
                        num_vertices: n,
                    });
                }
            }
            match d {
                Delta::AddEdge { src, dst } => {
                    if src == dst {
                        return Err(DeltaError::SelfLoop { vertex: *src });
                    }
                    if !edges.insert((*src, *dst)) {
                        return Err(DeltaError::DuplicateEdge {
                            src: *src,
                            dst: *dst,
                        });
                    }
                    added += 1;
                    edge_srcs.push(*src);
                    structural.insert(*src as usize);
                    structural.insert(*dst as usize);
                }
                Delta::RemoveEdge { src, dst } => {
                    if src == dst {
                        return Err(DeltaError::SelfLoop { vertex: *src });
                    }
                    if !edges.remove(&(*src, *dst)) {
                        return Err(DeltaError::MissingEdge {
                            src: *src,
                            dst: *dst,
                        });
                    }
                    removed += 1;
                    edge_srcs.push(*src);
                    structural.insert(*src as usize);
                    structural.insert(*dst as usize);
                }
                Delta::UpdateFeatures { vertex, features } => {
                    if features.len() != feat_dim {
                        return Err(DeltaError::FeatureDimMismatch {
                            vertex: *vertex,
                            got: features.len(),
                            want: feat_dim,
                        });
                    }
                    patches.push((*vertex as usize, features.clone()));
                    feature_rows.push(*vertex);
                }
            }
        }

        // ---- post-commit topology (build() sorts + dedups, so the
        // HashSet iteration order is immaterial) ----
        let mut b = GraphBuilder::new(n).keep_self_loops();
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let graph = b.build();

        // ---- structural dirt: out_deg(src) changed, so every edge
        // src→w (old or new topology) changed weight ----
        for &u in &edge_srcs {
            for &w in self.graph.out_neighbors(u) {
                structural.insert(w as usize);
            }
            for &w in graph.out_neighbors(u) {
                structural.insert(w as usize);
            }
        }
        seeds.extend(structural.iter().copied());

        // ---- feature dirt: layer-0 readers of the patched rows ----
        for &v in &feature_rows {
            seeds.insert(v as usize);
            for &w in graph.out_neighbors(v) {
                seeds.insert(w as usize);
            }
        }

        let mut dirty: Vec<usize> = seeds.into_iter().collect();
        dirty.sort_unstable();
        let mut structural: Vec<usize> = structural.into_iter().collect();
        structural.sort_unstable();

        Ok(StagedCommit {
            base_epoch: self.epoch(),
            graph,
            deltas: deltas.to_vec(),
            dirty,
            structural,
            patches,
            edges_added: added,
            edges_removed: removed,
        })
    }

    /// Commits a staged batch: installs the post-commit topology,
    /// patches the feature rows, appends to the log, and bumps the
    /// epoch.
    ///
    /// # Panics
    ///
    /// Panics if the staged batch was produced against a different
    /// epoch (a commit raced past it).
    pub fn commit(&mut self, staged: StagedCommit) -> CommitReceipt {
        assert_eq!(
            staged.base_epoch,
            self.epoch(),
            "stale StagedCommit: staged at epoch {}, graph is at {}",
            staged.base_epoch,
            self.epoch()
        );
        self.graph = staged.graph;
        for (v, row) in &staged.patches {
            self.features.row_mut(*v).copy_from_slice(row);
        }
        let receipt = CommitReceipt {
            epoch: staged.base_epoch + 1,
            dirty: staged.dirty.clone(),
            edges_added: staged.edges_added,
            edges_removed: staged.edges_removed,
        };
        self.log.entries.push(LogEntry {
            epoch: receipt.epoch,
            deltas: staged.deltas,
            dirty: staged.dirty,
        });
        receipt
    }

    /// Stages and immediately commits one batch.
    pub fn apply(&mut self, deltas: &[Delta]) -> Result<CommitReceipt, DeltaError> {
        let staged = self.stage(deltas)?;
        Ok(self.commit(staged))
    }

    /// A dataset snapshot of the current epoch, inheriting everything
    /// but topology and features from `base` — the from-scratch rebuild
    /// oracle: a fresh `Session` on this dataset must produce logits
    /// bitwise equal to the incrementally patched ones (same `seed`,
    /// hence identical initial weights).
    pub fn to_dataset(&self, base: &Dataset) -> Dataset {
        Dataset {
            key: base.key,
            graph: self.graph.clone(),
            features: self.features.clone(),
            labels: base.labels.clone(),
            splits: base.splits.clone(),
            num_classes: base.num_classes,
            seed: base.seed,
        }
    }
}

/// The exact vertex-level ≤ `hops`-hop *out*-edge ball of `seeds`: the
/// test oracle the chunk-granular affected cone must cover (the dual of
/// the serving path's in-edge BFS ball). `ball[h]` holds the vertices
/// invalid at `h^{h+1}` — seeds plus up to `h` out-hops.
pub fn out_edge_ball(graph: &Graph, seeds: &[usize], hops: usize) -> Vec<Vec<bool>> {
    let n = graph.num_vertices();
    let mut cur = vec![false; n];
    for &s in seeds {
        cur[s] = true;
    }
    let mut ball = vec![cur.clone()];
    for _ in 0..hops {
        let mut next = cur.clone();
        for (v, _) in cur.iter().enumerate().filter(|(_, &active)| active) {
            for &w in graph.out_neighbors(v as VertexId) {
                next[w as usize] = true;
            }
        }
        ball.push(next.clone());
        cur = next;
    }
    ball
}

/// Which kinds of mutations a generated workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMix {
    /// Edge toggles only.
    Edge,
    /// Feature-row replacements only.
    Feature,
    /// Both, roughly half and half.
    Mixed,
}

impl DeltaMix {
    /// Parses `edge` / `feature` / `mixed`.
    pub fn parse(s: &str) -> Option<DeltaMix> {
        match s {
            "edge" => Some(DeltaMix::Edge),
            "feature" | "feat" => Some(DeltaMix::Feature),
            "mixed" => Some(DeltaMix::Mixed),
            _ => None,
        }
    }
}

/// Generates `batches` sequential delta batches of `edits` mutations
/// each, valid when committed FIFO starting from `graph`: edge edits
/// toggle presence against the evolving edge set (never touching
/// self-loops), feature edits replace a random row with `feat_dim`
/// fresh normal values.
pub fn toggle_workload(
    graph: &Graph,
    feat_dim: usize,
    batches: usize,
    edits: usize,
    mix: DeltaMix,
    rng: &mut SeededRng,
) -> Vec<Vec<Delta>> {
    let n = graph.num_vertices();
    assert!(n >= 2, "toggle workload needs at least two vertices");
    let mut edges: HashSet<(VertexId, VertexId)> = graph.csr.edges().collect();
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = Vec::with_capacity(edits.max(1));
        for _ in 0..edits.max(1) {
            let feature_edit = match mix {
                DeltaMix::Edge => false,
                DeltaMix::Feature => true,
                DeltaMix::Mixed => rng.chance(0.5),
            };
            if feature_edit {
                let vertex = rng.index(n) as VertexId;
                let features: Vec<f32> = (0..feat_dim).map(|_| rng.normal() * 0.5).collect();
                batch.push(Delta::UpdateFeatures { vertex, features });
            } else {
                let (u, v) = loop {
                    let u = rng.index(n) as VertexId;
                    let v = rng.index(n) as VertexId;
                    if u != v {
                        break (u, v);
                    }
                };
                if edges.remove(&(u, v)) {
                    batch.push(Delta::RemoveEdge { src: u, dst: v });
                } else {
                    edges.insert((u, v));
                    batch.push(Delta::AddEdge { src: u, dst: v });
                }
            }
        }
        out.push(batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 6-vertex graph with self-loops plus a directed ring.
    fn fixture() -> DynamicGraph {
        let mut b = GraphBuilder::new(6).keep_self_loops();
        for v in 0..6u32 {
            b.add_edge(v, v);
            b.add_edge(v, (v + 1) % 6);
        }
        let g = b.build();
        let feats = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        DynamicGraph::new(g, feats)
    }

    #[test]
    fn add_edge_commits_and_versions() {
        let mut dg = fixture();
        assert_eq!(dg.epoch(), 0);
        let r = dg
            .apply(&[Delta::AddEdge { src: 0, dst: 3 }])
            .expect("valid add");
        assert_eq!(r.epoch, 1);
        assert_eq!(r.edges_added, 1);
        assert!(dg.graph().out_neighbors(0).contains(&3));
        assert_eq!(dg.log().len(), 1);
        assert_eq!(dg.log().entries()[0].deltas.len(), 1);
    }

    #[test]
    fn remove_edge_commits() {
        let mut dg = fixture();
        let r = dg
            .apply(&[Delta::RemoveEdge { src: 0, dst: 1 }])
            .expect("valid remove");
        assert_eq!(r.edges_removed, 1);
        assert!(!dg.graph().out_neighbors(0).contains(&1));
        // The self-loop survives.
        assert!(dg.graph().out_neighbors(0).contains(&0));
    }

    #[test]
    fn feature_update_patches_row() {
        let mut dg = fixture();
        dg.apply(&[Delta::UpdateFeatures {
            vertex: 2,
            features: vec![9.0, 8.0, 7.0],
        }])
        .expect("valid update");
        assert_eq!(dg.features().row(2), &[9.0, 8.0, 7.0]);
        // Other rows untouched.
        assert_eq!(dg.features().row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn typed_rejections() {
        let mut dg = fixture();
        assert_eq!(
            dg.apply(&[Delta::AddEdge { src: 0, dst: 9 }]),
            Err(DeltaError::OutOfRange {
                vertex: 9,
                num_vertices: 6
            })
        );
        assert_eq!(
            dg.apply(&[Delta::AddEdge { src: 2, dst: 2 }]),
            Err(DeltaError::SelfLoop { vertex: 2 })
        );
        assert_eq!(
            dg.apply(&[Delta::AddEdge { src: 0, dst: 1 }]),
            Err(DeltaError::DuplicateEdge { src: 0, dst: 1 })
        );
        assert_eq!(
            dg.apply(&[Delta::RemoveEdge { src: 0, dst: 3 }]),
            Err(DeltaError::MissingEdge { src: 0, dst: 3 })
        );
        assert_eq!(
            dg.apply(&[Delta::UpdateFeatures {
                vertex: 1,
                features: vec![1.0]
            }]),
            Err(DeltaError::FeatureDimMismatch {
                vertex: 1,
                got: 1,
                want: 3
            })
        );
        // A rejected batch commits nothing.
        assert_eq!(dg.epoch(), 0);
    }

    #[test]
    fn staging_is_transactional_and_order_aware() {
        let dg = fixture();
        // Add-then-remove of the same edge in one batch is legal…
        let staged = dg
            .stage(&[
                Delta::AddEdge { src: 0, dst: 3 },
                Delta::RemoveEdge { src: 0, dst: 3 },
            ])
            .expect("toggle in one batch");
        assert!(!staged.graph().out_neighbors(0).contains(&3));
        // …and a later invalid delta rejects the earlier valid one.
        assert!(dg
            .stage(&[
                Delta::AddEdge { src: 0, dst: 3 },
                Delta::AddEdge { src: 0, dst: 3 },
            ])
            .is_err());
    }

    #[test]
    fn stale_staged_commit_panics() {
        let mut dg = fixture();
        let staged = dg.stage(&[Delta::AddEdge { src: 0, dst: 3 }]).unwrap();
        dg.apply(&[Delta::AddEdge { src: 1, dst: 4 }]).unwrap();
        let result = std::panic::catch_unwind(move || {
            let mut dg2 = fixture();
            dg2.apply(&[Delta::AddEdge { src: 1, dst: 4 }]).unwrap();
            dg2.commit(staged)
        });
        assert!(result.is_err(), "stale commit must panic");
    }

    #[test]
    fn edge_dirt_covers_global_degree_fallout() {
        let dg = fixture();
        // AddEdge 2→5: out_deg(2) changes, so every out-neighbor of 2
        // (self-loop 2, ring 3, and the new 5) is dirty; in_deg(5)
        // changes, covered by 5 itself.
        let staged = dg.stage(&[Delta::AddEdge { src: 2, dst: 5 }]).unwrap();
        for v in [2usize, 3, 5] {
            assert!(staged.dirty().contains(&v), "{v} must be dirty");
            assert!(staged.structural().contains(&v));
        }
        // Untouched far vertex is clean.
        assert!(!staged.dirty().contains(&0));
    }

    #[test]
    fn feature_dirt_is_layer0_readers_only() {
        let dg = fixture();
        let staged = dg
            .stage(&[Delta::UpdateFeatures {
                vertex: 4,
                features: vec![0.0; 3],
            }])
            .unwrap();
        // Readers of 4's features: 4 (self-loop) and 5 (ring).
        assert_eq!(staged.dirty(), &[4, 5]);
        // No chunk topology changed.
        assert!(staged.structural().is_empty());
        assert_eq!(staged.edges_added() + staged.edges_removed(), 0);
    }

    #[test]
    fn out_edge_ball_grows_along_out_edges() {
        let dg = fixture();
        let ball = out_edge_ball(dg.graph(), &[0], 2);
        assert!(ball[0][0] && !ball[0][1]);
        assert!(ball[1][0] && ball[1][1] && !ball[1][2]);
        assert!(ball[2][2]);
    }

    #[test]
    fn toggle_workload_applies_cleanly_fifo() {
        let mut dg = fixture();
        let mut rng = SeededRng::new(7);
        let batches = toggle_workload(dg.graph(), 3, 12, 3, DeltaMix::Mixed, &mut rng);
        assert_eq!(batches.len(), 12);
        for b in &batches {
            dg.apply(b).expect("workload batches are FIFO-valid");
        }
        assert_eq!(dg.epoch(), 12);
        // Self-loops survived the toggling.
        for v in 0..6u32 {
            assert!(dg.graph().out_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn to_dataset_snapshots_current_epoch() {
        let mut b = GraphBuilder::new(4).keep_self_loops();
        for v in 0..4u32 {
            b.add_edge(v, v);
            b.add_edge(v, (v + 1) % 4);
        }
        let g = b.build();
        let base = Dataset {
            key: hongtu_datasets::dataset::DatasetKey::Rdt,
            graph: g.clone(),
            features: Matrix::from_fn(4, 2, |r, _| r as f32),
            labels: vec![0, 1, 0, 1],
            splits: hongtu_datasets::dataset::Splits::random(4, 0.5, 0.25, &mut SeededRng::new(3)),
            num_classes: 2,
            seed: 11,
        };
        let mut dg = DynamicGraph::from_dataset(&base);
        dg.apply(&[Delta::AddEdge { src: 0, dst: 2 }]).unwrap();
        let ds = dg.to_dataset(&base);
        assert_eq!(ds.seed, 11);
        assert!(ds.graph.out_neighbors(0).contains(&2));
        ds.validate().expect("mutated dataset stays valid");
    }
}
