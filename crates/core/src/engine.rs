//! The HongTu execution engine (paper Algorithm 1), structured as a
//! [`Session`] — graph, partition/dedup/staging plans, host store, and
//! the simulated machine, built and validated **once** — from which two
//! executors borrow:
//!
//! - [`Trainer`] / [`Session::train_epoch_with`]: the full
//!   forward/backward training loop of Algorithm 1;
//! - [`Inferencer`] / [`Session::infer_epoch`]: the forward-only
//!   serving path — layer-wise full-graph inference over the same plans,
//!   with no checkpoint stores and no gradient state.
//!
//! [`HongTuEngine`] remains as a thin owning facade over a `Session`
//! plus persistent optimizer state, so existing call sites keep working.
//!
//! Vertex representations `h^l` and gradients `∇h^l` for **every** layer
//! live in (pinned) CPU memory; each simulated GPU holds, at any moment,
//! one layer × one chunk of training data. Per batch the engine:
//!
//! - loads neighbor representations through the **deduplicated
//!   communication framework** (Algorithm 2): host→GPU for `ℕ^cpu`,
//!   in-place reuse for `ℕ^gpu`, inter-GPU fetches for remote transition
//!   rows;
//! - runs the real forward/backward numerics of the chunk (hongtu-nn),
//!   charging dense and edge FLOPs to the simulator;
//! - in the backward pass, reloads the strategy-dependent checkpoint
//!   (neighbor reps for **recomputation**, the cached aggregate for the
//!   **hybrid** path), pushes neighbor gradients over inter-GPU links, and
//!   accumulates evicted gradients on the CPU (Algorithm 3).
//!
//! Because the numerics are identical to single-device full-graph training
//! (only the *pricing* of data movement differs), the engine's loss curve
//! matches the reference trainer bit-for-bit apart from f32 summation
//! order.

use crate::buffers::GpuBufferPlan;
use crate::cost::CommVolumes;
use crate::dedup::DedupPlan;
use crate::reorg::reorganize_guarded_cached;
use crate::serve::{ServeMask, ServeReport};
use hongtu_cache::{
    load_sets, CachePlan, CachePolicy, CacheRuntime, HitStats, LoadPattern, Off as CacheOff,
};
use hongtu_datasets::Dataset;
use hongtu_delta::{Delta, DynamicGraph, StagedCommit};
use hongtu_nn::{
    masked_cross_entropy, GnnLayer, GnnModel, LayerForward, LayerGrads, MaskedLoss, ModelKind,
};
use hongtu_partition::{ChunkSubgraph, TwoLevelPartition};
use hongtu_sim::{
    Access, BarrierScope, ContribKind, Machine, MachineConfig, Provenance, Region, ResourceId,
    SimError, TimeBuckets, Timeline, Trace,
};
pub use hongtu_stream::OverlapMode;
use hongtu_stream::{grad_slot, pipeline, rep_slot, StagingPlan, StreamId};
use hongtu_tensor::{Adam, Matrix, SeededRng};
use hongtu_verify::Report;
pub use hongtu_verify::ValidationLevel;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;

const F32: usize = std::mem::size_of::<f32>();

/// Which duplicated-neighbor optimizations are active (§7.3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// Transfer each chunk's full neighbor set host→GPU (the DeepSpeed-like
    /// baseline of Figure 9).
    Vanilla,
    /// Inter-GPU deduplication only (`+P2P`).
    P2p,
    /// Inter-GPU deduplication and intra-GPU reuse (`+RU`, full HongTu).
    P2pRu,
}

/// Intermediate-data management strategy (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryStrategy {
    /// Pure recomputation: backward reloads layer inputs and recomputes the
    /// whole forward pass of the layer.
    Recompute,
    /// Recomputation-caching hybrid: layers whose AGGREGATE has no edge
    /// intermediates checkpoint the aggregate to CPU and skip AGGREGATE
    /// recomputation; others fall back to recomputation.
    Hybrid,
}

/// How the engine drives the m simulated GPUs of each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One thread charges every GPU's work in program order — the
    /// reference schedule, cheapest for tiny graphs.
    Sequential,
    /// One worker thread per simulated GPU on the `hongtu-parallel`
    /// work-stealing pool, joined at the same phase/batch barriers the
    /// sequential schedule uses. Losses, gradients, and simulated clocks
    /// are bitwise identical to `Sequential` (and for interleaved
    /// schedules the event trace is too); only host wall-clock changes.
    Parallel,
}

/// What a [`Session`] is built to run. The mode is fixed at construction
/// because it decides which host and device state exists at all:
/// inference sessions never allocate gradient stores, hybrid checkpoint
/// caches, or optimizer state, so their peak memory is strictly below an
/// otherwise-identical training session's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Full training: forward + backward + parameter update per epoch.
    #[default]
    Train,
    /// Forward-only serving: [`Session::infer_epoch`] produces per-vertex
    /// logits, skipping checkpoint stores and all gradient machinery.
    Infer,
}

/// Engine configuration.
///
/// Prefer [`HongTuConfig::builder`], which validates the configuration
/// before any expensive plan construction starts. Filling the struct
/// literally (or mutating a [`HongTuConfig::full`] preset) keeps working
/// but is a deprecated pattern: it skips validation, and new fields added
/// here will break literal construction at compile time.
#[derive(Debug, Clone)]
pub struct HongTuConfig {
    /// Communication optimizations.
    pub comm: CommMode,
    /// Intermediate-data strategy.
    pub memory: MemoryStrategy,
    /// Run Algorithm 4 partition reorganization during preprocessing.
    pub reorganize: bool,
    /// Simulated platform.
    pub machine: MachineConfig,
    /// Adam learning rate.
    pub lr: f32,
    /// Interleaved inter-GPU schedule (§6): stagger pulls so no two GPUs
    /// hit the same source in a time slot. When false, contended pulls
    /// also stall the source GPU (naive schedule).
    pub interleaved: bool,
    /// Static plan verification (`hongtu-verify`). The default, `Plan`,
    /// checks all four passes once at construction; `Paranoid` re-checks
    /// the graph-free passes every epoch and schedule-certifies each
    /// epoch's event trace.
    pub validation: ValidationLevel,
    /// Host-side execution of the per-GPU work. Does not change any
    /// simulated quantity — only how many OS threads drive the epoch.
    pub exec: ExecutionMode,
    /// Copy/compute overlap (`hongtu-stream`). `Off` charges the load,
    /// compute, and evict phases of a batch additively on the default
    /// stream; `DoubleBuffer` software-pipelines batches over statically
    /// allocated double-buffered staging, so transfers hide behind
    /// compute and each segment costs the max of its streams. Changes
    /// simulated time and peak memory, never results.
    pub overlap: OverlapMode,
    /// What the session built from this config runs: training (the
    /// default) or forward-only inference. Decides which state is
    /// allocated at construction and how staging is sized.
    pub mode: Mode,
    /// Hot-vertex feature-cache admission policy (`hongtu-cache`): ranks
    /// boundary vertices for the per-GPU HBM headroom left after every
    /// static allocation. [`hongtu_cache::Off`] (the default) disables
    /// caching; [`hongtu_cache::FrequencyRanked`] /
    /// [`hongtu_cache::DegreeRanked`] spend the headroom on the hottest
    /// layer-0 rows of the host-load schedule.
    pub cache: Arc<dyn CachePolicy>,
}

impl HongTuConfig {
    /// Full HongTu on the given machine: P2P + RU + hybrid + reorganization.
    pub fn full(machine: MachineConfig) -> Self {
        HongTuConfig {
            comm: CommMode::P2pRu,
            memory: MemoryStrategy::Hybrid,
            reorganize: true,
            machine,
            lr: 0.01,
            interleaved: true,
            validation: ValidationLevel::Plan,
            exec: ExecutionMode::Sequential,
            overlap: OverlapMode::Off,
            mode: Mode::Train,
            cache: Arc::new(CacheOff),
        }
    }

    /// The vanilla offloading baseline (Figure 9 "Baseline"): full neighbor
    /// transfer per chunk, hybrid caching enabled (as in §7.1's fair
    /// comparison), no reorganization.
    pub fn baseline(machine: MachineConfig) -> Self {
        HongTuConfig {
            comm: CommMode::Vanilla,
            memory: MemoryStrategy::Hybrid,
            reorganize: false,
            machine,
            lr: 0.01,
            interleaved: true,
            validation: ValidationLevel::Plan,
            exec: ExecutionMode::Sequential,
            overlap: OverlapMode::Off,
            mode: Mode::Train,
            cache: Arc::new(CacheOff),
        }
    }

    /// A validating builder starting from the full-HongTu defaults on a
    /// 4-GPU scaled machine:
    ///
    /// ```
    /// use hongtu_core::{HongTuConfig, Mode, OverlapMode};
    /// let cfg = HongTuConfig::builder()
    ///     .gpus(4)
    ///     .overlap(OverlapMode::DoubleBuffer)
    ///     .mode(Mode::Infer)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.machine.num_gpus, 4);
    /// ```
    pub fn builder() -> HongTuConfigBuilder {
        HongTuConfigBuilder::default()
    }
}

/// A [`HongTuConfig`] that failed [`HongTuConfigBuilder::build`]
/// validation, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid engine configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`HongTuConfig`] — the preferred construction path. Every
/// setter is chainable; [`HongTuConfigBuilder::build`] validates the
/// whole configuration and returns [`ConfigError`] instead of letting a
/// bad value surface later as a confusing plan or simulation failure.
///
/// The machine is either given whole via
/// [`HongTuConfigBuilder::machine`], or assembled from
/// [`HongTuConfigBuilder::gpus`] / [`HongTuConfigBuilder::gpu_mem_mb`]
/// (defaults: 4 GPUs × 256 MiB, the test-scale platform). Mixing the two
/// is rejected at `build()`.
#[derive(Debug, Clone, Default)]
pub struct HongTuConfigBuilder {
    machine: Option<MachineConfig>,
    gpus: Option<usize>,
    gpu_mem_mb: Option<usize>,
    comm: Option<CommMode>,
    memory: Option<MemoryStrategy>,
    reorganize: Option<bool>,
    lr: Option<f32>,
    interleaved: Option<bool>,
    validation: Option<ValidationLevel>,
    exec: Option<ExecutionMode>,
    overlap: Option<OverlapMode>,
    mode: Option<Mode>,
    cache: Option<Arc<dyn CachePolicy>>,
}

impl HongTuConfigBuilder {
    /// Use this simulated platform verbatim (incompatible with
    /// [`HongTuConfigBuilder::gpus`] / [`HongTuConfigBuilder::gpu_mem_mb`]).
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Number of simulated GPUs of a scaled machine (default 4).
    pub fn gpus(mut self, gpus: usize) -> Self {
        self.gpus = Some(gpus);
        self
    }

    /// Device memory per simulated GPU in MiB (default 256).
    pub fn gpu_mem_mb(mut self, mb: usize) -> Self {
        self.gpu_mem_mb = Some(mb);
        self
    }

    /// Communication optimizations (default [`CommMode::P2pRu`]).
    pub fn comm(mut self, comm: CommMode) -> Self {
        self.comm = Some(comm);
        self
    }

    /// Intermediate-data strategy (default [`MemoryStrategy::Hybrid`]).
    pub fn memory(mut self, memory: MemoryStrategy) -> Self {
        self.memory = Some(memory);
        self
    }

    /// Run Algorithm 4 partition reorganization (default true; ignored —
    /// as in the struct path — when comm is [`CommMode::Vanilla`]).
    pub fn reorganize(mut self, reorganize: bool) -> Self {
        self.reorganize = Some(reorganize);
        self
    }

    /// Adam learning rate (default 0.01). Must be finite and positive.
    pub fn lr(mut self, lr: f32) -> Self {
        self.lr = Some(lr);
        self
    }

    /// Interleaved inter-GPU pull schedule (default true).
    pub fn interleaved(mut self, interleaved: bool) -> Self {
        self.interleaved = Some(interleaved);
        self
    }

    /// Static plan verification level (default [`ValidationLevel::Plan`]).
    pub fn validation(mut self, validation: ValidationLevel) -> Self {
        self.validation = Some(validation);
        self
    }

    /// Host-side execution mode (default [`ExecutionMode::Sequential`]).
    pub fn exec(mut self, exec: ExecutionMode) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Copy/compute overlap (default [`OverlapMode::Off`]).
    pub fn overlap(mut self, overlap: OverlapMode) -> Self {
        self.overlap = Some(overlap);
        self
    }

    /// Session mode (default [`Mode::Train`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Shorthand for `.mode(Mode::Infer)`.
    pub fn infer(self) -> Self {
        self.mode(Mode::Infer)
    }

    /// Hot-vertex feature-cache admission policy (default
    /// [`hongtu_cache::Off`] — no caching). Pass
    /// `Arc::new(FrequencyRanked)` or `Arc::new(DegreeRanked)` to spend
    /// the per-GPU HBM headroom on hot layer-0 rows.
    pub fn cache(mut self, policy: Arc<dyn CachePolicy>) -> Self {
        self.cache = Some(policy);
        self
    }

    /// Validates and assembles the configuration.
    pub fn build(self) -> Result<HongTuConfig, ConfigError> {
        if self.machine.is_some() && (self.gpus.is_some() || self.gpu_mem_mb.is_some()) {
            return Err(ConfigError(
                "set either machine(..) or gpus(..)/gpu_mem_mb(..), not both".to_string(),
            ));
        }
        let machine = match self.machine {
            Some(m) => m,
            None => {
                let gpus = self.gpus.unwrap_or(4);
                let mb = self.gpu_mem_mb.unwrap_or(256);
                if gpus == 0 {
                    return Err(ConfigError("gpus must be at least 1".to_string()));
                }
                if mb == 0 {
                    return Err(ConfigError("gpu_mem_mb must be positive".to_string()));
                }
                MachineConfig::scaled(gpus, mb << 20)
            }
        };
        if machine.num_gpus == 0 {
            return Err(ConfigError("machine has no GPUs".to_string()));
        }
        if machine.gpu_memory == 0 {
            return Err(ConfigError("machine GPUs have no memory".to_string()));
        }
        let lr = self.lr.unwrap_or(0.01);
        if !lr.is_finite() || lr <= 0.0 {
            return Err(ConfigError(format!(
                "learning rate must be finite and positive, got {lr}"
            )));
        }
        Ok(HongTuConfig {
            comm: self.comm.unwrap_or(CommMode::P2pRu),
            memory: self.memory.unwrap_or(MemoryStrategy::Hybrid),
            reorganize: self.reorganize.unwrap_or(true),
            machine,
            lr,
            interleaved: self.interleaved.unwrap_or(true),
            validation: self.validation.unwrap_or(ValidationLevel::Plan),
            exec: self.exec.unwrap_or(ExecutionMode::Sequential),
            overlap: self.overlap.unwrap_or(OverlapMode::Off),
            mode: self.mode.unwrap_or(Mode::Train),
            cache: self.cache.unwrap_or_else(|| Arc::new(CacheOff)),
        })
    }
}

/// Converts a failed verification report into the engine error.
fn invalid_plan(report: &Report) -> SimError {
    let code = report
        .first()
        .map(|d| d.code.code().to_string())
        .unwrap_or_default();
    SimError::InvalidPlan {
        code,
        message: report.render(),
    }
}

/// Derives the §6-accurate per-(GPU, batch) communication table of the
/// P2P+RU executor from the merged in-place buffer plans: rows the owner
/// loads host→GPU, rows fetched from each remote GPU, rows reused in
/// place, and the resident buffer capacity. `None` in every other comm
/// mode. Shared by session construction and the incremental
/// delta-rebuild path ([`Session::apply_deltas`]).
fn build_buffer_comm(
    plan: &TwoLevelPartition,
    bufplans: Option<&[GpuBufferPlan]>,
    comm: CommMode,
) -> Option<Vec<Vec<BatchComm>>> {
    if comm != CommMode::P2pRu {
        return None;
    }
    let owner = &plan.assignment.partition_of;
    let per_gpu = bufplans
        .expect("buffer plans built for P2pRu")
        .iter()
        .map(|bp| {
            bp.batches
                .iter()
                .map(|b| {
                    let mut h2d_rows = 0usize;
                    let mut d2d_rows = vec![0usize; plan.m];
                    for &(t, _) in &b.incoming {
                        let v = b.merged[t as usize] as usize;
                        let o = owner[v] as usize;
                        if o == bp.gpu {
                            h2d_rows += 1;
                        } else {
                            d2d_rows[o] += 1;
                        }
                    }
                    BatchComm {
                        h2d_rows,
                        d2d_rows,
                        reused_rows: b.reused(),
                        buffer_rows: bp.capacity,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>();
    Some(per_gpu)
}

/// Converts a failed trace-certification report into the engine error.
fn invalid_schedule(report: &Report) -> SimError {
    let code = report
        .first()
        .map(|d| d.code.code().to_string())
        .unwrap_or_default();
    SimError::InvalidSchedule {
        code,
        message: report.render(),
    }
}

/// Annotation helpers: the logical resources of §4–§6 as seen by the
/// schedule checker.
fn rep(layer: usize) -> ResourceId {
    ResourceId::Rep {
        layer: layer as u32,
    }
}
fn grad(layer: usize) -> ResourceId {
    ResourceId::Grad {
        layer: layer as u32,
    }
}
fn dev_rep(gpu: usize) -> ResourceId {
    ResourceId::DevRep { gpu: gpu as u32 }
}
fn dev_grad(gpu: usize) -> ResourceId {
    ResourceId::DevGrad { gpu: gpu as u32 }
}
fn topology(gpu: usize) -> ResourceId {
    ResourceId::Topology { gpu: gpu as u32 }
}
fn dev_cache(gpu: usize) -> ResourceId {
    ResourceId::DevCache { gpu: gpu as u32 }
}
fn agg_slot(layer: usize, gpu: usize, chunk: usize) -> ResourceId {
    ResourceId::AggCache {
        layer: layer as u32,
        gpu: gpu as u32,
        chunk: chunk as u32,
    }
}
fn chunk_region(gpu: usize, chunk: usize) -> Region {
    Region::Chunk {
        gpu: gpu as u32,
        chunk: chunk as u32,
    }
}

/// Result of one training epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Training loss/accuracy of this epoch.
    pub loss: MaskedLoss,
    /// Simulated epoch time in seconds (critical path over GPUs).
    pub time: f64,
    /// Per-component simulated time/volume.
    pub buckets: TimeBuckets,
}

/// Result of one forward-only inference epoch
/// ([`Session::infer_epoch`]).
#[derive(Debug, Clone)]
pub struct InferReport {
    /// Per-vertex logits `h^L` — the full-graph inference output.
    pub logits: Matrix,
    /// Simulated epoch time in seconds (critical path over GPUs).
    pub time: f64,
    /// Per-component simulated time/volume.
    pub buckets: TimeBuckets,
    /// High-water device memory across GPUs, in bytes, including the
    /// session's static allocations (params, staging).
    pub peak_gpu_bytes: usize,
    /// High-water host memory in bytes (the layer stores `h^l`; no
    /// gradient or checkpoint buffers exist on an inference session).
    pub peak_host_bytes: usize,
}

/// Result of one committed delta batch ([`Session::apply_deltas`]):
/// the mutated graph's post-commit logits plus what the incremental
/// replay cost relative to a full sweep.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// The [`hongtu_delta::DynamicGraph`] epoch the commit produced.
    pub epoch: u64,
    /// Full per-vertex logits `h^L` after the in-place patch — bitwise
    /// equal to a from-scratch [`Session::infer_epoch`] on the mutated
    /// graph.
    pub logits: Matrix,
    /// Simulated replay time in seconds (critical path over GPUs).
    pub time: f64,
    /// Per-component simulated time/volume of the replay.
    pub buckets: TimeBuckets,
    /// High-water device memory across GPUs, in bytes.
    pub peak_gpu_bytes: usize,
    /// High-water host memory in bytes.
    pub peak_host_bytes: usize,
    /// `(layer, batch)` steps the replay executed.
    pub active_steps: usize,
    /// `(layer, batch)` steps a full sweep would have executed.
    pub total_steps: usize,
    /// Dirty `h^1` seed vertices the batch invalidated.
    pub dirty_vertices: usize,
    /// Chunk subgraphs rebuilt against the mutated topology.
    pub rebuilt_chunks: usize,
}

/// Static peak-memory bound per tier, derived from the plans alone
/// ([`Session::static_memory_bound`]). Dominates the simulator's measured
/// peaks ([`Machine::max_gpu_peak`], host tracker) on every configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticMemoryBound {
    /// Per-GPU device bound in bytes (params + optimizer state + staging
    /// or worst per-batch footprint).
    pub gpu: Vec<usize>,
    /// Host bound in bytes (layer stores, gradient stores, hybrid
    /// aggregate cache).
    pub host: usize,
}

/// Borrowed view of every precomputed artifact a [`Session`] executes —
/// the unified plan surface ([`Session::plans`]). Prefer this over the
/// individual getters (`plan()`, `dedup_plan()`, `staging_plans()`),
/// which predate the cache subsystem and are deprecated.
#[derive(Clone, Copy)]
pub struct Plans<'a> {
    /// The 2-level partition (§4.1).
    pub partition: &'a TwoLevelPartition,
    /// The dedup communication plan (§5.1–5.2).
    pub dedup: &'a DedupPlan,
    /// Merged in-place buffer index plans (§6). Present whenever they
    /// were built: validation enabled, or P2P+RU communication.
    pub buffers: Option<&'a [GpuBufferPlan]>,
    /// Pinned double-buffered staging (`DoubleBuffer` overlap only).
    pub staging: Option<&'a [StagingPlan]>,
    /// The admitted hot-vertex cache plan (`None` when the policy is
    /// off or nothing fit the headroom).
    pub cache: Option<&'a CachePlan>,
}

/// Plan-level preprocessing artifacts and their modeled cost.
#[derive(Debug, Clone)]
pub struct Preprocessing {
    /// Communication volumes of the final plan.
    pub volumes: CommVolumes,
    /// Modeled preprocessing seconds (Table 9 "Preprocessing" row).
    pub seconds: f64,
}

/// Per-(GPU, batch) communication breakdown derived from the in-place
/// buffer plan (§6): rows loaded from the CPU, rows fetched from each
/// remote GPU, rows reused in place, and the resident buffer size.
#[derive(Debug, Clone)]
struct BatchComm {
    h2d_rows: usize,
    d2d_rows: Vec<usize>,
    reused_rows: usize,
    buffer_rows: usize,
}

/// Immutable view of the engine state a per-GPU step needs, split off
/// from the engine so worker threads can share it while each thread
/// mutates its own [`GpuShard`]. Built with the [`ctx!`] macro, whose
/// field-by-field expansion gives the borrow checker disjoint borrows
/// alongside `&mut self.machine`.
struct StepCtx<'a> {
    plan: &'a TwoLevelPartition,
    dedup: &'a DedupPlan,
    buffer_comm: Option<&'a [Vec<BatchComm>]>,
    model: &'a GnnModel,
    comm: CommMode,
    /// Whether hybrid aggregate checkpoints are in play for this epoch:
    /// true only for a *training* epoch under
    /// [`MemoryStrategy::Hybrid`]. Inference epochs never store (or
    /// reload) checkpoints, whatever the configured strategy.
    checkpoint: bool,
    interleaved: bool,
    /// Schedule-synthesis backend: when set, the step functions charge
    /// every transfer/compute event and carry every access annotation
    /// exactly as in a real epoch, but replace the layer numerics with
    /// shape-preserving zero tensors. The emitted trace is therefore the
    /// executor's schedule, derived from the plans alone — no FLOP of
    /// real math runs. See [`Session::synthesize_schedule`].
    synth: bool,
    /// Serving sweep mask: when set, `(layer, batch)` steps outside the
    /// queried vertices' dependency cones are skipped (all GPUs of a
    /// batch skip together). `None` for full-graph epochs.
    mask: Option<&'a ServeMask>,
    /// Hot-vertex feature-cache runtime, with its hit table frozen for
    /// the sweep in flight. `None` when the cache policy is off or
    /// admitted nothing.
    cache: Option<&'a CacheRuntime>,
    h: &'a [Matrix],
    grad_h: &'a [Matrix],
    agg_cache: &'a [Vec<Vec<Option<Matrix>>>],
}

impl StepCtx<'_> {
    /// Whether the serving mask prunes batch `j` at layer `l` (absent
    /// mask = full sweep, nothing pruned).
    fn pruned(&self, l: usize, j: usize) -> bool {
        self.mask.is_some_and(|m| !m.active(l, j))
    }

    /// Whether batch `j`'s in-place ℕ^gpu reuse at layer `l` has a live
    /// predecessor: the rows are deposited by batch `j - 1`, so under a
    /// serving mask they are only resident if `j - 1` ran at this layer.
    fn reuse_source_live(&self, l: usize, j: usize) -> bool {
        match self.mask {
            None => true,
            Some(m) => j > 0 && m.active(l, j - 1),
        }
    }

    /// Whether `(l, j)` is the step that streams batch `j`'s topology to
    /// the device (reused by every later layer of the epoch). Full sweeps
    /// upload at layer 0; under a mask the upload belongs to the batch's
    /// *first active* layer. Downward-closed query cones make that layer 0
    /// whenever the batch is active at all (so serving behavior is
    /// unchanged), but the upward-closed delta-replay cones may first
    /// activate a batch above layer 0 — uploading only at `l == 0` would
    /// leave its topology reads dangling.
    fn topology_upload_layer(&self, l: usize, j: usize) -> bool {
        match self.mask {
            None => l == 0,
            Some(m) => m.active(l, j) && !(0..l).any(|k| m.active(k, j)),
        }
    }

    /// Frozen cache hit table entry for the layer-0 host load of batch
    /// `j` on GPU `i`. Zero for every layer above 0 (only `h^0` rows are
    /// cached) and whenever no cache runtime is installed or sweeping.
    fn cache_stats(&self, l: usize, i: usize, j: usize) -> HitStats {
        if l != 0 {
            return HitStats::default();
        }
        self.cache.map(|c| c.stats(i, j)).unwrap_or_default()
    }
}

/// Builds a [`StepCtx`] from `&self` via direct field expressions, so the
/// engine's `machine` field stays independently borrowable as `&mut`.
macro_rules! ctx {
    ($engine:expr) => {
        StepCtx {
            plan: &$engine.plan,
            dedup: &$engine.dedup,
            buffer_comm: $engine.buffer_comm.as_deref(),
            model: &$engine.model,
            comm: $engine.config.comm,
            checkpoint: $engine.run_mode == Mode::Train
                && $engine.config.memory == MemoryStrategy::Hybrid,
            interleaved: $engine.config.interleaved,
            synth: $engine.synth,
            mask: $engine.serve_mask.as_ref(),
            cache: $engine.cache.as_ref(),
            h: &$engine.h,
            grad_h: &$engine.grad_h,
            agg_cache: &$engine.agg_cache,
        }
    };
}

/// A validated HongTu execution session: the dataset-derived plans
/// (two-level partition, dedup transition sets, §6 buffer plans,
/// staging), the host-resident stores, the model replica, and the
/// simulated machine — everything both executors share, built and
/// verified **once**.
///
/// A session is constructed for one [`Mode`]:
///
/// - [`Mode::Train`] sessions additionally hold the gradient stores
///   `∇h^l`, the hybrid checkpoint cache, and device space for optimizer
///   state; drive them with [`Session::trainer`] (or the
///   [`HongTuEngine`] facade).
/// - [`Mode::Infer`] sessions allocate none of that — their peak host
///   and device memory is strictly below the training session's — and
///   are driven with [`Session::inferencer`].
pub struct Session {
    config: HongTuConfig,
    /// The [`Mode`] of the epoch currently (or last) running. Equal to
    /// `config.mode` except that step functions read it through
    /// [`StepCtx`] to gate checkpoint stores, keeping the forward steps
    /// shared between both executors.
    run_mode: Mode,
    machine: Machine,
    plan: TwoLevelPartition,
    dedup: DedupPlan,
    /// `buffer_comm[i][j]`: §6-accurate communication plan (P2P+RU mode).
    buffer_comm: Option<Vec<Vec<BatchComm>>>,
    /// Buffer index plans, retained whenever they were built at all
    /// (validation on, or P2P+RU comm): the [`Plans`] view, `Paranoid`
    /// per-epoch re-checks, and the cache/serving budget arithmetic all
    /// read them instead of rebuilding.
    bufplans: Option<Vec<GpuBufferPlan>>,
    /// Per-GPU double-buffered staging sizes (`DoubleBuffer` overlap
    /// only; the buffers themselves are resident on the machine).
    staging: Option<Vec<StagingPlan>>,
    /// Hot-vertex layer-0 feature cache ([`hongtu_cache`]): admission
    /// plan, residency bitmaps, and the journal pass 11 certifies.
    /// `None` when the configured policy is off or admitted nothing.
    cache: Option<CacheRuntime>,
    model: GnnModel,
    labels: Vec<u32>,
    train_mask: Vec<bool>,
    /// `h[l]`: host-resident layer representations (`h[0]` = features).
    h: Vec<Matrix>,
    /// `∇h[l]`: host-resident gradient buffers ([`Mode::Train`] only;
    /// empty matrices on an inference session).
    grad_h: Vec<Matrix>,
    /// `agg_cache[l][i][j]`: hybrid checkpoints (host-resident).
    agg_cache: Vec<Vec<Vec<Option<Matrix>>>>,
    preprocessing: Preprocessing,
    epochs_run: usize,
    /// True only on the throwaway clone driven by
    /// [`Session::synthesize_schedule`]: step functions skip the layer
    /// numerics and emit shape-identical placeholder tensors instead.
    synth: bool,
    /// Installed for the duration of a [`Session::serve`] sweep: the
    /// per-(layer, batch) activity mask the step functions prune by.
    /// `None` between serves and on full-graph epochs.
    serve_mask: Option<ServeMask>,
}

impl Session {
    /// Builds the session: partitions the graph (`m` = machine GPU count,
    /// `n` chunks per partition), optionally reorganizes, allocates host
    /// buffers, and replicates model parameters to every simulated GPU.
    pub fn new(
        dataset: &Dataset,
        kind: ModelKind,
        hidden: usize,
        layers: usize,
        n_chunks: usize,
        config: HongTuConfig,
    ) -> Result<Self, SimError> {
        let plan = TwoLevelPartition::build(
            &dataset.graph,
            config.machine.num_gpus,
            n_chunks,
            dataset.seed,
        );
        Self::with_plan(dataset, kind, hidden, layers, plan, config)
    }

    /// Builds the session from a caller-supplied 2-level partition plan
    /// (e.g. from a custom partitioner). The plan's `m` must equal the
    /// machine's GPU count.
    pub fn with_plan(
        dataset: &Dataset,
        kind: ModelKind,
        hidden: usize,
        layers: usize,
        mut plan: TwoLevelPartition,
        config: HongTuConfig,
    ) -> Result<Self, SimError> {
        let mut machine = Machine::new(config.machine.clone());
        let m = machine.num_gpus();
        assert_eq!(
            plan.m, m,
            "plan has {} partitions but the machine has {m} GPUs",
            plan.m
        );
        let dims = dataset.model_dims(hidden, layers);
        let mut rng = SeededRng::new(dataset.seed ^ 0x686F6E67);
        let model = GnnModel::new(kind, &dims, &mut rng);

        // ---- preprocessing: reorganization ----
        if config.reorganize && config.comm != CommMode::Vanilla {
            // With a cache policy active, guide the cost guard with a
            // rough per-GPU row budget (half the device, in feature
            // rows). Exact admission happens below against the real
            // post-allocation headroom; the guard only needs the right
            // order of magnitude to rank candidate plans fairly.
            let row = dims[0] * F32;
            let budget = if config.cache.enabled() {
                config.machine.gpu_memory / 2 / row.max(1)
            } else {
                0
            };
            plan = reorganize_guarded_cached(plan, &config.machine, budget);
        }
        let dedup = DedupPlan::build(&plan);
        // The merged-buffer index plans of §6 are needed by the P2pRu
        // executor, and by the verifier in every mode.
        let bufplans =
            if config.validation != ValidationLevel::Off || config.comm == CommMode::P2pRu {
                Some(GpuBufferPlan::build_all(&plan, &dedup))
            } else {
                None
            };

        // ---- static plan verification (refuse to run a corrupt plan) ----
        if config.validation != ValidationLevel::Off {
            let report = hongtu_verify::verify_all(
                &dataset.graph,
                &plan,
                &dedup,
                bufplans.as_deref().unwrap_or(&[]),
            );
            if !report.is_ok() {
                return Err(invalid_plan(&report));
            }
        }

        // Full dedup mode plans the in-place merged buffers of §6, which
        // also lets reused rows skip the inter-GPU fetch.
        let buffer_comm = build_buffer_comm(&plan, bufplans.as_deref(), config.comm);
        let volumes = CommVolumes::from_plan(&dedup);
        // Modeled preprocessing cost: the heuristic streams every neighbor
        // list a handful of times (phase-1 intersections + index planning).
        let preprocess_flops = 8.0 * volumes.v_ori as f64 * (plan.n as f64).log2().max(1.0);
        let preprocessing = Preprocessing {
            volumes,
            seconds: preprocess_flops / config.machine.cpu_flops,
        };

        // ---- host buffers: h^l for every layer (Alg 1, line 3); ∇h^l
        // only exists on training sessions ----
        let train = config.mode == Mode::Train;
        let v = dataset.num_vertices();
        let mut h = Vec::with_capacity(dims.len());
        let mut grad_h = Vec::with_capacity(dims.len());
        for &d in &dims {
            machine.host_alloc(v * d * F32, "h^l")?;
            h.push(Matrix::zeros(v, d));
            if train {
                machine.host_alloc(v * d * F32, "grad h^l")?;
                grad_h.push(Matrix::zeros(v, d));
            } else {
                grad_h.push(Matrix::zeros(0, 0));
            }
        }
        h[0] = dataset.features.clone();

        // ---- hybrid checkpoint storage (training only: inference never
        // stores checkpoints, so the cache is dead weight) ----
        let l_count = model.num_layers();
        let mut agg_cache: Vec<Vec<Vec<Option<Matrix>>>> =
            vec![vec![vec![None; plan.n]; m]; l_count];
        if train && config.memory == MemoryStrategy::Hybrid {
            let mut cache_bytes = 0usize;
            for l in 0..l_count {
                for c in plan.all_chunks() {
                    cache_bytes += model.layer(l).agg_cache_bytes(c);
                }
            }
            machine.host_alloc(cache_bytes, "aggregate cache")?;
        }
        let _ = &mut agg_cache;

        // ---- per-GPU static allocations: replicated params, plus Adam
        // moment state (2× params) on training sessions ----
        let param_copies = if train { 3 } else { 1 };
        for gpu in 0..m {
            machine.alloc(
                gpu,
                model.param_bytes() * param_copies,
                if train {
                    "model params + optimizer state"
                } else {
                    "model params"
                },
            )?;
        }

        // ---- double-buffered staging (overlap executor) ----
        // Sized for the worst (layer, batch) footprint and pinned for the
        // whole run, so the overlapped epochs have no per-batch allocation
        // churn. An oversized configuration fails *here*, naming the
        // staging slot and GPU.
        let staging = if config.overlap == OverlapMode::DoubleBuffer {
            let plans: Vec<StagingPlan> = (0..m)
                .map(|gpu| plan_staging(gpu, &plan, &dedup, bufplans.as_deref(), &model, &config))
                .collect();
            for p in &plans {
                p.install(&mut machine)?;
            }
            Some(plans)
        } else {
            None
        };

        let run_mode = config.mode;
        let mut session = Session {
            config,
            run_mode,
            machine,
            plan,
            dedup,
            buffer_comm,
            bufplans,
            staging,
            cache: None,
            model,
            labels: dataset.labels.clone(),
            train_mask: dataset.splits.train.clone(),
            h,
            grad_h,
            agg_cache,
            preprocessing,
            epochs_run: 0,
            synth: false,
            serve_mask: None,
        };

        // ---- hot-vertex feature cache: spend the per-GPU HBM headroom
        // left after every static allocation above on the policy's
        // hottest layer-0 rows ----
        let degrees: Vec<u32> = (0..v)
            .map(|u| dataset.graph.out_degree(u as u32) as u32)
            .collect();
        session.install_cache(&degrees)?;

        // ---- static schedule certification (Paranoid): synthesize the
        // epoch schedule from the plans alone — before a single simulated
        // FLOP runs — and hold it to the happens-before, lifetime, and
        // (for small configs) exhaustive-interleaving passes 6–8 ----
        if session.config.validation == ValidationLevel::Paranoid {
            let explore = session
                .exhaustive_exploration_feasible()
                .then_some(hongtu_verify::DEFAULT_EXPLORE_BUDGET);
            let report = session.certify_schedule(explore)?;
            if !report.is_ok() {
                return Err(invalid_schedule(&report));
            }
        }
        Ok(session)
    }

    /// Every precomputed artifact this session executes, as one typed
    /// view: partition, dedup, buffer, staging, and cache plans.
    pub fn plans(&self) -> Plans<'_> {
        Plans {
            partition: &self.plan,
            dedup: &self.dedup,
            buffers: self.bufplans.as_deref(),
            staging: self.staging.as_deref(),
            cache: self.cache.as_ref().map(CacheRuntime::plan),
        }
    }

    /// The live hot-vertex cache runtime: admission plan, residency,
    /// hit-rate counters, and the journal pass 11 certifies. `None`
    /// when the configured policy is off or admitted nothing.
    pub fn cache(&self) -> Option<&CacheRuntime> {
        self.cache.as_ref()
    }

    /// The partition plan in use.
    #[deprecated(note = "use Session::plans().partition")]
    pub fn plan(&self) -> &TwoLevelPartition {
        &self.plan
    }

    /// The communication plan in use.
    #[deprecated(note = "use Session::plans().dedup")]
    pub fn dedup_plan(&self) -> &DedupPlan {
        &self.dedup
    }

    /// Preprocessing summary (volumes + modeled seconds).
    pub fn preprocessing(&self) -> &Preprocessing {
        &self.preprocessing
    }

    /// The simulated machine (memory peaks, trace).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Per-GPU staging plans of the overlap executor (`None` when
    /// overlap is off).
    #[deprecated(note = "use Session::plans().staging")]
    pub fn staging_plans(&self) -> Option<&[StagingPlan]> {
        self.staging.as_deref()
    }

    /// The model under training.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// Number of epochs completed.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Current logits (`h^L`), e.g. for external accuracy evaluation.
    pub fn logits(&self) -> &Matrix {
        self.h.last().unwrap()
    }

    /// Validation/test accuracy from the representations computed in the
    /// last epoch's forward pass.
    pub fn accuracy(&self, mask: &[bool]) -> f32 {
        hongtu_nn::loss::masked_accuracy(self.logits(), &self.labels, mask)
    }

    /// Builds (or rebuilds, after a structural delta) the hot-vertex
    /// layer-0 feature cache from the current plans: derives the
    /// host-load sets `S[i][j]`, ranks them with the configured
    /// [`CachePolicy`], and admits the top slice into the per-GPU HBM
    /// headroom left after every static allocation
    /// ([`Session::static_memory_bound`] without the cache term). The
    /// cache stays `None` when the policy is off or nothing fits.
    fn install_cache(&mut self, degrees: &[u32]) -> Result<(), SimError> {
        if let Some(old) = self.cache.take() {
            for g in &old.plan().per_gpu {
                if g.bytes > 0 {
                    self.machine.free(g.gpu, g.bytes);
                }
            }
        }
        if !self.config.cache.enabled() {
            return Ok(());
        }
        // `self.cache` is `None` here, so the bound is cache-free and
        // the headroom is exactly what is left on each device.
        let bound = self.static_memory_bound();
        let headroom: Vec<usize> = bound
            .gpu
            .iter()
            .map(|&b| self.config.machine.gpu_memory.saturating_sub(b))
            .collect();
        let slot = self.model.layer(0).in_dim() * F32;
        let rebuilt;
        let bufs = if self.config.comm != CommMode::P2pRu {
            None
        } else if let Some(b) = &self.bufplans {
            Some(b.as_slice())
        } else {
            rebuilt = GpuBufferPlan::build_all(&self.plan, &self.dedup);
            Some(rebuilt.as_slice())
        };
        let sets = load_sets(&self.plan, &self.dedup, bufs, self.load_pattern());
        let plan = CachePlan::build(&sets, degrees, &headroom, slot, self.config.cache.as_ref());
        if plan.is_empty() {
            return Ok(());
        }
        for g in &plan.per_gpu {
            if g.bytes > 0 {
                self.machine
                    .alloc(g.gpu, g.bytes, "hot-vertex feature cache")?;
            }
        }
        // Vanilla charges NUMA-remote rows at QPI bandwidth; the runtime
        // needs the same socket map to split its hits the same way.
        let remote = (self.config.comm == CommMode::Vanilla).then(|| {
            let m = self.plan.m;
            let sockets = self.config.machine.num_sockets.min(m);
            let socket_of = |g: usize| g * sockets / m;
            let owner = &self.plan.assignment.partition_of;
            (0..m)
                .map(|i| {
                    owner
                        .iter()
                        .map(|&o| socket_of(o as usize) != socket_of(i))
                        .collect()
                })
                .collect()
        });
        self.cache = Some(CacheRuntime::new(plan, sets, degrees.len(), remote));
        Ok(())
    }

    /// The [`hongtu_cache::LoadPattern`] matching this session's
    /// communication mode.
    fn load_pattern(&self) -> LoadPattern {
        match self.config.comm {
            CommMode::Vanilla => LoadPattern::Vanilla,
            CommMode::P2p => LoadPattern::P2p,
            CommMode::P2pRu => LoadPattern::P2pRu,
        }
    }

    /// Certifies the hot-vertex cache journal (verifier pass 11,
    /// `H10xx`): replays every sweep and invalidation the runtime
    /// journaled against load sets and headroom recomputed
    /// independently from the current plans. Returns an empty (ok)
    /// report when no cache is installed.
    pub fn certify_cache(&self) -> Report {
        let Some(cache) = &self.cache else {
            return Report::default();
        };
        let bound = self.static_memory_bound();
        let headroom: Vec<usize> = (0..self.plan.m)
            .map(|i| {
                // The bound includes the cache itself; headroom is what
                // the device had left *before* admission spent it.
                let sans_cache = bound.gpu[i] - cache.plan().per_gpu[i].bytes;
                self.config.machine.gpu_memory.saturating_sub(sans_cache)
            })
            .collect();
        let rebuilt;
        let bufs = if self.config.comm != CommMode::P2pRu {
            None
        } else if let Some(b) = &self.bufplans {
            Some(b.as_slice())
        } else {
            rebuilt = GpuBufferPlan::build_all(&self.plan, &self.dedup);
            Some(rebuilt.as_slice())
        };
        hongtu_verify::verify_cache(
            &self.plan,
            &self.dedup,
            bufs,
            self.load_pattern(),
            cache.plan(),
            &headroom,
            cache.log(),
        )
    }

    /// A throwaway copy of this session for schedule synthesis: identical
    /// plans, machine state, and host-store shapes, but flagged `synth` so
    /// the step functions substitute shape-preserving placeholders for the
    /// layer numerics. The model is rebuilt structurally (weights never
    /// influence the schedule — only layer dimensions do), because
    /// [`GnnModel`] holds trait objects and is not `Clone`.
    fn clone_for_synthesis(&self) -> Session {
        let mut rng = SeededRng::new(0);
        let model = GnnModel::new(self.model.kind, &self.model.dims, &mut rng);
        Session {
            config: self.config.clone(),
            run_mode: self.run_mode,
            machine: self.machine.clone(),
            plan: self.plan.clone(),
            dedup: self.dedup.clone(),
            buffer_comm: self.buffer_comm.clone(),
            bufplans: self.bufplans.clone(),
            staging: self.staging.clone(),
            // Shares the live resident set, so the synthesized sweep
            // freezes the same hit table the executed sweep will.
            cache: self.cache.clone(),
            model,
            labels: self.labels.clone(),
            train_mask: self.train_mask.clone(),
            h: self.h.clone(),
            grad_h: self.grad_h.clone(),
            agg_cache: self.agg_cache.clone(),
            preprocessing: self.preprocessing.clone(),
            epochs_run: self.epochs_run,
            synth: true,
            serve_mask: self.serve_mask.clone(),
        }
    }

    /// Symbolically synthesizes the annotated event schedule the *next*
    /// epoch of this session would execute, from the plans and
    /// configuration alone — the step functions run with their numerics
    /// replaced by shape-identical placeholders, so every H2D/D2D/D2H
    /// transfer, stream assignment, barrier, and access annotation is
    /// emitted exactly as a real epoch would emit it, without computing a
    /// single FLOP of GNN math.
    ///
    /// A [`Mode::Train`] session synthesizes a training epoch; a
    /// [`Mode::Infer`] session a forward-only inference epoch. The session
    /// itself is not perturbed (synthesis runs on a throwaway clone), so
    /// the returned trace is event-for-event identical — including
    /// simulated timestamps — to the trace the next executed epoch would
    /// record.
    pub fn synthesize_schedule(&self) -> Result<Trace, SimError> {
        let mut s = self.clone_for_synthesis();
        s.machine.replace_trace(Trace::unbounded());
        match s.config.mode {
            Mode::Train => {
                let mut opt = Adam::new(s.config.lr);
                s.train_epoch_inner(&mut opt)?;
            }
            Mode::Infer => {
                s.infer_epoch_inner()?;
            }
        }
        Ok(s.machine.replace_trace(Trace::disabled()))
    }

    /// Statically certifies this session's schedule: synthesizes the
    /// epoch event DAG ([`Session::synthesize_schedule`]) and runs the
    /// schedule verifier passes over it — pass 6 (happens-before over the
    /// synthesized DAG), pass 7 (resource lifetime/liveness, L6xx),
    /// when `explore` carries a linearization budget, pass 8 (bounded
    /// exhaustive interleaving exploration, X7xx), and pass 9 (dataflow
    /// conservation against the plans, F8xx).
    ///
    /// Exhaustive exploration is exponential in the worst case; gate it
    /// with [`Session::exhaustive_exploration_feasible`] (≤ 2 GPUs and
    /// ≤ 2 layers), as the Paranoid construction path does.
    pub fn certify_schedule(&self, explore: Option<usize>) -> Result<Report, SimError> {
        let trace = self.synthesize_schedule()?;
        let mut report = hongtu_verify::verify_schedule(&trace, explore);
        report.merge(hongtu_verify::verify_dataflow(
            &trace,
            &self.dataflow_spec(),
        ));
        Ok(report)
    }

    /// Statically certifies dataflow conservation alone (pass 9):
    /// synthesizes the epoch schedule and balances its provenance
    /// annotations against a [`hongtu_verify::DataflowSpec`] derived
    /// independently from the partition/dedup/buffer plans.
    pub fn certify_dataflow(&self) -> Result<Report, SimError> {
        let trace = self.synthesize_schedule()?;
        Ok(hongtu_verify::verify_dataflow(
            &trace,
            &self.dataflow_spec(),
        ))
    }

    /// Symbolically synthesizes the pruned sweep a
    /// [`Session::serve`] call for `vertices` would execute — the
    /// serving counterpart of [`Session::synthesize_schedule`]. The
    /// session itself is not perturbed.
    pub fn synthesize_serve_schedule(&self, vertices: &[usize]) -> Result<Trace, SimError> {
        let mut s = self.clone_for_synthesis();
        s.serve_mask = Some(ServeMask::from_queries(
            &s.plan,
            s.model.num_layers(),
            vertices,
        ));
        s.machine.replace_trace(Trace::unbounded());
        s.infer_epoch_inner()?;
        Ok(s.machine.replace_trace(Trace::disabled()))
    }

    /// Statically certifies the pruned serving sweep for `vertices`:
    /// synthesizes its schedule ([`Session::synthesize_serve_schedule`])
    /// and runs the schedule passes (6–8) plus dataflow conservation
    /// (pass 9) over it. Skipped batches emit no `Aggregate` events, so
    /// the unmodified plan-derived [`hongtu_verify::DataflowSpec`]
    /// certifies exactly the batches the sweep ran.
    pub fn certify_serve(
        &self,
        vertices: &[usize],
        explore: Option<usize>,
    ) -> Result<Report, SimError> {
        let mask = ServeMask::from_queries(&self.plan, self.model.num_layers(), vertices);
        let mut report = hongtu_verify::verify_cone(mask.grid(), hongtu_verify::ConeDir::Downward);
        let trace = self.synthesize_serve_schedule(vertices)?;
        report.merge(hongtu_verify::verify_schedule(&trace, explore));
        report.merge(hongtu_verify::verify_dataflow(
            &trace,
            &self.dataflow_spec(),
        ));
        Ok(report)
    }

    /// Symbolically synthesizes the pruned repair sweep a
    /// [`Session::apply_deltas`] replay for `dirty` seed vertices would
    /// execute against the session's *current* plans — the delta
    /// counterpart of [`Session::synthesize_serve_schedule`]. Call it
    /// after the apply (on the rebuilt plans) to certify the replay
    /// that just ran. The session itself is not perturbed.
    pub fn synthesize_delta_schedule(&self, dirty: &[usize]) -> Result<Trace, SimError> {
        let mut s = self.clone_for_synthesis();
        s.serve_mask = Some(ServeMask::from_dirty(&s.plan, s.model.num_layers(), dirty));
        s.machine.replace_trace(Trace::unbounded());
        s.infer_epoch_inner()?;
        Ok(s.machine.replace_trace(Trace::disabled()))
    }

    /// Statically certifies the incremental repair sweep for `dirty`
    /// seed vertices: checks the upward closure of the affected-cone
    /// mask (pass 10, C9xx), synthesizes the pruned replay schedule
    /// ([`Session::synthesize_delta_schedule`]), and runs the schedule
    /// passes (6–8) plus dataflow conservation (pass 9) over it.
    /// Skipped batches emit no `Aggregate` events, so the unmodified
    /// plan-derived [`hongtu_verify::DataflowSpec`] certifies exactly
    /// the batches the replay ran.
    pub fn certify_delta(
        &self,
        dirty: &[usize],
        explore: Option<usize>,
    ) -> Result<Report, SimError> {
        let mask = ServeMask::from_dirty(&self.plan, self.model.num_layers(), dirty);
        let mut report = hongtu_verify::verify_cone(mask.grid(), hongtu_verify::ConeDir::Upward);
        let trace = self.synthesize_delta_schedule(dirty)?;
        report.merge(hongtu_verify::verify_schedule(&trace, explore));
        report.merge(hongtu_verify::verify_dataflow(
            &trace,
            &self.dataflow_spec(),
        ));
        Ok(report)
    }

    /// The expected-flow table pass 9 certifies against. The merged
    /// in-place buffer plans are rebuilt on demand for P2P+RU — outside
    /// `Paranoid` the session does not retain them after construction.
    fn dataflow_spec(&self) -> hongtu_verify::DataflowSpec {
        let comm = match self.config.comm {
            CommMode::Vanilla => hongtu_verify::CommKind::Vanilla,
            CommMode::P2p => hongtu_verify::CommKind::P2p,
            CommMode::P2pRu => hongtu_verify::CommKind::P2pRu,
        };
        let rebuilt;
        let bufplans = if comm != hongtu_verify::CommKind::P2pRu {
            None
        } else if let Some(bufs) = &self.bufplans {
            Some(bufs.as_slice())
        } else {
            rebuilt = GpuBufferPlan::build_all(&self.plan, &self.dedup);
            Some(rebuilt.as_slice())
        };
        hongtu_verify::DataflowSpec::from_plans(&self.plan, &self.dedup, bufplans, comm)
    }

    /// Whether this session is small enough for the exhaustive
    /// interleaving exploration of pass 8 (≤ 2 GPUs × ≤ 2 layers — the
    /// bound the `verify-schedule` CLI and Paranoid construction use).
    pub fn exhaustive_exploration_feasible(&self) -> bool {
        self.plan.m <= 2 && self.model.num_layers() <= 2
    }

    /// Static peak-memory bound per tier, derived from the plans alone by
    /// the same arithmetic the executors charge: replicated parameters
    /// (plus optimizer state on training sessions), the pinned staging
    /// slots under [`OverlapMode::DoubleBuffer`], and otherwise the worst
    /// (layer, batch) footprint of the phased executor. The bound
    /// dominates (≥) the simulator's measured per-GPU and host peaks for
    /// every supported configuration.
    pub fn static_memory_bound(&self) -> StaticMemoryBound {
        let train = self.config.mode == Mode::Train;
        let m = self.plan.m;
        let param_copies = if train { 3 } else { 1 };
        let base = self.model.param_bytes() * param_copies;

        let gpu = (0..m)
            .map(|i| {
                // The hot-vertex cache pins its admitted rows for the
                // session lifetime; admission spent exactly the headroom
                // under this bound, so the sum stays ≤ device memory.
                let cache = self.cache.as_ref().map_or(0, |c| c.plan().per_gpu[i].bytes);
                base + cache
                    + match &self.staging {
                        // Overlap executor: batches live in the two pinned
                        // staging slots; no per-batch allocation exists.
                        Some(plans) => plans[i].total_bytes(),
                        None => self.worst_batch_footprint(i, train),
                    }
            })
            .collect();

        // Host: layer stores h^l (+ ∇h^l on training sessions) and the
        // hybrid aggregate cache — all allocated at construction.
        let v = self.h[0].rows();
        let mut host = 0usize;
        for hl in &self.h {
            host += v * hl.cols() * F32;
        }
        if train {
            host *= 2;
        }
        if train && self.config.memory == MemoryStrategy::Hybrid {
            for l in 0..self.model.num_layers() {
                for c in self.plan.all_chunks() {
                    host += self.model.layer(l).agg_cache_bytes(c);
                }
            }
        }
        StaticMemoryBound { gpu, host }
    }

    /// Worst-case per-batch device footprint of the phased (non-overlap)
    /// executor on GPU `i`: the merged neighbor buffer, chunk topology,
    /// layer output, and intermediates of the forward step, and the
    /// topology + intermediates + checkpoint reload of the backward step.
    fn worst_batch_footprint(&self, i: usize, train: bool) -> usize {
        let mut worst = 0usize;
        for l in 0..self.model.num_layers() {
            let layer = self.model.layer(l);
            let row = layer.in_dim() * F32;
            let use_hybrid =
                train && self.config.memory == MemoryStrategy::Hybrid && layer.supports_agg_cache();
            for (j, chunk) in self.plan.chunks[i].iter().enumerate() {
                let topo = chunk.topology_bytes();
                let buf = match self.config.comm {
                    CommMode::Vanilla => chunk.num_neighbors() * row,
                    CommMode::P2p => {
                        let b = &self.dedup.batches[j];
                        (b.transition[i].len() + chunk.num_neighbors() - b.fetch[i][i]) * row
                    }
                    CommMode::P2pRu => {
                        self.buffer_comm
                            .as_ref()
                            .expect("buffer plan built for P2pRu")[i][j]
                            .buffer_rows
                            * row
                    }
                };
                let out_bytes = chunk.num_dests() * layer.out_dim() * F32;
                let inter = layer.intermediate_bytes(chunk);
                worst = worst.max(buf + topo + out_bytes + inter);
                if train {
                    let reload = if use_hybrid {
                        layer.agg_cache_bytes(chunk)
                    } else {
                        buf
                    };
                    worst = worst.max(topo + inter + reload);
                }
            }
        }
        worst
    }

    /// Per-GPU serving admission budget in bytes: one input plus one
    /// output staging slot, as the overlap executor sizes them
    /// ([`StagingPlan::slot_budget`]) — taken from the pinned plans when
    /// overlap is on, computed by the same arithmetic on demand
    /// otherwise. A full-graph sweep's worst batch fits this by
    /// construction, so any cone (a subset of the full sweep's batches)
    /// admitted against it fits too.
    pub fn staging_budget(&self) -> Vec<usize> {
        if let Some(plans) = &self.staging {
            return plans.iter().map(StagingPlan::slot_budget).collect();
        }
        let rebuilt;
        let bufplans = if self.config.comm != CommMode::P2pRu {
            None
        } else if let Some(bufs) = &self.bufplans {
            Some(bufs.as_slice())
        } else {
            rebuilt = GpuBufferPlan::build_all(&self.plan, &self.dedup);
            Some(rebuilt.as_slice())
        };
        (0..self.plan.m)
            .map(|gpu| {
                plan_staging(
                    gpu,
                    &self.plan,
                    &self.dedup,
                    bufplans,
                    &self.model,
                    &self.config,
                )
                .slot_budget()
            })
            .collect()
    }

    /// Per-GPU staging cost of a serving cone: the worst input + output
    /// footprint over the `(layer, batch)` steps `mask` keeps active,
    /// computed with the same per-batch arithmetic as the staging plans
    /// ([`batch_staging_footprint`]). Admission control compares this
    /// against [`Session::staging_budget`].
    pub fn serve_cone_cost(&self, mask: &ServeMask) -> Vec<usize> {
        let rebuilt;
        let bufplans = if self.config.comm != CommMode::P2pRu {
            None
        } else if let Some(bufs) = &self.bufplans {
            Some(bufs.as_slice())
        } else {
            rebuilt = GpuBufferPlan::build_all(&self.plan, &self.dedup);
            Some(rebuilt.as_slice())
        };
        (0..self.plan.m)
            .map(|gpu| {
                let mut worst = 0usize;
                for l in 0..self.model.num_layers() {
                    for j in 0..self.plan.n {
                        if !mask.active(l, j) {
                            continue;
                        }
                        let (inb, outb) = batch_staging_footprint(
                            gpu,
                            l,
                            j,
                            &self.plan,
                            &self.dedup,
                            bufplans,
                            &self.model,
                            &self.config,
                        );
                        worst = worst.max(inb + outb);
                    }
                }
                worst
            })
            .collect()
    }

    /// Runs `inner` under the session's validation policy. Under
    /// [`ValidationLevel::Paranoid`], the epoch is *schedule-certified*:
    /// it runs under an unbounded event trace and the happens-before
    /// checker (`hongtu-verify`'s trace pass) must find no race or
    /// ordering hazard, else the epoch fails with
    /// [`SimError::InvalidSchedule`]. This applies in release builds too —
    /// opting into `Paranoid` buys the certification, whatever the build
    /// profile; it also certifies the parallel executor's schedules.
    /// Training and inference epochs share this wrapper, so inference
    /// schedules are held to the same certification bar.
    fn epoch_certified<R>(
        &mut self,
        inner: impl FnOnce(&mut Self) -> Result<R, SimError>,
    ) -> Result<R, SimError> {
        // Paranoid: re-run the graph-free verifier passes before touching
        // the plans again (catches accidental in-training mutation).
        let paranoid = self.config.validation == ValidationLevel::Paranoid;
        if paranoid {
            if let Some(bufs) = &self.bufplans {
                let report = hongtu_verify::verify_runtime(&self.plan, &self.dedup, bufs);
                if !report.is_ok() {
                    return Err(invalid_plan(&report));
                }
            }
        }
        if !paranoid {
            return inner(self);
        }
        // Schedule certification: run under an unbounded trace (the checker
        // refuses pruned traces), then replay the epoch's events into the
        // user's trace so external tracing still observes them.
        let mut user = self.machine.replace_trace(Trace::unbounded());
        let result = inner(self);
        if user.is_enabled() {
            for e in self.machine.trace().events() {
                user.record(e.clone());
            }
        }
        let certified = self.machine.replace_trace(user);
        if result.is_ok() {
            let report = hongtu_verify::verify_trace(&certified);
            if !report.is_ok() {
                return Err(invalid_schedule(&report));
            }
        }
        result
    }

    /// Runs one full training epoch (Algorithm 1) with the caller's
    /// optimizer state. Returns the loss and the simulated time spent.
    ///
    /// Most callers reach this through [`Trainer::epoch`] (or the
    /// [`HongTuEngine`] facade), which owns the [`Adam`] state.
    ///
    /// # Panics
    ///
    /// Panics if the session was built with [`Mode::Infer`]: inference
    /// sessions allocate neither gradient stores nor optimizer state, so
    /// a training epoch on one is an API-misuse bug, not a recoverable
    /// condition.
    pub fn train_epoch(&mut self, opt: &mut Adam) -> Result<EpochReport, SimError> {
        assert_eq!(
            self.config.mode,
            Mode::Train,
            "train_epoch on an inference session: build the session with \
             Mode::Train (inference sessions carry no gradient buffers or \
             optimizer state)"
        );
        self.epoch_certified(|s| s.train_epoch_inner(opt))
    }

    /// Runs one forward-only inference epoch over the full graph:
    /// layer-wise progression (all chunks of layer `l` before any chunk
    /// of layer `l+1`), no checkpoint stores, no gradients — activations
    /// spill to the host store only as the next layer's input. Reuses the
    /// same partition/dedup/staging plans and the same forward steps as
    /// training, so the logits are bitwise identical to a training
    /// epoch's forward half under every execution/overlap/comm mode.
    ///
    /// Works on any session. On a [`Mode::Infer`] session the peak
    /// memory in the report reflects the smaller serving footprint (no
    /// Adam state, no gradient host stores, no aggregate cache); on a
    /// [`Mode::Train`] session the epoch still skips checkpoint stores
    /// but runs against the training allocation.
    pub fn infer_epoch(&mut self) -> Result<InferReport, SimError> {
        self.epoch_certified(Self::infer_epoch_inner)
    }

    /// Serves exact logits for a subset of vertices: one forward sweep
    /// pruned to the union of the queried vertices' ≤ L-hop dependency
    /// cones ([`ServeMask`]), driven through the same step functions —
    /// and, under [`ValidationLevel::Paranoid`], the same per-epoch
    /// schedule certification — as [`Session::infer_epoch`]. The
    /// returned logits rows follow the query order and are bitwise
    /// equal to the same rows of a full inference epoch.
    ///
    /// Admission control lives above this call (`hongtu-serving`): a
    /// cone whose worst active batch exceeds
    /// [`Session::staging_budget`] should be rejected there instead of
    /// running; `serve` itself executes whatever cone it is given.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is empty or contains an out-of-range id.
    pub fn serve(&mut self, vertices: &[usize]) -> Result<ServeReport, SimError> {
        let mask = ServeMask::from_queries(&self.plan, self.model.num_layers(), vertices);
        self.serve_mask = Some(mask);
        let result = self.epoch_certified(Self::infer_epoch_inner);
        let mask = self.serve_mask.take().expect("serve mask installed above");
        let report = result?;
        Ok(ServeReport {
            logits: report.logits.gather_rows(vertices),
            time: report.time,
            buckets: report.buckets,
            peak_gpu_bytes: report.peak_gpu_bytes,
            peak_host_bytes: report.peak_host_bytes,
            active_steps: mask.active_steps(),
            total_steps: mask.total_steps(),
        })
    }

    /// Applies one batch of graph mutations and incrementally repairs
    /// every host-resident layer store in place: stages the batch
    /// against `dg`, rebuilds exactly the chunk subgraphs whose
    /// computation the mutations changed (destination membership is
    /// kept fixed, so untouched chunks stay bitwise identical),
    /// re-derives the downstream dedup/buffer/staging plans when the
    /// topology moved, FIFO-commits the batch, patches the mutated
    /// feature rows into `h^0`, and replays only the *upward-closed*
    /// affected cone ([`ServeMask::from_dirty`]) through the same step
    /// functions — and, under [`ValidationLevel::Paranoid`], the same
    /// per-epoch schedule certification — as a full
    /// [`Session::infer_epoch`].
    ///
    /// The returned logits are bitwise equal to a from-scratch
    /// inference epoch on the mutated graph: every row a replayed chunk
    /// reads at layer `l` is either bitwise-unchanged in `h^l` (its
    /// in-edge lists, weights, and transitive inputs are untouched) or
    /// was recomputed at layer `l − 1` (upward closure keeps dirty rows
    /// covered a layer below). That induction assumes the layer stores
    /// are *current* — run [`Session::infer_epoch`] once after
    /// construction before the first incremental apply (construction
    /// zero-fills `h^{l>0}`).
    ///
    /// # Panics
    ///
    /// Panics if the batch is invalid against `dg`
    /// ([`hongtu_delta::DeltaError`] — validate with
    /// [`DynamicGraph::stage`] first for a fallible path), if it is
    /// empty, or if `dg`'s vertex count differs from the session's.
    pub fn apply_deltas(
        &mut self,
        dg: &mut DynamicGraph,
        deltas: &[Delta],
    ) -> Result<DeltaReport, SimError> {
        let staged = dg
            .stage(deltas)
            .unwrap_or_else(|e| panic!("invalid delta batch: {e}"));
        self.apply_staged_impl(dg, staged, true)
    }

    /// [`Session::apply_deltas`] for an already-staged batch (the
    /// serving queue stages once for admission pricing and reuses the
    /// result here).
    ///
    /// # Panics
    ///
    /// Panics if `staged` is empty, was staged against a different
    /// epoch of `dg`, or if `dg`'s vertex count differs from the
    /// session's.
    pub fn apply_staged(
        &mut self,
        dg: &mut DynamicGraph,
        staged: StagedCommit,
    ) -> Result<DeltaReport, SimError> {
        self.apply_staged_impl(dg, staged, true)
    }

    /// Baseline twin of [`Session::apply_deltas`]: identical staging,
    /// chunk/plan rebuild, and commit, but the repair sweep replays
    /// **every** `(layer, batch)` step instead of the affected cone.
    /// Exists so benchmarks (`bench_delta`) can compare incremental
    /// against full recompute on perfectly matched state — the logits
    /// of both paths are bitwise identical.
    ///
    /// # Panics
    ///
    /// As [`Session::apply_deltas`].
    pub fn apply_deltas_full(
        &mut self,
        dg: &mut DynamicGraph,
        deltas: &[Delta],
    ) -> Result<DeltaReport, SimError> {
        let staged = dg
            .stage(deltas)
            .unwrap_or_else(|e| panic!("invalid delta batch: {e}"));
        self.apply_staged_impl(dg, staged, false)
    }

    fn apply_staged_impl(
        &mut self,
        dg: &mut DynamicGraph,
        staged: StagedCommit,
        incremental: bool,
    ) -> Result<DeltaReport, SimError> {
        assert_eq!(
            dg.num_vertices(),
            self.h[0].rows(),
            "dynamic graph and session disagree on vertex count"
        );
        assert!(
            !staged.dirty().is_empty(),
            "empty delta batch: nothing to replay"
        );

        // ---- rebuild the chunk subgraphs whose computation changed:
        // a chunk is stale iff it owns a structurally dirty dest (its
        // edge list or global-degree GCN weights moved). Destination
        // membership is never re-balanced, so every other chunk — and
        // its rows in every h^l — stays bitwise identical. ----
        let mut rebuilt = 0usize;
        if !staged.structural().is_empty() {
            let mut structural = vec![false; dg.num_vertices()];
            for &s in staged.structural() {
                structural[s] = true;
            }
            for row in &mut self.plan.chunks {
                for chunk in row.iter_mut() {
                    if chunk.dests.iter().any(|&d| structural[d as usize]) {
                        *chunk = ChunkSubgraph::build(
                            staged.graph(),
                            chunk.part,
                            chunk.chunk,
                            chunk.dests.clone(),
                        );
                        rebuilt += 1;
                    }
                }
            }

            // ---- downstream plans follow the topology ----
            self.dedup = DedupPlan::build(&self.plan);
            let bufplans = if self.config.validation != ValidationLevel::Off
                || self.config.comm == CommMode::P2pRu
            {
                Some(GpuBufferPlan::build_all(&self.plan, &self.dedup))
            } else {
                None
            };
            if self.config.validation != ValidationLevel::Off {
                let report = hongtu_verify::verify_all(
                    staged.graph(),
                    &self.plan,
                    &self.dedup,
                    bufplans.as_deref().unwrap_or(&[]),
                );
                if !report.is_ok() {
                    return Err(invalid_plan(&report));
                }
            }
            self.buffer_comm = build_buffer_comm(&self.plan, bufplans.as_deref(), self.config.comm);
            self.preprocessing.volumes = CommVolumes::from_plan(&self.dedup);

            // ---- re-pin staging for the new worst-case footprint ----
            if let Some(old) = self.staging.take() {
                for p in &old {
                    p.uninstall(&mut self.machine);
                }
                let plans: Vec<StagingPlan> = (0..self.plan.m)
                    .map(|gpu| {
                        plan_staging(
                            gpu,
                            &self.plan,
                            &self.dedup,
                            bufplans.as_deref(),
                            &self.model,
                            &self.config,
                        )
                    })
                    .collect();
                for p in &plans {
                    p.install(&mut self.machine)?;
                }
                self.staging = Some(plans);
            }
            self.bufplans = bufplans;

            // ---- the cache plan follows the topology too: the load
            // sets and degrees moved, so re-derive admission from
            // scratch (rows of the old plan may no longer be scheduled
            // host loads at all). The rebuilt runtime starts cold. ----
            if self.config.cache.enabled() {
                let degrees: Vec<u32> = (0..dg.num_vertices())
                    .map(|u| staged.graph().out_degree(u as u32) as u32)
                    .collect();
                self.install_cache(&degrees)?;
            }
        }

        // ---- FIFO commit, then patch the mutated feature rows into
        // h^0: the replay below reads them at layer 0 ----
        let dirty = staged.dirty().to_vec();
        let patches = staged.feature_patches().to_vec();
        let receipt = dg.commit(staged);
        for (vtx, row) in &patches {
            self.h[0].row_mut(*vtx).copy_from_slice(row);
        }
        // Cached copies of patched `h^0` rows are stale the instant the
        // patch lands: drop (and journal) them before the replay sweeps.
        if let Some(c) = self.cache.as_mut() {
            let dirty_ids: Vec<_> = dirty.iter().map(|&d| d as u32).collect();
            c.invalidate(&dirty_ids);
        }

        // ---- replay the affected cone (or everything, for the
        // full-recompute baseline) through the inference sweep ----
        let mask = ServeMask::from_dirty(&self.plan, self.model.num_layers(), &dirty);
        if self.config.validation != ValidationLevel::Off {
            let report = hongtu_verify::verify_cone(mask.grid(), hongtu_verify::ConeDir::Upward);
            if !report.is_ok() {
                return Err(invalid_plan(&report));
            }
        }
        if incremental {
            self.serve_mask = Some(mask.clone());
        }
        let result = self.epoch_certified(Self::infer_epoch_inner);
        self.serve_mask = None;
        let report = result?;
        Ok(DeltaReport {
            epoch: receipt.epoch,
            logits: report.logits,
            time: report.time,
            buckets: report.buckets,
            peak_gpu_bytes: report.peak_gpu_bytes,
            peak_host_bytes: report.peak_host_bytes,
            active_steps: if incremental {
                mask.active_steps()
            } else {
                mask.total_steps()
            },
            total_steps: mask.total_steps(),
            dirty_vertices: dirty.len(),
            rebuilt_chunks: rebuilt,
        })
    }

    fn infer_epoch_inner(&mut self) -> Result<InferReport, SimError> {
        self.run_mode = Mode::Infer;
        let t0 = self.machine.elapsed();
        let b0 = self.machine.buckets();
        let l_count = self.model.num_layers();
        let n = self.plan.n;
        let phased = self.config.comm != CommMode::Vanilla;
        let parallel = self.config.exec == ExecutionMode::Parallel;
        let overlap = self.config.overlap == OverlapMode::DoubleBuffer;

        // A batch's layer-0 host load runs iff layer 0 is active under
        // the serving/delta mask; the cache installs only those rows.
        let executed: Vec<bool> = (0..n)
            .map(|j| self.serve_mask.as_ref().is_none_or(|m| m.active(0, j)))
            .collect();
        if let Some(c) = self.cache.as_mut() {
            c.begin_sweep();
        }

        // ---- forward pass only (Alg 1, lines 4–9, minus checkpoints) ----
        for l in 0..l_count {
            if overlap {
                if parallel {
                    self.forward_layer_overlap_parallel(l);
                } else {
                    self.forward_layer_overlap_sequential(l);
                }
            } else {
                for j in 0..n {
                    if parallel {
                        self.forward_batch_parallel(l, j, phased)?;
                    } else {
                        self.forward_batch_sequential(l, j, phased)?;
                    }
                }
            }
        }
        self.machine.sync(BarrierScope::Epoch);
        if let Some(c) = self.cache.as_mut() {
            c.end_sweep(&executed);
        }

        self.epochs_run += 1;
        Ok(InferReport {
            logits: self.h.last().unwrap().clone(),
            time: self.machine.elapsed() - t0,
            buckets: delta(self.machine.buckets(), b0),
            peak_gpu_bytes: self.machine.max_gpu_peak(),
            peak_host_bytes: self.machine.host_memory().peak(),
        })
    }

    fn train_epoch_inner(&mut self, opt: &mut Adam) -> Result<EpochReport, SimError> {
        self.run_mode = Mode::Train;
        let t0 = self.machine.elapsed();
        let b0 = self.machine.buckets();
        let l_count = self.model.num_layers();
        let m = self.plan.m;
        let n = self.plan.n;
        // Non-vanilla batches have cross-GPU data dependencies inside a
        // batch (P2P fetches read what owners loaded; evictions read what
        // remote GPUs pushed); those windows are separated by phase
        // barriers. Vanilla batches touch only per-GPU state.
        let phased = self.config.comm != CommMode::Vanilla;
        let parallel = self.config.exec == ExecutionMode::Parallel;
        let overlap = self.config.overlap == OverlapMode::DoubleBuffer;

        if !self.synth {
            for g in &mut self.grad_h {
                g.fill_zero();
            }
        }
        // Zero-initializing the host gradient stores is a (cost-free)
        // write the schedule checker needs to see: every later gradient
        // accumulate/read is ordered after it.
        self.machine
            .tag((0..=l_count).map(|l| Access::write(grad(l), Region::All)));
        self.machine.cpu_compute(0, 0.0);

        // Training epochs are always full sweeps: every batch's layer-0
        // host load runs, so the cache installs every admitted row it
        // saw loaded this sweep.
        if let Some(c) = self.cache.as_mut() {
            c.begin_sweep();
        }

        // ---- forward pass (Alg 1, lines 4–9) ----
        for l in 0..l_count {
            if overlap {
                if parallel {
                    self.forward_layer_overlap_parallel(l);
                } else {
                    self.forward_layer_overlap_sequential(l);
                }
            } else {
                for j in 0..n {
                    if parallel {
                        self.forward_batch_parallel(l, j, phased)?;
                    } else {
                        self.forward_batch_sequential(l, j, phased)?;
                    }
                }
            }
        }
        // The backward pass re-loads through checkpoint reloads, which
        // bypass the cache by design — the sweep ends with the forward.
        if let Some(c) = self.cache.as_mut() {
            c.end_sweep(&vec![true; n]);
        }

        // ---- downstream task (lines 10–11) ----
        let loss = if self.synth {
            MaskedLoss {
                loss: 0.0,
                grad: Matrix::zeros(0, 0),
                accuracy: 0.0,
            }
        } else {
            masked_cross_entropy(self.h.last().unwrap(), &self.labels, &self.train_mask)
        };
        let v = self.labels.len();
        let classes = self.h.last().unwrap().cols();
        self.machine.tag([
            Access::read(rep(l_count), Region::All),
            Access::write(grad(l_count), Region::All),
        ]);
        self.machine.cpu_compute(0, (v * classes * 8) as f64);
        if !self.synth {
            *self.grad_h.last_mut().unwrap() = loss.grad.clone();
        }
        // The loss gradient is written on GPU 0's timeline; every GPU's
        // backward pass reads it, so the batch loop must not start before
        // a barrier.
        self.machine.sync(BarrierScope::Batch);

        // ---- backward pass (lines 12–19) ----
        let mut grads: Vec<Vec<LayerGrads>> = (0..m).map(|_| self.model.zero_grads()).collect();
        for l in (0..l_count).rev() {
            if overlap {
                if parallel {
                    self.backward_layer_overlap_parallel(l, &mut grads);
                } else {
                    self.backward_layer_overlap_sequential(l, &mut grads);
                }
            } else {
                for j in 0..n {
                    if parallel {
                        self.backward_batch_parallel(l, j, phased, &mut grads)?;
                    } else {
                        self.backward_batch_sequential(l, j, phased, &mut grads)?;
                    }
                }
            }
        }

        // ---- parameter update with all-reduce (lines 20–21) ----
        let param_bytes = self.model.param_bytes();
        for i in 0..m {
            // Ring all-reduce: 2·(m−1)/m of the parameter volume per GPU.
            // Modeled as an internally-ordered collective, so it carries no
            // access annotations.
            let ring = 2 * param_bytes * (m.saturating_sub(1)) / m.max(1);
            self.machine.d2d((i + 1) % m, i, ring);
            self.machine
                .gpu_dense(i, 2.0 * self.model.param_count() as f64);
        }
        self.machine.sync(BarrierScope::Epoch);
        if !self.synth {
            let mut total = self.model.zero_grads();
            for gpu_grads in &grads {
                for (t, g) in total.iter_mut().zip(gpu_grads) {
                    t.add(g);
                }
            }
            self.model.apply_grads(&total, opt);
        }

        self.epochs_run += 1;
        Ok(EpochReport {
            loss,
            time: self.machine.elapsed() - t0,
            buckets: delta(self.machine.buckets(), b0),
        })
    }

    /// One forward batch on the sequential executor: per-GPU steps run in
    /// GPU index order against the machine's own timeline. Host-store
    /// writes are applied after the compute loop — a bitwise no-op
    /// relative to inline application (destination rows are disjoint
    /// across the batch's chunks and nothing reads `h^{l+1}` before the
    /// batch barrier) that pins the write point to the same place the
    /// parallel executor uses.
    fn forward_batch_sequential(
        &mut self,
        l: usize,
        j: usize,
        phased: bool,
    ) -> Result<(), SimError> {
        let m = self.plan.m;
        let mut loads = Vec::with_capacity(m);
        {
            let ctx = ctx!(self);
            for i in 0..m {
                loads.push(forward_load_step(&ctx, &mut self.machine, l, i, j)?);
            }
        }
        if phased {
            // Host loads populate the transition rows that remote GPUs
            // fetch over P2P in the next phase.
            self.machine.sync(BarrierScope::Phase);
        }
        let mut outs = Vec::with_capacity(m);
        {
            let ctx = ctx!(self);
            for (i, load) in loads.iter().enumerate() {
                outs.push(forward_compute_step(
                    &ctx,
                    &mut self.machine,
                    l,
                    i,
                    j,
                    load.buf_bytes,
                    &NbrFeed::Direct,
                )?);
            }
        }
        self.apply_forward_outs(l, j, outs);
        self.machine.sync(BarrierScope::Batch);
        Ok(())
    }

    /// One forward batch on the parallel executor: the m GPUs' load and
    /// compute steps each run on worker threads against forked per-GPU
    /// timeline shards, joined in GPU index order at exactly the points
    /// where the sequential executor places its barriers. Owner GPUs hand
    /// the neighbor rows they serve over typed channels during the load
    /// phase, so the compute phase never blocks on a receive.
    fn forward_batch_parallel(&mut self, l: usize, j: usize, phased: bool) -> Result<(), SimError> {
        let m = self.plan.m;
        // -- load phase (plus P2P serves into the per-GPU channels) --
        let mut shards = self.machine.fork_shards();
        let (txs, rxs): (Vec<Sender<ServeBlock>>, Vec<Receiver<ServeBlock>>) =
            (0..m).map(|_| mpsc::channel()).unzip();
        let mut load_slots: Vec<Option<Result<FwLoad, SimError>>> = (0..m).map(|_| None).collect();
        {
            let ctx = ctx!(self);
            let ctx = &ctx;
            let txs = &txs;
            hongtu_parallel::global().scope(|s| {
                for (shard, slot) in shards.iter_mut().zip(load_slots.iter_mut()) {
                    let txs = txs.to_vec();
                    s.spawn(move || {
                        let i = shard.gpu();
                        let r = forward_load_step(ctx, shard, l, i, j);
                        if phased && r.is_ok() {
                            serve_neighbor_rows(ctx, l, i, j, &txs);
                        }
                        *slot = Some(r);
                    });
                }
            });
        }
        drop(txs);
        self.machine.join_shards(shards);
        let loads = collect_slots(load_slots)?;
        if phased {
            self.machine.sync(BarrierScope::Phase);
        }

        // -- compute phase --
        let mut shards = self.machine.fork_shards();
        let mut out_slots: Vec<Option<Result<FwOut, SimError>>> = (0..m).map(|_| None).collect();
        {
            let ctx = ctx!(self);
            let ctx = &ctx;
            hongtu_parallel::global().scope(|s| {
                for (((shard, slot), load), rx) in shards
                    .iter_mut()
                    .zip(out_slots.iter_mut())
                    .zip(loads.iter())
                    .zip(rxs)
                {
                    s.spawn(move || {
                        let i = shard.gpu();
                        let feed = if phased {
                            NbrFeed::Served(rx.try_iter().collect())
                        } else {
                            NbrFeed::Direct
                        };
                        *slot = Some(forward_compute_step(
                            ctx,
                            shard,
                            l,
                            i,
                            j,
                            load.buf_bytes,
                            &feed,
                        ));
                    });
                }
            });
        }
        self.machine.join_shards(shards);
        let outs = collect_slots(out_slots)?;
        self.apply_forward_outs(l, j, outs);
        self.machine.sync(BarrierScope::Batch);
        Ok(())
    }

    /// Applies a forward batch's host-store writes in GPU index order
    /// (the fixed reduction order of the determinism contract): the
    /// `h^{l+1}` scatter (Alg 1 line 9) and the hybrid checkpoint store.
    fn apply_forward_outs(&mut self, l: usize, j: usize, outs: Vec<FwOut>) {
        // A batch pruned from a serving sweep computed nothing: there is
        // no output to scatter (and scattering an empty placeholder
        // against the chunk's dest list would be a shape error).
        if self.serve_mask.as_ref().is_some_and(|m| !m.active(l, j)) {
            return;
        }
        for (i, out) in outs.into_iter().enumerate() {
            if !self.synth {
                let dest_idx: Vec<usize> = self.plan.chunks[i][j]
                    .dests
                    .iter()
                    .map(|&v| v as usize)
                    .collect();
                self.h[l + 1].scatter_rows(&dest_idx, &out.out);
            }
            // Synthesis still stores the (placeholder) checkpoint: the
            // backward steps read its byte size off the cache.
            if let Some(agg) = out.agg {
                self.agg_cache[l][i][j] = Some(agg);
            }
        }
    }

    /// One backward batch on the sequential executor; like
    /// [`HongTuEngine::forward_batch_sequential`], the overlapping
    /// `∇h^l` accumulations are applied after the compute loop in GPU
    /// index order (identical f32 summation order to inline application,
    /// since the loop itself ran in that order and nothing in it reads
    /// `∇h^l`).
    fn backward_batch_sequential(
        &mut self,
        l: usize,
        j: usize,
        phased: bool,
        grads: &mut [Vec<LayerGrads>],
    ) -> Result<(), SimError> {
        let m = self.plan.m;
        let mut loads = Vec::with_capacity(m);
        {
            let ctx = ctx!(self);
            for i in 0..m {
                loads.push(backward_load_step(&ctx, &mut self.machine, l, i, j)?);
            }
        }
        if phased {
            self.machine.sync(BarrierScope::Phase);
        }
        let mut grad_nbrs = Vec::with_capacity(m);
        {
            let ctx = ctx!(self);
            for (i, load) in loads.iter().enumerate() {
                grad_nbrs.push(backward_compute_step(
                    &ctx,
                    &mut self.machine,
                    l,
                    i,
                    j,
                    load,
                    &mut grads[i][l],
                    &NbrFeed::Direct,
                )?);
            }
        }
        self.apply_backward_grads(l, j, grad_nbrs);
        if phased {
            // Evictions read the transition-gradient buffers that remote
            // GPUs accumulate into during the compute phase.
            self.machine.sync(BarrierScope::Phase);
        }
        {
            let ctx = ctx!(self);
            for (i, load) in loads.iter().enumerate() {
                backward_evict_step(&ctx, &mut self.machine, l, i, j, load);
            }
        }
        self.machine.sync(BarrierScope::Batch);
        Ok(())
    }

    /// One backward batch on the parallel executor: load / compute /
    /// evict sub-phases each fork per-GPU shards, and the recompute
    /// path's neighbor reload is fed through the same typed serve
    /// channels as the forward pass.
    fn backward_batch_parallel(
        &mut self,
        l: usize,
        j: usize,
        phased: bool,
        grads: &mut [Vec<LayerGrads>],
    ) -> Result<(), SimError> {
        let m = self.plan.m;
        // The hybrid path reloads the cached aggregate instead of
        // neighbor representations — no serves needed.
        let serve = phased
            && !(self.config.memory == MemoryStrategy::Hybrid
                && self.model.layer(l).supports_agg_cache());

        // -- load phase (plus serves for the recompute reload) --
        let mut shards = self.machine.fork_shards();
        let (txs, rxs): (Vec<Sender<ServeBlock>>, Vec<Receiver<ServeBlock>>) =
            (0..m).map(|_| mpsc::channel()).unzip();
        let mut load_slots: Vec<Option<Result<BwLoad, SimError>>> = (0..m).map(|_| None).collect();
        {
            let ctx = ctx!(self);
            let ctx = &ctx;
            let txs = &txs;
            hongtu_parallel::global().scope(|s| {
                for (shard, slot) in shards.iter_mut().zip(load_slots.iter_mut()) {
                    let txs = txs.to_vec();
                    s.spawn(move || {
                        let i = shard.gpu();
                        let r = backward_load_step(ctx, shard, l, i, j);
                        if serve && r.is_ok() {
                            serve_neighbor_rows(ctx, l, i, j, &txs);
                        }
                        *slot = Some(r);
                    });
                }
            });
        }
        drop(txs);
        self.machine.join_shards(shards);
        let loads = collect_slots(load_slots)?;
        if phased {
            self.machine.sync(BarrierScope::Phase);
        }

        // -- compute phase --
        let mut shards = self.machine.fork_shards();
        let mut out_slots: Vec<Option<Result<Matrix, SimError>>> = (0..m).map(|_| None).collect();
        {
            let ctx = ctx!(self);
            let ctx = &ctx;
            hongtu_parallel::global().scope(|s| {
                for ((((shard, slot), load), gpu_grads), rx) in shards
                    .iter_mut()
                    .zip(out_slots.iter_mut())
                    .zip(loads.iter())
                    .zip(grads.iter_mut())
                    .zip(rxs)
                {
                    s.spawn(move || {
                        let i = shard.gpu();
                        let feed = if serve {
                            NbrFeed::Served(rx.try_iter().collect())
                        } else {
                            NbrFeed::Direct
                        };
                        *slot = Some(backward_compute_step(
                            ctx,
                            shard,
                            l,
                            i,
                            j,
                            load,
                            &mut gpu_grads[l],
                            &feed,
                        ));
                    });
                }
            });
        }
        self.machine.join_shards(shards);
        let grad_nbrs = collect_slots(out_slots)?;
        self.apply_backward_grads(l, j, grad_nbrs);
        if phased {
            self.machine.sync(BarrierScope::Phase);
        }

        // -- evict phase --
        let mut shards = self.machine.fork_shards();
        {
            let ctx = ctx!(self);
            let ctx = &ctx;
            hongtu_parallel::global().scope(|s| {
                for (shard, load) in shards.iter_mut().zip(loads.iter()) {
                    s.spawn(move || {
                        let i = shard.gpu();
                        backward_evict_step(ctx, shard, l, i, j, load);
                    });
                }
            });
        }
        self.machine.join_shards(shards);
        self.machine.sync(BarrierScope::Batch);
        Ok(())
    }

    /// Accumulates a backward batch's neighbor gradients into the host
    /// store in GPU index order — neighbor sets overlap across GPUs, so
    /// this fixed order *is* the determinism contract for `∇h^l`.
    fn apply_backward_grads(&mut self, l: usize, j: usize, grad_nbrs: Vec<Matrix>) {
        if self.synth {
            return;
        }
        for (i, grad_nbr) in grad_nbrs.into_iter().enumerate() {
            let nbr_idx: Vec<usize> = self.plan.chunks[i][j]
                .neighbors
                .iter()
                .map(|&v| v as usize)
                .collect();
            self.grad_h[l].scatter_add_rows(&nbr_idx, &grad_nbr);
        }
    }

    /// One forward layer under the overlap executor, sequential host
    /// execution: the segments of [`hongtu_stream::pipeline`] run their
    /// three roles on the three per-GPU streams between batch barriers,
    /// so a segment costs the *maximum* of prefetch, compute, and drain
    /// instead of their sum. Host-store writes are still leader-applied
    /// in GPU index order, so results are bitwise identical to the
    /// non-overlapped executor.
    fn forward_layer_overlap_sequential(&mut self, l: usize) {
        let m = self.plan.m;
        for seg in pipeline(self.plan.n) {
            let mut outs = Vec::with_capacity(m);
            {
                let ctx = ctx!(self);
                if let Some(p) = seg.prefetch {
                    for i in 0..m {
                        ov_forward_prefetch(&ctx, &mut self.machine, l, i, p);
                    }
                }
                if let Some(c) = seg.compute {
                    for i in 0..m {
                        outs.push(ov_forward_compute(&ctx, &mut self.machine, l, i, c));
                    }
                }
                if let Some(d) = seg.drain {
                    for i in 0..m {
                        ov_forward_drain(&ctx, &mut self.machine, l, i, d);
                    }
                }
            }
            if let Some(c) = seg.compute {
                self.apply_forward_outs(l, c, outs);
                self.machine.sync(BarrierScope::Batch);
            } else {
                // Prologue/epilogue segments only move data; a phase
                // barrier publishes it without advancing the batch count.
                self.machine.sync(BarrierScope::Phase);
            }
        }
    }

    /// One forward layer under the overlap executor, parallel host
    /// execution: each segment's three roles fork per-GPU shards in
    /// turn, joined in GPU index order, so clocks, traces, and results
    /// are bitwise identical to the sequential overlap driver. `h^l` is
    /// frozen for the whole layer (writes go to `h^{l+1}`), so workers
    /// gather neighbor rows straight from the host store — no serve
    /// channels needed.
    fn forward_layer_overlap_parallel(&mut self, l: usize) {
        let m = self.plan.m;
        for seg in pipeline(self.plan.n) {
            if let Some(p) = seg.prefetch {
                let mut shards = self.machine.fork_shards();
                {
                    let ctx = ctx!(self);
                    let ctx = &ctx;
                    hongtu_parallel::global().scope(|s| {
                        for shard in shards.iter_mut() {
                            s.spawn(move || {
                                let i = shard.gpu();
                                ov_forward_prefetch(ctx, shard, l, i, p);
                            });
                        }
                    });
                }
                self.machine.join_shards(shards);
            }
            let mut outs = Vec::new();
            if let Some(c) = seg.compute {
                let mut shards = self.machine.fork_shards();
                let mut slots: Vec<Option<FwOut>> = (0..m).map(|_| None).collect();
                {
                    let ctx = ctx!(self);
                    let ctx = &ctx;
                    hongtu_parallel::global().scope(|s| {
                        for (shard, slot) in shards.iter_mut().zip(slots.iter_mut()) {
                            s.spawn(move || {
                                let i = shard.gpu();
                                *slot = Some(ov_forward_compute(ctx, shard, l, i, c));
                            });
                        }
                    });
                }
                self.machine.join_shards(shards);
                outs = slots
                    .into_iter()
                    .map(|s| s.expect("worker task did not run"))
                    .collect();
            }
            if let Some(d) = seg.drain {
                let mut shards = self.machine.fork_shards();
                {
                    let ctx = ctx!(self);
                    let ctx = &ctx;
                    hongtu_parallel::global().scope(|s| {
                        for shard in shards.iter_mut() {
                            s.spawn(move || {
                                let i = shard.gpu();
                                ov_forward_drain(ctx, shard, l, i, d);
                            });
                        }
                    });
                }
                self.machine.join_shards(shards);
            }
            if let Some(c) = seg.compute {
                self.apply_forward_outs(l, c, outs);
                self.machine.sync(BarrierScope::Batch);
            } else {
                self.machine.sync(BarrierScope::Phase);
            }
        }
    }

    /// One backward layer under the overlap executor, sequential host
    /// execution. The `∇h^{l+1}` gathers prefetched a segment early are
    /// carried in a two-slot host staging mirror of the device slots.
    fn backward_layer_overlap_sequential(&mut self, l: usize, grads: &mut [Vec<LayerGrads>]) {
        let m = self.plan.m;
        let mut staged: [Vec<Matrix>; 2] = [Vec::new(), Vec::new()];
        for seg in pipeline(self.plan.n) {
            let mut grad_nbrs = Vec::with_capacity(m);
            {
                let ctx = ctx!(self);
                if let Some(p) = seg.prefetch {
                    staged[p % 2] = (0..m)
                        .map(|i| ov_backward_prefetch(&ctx, &mut self.machine, l, i, p))
                        .collect();
                }
                if let Some(c) = seg.compute {
                    for i in 0..m {
                        grad_nbrs.push(ov_backward_compute(
                            &ctx,
                            &mut self.machine,
                            l,
                            i,
                            c,
                            &staged[c % 2][i],
                            &mut grads[i][l],
                        ));
                    }
                }
                if let Some(d) = seg.drain {
                    for i in 0..m {
                        ov_backward_drain(&ctx, &mut self.machine, l, i, d);
                    }
                }
            }
            if let Some(c) = seg.compute {
                self.apply_backward_grads(l, c, grad_nbrs);
                self.machine.sync(BarrierScope::Batch);
            } else {
                self.machine.sync(BarrierScope::Phase);
            }
        }
    }

    /// One backward layer under the overlap executor, parallel host
    /// execution; the per-segment fork/join structure mirrors
    /// [`HongTuEngine::forward_layer_overlap_parallel`]. `∇h^{l+1}` is
    /// frozen for the whole layer, so workers gather directly.
    fn backward_layer_overlap_parallel(&mut self, l: usize, grads: &mut [Vec<LayerGrads>]) {
        let m = self.plan.m;
        let mut staged: [Vec<Matrix>; 2] = [Vec::new(), Vec::new()];
        for seg in pipeline(self.plan.n) {
            if let Some(p) = seg.prefetch {
                let mut shards = self.machine.fork_shards();
                let mut slots: Vec<Option<Matrix>> = (0..m).map(|_| None).collect();
                {
                    let ctx = ctx!(self);
                    let ctx = &ctx;
                    hongtu_parallel::global().scope(|s| {
                        for (shard, slot) in shards.iter_mut().zip(slots.iter_mut()) {
                            s.spawn(move || {
                                let i = shard.gpu();
                                *slot = Some(ov_backward_prefetch(ctx, shard, l, i, p));
                            });
                        }
                    });
                }
                self.machine.join_shards(shards);
                staged[p % 2] = slots
                    .into_iter()
                    .map(|s| s.expect("worker task did not run"))
                    .collect();
            }
            let mut grad_nbrs = Vec::new();
            if let Some(c) = seg.compute {
                let mut shards = self.machine.fork_shards();
                let mut slots: Vec<Option<Matrix>> = (0..m).map(|_| None).collect();
                {
                    let ctx = ctx!(self);
                    let ctx = &ctx;
                    let staged_c = &staged[c % 2];
                    hongtu_parallel::global().scope(|s| {
                        for (((shard, slot), go), gpu_grads) in shards
                            .iter_mut()
                            .zip(slots.iter_mut())
                            .zip(staged_c.iter())
                            .zip(grads.iter_mut())
                        {
                            s.spawn(move || {
                                let i = shard.gpu();
                                *slot = Some(ov_backward_compute(
                                    ctx,
                                    shard,
                                    l,
                                    i,
                                    c,
                                    go,
                                    &mut gpu_grads[l],
                                ));
                            });
                        }
                    });
                }
                self.machine.join_shards(shards);
                grad_nbrs = slots
                    .into_iter()
                    .map(|s| s.expect("worker task did not run"))
                    .collect();
            }
            if let Some(d) = seg.drain {
                let mut shards = self.machine.fork_shards();
                {
                    let ctx = ctx!(self);
                    let ctx = &ctx;
                    hongtu_parallel::global().scope(|s| {
                        for shard in shards.iter_mut() {
                            s.spawn(move || {
                                let i = shard.gpu();
                                ov_backward_drain(ctx, shard, l, i, d);
                            });
                        }
                    });
                }
                self.machine.join_shards(shards);
            }
            if let Some(c) = seg.compute {
                self.apply_backward_grads(l, c, grad_nbrs);
                self.machine.sync(BarrierScope::Batch);
            } else {
                self.machine.sync(BarrierScope::Phase);
            }
        }
    }

    /// Mutable access to the simulated machine, e.g. to enable the
    /// unbounded event trace before certifying an epoch schedule.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The configuration the session was built with.
    pub fn config(&self) -> &HongTuConfig {
        &self.config
    }

    /// Replaces the model parameters, e.g. with weights restored via
    /// [`hongtu_nn::load_model_file`] before serving.
    ///
    /// # Panics
    ///
    /// Panics if the replacement's layer count or parameter volume
    /// differs from the session's (the GPU allocations and staging plans
    /// were sized for the original model).
    pub fn set_model(&mut self, model: GnnModel) {
        assert_eq!(
            (model.num_layers(), model.param_bytes()),
            (self.model.num_layers(), self.model.param_bytes()),
            "replacement model shape differs from the session's"
        );
        self.model = model;
    }

    /// A training executor borrowing this session, owning fresh [`Adam`]
    /// optimizer state (initialized from the configured learning rate).
    ///
    /// # Panics
    ///
    /// Panics if the session was built with [`Mode::Infer`] — see
    /// [`Session::train_epoch`].
    pub fn trainer(&mut self) -> Trainer<'_> {
        assert_eq!(
            self.config.mode,
            Mode::Train,
            "trainer() on an inference session: build the session with Mode::Train"
        );
        let opt = Adam::new(self.config.lr);
        Trainer { session: self, opt }
    }

    /// A forward-only inference executor borrowing this session.
    pub fn inferencer(&mut self) -> Inferencer<'_> {
        Inferencer { session: self }
    }
}

/// Training executor: borrows a [`Session`] and owns the [`Adam`]
/// optimizer state, so several training runs (each with fresh optimizer
/// moments) can reuse one validated session.
pub struct Trainer<'s> {
    session: &'s mut Session,
    opt: Adam,
}

impl Trainer<'_> {
    /// Runs one training epoch — see [`Session::train_epoch`].
    pub fn epoch(&mut self) -> Result<EpochReport, SimError> {
        self.session.train_epoch(&mut self.opt)
    }

    /// The underlying session (logits, accuracy, machine state).
    pub fn session(&self) -> &Session {
        self.session
    }
}

/// Forward-only inference executor borrowing a [`Session`].
pub struct Inferencer<'s> {
    session: &'s mut Session,
}

impl Inferencer<'_> {
    /// Runs one inference epoch — see [`Session::infer_epoch`].
    pub fn epoch(&mut self) -> Result<InferReport, SimError> {
        self.session.infer_epoch()
    }

    /// The underlying session (logits, accuracy, machine state).
    pub fn session(&self) -> &Session {
        self.session
    }
}

/// The classic owning engine: a [`Session`] plus [`Adam`] optimizer
/// state, with `train_epoch`/`infer_epoch` inherent methods. Existing
/// callers keep working unchanged; new code that wants to separate the
/// validated session from its executors should use [`Session`] with
/// [`Session::trainer`]/[`Session::inferencer`] directly.
pub struct HongTuEngine {
    session: Session,
    opt: Adam,
}

impl HongTuEngine {
    /// Builds the engine — see [`Session::new`].
    pub fn new(
        dataset: &Dataset,
        kind: ModelKind,
        hidden: usize,
        layers: usize,
        n_chunks: usize,
        config: HongTuConfig,
    ) -> Result<Self, SimError> {
        Session::new(dataset, kind, hidden, layers, n_chunks, config).map(Self::from_session)
    }

    /// Builds the engine from a caller-supplied partition plan — see
    /// [`Session::with_plan`].
    pub fn with_plan(
        dataset: &Dataset,
        kind: ModelKind,
        hidden: usize,
        layers: usize,
        plan: TwoLevelPartition,
        config: HongTuConfig,
    ) -> Result<Self, SimError> {
        Session::with_plan(dataset, kind, hidden, layers, plan, config).map(Self::from_session)
    }

    /// Wraps an already-built session, pairing it with fresh optimizer
    /// state at the configured learning rate.
    pub fn from_session(session: Session) -> Self {
        let opt = Adam::new(session.config.lr);
        HongTuEngine { session, opt }
    }

    /// Runs one training epoch — see [`Session::train_epoch`].
    pub fn train_epoch(&mut self) -> Result<EpochReport, SimError> {
        self.session.train_epoch(&mut self.opt)
    }

    /// Runs one forward-only inference epoch — see
    /// [`Session::infer_epoch`].
    pub fn infer_epoch(&mut self) -> Result<InferReport, SimError> {
        self.session.infer_epoch()
    }

    /// Serves logits for a vertex subset — see [`Session::serve`].
    pub fn serve(&mut self, vertices: &[usize]) -> Result<ServeReport, SimError> {
        self.session.serve(vertices)
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the underlying session.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Unwraps the engine back into its session, dropping the optimizer
    /// state.
    pub fn into_session(self) -> Session {
        self.session
    }

    /// Every plan the session synthesized, in one place.
    pub fn plans(&self) -> Plans<'_> {
        self.session.plans()
    }

    /// The partition plan in use.
    #[deprecated(note = "use HongTuEngine::plans().partition")]
    pub fn plan(&self) -> &TwoLevelPartition {
        self.session.plans().partition
    }

    /// The communication plan in use.
    #[deprecated(note = "use HongTuEngine::plans().dedup")]
    pub fn dedup_plan(&self) -> &DedupPlan {
        self.session.plans().dedup
    }

    /// Preprocessing summary (volumes + modeled seconds).
    pub fn preprocessing(&self) -> &Preprocessing {
        self.session.preprocessing()
    }

    /// The simulated machine (memory peaks, trace).
    pub fn machine(&self) -> &Machine {
        self.session.machine()
    }

    /// Mutable access to the simulated machine, e.g. to enable the
    /// unbounded event trace before certifying an epoch schedule.
    pub fn machine_mut(&mut self) -> &mut Machine {
        self.session.machine_mut()
    }

    /// Per-GPU staging plans of the overlap executor (`None` when
    /// overlap is off).
    #[deprecated(note = "use HongTuEngine::plans().staging")]
    pub fn staging_plans(&self) -> Option<&[StagingPlan]> {
        self.session.plans().staging
    }

    /// The model under training.
    pub fn model(&self) -> &GnnModel {
        self.session.model()
    }

    /// Replaces the model parameters — see [`Session::set_model`].
    pub fn set_model(&mut self, model: GnnModel) {
        self.session.set_model(model);
    }

    /// Number of epochs completed.
    pub fn epochs_run(&self) -> usize {
        self.session.epochs_run()
    }

    /// Current logits (`h^L`), e.g. for external accuracy evaluation.
    pub fn logits(&self) -> &Matrix {
        self.session.logits()
    }

    /// Validation/test accuracy from the representations computed in the
    /// last epoch's forward pass.
    pub fn accuracy(&self, mask: &[bool]) -> f32 {
        self.session.accuracy(mask)
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &HongTuConfig {
        self.session.config()
    }
}

/// Per-GPU scratch carried from the load phase to the compute phase of a
/// forward batch.
struct FwLoad {
    buf_bytes: usize,
}

/// Per-GPU scratch carried across the load/compute/evict phases of a
/// backward batch.
struct BwLoad {
    grad_out: Matrix,
    topo: usize,
    inter: usize,
    buf_bytes: usize,
}

/// Output of one GPU's forward compute step. The `h^{l+1}` scatter and
/// the hybrid checkpoint store are applied by the leader after the
/// compute phase, in GPU index order, so worker threads never write the
/// shared host store.
struct FwOut {
    out: Matrix,
    agg: Option<Matrix>,
}

/// Rows of `h^l` that owner GPU `src` serves to a fetching GPU, handed
/// through a typed channel during the load phase of a parallel batch.
struct ServeBlock {
    src: usize,
    rows: Matrix,
}

/// Where a compute step's neighbor representations come from.
enum NbrFeed {
    /// Gather straight from the host store (sequential executor, and
    /// parallel phases without inter-GPU serves).
    Direct,
    /// Blocks served by remote owner GPUs over typed channels; rows this
    /// GPU owns still come from the host store.
    Served(Vec<ServeBlock>),
}

/// Unwraps the per-GPU result slots filled by a parallel phase. Every
/// worker runs to completion before the scope returns, so on error the
/// machine state is consistent and the *lowest-indexed* failure is
/// propagated (errors are terminal, so sequential/parallel machine-state
/// parity is not required past this point).
fn collect_slots<V>(slots: Vec<Option<Result<V, SimError>>>) -> Result<Vec<V>, SimError> {
    slots
        .into_iter()
        .map(|s| s.expect("worker task did not run"))
        .collect()
}

/// Placeholder forward output for schedule synthesis: zero tensors of
/// exactly the shapes (and, for the checkpoint, the byte size) the real
/// layer would produce, so every downstream size-derived charge — the
/// `h^{l+1}` writeback and the hybrid checkpoint store/reload — is
/// identical to the executed schedule without running the numerics.
fn synth_forward(layer: &dyn GnnLayer, chunk: &ChunkSubgraph) -> LayerForward {
    LayerForward {
        out: Matrix::zeros(chunk.num_dests(), layer.out_dim()),
        agg: layer
            .supports_agg_cache()
            .then(|| Matrix::zeros(1, layer.agg_cache_bytes(chunk) / F32)),
    }
}

/// Sends every neighbor row owned by `server` that a remote GPU needs for
/// batch `j` down that GPU's channel, in neighbor order. All sends finish
/// inside the load phase — before any compute step receives — so the
/// compute-phase drain never blocks, at any pool size. The simulated
/// *cost* of inter-GPU traffic is charged separately (per the dedup plan)
/// by [`charge_neighbor_fetch`]; these channels only carry the data.
fn serve_neighbor_rows(
    ctx: &StepCtx,
    l: usize,
    server: usize,
    j: usize,
    txs: &[Sender<ServeBlock>],
) {
    if ctx.pruned(l, j) {
        return;
    }
    let owner = &ctx.plan.assignment.partition_of;
    for (i, tx) in txs.iter().enumerate() {
        if i == server {
            continue;
        }
        let idx: Vec<usize> = ctx.plan.chunks[i][j]
            .neighbors
            .iter()
            .map(|&v| v as usize)
            .filter(|&v| owner[v] as usize == server)
            .collect();
        if !idx.is_empty() {
            // A fetcher that failed its load step may have dropped its
            // receiver; a closed channel is not an error here.
            let rows = if ctx.synth {
                Matrix::zeros(idx.len(), ctx.h[l].cols())
            } else {
                ctx.h[l].gather_rows(&idx)
            };
            let _ = tx.send(ServeBlock { src: server, rows });
        }
    }
}

/// Assembles `h^l_{N_ij}` for GPU `i`: directly from the host store, or
/// by merging served blocks with locally-owned rows. Served rows are
/// copies of the same host rows in the same neighbor-order sequence, so
/// both paths produce bitwise-identical matrices.
fn assemble_neighbors(ctx: &StepCtx, l: usize, i: usize, j: usize, feed: &NbrFeed) -> Matrix {
    let chunk = &ctx.plan.chunks[i][j];
    if ctx.synth {
        // Schedule synthesis: only the shape matters (downstream charges
        // are derived from the plan, not from this matrix's values).
        return Matrix::zeros(chunk.neighbors.len(), ctx.h[l].cols());
    }
    let nbr_idx: Vec<usize> = chunk.neighbors.iter().map(|&v| v as usize).collect();
    let blocks = match feed {
        NbrFeed::Direct => return ctx.h[l].gather_rows(&nbr_idx),
        NbrFeed::Served(blocks) => blocks,
    };
    let m = ctx.plan.m;
    let mut block_of: Vec<Option<&Matrix>> = vec![None; m];
    for b in blocks {
        debug_assert!(
            block_of[b.src].is_none(),
            "duplicate serve block from GPU {}",
            b.src
        );
        block_of[b.src] = Some(&b.rows);
    }
    let owner = &ctx.plan.assignment.partition_of;
    let mut out = Matrix::zeros(nbr_idx.len(), ctx.h[l].cols());
    let mut cursor = vec![0usize; m];
    for (r, &v) in nbr_idx.iter().enumerate() {
        let o = owner[v] as usize;
        let src_row = if o == i {
            ctx.h[l].row(v)
        } else {
            let blk = block_of[o]
                .unwrap_or_else(|| panic!("no serve block from GPU {o} for fetcher {i} batch {j}"));
            let row = blk.row(cursor[o]);
            cursor[o] += 1;
            row
        };
        out.row_mut(r).copy_from_slice(src_row);
    }
    out
}

/// Load phase of forward batch `j` at layer `l` for GPU `i`:
/// Algorithm 2's host-side loads (ℕ^cpu over PCIe, ℕ^gpu in-place
/// reuse). Inter-GPU fetches wait for the phase barrier.
fn forward_load_step<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
) -> Result<FwLoad, SimError> {
    if ctx.pruned(l, j) {
        return Ok(FwLoad { buf_bytes: 0 });
    }
    let row = ctx.model.layer(l).in_dim() * F32;
    let rows = charge_neighbor_host_load(ctx, tl, l, i, j, row)?;
    Ok(FwLoad {
        buf_bytes: rows * row,
    })
}

/// Compute phase of forward batch `j` at layer `l` for GPU `i`:
/// inter-GPU fetches, the real layer numerics, and the cost of the
/// `h^{l+1}` writeback (Alg 1 line 9) plus the hybrid checkpoint store.
/// The host-store writes themselves are returned as a [`FwOut`] and
/// applied by the leader.
#[allow(clippy::too_many_arguments)]
fn forward_compute_step<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    buf_bytes: usize,
    feed: &NbrFeed,
) -> Result<FwOut, SimError> {
    if ctx.pruned(l, j) {
        return Ok(FwOut {
            out: Matrix::zeros(0, 0),
            agg: None,
        });
    }
    let chunk = &ctx.plan.chunks[i][j];
    let layer = ctx.model.layer(l);
    let out_dim = layer.out_dim();
    let row = layer.in_dim() * F32;

    // -- GPU memory for this batch --
    let topo = chunk.topology_bytes();
    let out_bytes = chunk.num_dests() * out_dim * F32;
    let inter = layer.intermediate_bytes(chunk);
    tl.alloc(i, topo, "chunk topology")?;
    tl.alloc(i, out_bytes, "layer output")?;
    tl.alloc(i, inter, "intermediate data")?;
    if ctx.topology_upload_layer(l, j) {
        // Topology streamed in once per epoch (reused across layers),
        // at the batch's first active layer.
        tl.tag([Access::write(topology(i), chunk_region(i, j))]);
        tl.h2d(i, topo);
    }

    // -- inter-GPU fetches (Algorithm 2): sources resident post-barrier --
    charge_neighbor_fetch(ctx, tl, l, i, j, row);

    // -- real numerics (placeholders under schedule synthesis) --
    let f = if ctx.synth {
        synth_forward(layer, chunk)
    } else {
        let h_nbr = assemble_neighbors(ctx, l, i, j, feed);
        layer.forward(chunk, &h_nbr)
    };
    let flops = layer.forward_flops(chunk);
    tl.tag([
        Access::read(dev_rep(i), Region::All)
            .with_prov(Provenance::new(ContribKind::Aggregate, l, j).rows(chunk.num_neighbors())),
        Access::read(topology(i), chunk_region(i, j)),
    ]);
    tl.gpu_dense(i, flops.dense);
    tl.gpu_edge(i, flops.edge);

    // -- write back h^{l+1}_{V_ij} (line 9): cost here, data via FwOut --
    tl.tag([Access::write(rep(l + 1), chunk_region(i, j)).with_prov(
        Provenance::new(ContribKind::ActStore, l + 1, j)
            .owned_by(i)
            .rows(chunk.num_dests()),
    )]);
    tl.d2h(i, out_bytes);

    // -- hybrid checkpoint --
    let mut agg = None;
    if ctx.checkpoint && layer.supports_agg_cache() {
        let a = f.agg.expect("cache-capable layer must emit an aggregate");
        tl.tag([Access::write(agg_slot(l, i, j), Region::All).with_prov(
            Provenance::new(ContribKind::CkptStore, l, j)
                .owned_by(i)
                .rows(chunk.num_dests()),
        )]);
        tl.d2h(i, a.byte_size());
        agg = Some(a);
    }

    // -- release this batch's data (checkpointed to CPU) --
    // Track the neighbor buffer inside the same alloc/free window.
    tl.free(i, topo + out_bytes + inter + buf_bytes);
    Ok(FwOut { out: f.out, agg })
}

/// Load phase of backward batch `j` at layer `l` for GPU `i`
/// (Alg 1 lines 14–16): the `∇h^{l+1}` load plus the
/// strategy-dependent checkpoint reload (cached aggregate for the
/// hybrid path, dedup neighbor reload for recomputation).
fn backward_load_step<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
) -> Result<BwLoad, SimError> {
    let chunk = &ctx.plan.chunks[i][j];
    let layer = ctx.model.layer(l);
    let out_dim = layer.out_dim();
    let row = layer.in_dim() * F32;
    let use_hybrid = ctx.checkpoint && layer.supports_agg_cache();

    // -- load ∇h^{l+1}_{V_ij} from CPU (line 16) --
    let grad_out_bytes = chunk.num_dests() * out_dim * F32;
    tl.tag([Access::read(grad(l + 1), Region::All)]);
    tl.h2d(i, grad_out_bytes);
    let grad_out = if ctx.synth {
        Matrix::zeros(chunk.num_dests(), out_dim)
    } else {
        let dest_idx: Vec<usize> = chunk.dests.iter().map(|&v| v as usize).collect();
        ctx.grad_h[l + 1].gather_rows(&dest_idx)
    };

    let topo = chunk.topology_bytes();
    tl.alloc(i, topo, "chunk topology (bwd)")?;
    let inter = layer.intermediate_bytes(chunk);
    tl.alloc(i, inter, "regenerated intermediates")?;

    let buf_bytes = if use_hybrid {
        // Load the cached aggregate (O(|V_ij|) H2D).
        let bytes = ctx.agg_cache[l][i][j]
            .as_ref()
            .expect("hybrid checkpoint missing — was forward run?")
            .byte_size();
        tl.alloc(i, bytes, "aggregate checkpoint")?;
        tl.tag([Access::read(agg_slot(l, i, j), Region::All).with_prov(
            Provenance::new(ContribKind::CkptReload, l, j)
                .owned_by(i)
                .rows(chunk.num_dests()),
        )]);
        tl.h2d(i, bytes);
        bytes
    } else {
        // Reload h^l_{N_ij} through dedup comm (host half).
        let rows = charge_neighbor_host_load(ctx, tl, l, i, j, row)?;
        rows * row
    };
    Ok(BwLoad {
        grad_out,
        topo,
        inter,
        buf_bytes,
    })
}

/// Compute phase of backward batch `j` at layer `l` for GPU `i`
/// (Algorithm 3): recompute + gradient numerics, local gradient
/// accumulation into the merged transition-gradient buffer, and the
/// inter-GPU gradient pushes. Returns the neighbor gradients `∇h^l_{N_ij}`
/// for the leader to accumulate into the host store.
#[allow(clippy::too_many_arguments)]
fn backward_compute_step<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    load: &BwLoad,
    grads: &mut LayerGrads,
    feed: &NbrFeed,
) -> Result<Matrix, SimError> {
    let chunk = &ctx.plan.chunks[i][j];
    let layer = ctx.model.layer(l);
    let row = layer.in_dim() * F32;
    let use_hybrid = ctx.checkpoint && layer.supports_agg_cache();
    let fwd = layer.forward_flops(chunk);
    let bwd = layer.backward_flops(chunk);
    // Neighbor gradients land in the merged transition-gradient buffer
    // via atomic accumulation, which commutes with remote pushes
    // arriving during the same phase.
    let local_rows = match ctx.comm {
        CommMode::Vanilla => chunk.num_neighbors(),
        CommMode::P2p | CommMode::P2pRu => ctx.dedup.batches[j].fetch[i][i],
    };
    let acc = Access::accum(dev_grad(i), Region::All)
        .with_gen(j as u32)
        .with_prov(
            Provenance::new(ContribKind::GradLocal, l, j)
                .owned_by(i)
                .rows(local_rows),
        );

    let grad_nbr = if use_hybrid {
        // Recompute UPDATE only from the cached aggregate.
        let agg = ctx.agg_cache[l][i][j]
            .as_ref()
            .expect("hybrid checkpoint missing — was forward run?");
        tl.tag([Access::read(topology(i), chunk_region(i, j)), acc]);
        tl.gpu_dense(i, fwd.dense); // UPDATE recompute
        tl.gpu_dense(i, bwd.dense);
        tl.gpu_edge(i, bwd.edge);
        if ctx.synth {
            Matrix::zeros(chunk.neighbors.len(), layer.in_dim())
        } else {
            layer.backward_from_agg(chunk, agg, &load.grad_out, grads)
        }
    } else {
        // Inter-GPU half of the neighbor reload, then full re-forward.
        charge_neighbor_fetch(ctx, tl, l, i, j, row);
        let h_nbr = assemble_neighbors(ctx, l, i, j, feed);
        tl.tag([
            Access::read(dev_rep(i), Region::All).with_prov(
                Provenance::new(ContribKind::Aggregate, l, j).rows(chunk.num_neighbors()),
            ),
            Access::read(topology(i), chunk_region(i, j)),
            acc,
        ]);
        tl.gpu_dense(i, fwd.dense); // full re-forward
        tl.gpu_edge(i, fwd.edge);
        tl.gpu_dense(i, bwd.dense);
        tl.gpu_edge(i, bwd.edge);
        if ctx.synth {
            Matrix::zeros(chunk.neighbors.len(), layer.in_dim())
        } else {
            layer.backward_from_input(chunk, &h_nbr, &load.grad_out, grads)
        }
    };

    // -- push remote transition gradients to their owner GPUs --
    charge_gradient_push(ctx, tl, l, i, j, row);
    Ok(grad_nbr)
}

/// Evict phase of backward batch `j` at layer `l` for GPU `i`: all
/// pushes into this GPU's gradient buffer have landed (phase
/// barrier), so evict to the host store and release batch memory.
fn backward_evict_step<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    load: &BwLoad,
) {
    let row = ctx.model.layer(l).in_dim() * F32;
    charge_gradient_evict(ctx, tl, l, i, j, row);
    tl.free(i, load.topo + load.inter + load.buf_bytes);
}

/// Charges the host half of loading `h^l_{N_ij}` (Algorithm 2 phase A):
/// PCIe loads of the rows this GPU owns plus ℕ^gpu in-place reuse.
/// Returns the rows resident in GPU `i`'s merged buffer for this batch
/// (for memory accounting). The inter-GPU half runs after the phase
/// barrier in [`charge_neighbor_fetch`].
fn charge_neighbor_host_load<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    row: usize,
) -> Result<usize, SimError> {
    let chunk = &ctx.plan.chunks[i][j];
    let batch = &ctx.dedup.batches[j];
    // Frozen hot-vertex cache table (layer 0 only): `hits` rows of the
    // scheduled host load are already resident in HBM and skip PCIe;
    // `installs > 0` means rows loaded now become resident at sweep end,
    // so the install write rides the load's own H2D event. Provenance
    // row totals stay the *full* schedule either way — the cache changes
    // how rows arrive, never how many the dataflow ledger moves.
    let cs = ctx.cache_stats(l, i, j);
    let cache_hit_charge = |tl: &mut T| {
        if cs.hits > 0 {
            // Cache-resident rows are an HBM copy, not a PCIe transfer.
            tl.tag([Access::read(dev_cache(i), Region::All)]);
            tl.reuse(i, cs.hits * row);
        }
    };
    let rows = match ctx.comm {
        CommMode::Vanilla => {
            let rows = chunk.num_neighbors();
            // Rows whose owner partition sits on the other socket cross
            // the QPI link (partitions map to sockets pairwise).
            let sockets = tl.machine_config().num_sockets;
            let remote = remote_socket_rows(&batch.fetch[i], i, ctx.plan.m, sockets);
            let mut acc = vec![
                Access::read(rep(l), Region::All),
                Access::write(dev_rep(i), Region::All)
                    .with_gen(j as u32)
                    .with_prov(Provenance::new(ContribKind::HostLoad, l, j).rows(rows)),
            ];
            if cs.installs > 0 {
                acc.push(Access::write(dev_cache(i), Region::All));
            }
            tl.tag(acc);
            tl.h2d_mixed(i, (rows - cs.hits) * row, (remote - cs.remote_hits) * row);
            cache_hit_charge(tl);
            rows
        }
        CommMode::P2p => {
            // Host→GPU: the transition subset this GPU owns.
            let mut acc = vec![
                Access::read(rep(l), Region::All),
                Access::write(dev_rep(i), Region::Owned)
                    .with_gen(j as u32)
                    .with_prov(
                        Provenance::new(ContribKind::HostLoad, l, j)
                            .owned_by(i)
                            .rows(batch.transition[i].len()),
                    ),
            ];
            if cs.installs > 0 {
                acc.push(Access::write(dev_cache(i), Region::All));
            }
            tl.tag(acc);
            tl.h2d(i, (batch.transition[i].len() - cs.hits) * row);
            cache_hit_charge(tl);
            // Merged transition+neighbor buffer (§6 "data buffer
            // deduplication"): |ℕ_ij ∪ N_ij|.
            batch.transition[i].len() + chunk.num_neighbors() - batch.fetch[i][i]
        }
        CommMode::P2pRu => {
            // §6-accurate accounting from the in-place buffer plan: every
            // merged-buffer resident row — whether it originally arrived
            // over PCIe or NVLink — is reused in place across adjacent
            // batches; only genuinely new rows move.
            let bc = &ctx.buffer_comm.expect("buffer plan built for P2pRu")[i][j];
            let mut acc = vec![
                Access::read(rep(l), Region::All),
                Access::write(dev_rep(i), Region::Owned)
                    .with_gen(j as u32)
                    .with_prov(
                        Provenance::new(ContribKind::HostLoad, l, j)
                            .owned_by(i)
                            .rows(bc.h2d_rows),
                    ),
            ];
            if cs.installs > 0 {
                acc.push(Access::write(dev_cache(i), Region::All));
            }
            tl.tag(acc);
            tl.h2d(i, (bc.h2d_rows - cs.hits) * row);
            cache_hit_charge(tl);
            if bc.reused_rows > 0 {
                if ctx.reuse_source_live(l, j) {
                    // ℕ^gpu rows deposited by the previous batch stay
                    // resident in the merged buffer and are promoted to
                    // this batch.
                    let prev = Access::read(dev_rep(i), Region::Owned);
                    tl.tag([
                        if j > 0 {
                            prev.with_gen(j as u32 - 1)
                        } else {
                            prev
                        },
                        Access::write(dev_rep(i), Region::Owned)
                            .with_gen(j as u32)
                            .with_prov(
                                Provenance::new(ContribKind::Reuse, l, j).rows(bc.reused_rows),
                            ),
                    ]);
                    tl.reuse(i, bc.reused_rows * row);
                } else {
                    // Serving sweep with batch j−1 pruned: the rows it
                    // would have left resident were never loaded, so they
                    // come over PCIe instead. Same row count, HostLoad
                    // provenance — the pass-9 per-batch totals are
                    // unchanged.
                    tl.tag([
                        Access::read(rep(l), Region::All),
                        Access::write(dev_rep(i), Region::Owned)
                            .with_gen(j as u32)
                            .with_prov(
                                Provenance::new(ContribKind::HostLoad, l, j).rows(bc.reused_rows),
                            ),
                    ]);
                    tl.h2d(i, bc.reused_rows * row);
                }
            }
            bc.buffer_rows
        }
    };
    tl.alloc(i, rows * row, "neighbor buffer")?;
    Ok(rows)
}

/// Charges the inter-GPU half of loading `h^l_{N_ij}` (Algorithm 2
/// phase B): fetch remote transition rows into GPU `i`'s merged buffer.
/// Must run after the phase barrier so every source GPU's owned rows are
/// resident (otherwise the schedule checker reports a W→R race).
fn charge_neighbor_fetch<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    row: usize,
) {
    let batch = &ctx.dedup.batches[j];
    let fetch_rows = |k: usize| -> usize {
        match ctx.comm {
            CommMode::Vanilla => 0,
            CommMode::P2p => batch.fetch[i][k],
            CommMode::P2pRu => {
                ctx.buffer_comm.expect("buffer plan built for P2pRu")[i][j].d2d_rows[k]
            }
        }
    };
    if ctx.comm == CommMode::Vanilla {
        return;
    }
    for k in 0..ctx.plan.m {
        let rows = fetch_rows(k);
        if k != i && rows > 0 {
            // Interleaved schedule: charged to the pulling GPU only.
            tl.tag([
                Access::read(dev_rep(k), Region::Owned).with_gen(j as u32),
                Access::write(dev_rep(i), Region::Fetched)
                    .with_gen(j as u32)
                    .with_prov(
                        Provenance::new(ContribKind::Fetch, l, j)
                            .owned_by(k)
                            .from_gpu(k)
                            .rows(rows),
                    ),
            ]);
            tl.d2d(k, i, rows * row);
            if !ctx.interleaved {
                // Naive schedule: the serving GPU stalls too (deferred to
                // the join when running on a per-GPU shard).
                tl.source_stall(k, rows * row);
            }
        }
    }
}

/// Charges the inter-GPU gradient pushes of Algorithm 3: remote
/// transition-vertex gradients are atomically added into the owning
/// GPUs' merged gradient buffers (time charged to the pusher).
fn charge_gradient_push<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    row: usize,
) {
    if ctx.comm == CommMode::Vanilla {
        return;
    }
    let batch = &ctx.dedup.batches[j];
    for k in 0..ctx.plan.m {
        if k != i && batch.fetch[i][k] > 0 {
            tl.tag([Access::accum(dev_grad(k), Region::All)
                .with_gen(j as u32)
                .with_prov(
                    Provenance::new(ContribKind::GradPush, l, j)
                        .owned_by(k)
                        .from_gpu(i)
                        .rows(batch.fetch[i][k]),
                )]);
            tl.d2d(k, i, batch.fetch[i][k] * row);
            tl.gpu_edge(i, (batch.fetch[i][k] * row / F32) as f64);
        }
    }
}

/// Charges the gradient eviction of Algorithm 3: accumulated chunk
/// gradients leave the GPU over PCIe and are added into the host store
/// `∇h^l`. Must run after the phase barrier so every remote push into
/// this GPU's buffer has landed.
fn charge_gradient_evict<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    row: usize,
) {
    let chunk = &ctx.plan.chunks[i][j];
    let batch = &ctx.dedup.batches[j];
    match ctx.comm {
        CommMode::Vanilla => {
            let rows = chunk.num_neighbors();
            let sockets = tl.machine_config().num_sockets;
            let remote = remote_socket_rows(&batch.fetch[i], i, ctx.plan.m, sockets);
            tl.tag([Access::read(dev_grad(i), Region::All)
                .with_gen(j as u32)
                .with_prov(
                    Provenance::new(ContribKind::GradFlush, l, j)
                        .owned_by(i)
                        .rows(rows),
                )]);
            tl.d2h_mixed(i, rows * row, remote * row);
            // Replica gradients of the full neighbor set overlap across
            // GPUs; host-side accumulation commutes.
            tl.tag([Access::accum(grad(l), Region::All)]);
            tl.cpu_accumulate(i, rows * row);
        }
        CommMode::P2p | CommMode::P2pRu => {
            // Evicted transition gradients go D2H and are accumulated on
            // the CPU; reused rows stay resident for the next batch.
            let evicted = if ctx.comm == CommMode::P2pRu {
                let next_reused = if j + 1 < ctx.dedup.n {
                    ctx.dedup.batches[j + 1].reused[i]
                } else {
                    0
                };
                batch.transition[i].len() - next_reused
            } else {
                batch.transition[i].len()
            };
            tl.tag([Access::read(dev_grad(i), Region::All)
                .with_gen(j as u32)
                .with_prov(
                    Provenance::new(ContribKind::GradFlush, l, j)
                        .owned_by(i)
                        .rows(evicted),
                )]);
            tl.d2h(i, evicted * row);
            // Each GPU evicts its owned transition partition — disjoint
            // slices of the host store.
            tl.tag([Access::accum(grad(l), Region::Part(i as u32))]);
            tl.cpu_accumulate(i, evicted * row);
        }
    }
}

// ===================== overlap executor steps =====================
//
// Under `OverlapMode::DoubleBuffer` each layer runs as a software
// pipeline over the batch sequence (`hongtu_stream::pipeline`): within a
// segment, batch j+1's host loads are issued on the copy-in stream,
// batch j computes on the compute stream, and batch j-1's stores drain
// on the copy-out stream. Batches alternate between two statically
// allocated staging slots (`rep_slot`/`grad_slot`, slot = batch % 2), so
// a prefetch always targets the slot the computing batch is *not*
// reading. The one same-segment cross-stream hazard left — the in-place
// ℕ^gpu reuse refill writing the slot the prefetch H2D is also filling —
// is ordered by an explicit `stream_wait` (the cudaStreamWaitEvent
// analogue); the happens-before checker certifies exactly this.
//
// The step functions are infallible: all device memory is the staging
// installed at construction, so there is no per-batch alloc to fail.

/// Copy-in-stream prefetch of forward batch `j` at layer `l` for GPU
/// `i`: the host half of the dedup load (Algorithm 2 phase A) into
/// staging slot `j % 2`. The ℕ^gpu in-place reuse is *not* issued here —
/// it runs on the compute stream of the previous batch, behind a stream
/// wait (see [`ov_reuse_handoff`]).
fn ov_forward_prefetch<T: Timeline>(ctx: &StepCtx, tl: &mut T, l: usize, i: usize, j: usize) {
    if ctx.pruned(l, j) {
        return;
    }
    tl.set_stream(StreamId::CopyIn.id());
    if ctx.topology_upload_layer(l, j) {
        // Topology streamed in once per epoch (reused across layers),
        // at the batch's first active layer.
        let topo = ctx.plan.chunks[i][j].topology_bytes();
        tl.tag([Access::write(topology(i), chunk_region(i, j))]);
        tl.h2d(i, topo);
    }
    let row = ctx.model.layer(l).in_dim() * F32;
    ov_host_load(ctx, tl, l, i, j, row);
    if ctx.comm == CommMode::P2pRu && !ctx.reuse_source_live(l, j) {
        // Serving sweep with batch j−1 pruned: its compute segment never
        // runs, so the reuse hand-off that would deposit the ℕ^gpu rows
        // into this slot ([`ov_reuse_handoff`]) is skipped — load those
        // rows from the host store on the copy-in stream instead.
        let bc = &ctx.buffer_comm.expect("buffer plan built for P2pRu")[i][j];
        if bc.reused_rows > 0 {
            tl.tag([
                Access::read(rep(l), Region::All),
                Access::write(rep_slot(i, j), Region::Owned)
                    .with_gen(j as u32)
                    .with_prov(Provenance::new(ContribKind::HostLoad, l, j).rows(bc.reused_rows)),
            ]);
            tl.h2d(i, bc.reused_rows * row);
        }
    }
}

/// The host half of the dedup neighbor load for batch `j` (Algorithm 2
/// phase A), aimed at staging slot `j % 2`. Unlike the phased executor's
/// [`charge_neighbor_host_load`], the ℕ^gpu reuse is deferred to the
/// compute stream and nothing is allocated — batches live in the static
/// staging slots.
fn ov_host_load<T: Timeline>(ctx: &StepCtx, tl: &mut T, l: usize, i: usize, j: usize, row: usize) {
    let chunk = &ctx.plan.chunks[i][j];
    let batch = &ctx.dedup.batches[j];
    // Same frozen hot-vertex hit table as [`charge_neighbor_host_load`]:
    // cached rows skip the PCIe charge, install writes ride the H2D
    // event, and provenance row totals stay the full schedule.
    let cs = ctx.cache_stats(l, i, j);
    let cache_hit_charge = |tl: &mut T| {
        if cs.hits > 0 {
            tl.tag([Access::read(dev_cache(i), Region::All)]);
            tl.reuse(i, cs.hits * row);
        }
    };
    match ctx.comm {
        CommMode::Vanilla => {
            let rows = chunk.num_neighbors();
            let sockets = tl.machine_config().num_sockets;
            let remote = remote_socket_rows(&batch.fetch[i], i, ctx.plan.m, sockets);
            let mut acc = vec![
                Access::read(rep(l), Region::All),
                Access::write(rep_slot(i, j), Region::All)
                    .with_gen(j as u32)
                    .with_prov(Provenance::new(ContribKind::HostLoad, l, j).rows(rows)),
            ];
            if cs.installs > 0 {
                acc.push(Access::write(dev_cache(i), Region::All));
            }
            tl.tag(acc);
            tl.h2d_mixed(i, (rows - cs.hits) * row, (remote - cs.remote_hits) * row);
            cache_hit_charge(tl);
        }
        CommMode::P2p => {
            let mut acc = vec![
                Access::read(rep(l), Region::All),
                Access::write(rep_slot(i, j), Region::Owned)
                    .with_gen(j as u32)
                    .with_prov(
                        Provenance::new(ContribKind::HostLoad, l, j)
                            .owned_by(i)
                            .rows(batch.transition[i].len()),
                    ),
            ];
            if cs.installs > 0 {
                acc.push(Access::write(dev_cache(i), Region::All));
            }
            tl.tag(acc);
            tl.h2d(i, (batch.transition[i].len() - cs.hits) * row);
            cache_hit_charge(tl);
        }
        CommMode::P2pRu => {
            let bc = &ctx.buffer_comm.expect("buffer plan built for P2pRu")[i][j];
            let mut acc = vec![
                Access::read(rep(l), Region::All),
                Access::write(rep_slot(i, j), Region::Owned)
                    .with_gen(j as u32)
                    .with_prov(
                        Provenance::new(ContribKind::HostLoad, l, j)
                            .owned_by(i)
                            .rows(bc.h2d_rows),
                    ),
            ];
            if cs.installs > 0 {
                acc.push(Access::write(dev_cache(i), Region::All));
            }
            tl.tag(acc);
            tl.h2d(i, (bc.h2d_rows - cs.hits) * row);
            cache_hit_charge(tl);
        }
    }
}

/// Compute-stream hand-off of the ℕ^gpu rows batch `j` leaves behind for
/// batch `j + 1` (P2P+RU only): an in-place copy from the current slot
/// into the slot the copy-in stream is concurrently prefetching. The
/// stream wait orders it after that H2D — dropping the wait is exactly
/// the eager-refill write/read race the schedule checker rejects.
fn ov_reuse_handoff<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    row: usize,
) {
    if ctx.comm != CommMode::P2pRu || j + 1 >= ctx.dedup.n || ctx.pruned(l, j + 1) {
        // A pruned successor was never prefetched: there is no slot
        // refill to hand rows into (its own prefetch covers the rows
        // from the host if it ever runs again).
        return;
    }
    let bc = &ctx.buffer_comm.expect("buffer plan built for P2pRu")[i][j + 1];
    if bc.reused_rows == 0 {
        return;
    }
    tl.stream_wait(i, StreamId::CopyIn.id());
    tl.tag([
        Access::read(rep_slot(i, j), Region::Owned).with_gen(j as u32),
        Access::write(rep_slot(i, j + 1), Region::Owned)
            .with_gen(j as u32 + 1)
            .with_prov(Provenance::new(ContribKind::Reuse, l, j + 1).rows(bc.reused_rows)),
    ]);
    tl.reuse(i, bc.reused_rows * row);
}

/// Inter-GPU half of the neighbor load (Algorithm 2 phase B) on the
/// compute stream, reading source slots the copy-in stream populated a
/// segment earlier (barrier-ordered, so no stream wait is needed).
fn ov_neighbor_fetch<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    row: usize,
) {
    if ctx.comm == CommMode::Vanilla {
        return;
    }
    let batch = &ctx.dedup.batches[j];
    for k in 0..ctx.plan.m {
        let rows = match ctx.comm {
            CommMode::Vanilla => 0,
            CommMode::P2p => batch.fetch[i][k],
            CommMode::P2pRu => {
                ctx.buffer_comm.expect("buffer plan built for P2pRu")[i][j].d2d_rows[k]
            }
        };
        if k != i && rows > 0 {
            tl.tag([
                Access::read(rep_slot(k, j), Region::Owned).with_gen(j as u32),
                Access::write(rep_slot(i, j), Region::Fetched)
                    .with_gen(j as u32)
                    .with_prov(
                        Provenance::new(ContribKind::Fetch, l, j)
                            .owned_by(k)
                            .from_gpu(k)
                            .rows(rows),
                    ),
            ]);
            tl.d2d(k, i, rows * row);
            if !ctx.interleaved {
                tl.source_stall(k, rows * row);
            }
        }
    }
}

/// Compute-stream work of forward batch `j` at layer `l` for GPU `i`:
/// inter-GPU fetches, the real layer numerics, and the reuse hand-off
/// for batch `j + 1`. The `h^{l+1}` writeback cost is deferred to the
/// copy-out drain one segment later ([`ov_forward_drain`]); the data
/// itself is returned as a [`FwOut`] and leader-applied this segment,
/// exactly as in the phased executor.
fn ov_forward_compute<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
) -> FwOut {
    if ctx.pruned(l, j) {
        return FwOut {
            out: Matrix::zeros(0, 0),
            agg: None,
        };
    }
    tl.set_stream(StreamId::Compute.id());
    let chunk = &ctx.plan.chunks[i][j];
    let layer = ctx.model.layer(l);
    let row = layer.in_dim() * F32;

    ov_neighbor_fetch(ctx, tl, l, i, j, row);

    let f = if ctx.synth {
        synth_forward(layer, chunk)
    } else {
        let h_nbr = assemble_neighbors(ctx, l, i, j, &NbrFeed::Direct);
        layer.forward(chunk, &h_nbr)
    };
    let flops = layer.forward_flops(chunk);
    tl.tag([
        Access::read(rep_slot(i, j), Region::All)
            .with_prov(Provenance::new(ContribKind::Aggregate, l, j).rows(chunk.num_neighbors())),
        Access::read(topology(i), chunk_region(i, j)),
    ]);
    tl.gpu_dense(i, flops.dense);
    tl.gpu_edge(i, flops.edge);

    ov_reuse_handoff(ctx, tl, l, i, j, row);

    let agg = (ctx.checkpoint && layer.supports_agg_cache())
        .then(|| f.agg.expect("cache-capable layer must emit an aggregate"));
    FwOut { out: f.out, agg }
}

/// Copy-out-stream drain of forward batch `j` at layer `l` for GPU `i`,
/// one segment behind its compute: the `h^{l+1}` writeback (Alg 1
/// line 9) and the hybrid checkpoint store.
fn ov_forward_drain<T: Timeline>(ctx: &StepCtx, tl: &mut T, l: usize, i: usize, j: usize) {
    if ctx.pruned(l, j) {
        return;
    }
    tl.set_stream(StreamId::CopyOut.id());
    let chunk = &ctx.plan.chunks[i][j];
    let layer = ctx.model.layer(l);
    let out_bytes = chunk.num_dests() * layer.out_dim() * F32;
    tl.tag([Access::write(rep(l + 1), chunk_region(i, j)).with_prov(
        Provenance::new(ContribKind::ActStore, l + 1, j)
            .owned_by(i)
            .rows(chunk.num_dests()),
    )]);
    tl.d2h(i, out_bytes);
    if ctx.checkpoint && layer.supports_agg_cache() {
        let bytes = ctx.agg_cache[l][i][j]
            .as_ref()
            .expect("hybrid checkpoint missing — was the compute segment applied?")
            .byte_size();
        tl.tag([Access::write(agg_slot(l, i, j), Region::All).with_prov(
            Provenance::new(ContribKind::CkptStore, l, j)
                .owned_by(i)
                .rows(chunk.num_dests()),
        )]);
        tl.d2h(i, bytes);
    }
}

/// Copy-in-stream prefetch of backward batch `j` at layer `l` for GPU
/// `i` (Alg 1 lines 14–16): the `∇h^{l+1}` load plus the
/// strategy-dependent checkpoint reload, staged into slot `j % 2`.
/// Returns the gathered `∇h^{l+1}_{V_ij}` rows for the compute segment.
fn ov_backward_prefetch<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
) -> Matrix {
    tl.set_stream(StreamId::CopyIn.id());
    let chunk = &ctx.plan.chunks[i][j];
    let layer = ctx.model.layer(l);
    let row = layer.in_dim() * F32;

    let grad_out_bytes = chunk.num_dests() * layer.out_dim() * F32;
    tl.tag([Access::read(grad(l + 1), Region::All)]);
    tl.h2d(i, grad_out_bytes);
    let grad_out = if ctx.synth {
        Matrix::zeros(chunk.num_dests(), layer.out_dim())
    } else {
        let dest_idx: Vec<usize> = chunk.dests.iter().map(|&v| v as usize).collect();
        ctx.grad_h[l + 1].gather_rows(&dest_idx)
    };

    if ctx.checkpoint && layer.supports_agg_cache() {
        let bytes = ctx.agg_cache[l][i][j]
            .as_ref()
            .expect("hybrid checkpoint missing — was forward run?")
            .byte_size();
        tl.tag([Access::read(agg_slot(l, i, j), Region::All).with_prov(
            Provenance::new(ContribKind::CkptReload, l, j)
                .owned_by(i)
                .rows(chunk.num_dests()),
        )]);
        tl.h2d(i, bytes);
    } else {
        ov_host_load(ctx, tl, l, i, j, row);
    }
    grad_out
}

/// Compute-stream work of backward batch `j` at layer `l` for GPU `i`
/// (Algorithm 3): recompute + gradient numerics, local accumulation
/// into the staging gradient slot, the reuse hand-off, and the
/// inter-GPU gradient pushes. Returns `∇h^l_{N_ij}` for the leader.
fn ov_backward_compute<T: Timeline>(
    ctx: &StepCtx,
    tl: &mut T,
    l: usize,
    i: usize,
    j: usize,
    grad_out: &Matrix,
    grads: &mut LayerGrads,
) -> Matrix {
    tl.set_stream(StreamId::Compute.id());
    let chunk = &ctx.plan.chunks[i][j];
    let layer = ctx.model.layer(l);
    let row = layer.in_dim() * F32;
    let use_hybrid = ctx.checkpoint && layer.supports_agg_cache();
    let fwd = layer.forward_flops(chunk);
    let bwd = layer.backward_flops(chunk);
    let local_rows = match ctx.comm {
        CommMode::Vanilla => chunk.num_neighbors(),
        CommMode::P2p | CommMode::P2pRu => ctx.dedup.batches[j].fetch[i][i],
    };
    let acc = Access::accum(grad_slot(i, j), Region::All)
        .with_gen(j as u32)
        .with_prov(
            Provenance::new(ContribKind::GradLocal, l, j)
                .owned_by(i)
                .rows(local_rows),
        );

    let grad_nbr = if use_hybrid {
        // Recompute UPDATE only from the cached aggregate.
        let agg = ctx.agg_cache[l][i][j]
            .as_ref()
            .expect("hybrid checkpoint missing — was forward run?");
        tl.tag([Access::read(topology(i), chunk_region(i, j)), acc]);
        tl.gpu_dense(i, fwd.dense); // UPDATE recompute
        tl.gpu_dense(i, bwd.dense);
        tl.gpu_edge(i, bwd.edge);
        if ctx.synth {
            Matrix::zeros(chunk.neighbors.len(), layer.in_dim())
        } else {
            layer.backward_from_agg(chunk, agg, grad_out, grads)
        }
    } else {
        // Inter-GPU half of the neighbor reload, then full re-forward.
        ov_neighbor_fetch(ctx, tl, l, i, j, row);
        let h_nbr = assemble_neighbors(ctx, l, i, j, &NbrFeed::Direct);
        tl.tag([
            Access::read(rep_slot(i, j), Region::All).with_prov(
                Provenance::new(ContribKind::Aggregate, l, j).rows(chunk.num_neighbors()),
            ),
            Access::read(topology(i), chunk_region(i, j)),
            acc,
        ]);
        tl.gpu_dense(i, fwd.dense); // full re-forward
        tl.gpu_edge(i, fwd.edge);
        tl.gpu_dense(i, bwd.dense);
        tl.gpu_edge(i, bwd.edge);
        let g = if ctx.synth {
            Matrix::zeros(chunk.neighbors.len(), layer.in_dim())
        } else {
            layer.backward_from_input(chunk, &h_nbr, grad_out, grads)
        };
        ov_reuse_handoff(ctx, tl, l, i, j, row);
        g
    };

    // -- push remote transition gradients to their owner GPUs' slots --
    if ctx.comm != CommMode::Vanilla {
        let batch = &ctx.dedup.batches[j];
        for k in 0..ctx.plan.m {
            if k != i && batch.fetch[i][k] > 0 {
                tl.tag([Access::accum(grad_slot(k, j), Region::All)
                    .with_gen(j as u32)
                    .with_prov(
                        Provenance::new(ContribKind::GradPush, l, j)
                            .owned_by(k)
                            .from_gpu(i)
                            .rows(batch.fetch[i][k]),
                    )]);
                tl.d2d(k, i, batch.fetch[i][k] * row);
                tl.gpu_edge(i, (batch.fetch[i][k] * row / F32) as f64);
            }
        }
    }
    grad_nbr
}

/// Copy-out-stream drain of backward batch `j` at layer `l` for GPU
/// `i`, one segment behind its compute: all pushes into the staging
/// gradient slot landed before the last batch barrier, so evict the
/// accumulated chunk gradients to the host store (Algorithm 3).
fn ov_backward_drain<T: Timeline>(ctx: &StepCtx, tl: &mut T, l: usize, i: usize, j: usize) {
    tl.set_stream(StreamId::CopyOut.id());
    let chunk = &ctx.plan.chunks[i][j];
    let row = ctx.model.layer(l).in_dim() * F32;
    let batch = &ctx.dedup.batches[j];
    match ctx.comm {
        CommMode::Vanilla => {
            let rows = chunk.num_neighbors();
            let sockets = tl.machine_config().num_sockets;
            let remote = remote_socket_rows(&batch.fetch[i], i, ctx.plan.m, sockets);
            tl.tag([Access::read(grad_slot(i, j), Region::All)
                .with_gen(j as u32)
                .with_prov(
                    Provenance::new(ContribKind::GradFlush, l, j)
                        .owned_by(i)
                        .rows(rows),
                )]);
            tl.d2h_mixed(i, rows * row, remote * row);
            tl.tag([Access::accum(grad(l), Region::All)]);
            tl.cpu_accumulate(i, rows * row);
        }
        CommMode::P2p | CommMode::P2pRu => {
            let evicted = if ctx.comm == CommMode::P2pRu {
                let next_reused = if j + 1 < ctx.dedup.n {
                    ctx.dedup.batches[j + 1].reused[i]
                } else {
                    0
                };
                batch.transition[i].len() - next_reused
            } else {
                batch.transition[i].len()
            };
            tl.tag([Access::read(grad_slot(i, j), Region::All)
                .with_gen(j as u32)
                .with_prov(
                    Provenance::new(ContribKind::GradFlush, l, j)
                        .owned_by(i)
                        .rows(evicted),
                )]);
            tl.d2h(i, evicted * row);
            tl.tag([Access::accum(grad(l), Region::Part(i as u32))]);
            tl.cpu_accumulate(i, evicted * row);
        }
    }
}

/// Sizes GPU `gpu`'s double-buffered staging slots: the worst-case
/// (layer, batch) *input* footprint (chunk topology plus the merged
/// neighbor/transition buffer or checkpoint reload) and *output*
/// footprint (layer output and intermediates awaiting their drain). Two
/// slots of each are pinned for the whole run
/// ([`StagingPlan::total_bytes`]).
fn plan_staging(
    gpu: usize,
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bufplans: Option<&[GpuBufferPlan]>,
    model: &GnnModel,
    config: &HongTuConfig,
) -> StagingPlan {
    let mut in_slot = 0usize;
    let mut out_slot = 0usize;
    for l in 0..model.num_layers() {
        let layer = model.layer(l);
        // Inference never reloads hybrid checkpoints, so its staging
        // slots skip the checkpoint-row term entirely.
        let use_hybrid = config.mode == Mode::Train
            && config.memory == MemoryStrategy::Hybrid
            && layer.supports_agg_cache();
        for (j, chunk) in plan.chunks[gpu].iter().enumerate() {
            let (inb, outb) =
                batch_staging_footprint(gpu, l, j, plan, dedup, bufplans, model, config);
            // Forward batch footprint, and the backward one (checkpoint
            // reload in; regenerated intermediates covered by the
            // output-side term).
            in_slot = in_slot.max(inb);
            out_slot = out_slot.max(outb);
            if use_hybrid {
                in_slot = in_slot.max(chunk.topology_bytes() + layer.agg_cache_bytes(chunk));
            }
        }
    }
    StagingPlan {
        gpu,
        in_slot_bytes: in_slot,
        out_slot_bytes: out_slot,
    }
}

/// Staging footprint of forward batch `j` at layer `l` on GPU `gpu`:
/// input bytes (chunk topology plus the merged neighbor/transition
/// buffer) and output bytes (layer output plus intermediates). The
/// per-batch term both [`plan_staging`] and the serving admission check
/// ([`Session::serve_cone_cost`]) are built on, so a cone's cost and
/// the staging budget are always in the same units.
#[allow(clippy::too_many_arguments)]
fn batch_staging_footprint(
    gpu: usize,
    l: usize,
    j: usize,
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bufplans: Option<&[GpuBufferPlan]>,
    model: &GnnModel,
    config: &HongTuConfig,
) -> (usize, usize) {
    let layer = model.layer(l);
    let row = layer.in_dim() * F32;
    let chunk = &plan.chunks[gpu][j];
    let topo = chunk.topology_bytes();
    let buf_bytes = match config.comm {
        CommMode::Vanilla => chunk.num_neighbors() * row,
        CommMode::P2p => {
            let b = &dedup.batches[j];
            (b.transition[gpu].len() + chunk.num_neighbors() - b.fetch[gpu][gpu]) * row
        }
        CommMode::P2pRu => bufplans.expect("buffer plans built for P2pRu")[gpu].staging_bytes(row),
    };
    let out_bytes = chunk.num_dests() * layer.out_dim() * F32;
    let inter = layer.intermediate_bytes(chunk);
    (topo + buf_bytes, out_bytes + inter)
}

/// Rows of GPU `i`'s neighbor set owned by partitions on a different NUMA
/// socket (GPUs spread evenly over sockets, partitions pinned to their
/// GPU's socket).
fn remote_socket_rows(fetch_row: &[usize], i: usize, m: usize, sockets: usize) -> usize {
    let sockets = sockets.min(m);
    let socket_of = |g: usize| g * sockets / m;
    fetch_row
        .iter()
        .enumerate()
        .filter(|&(k, _)| socket_of(k) != socket_of(i))
        .map(|(_, &c)| c)
        .sum()
}

fn delta(now: TimeBuckets, before: TimeBuckets) -> TimeBuckets {
    TimeBuckets {
        h2d: now.h2d - before.h2d,
        d2d: now.d2d - before.d2d,
        gpu: now.gpu - before.gpu,
        cpu: now.cpu - before.cpu,
        reuse: now.reuse - before.reuse,
        bytes_h2d: now.bytes_h2d - before.bytes_h2d,
        bytes_d2h: now.bytes_d2h - before.bytes_d2h,
        bytes_d2d: now.bytes_d2d - before.bytes_d2d,
        bytes_reuse: now.bytes_reuse - before.bytes_reuse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_datasets::{load, DatasetKey};
    use hongtu_nn::model::whole_graph_chunk;
    use hongtu_sim::MachineConfig;

    fn small_dataset() -> Dataset {
        let mut rng = SeededRng::new(99);
        load(DatasetKey::Rdt, &mut rng)
    }

    fn engine(ds: &Dataset, kind: ModelKind, cfg: HongTuConfig) -> HongTuEngine {
        HongTuEngine::new(ds, kind, 16, 2, 4, cfg).expect("engine construction")
    }

    fn machine() -> MachineConfig {
        MachineConfig::scaled(4, 256 << 20)
    }

    #[test]
    fn epoch_runs_and_reports_time() {
        let ds = small_dataset();
        let mut e = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));
        let r = e.train_epoch().unwrap();
        assert!(r.time > 0.0);
        assert!(r.loss.loss.is_finite());
        assert!(r.buckets.h2d > 0.0);
        assert!(r.buckets.gpu > 0.0);
        assert_eq!(e.epochs_run(), 1);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = small_dataset();
        let mut e = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));
        let first = e.train_epoch().unwrap().loss.loss;
        let mut last = first;
        for _ in 0..40 {
            last = e.train_epoch().unwrap().loss.loss;
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    /// The paper's central semantics claim: HongTu training matches
    /// single-device full-graph training. We verify the first-epoch loss
    /// and the post-epoch logits against the reference trainer.
    #[test]
    fn matches_reference_full_graph_training() {
        let ds = small_dataset();
        let mut e = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));

        let mut rng = SeededRng::new(ds.seed ^ 0x686F6E67);
        let mut reference = GnnModel::new(ModelKind::Gcn, &ds.model_dims(16, 2), &mut rng);
        let chunk = whole_graph_chunk(&ds.graph);
        let mut opt = Adam::new(0.01);

        for epoch in 0..3 {
            let got = e.train_epoch().unwrap().loss;
            let want = reference.train_epoch_reference(
                &chunk,
                &ds.features,
                &ds.labels,
                &ds.splits.train,
                &mut opt,
            );
            assert!(
                (got.loss - want.loss).abs() < 2e-3 * want.loss.abs().max(1.0),
                "epoch {epoch}: engine loss {} vs reference {}",
                got.loss,
                want.loss
            );
        }
    }

    #[test]
    fn all_comm_modes_same_numerics_different_volume() {
        let ds = small_dataset();
        let mk = |comm| {
            let mut cfg = HongTuConfig::full(machine());
            cfg.comm = comm;
            cfg.reorganize = false;
            engine(&ds, ModelKind::Gcn, cfg)
        };
        let mut vanilla = mk(CommMode::Vanilla);
        let mut p2p = mk(CommMode::P2p);
        let mut ru = mk(CommMode::P2pRu);
        let rv = vanilla.train_epoch().unwrap();
        let rp = p2p.train_epoch().unwrap();
        let rr = ru.train_epoch().unwrap();
        // Identical numerics.
        assert_eq!(rv.loss.loss, rp.loss.loss);
        assert_eq!(rv.loss.loss, rr.loss.loss);
        // Strictly shrinking host-GPU byte volume.
        assert!(rp.buckets.bytes_h2d < rv.buckets.bytes_h2d);
        assert!(rr.buckets.bytes_h2d <= rp.buckets.bytes_h2d);
        // P2P converts host traffic into inter-GPU traffic.
        assert!(rp.buckets.bytes_d2d > rv.buckets.bytes_d2d);
        // And the epoch gets faster.
        assert!(rr.time < rv.time, "RU {} vs vanilla {}", rr.time, rv.time);
    }

    #[test]
    fn hybrid_and_recompute_same_numerics() {
        let ds = small_dataset();
        let mk = |memory| {
            let mut cfg = HongTuConfig::full(machine());
            cfg.memory = memory;
            engine(&ds, ModelKind::Gcn, cfg)
        };
        let mut hybrid = mk(MemoryStrategy::Hybrid);
        let mut recompute = mk(MemoryStrategy::Recompute);
        for _ in 0..2 {
            let rh = hybrid.train_epoch().unwrap();
            let rr = recompute.train_epoch().unwrap();
            assert_eq!(rh.loss.loss, rr.loss.loss);
        }
    }

    #[test]
    fn hybrid_is_cheaper_than_recompute_for_gcn() {
        let ds = small_dataset();
        let mk = |memory| {
            let mut cfg = HongTuConfig::full(machine());
            cfg.memory = memory;
            engine(&ds, ModelKind::Gcn, cfg)
        };
        let rh = mk(MemoryStrategy::Hybrid).train_epoch().unwrap();
        let rr = mk(MemoryStrategy::Recompute).train_epoch().unwrap();
        // Hybrid loads O(|V|) checkpoints instead of O(α|V|) neighbors in
        // the backward pass and skips the AGGREGATE recompute.
        assert!(
            rh.time < rr.time,
            "hybrid {} vs recompute {}",
            rh.time,
            rr.time
        );
    }

    #[test]
    fn gat_trains_and_spends_more_gpu_time_than_gcn() {
        let ds = small_dataset();
        let mut gat = engine(&ds, ModelKind::Gat, HongTuConfig::full(machine()));
        let mut gcn = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));
        let rg = gat.train_epoch().unwrap();
        let rc = gcn.train_epoch().unwrap();
        assert!(rg.loss.loss.is_finite());
        assert!(
            rg.buckets.gpu > rc.buckets.gpu,
            "GAT GPU {} vs GCN {}",
            rg.buckets.gpu,
            rc.buckets.gpu
        );
    }

    #[test]
    fn naive_p2p_schedule_is_slower() {
        let ds = small_dataset();
        let mut cfg = HongTuConfig::full(machine());
        cfg.interleaved = false;
        let naive = engine(&ds, ModelKind::Gcn, cfg).train_epoch().unwrap().time;
        let inter = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()))
            .train_epoch()
            .unwrap()
            .time;
        assert!(naive > inter, "naive {naive} vs interleaved {inter}");
    }

    #[test]
    fn oom_when_gpu_memory_too_small() {
        let ds = small_dataset();
        let cfg = HongTuConfig::full(MachineConfig::scaled(4, 64 << 10));
        let r =
            HongTuEngine::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).and_then(|mut e| e.train_epoch());
        assert!(
            matches!(r, Err(SimError::OutOfMemory { .. })),
            "expected OOM, got ok"
        );
    }

    #[test]
    fn more_chunks_lower_peak_memory() {
        let ds = small_dataset();
        let peak = |chunks| {
            let mut e = HongTuEngine::new(
                &ds,
                ModelKind::Gcn,
                16,
                2,
                chunks,
                HongTuConfig::full(machine()),
            )
            .unwrap();
            e.train_epoch().unwrap();
            e.machine().max_gpu_peak()
        };
        let p2 = peak(2);
        let p8 = peak(8);
        assert!(p8 < p2, "peak with 8 chunks {p8} !< with 2 chunks {p2}");
    }

    #[test]
    fn accuracy_evaluation_works() {
        let ds = small_dataset();
        let mut e = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));
        for _ in 0..30 {
            e.train_epoch().unwrap();
        }
        let val = e.accuracy(&ds.splits.val);
        assert!(val > 0.5, "validation accuracy {val}");
    }

    #[test]
    fn remote_socket_rows_partition_mapping() {
        // 4 GPUs over 4 sockets: everything off-diagonal is remote.
        assert_eq!(remote_socket_rows(&[10, 20, 30, 40], 0, 4, 4), 90);
        assert_eq!(remote_socket_rows(&[10, 20, 30, 40], 2, 4, 4), 70);
        // 4 GPUs over 2 sockets: GPUs 0,1 share a socket; 2,3 the other.
        assert_eq!(remote_socket_rows(&[10, 20, 30, 40], 0, 4, 2), 70);
        assert_eq!(remote_socket_rows(&[10, 20, 30, 40], 3, 4, 2), 30);
        // Single GPU: nothing is remote across sockets it can't reach.
        assert_eq!(remote_socket_rows(&[10], 0, 1, 4), 0);
    }

    #[test]
    fn bucket_delta_subtracts_componentwise() {
        let before = TimeBuckets {
            h2d: 1.0,
            gpu: 2.0,
            bytes_h2d: 100,
            ..Default::default()
        };
        let now = TimeBuckets {
            h2d: 3.0,
            gpu: 2.5,
            bytes_h2d: 150,
            ..Default::default()
        };
        let d = delta(now, before);
        assert_eq!(d.h2d, 2.0);
        assert_eq!(d.gpu, 0.5);
        assert_eq!(d.bytes_h2d, 50);
    }

    #[test]
    fn overlap_same_numerics_faster_and_more_memory() {
        let ds = small_dataset();
        let mut off = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));
        let mut cfg = HongTuConfig::full(machine());
        cfg.overlap = OverlapMode::DoubleBuffer;
        let mut db = engine(&ds, ModelKind::Gcn, cfg);
        for _ in 0..3 {
            let ro = off.train_epoch().unwrap();
            let rd = db.train_epoch().unwrap();
            // The determinism contract: overlap changes time and memory,
            // never results.
            assert_eq!(ro.loss.loss, rd.loss.loss);
            assert_eq!(ro.loss.accuracy, rd.loss.accuracy);
            assert!(
                rd.time < ro.time,
                "overlapped epoch {} !< additive epoch {}",
                rd.time,
                ro.time
            );
        }
        // The speedup is bought with the second staging buffer.
        assert!(db.machine().max_gpu_peak() > off.machine().max_gpu_peak());
        let staging = db.plans().staging.expect("staging installed");
        assert_eq!(staging.len(), 4);
        assert!(staging.iter().all(|p| p.total_bytes() > 0));
        assert!(off.plans().staging.is_none());
    }

    #[test]
    fn overlap_parallel_matches_sequential_bitwise() {
        let ds = small_dataset();
        let mk = |exec| {
            let mut cfg = HongTuConfig::full(machine());
            cfg.overlap = OverlapMode::DoubleBuffer;
            cfg.exec = exec;
            engine(&ds, ModelKind::Gcn, cfg)
        };
        let mut seq = mk(ExecutionMode::Sequential);
        let mut par = mk(ExecutionMode::Parallel);
        for _ in 0..2 {
            let rs = seq.train_epoch().unwrap();
            let rp = par.train_epoch().unwrap();
            assert_eq!(rs.loss.loss, rp.loss.loss);
            assert_eq!(rs.time, rp.time);
        }
        for g in 0..4 {
            assert_eq!(seq.machine().clock(g), par.machine().clock(g));
        }
    }

    #[test]
    fn overlap_schedules_certify_race_free() {
        let ds = small_dataset();
        for comm in [CommMode::Vanilla, CommMode::P2p, CommMode::P2pRu] {
            for exec in [ExecutionMode::Sequential, ExecutionMode::Parallel] {
                let mut cfg = HongTuConfig::full(machine());
                cfg.comm = comm;
                cfg.exec = exec;
                cfg.overlap = OverlapMode::DoubleBuffer;
                cfg.validation = ValidationLevel::Paranoid;
                let mut e = engine(&ds, ModelKind::Gcn, cfg);
                e.train_epoch()
                    .unwrap_or_else(|err| panic!("{comm:?}/{exec:?}: {err}"));
            }
        }
    }

    #[test]
    fn preprocessing_reports_volumes() {
        let ds = small_dataset();
        let e = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));
        let p = e.preprocessing();
        assert!(p.volumes.v_ori >= p.volumes.v_p2p);
        assert!(p.seconds > 0.0);
    }

    #[test]
    fn builder_defaults_match_full_config() {
        let built = HongTuConfig::builder().machine(machine()).build().unwrap();
        let full = HongTuConfig::full(machine());
        assert_eq!(built.comm, full.comm);
        assert_eq!(built.memory, full.memory);
        assert_eq!(built.reorganize, full.reorganize);
        assert_eq!(built.lr, full.lr);
        assert_eq!(built.interleaved, full.interleaved);
        assert_eq!(built.validation, full.validation);
        assert_eq!(built.exec, full.exec);
        assert_eq!(built.overlap, full.overlap);
        assert_eq!(built.mode, Mode::Train);
    }

    #[test]
    fn builder_scales_machine_from_gpus_and_mem() {
        let cfg = HongTuConfig::builder()
            .gpus(2)
            .gpu_mem_mb(128)
            .infer()
            .build()
            .unwrap();
        assert_eq!(cfg.machine.num_gpus, 2);
        assert_eq!(cfg.machine.gpu_memory, 128 << 20);
        assert_eq!(cfg.mode, Mode::Infer);
    }

    #[test]
    fn builder_rejects_invalid_configurations() {
        // An explicit machine conflicts with gpus/gpu_mem_mb shorthands.
        assert!(HongTuConfig::builder()
            .machine(machine())
            .gpus(2)
            .build()
            .is_err());
        assert!(HongTuConfig::builder().gpus(0).build().is_err());
        assert!(HongTuConfig::builder().gpu_mem_mb(0).build().is_err());
        assert!(HongTuConfig::builder().lr(0.0).build().is_err());
        assert!(HongTuConfig::builder().lr(f32::NAN).build().is_err());
        let err = HongTuConfig::builder().gpus(0).build().unwrap_err();
        assert!(err.to_string().contains("invalid engine configuration"));
    }

    #[test]
    fn infer_epoch_skips_checkpoints_and_matches_forward() {
        let ds = small_dataset();
        let mut cfg = HongTuConfig::full(machine());
        cfg.mode = Mode::Infer;
        let mut session = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
        let r = session.infer_epoch().unwrap();
        assert!(r.time > 0.0);
        // No checkpoint was stored anywhere.
        for per_layer in &session.agg_cache {
            for per_gpu in per_layer {
                assert!(per_gpu.iter().all(|c| c.is_none()));
            }
        }
        // The logits equal a training epoch's forward half (pre-update
        // weights) on an identically-seeded training engine.
        let mut train = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));
        train.train_epoch().unwrap();
        assert_eq!(r.logits, *train.logits());
    }

    #[test]
    #[should_panic(expected = "trainer() on an inference session")]
    fn trainer_on_infer_session_panics() {
        let ds = small_dataset();
        let mut cfg = HongTuConfig::full(machine());
        cfg.mode = Mode::Infer;
        let mut session = Session::new(&ds, ModelKind::Gcn, 16, 2, 4, cfg).expect("session");
        let _ = session.trainer();
    }

    #[test]
    fn engine_facade_round_trips_through_session() {
        let ds = small_dataset();
        let mut e = engine(&ds, ModelKind::Gcn, HongTuConfig::full(machine()));
        e.train_epoch().unwrap();
        let mut session = e.into_session();
        session.infer_epoch().unwrap();
        let mut e = HongTuEngine::from_session(session);
        e.train_epoch().unwrap();
        assert_eq!(e.epochs_run(), 3);
    }
}
