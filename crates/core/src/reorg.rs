//! Cost-effective subgraph reorganization (paper Algorithm 4, §5.3).
//!
//! Minimizing Equation 4 exactly is NP-hard (reducible to a TSP variant),
//! so HongTu uses a 2-phase greedy heuristic:
//!
//! - **Phase 1** keeps partition 0's chunk order and, for every other
//!   partition, greedily assigns to each batch the not-yet-placed chunk
//!   with the largest neighbor overlap against the batch's running
//!   transition union — maximizing *inter-GPU* duplication.
//! - **Phase 2** reorders whole batches so adjacent batches share the most
//!   transition vertices — maximizing *intra-GPU* reuse.

use crate::cost::{comm_cost, CommVolumes};
use crate::dedup::{intersect_size, DedupPlan};
use hongtu_graph::VertexId;
use hongtu_partition::{ChunkSubgraph, TwoLevelPartition};
use hongtu_sim::MachineConfig;

/// Applies Algorithm 4 and keeps the result only if the Equation-4 cost
/// improved — the "cost model-guided" part of §5.3. Greedy heuristics can
/// regress on adversarial inputs; the guard makes the pass monotone.
pub fn reorganize_guarded(plan: TwoLevelPartition, cfg: &MachineConfig) -> TwoLevelPartition {
    const ROW_BYTES: usize = 128; // any constant: cost is linear in row size
    let before = comm_cost(
        CommVolumes::from_plan(&DedupPlan::build(&plan)),
        cfg,
        ROW_BYTES,
    );
    let cand = reorganize(plan.clone());
    let after = comm_cost(
        CommVolumes::from_plan(&DedupPlan::build(&cand)),
        cfg,
        ROW_BYTES,
    );
    if after <= before {
        cand
    } else {
        plan
    }
}

/// Applies Algorithm 4 and returns the reorganized partition plan.
pub fn reorganize(plan: TwoLevelPartition) -> TwoLevelPartition {
    let (m, n) = (plan.m, plan.n);
    if m * n <= 1 {
        return plan;
    }
    let mut grid = plan.chunks.clone();

    // ---- Phase 1: within-partition chunk placement ----
    // unions[j] = running ℕ^∪_j, seeded with partition 0's chunks.
    let mut unions: Vec<Vec<VertexId>> = (0..n).map(|j| grid[0][j].neighbors.clone()).collect();
    for i in 1..m {
        let mut remaining: Vec<ChunkSubgraph> = std::mem::take(&mut grid[i]);
        let mut placed: Vec<ChunkSubgraph> = Vec::with_capacity(n);
        for union in unions.iter_mut().take(n) {
            // Chunk with the maximum duplicate-neighbor count vs ℕ^∪_j.
            let best = (0..remaining.len())
                .max_by_key(|&c| intersect_size(&remaining[c].neighbors, union))
                .expect("remaining chunks exhausted");
            let chunk = remaining.swap_remove(best);
            merge_sorted_into(union, &chunk.neighbors);
            placed.push(chunk);
        }
        grid[i] = placed;
    }

    // ---- Phase 2: batch ordering ----
    let mut order: Vec<usize> = Vec::with_capacity(n);
    order.push(0);
    let mut remaining: Vec<usize> = (1..n).collect();
    while !remaining.is_empty() {
        let prev = *order.last().unwrap();
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|&(_, &k)| intersect_size(&unions[k], &unions[prev]))
            .unwrap();
        order.push(remaining.swap_remove(pos));
    }

    let mut reordered: Vec<Vec<ChunkSubgraph>> = (0..m).map(|_| Vec::with_capacity(n)).collect();
    // Drain grid columns in the chosen batch order.
    let mut grid_opt: Vec<Vec<Option<ChunkSubgraph>>> = grid
        .into_iter()
        .map(|row| row.into_iter().map(Some).collect())
        .collect();
    for &j in &order {
        for (i, row) in grid_opt.iter_mut().enumerate() {
            reordered[i].push(row[j].take().expect("batch column drained twice"));
        }
    }
    plan.with_chunks(reordered)
}

/// Merges sorted `extra` into sorted `target`, deduplicating.
fn merge_sorted_into(target: &mut Vec<VertexId>, extra: &[VertexId]) {
    let mut merged = Vec::with_capacity(target.len() + extra.len());
    let (mut a, mut b) = (0usize, 0usize);
    while a < target.len() && b < extra.len() {
        match target[a].cmp(&extra[b]) {
            std::cmp::Ordering::Less => {
                merged.push(target[a]);
                a += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(extra[b]);
                b += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(target[a]);
                a += 1;
                b += 1;
            }
        }
    }
    merged.extend_from_slice(&target[a..]);
    merged.extend_from_slice(&extra[b..]);
    *target = merged;
}

#[cfg(test)]
mod tests {
    use super::super::cost::{comm_cost, CommVolumes};
    use super::*;
    use crate::dedup::DedupPlan;
    use hongtu_graph::generators;
    use hongtu_tensor::SeededRng;

    #[test]
    fn merge_sorted_into_dedups() {
        let mut t = vec![1, 3, 5];
        merge_sorted_into(&mut t, &[2, 3, 6]);
        assert_eq!(t, vec![1, 2, 3, 5, 6]);
        let mut t: Vec<VertexId> = vec![];
        merge_sorted_into(&mut t, &[4, 9]);
        assert_eq!(t, vec![4, 9]);
    }

    #[test]
    fn reorganization_preserves_plan_validity() {
        let mut rng = SeededRng::new(1);
        let g = generators::rmat(11, 16_000, generators::RmatParams::social(), &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 4, 6, 1);
        let reorg = reorganize(plan);
        assert!(reorg.validate(&g).is_ok());
        let d = DedupPlan::build(&reorg);
        assert!(d.validate(&reorg).is_ok());
    }

    #[test]
    fn reorganization_does_not_increase_cost() {
        // On graphs with duplicated neighbors, Algorithm 4 should lower (or
        // at worst keep) the Equation-4 cost.
        let cfg = MachineConfig::a100_4x();
        for seed in [1u64, 2, 3] {
            let mut rng = SeededRng::new(seed);
            let g = generators::rmat(11, 20_000, generators::RmatParams::social(), &mut rng);
            let plan = hongtu_partition::TwoLevelPartition::build(&g, 4, 8, seed);
            let before = comm_cost(CommVolumes::from_plan(&DedupPlan::build(&plan)), &cfg, 128);
            let reorg = reorganize(plan);
            let after = comm_cost(CommVolumes::from_plan(&DedupPlan::build(&reorg)), &cfg, 128);
            assert!(
                after <= before * 1.02,
                "seed {seed}: cost went up: {before:.6} -> {after:.6}"
            );
        }
    }

    #[test]
    fn guarded_reorganization_never_regresses_cost() {
        // On an id-local graph scrambled by chunk order, the guarded pass
        // must end at a plan no more expensive than the scrambled input.
        let cfg = MachineConfig::a100_4x();
        let mut rng = SeededRng::new(5);
        let g = generators::local_window(4000, 8.0, 40.0, &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 2, 8, 3);
        let mut grid = plan.chunks.clone();
        for row in &mut grid {
            row.swap(0, 5);
            row.swap(1, 6);
            row.swap(2, 4);
        }
        let scrambled = plan.with_chunks(grid);
        let cost_of = |p: &hongtu_partition::TwoLevelPartition| {
            comm_cost(CommVolumes::from_plan(&DedupPlan::build(p)), &cfg, 128)
        };
        let before = cost_of(&scrambled);
        let reorg = reorganize_guarded(scrambled, &cfg);
        let after = cost_of(&reorg);
        assert!(
            after <= before,
            "guarded cost regressed: {before} -> {after}"
        );
        assert!(reorg.validate(&g).is_ok());
    }

    #[test]
    fn volumes_preserved_in_total_access() {
        // Reorganization permutes chunks; V_ori (total accesses) only
        // depends on the chunk contents, so it must be unchanged.
        let mut rng = SeededRng::new(7);
        let g = generators::erdos_renyi(2000, 6.0, &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 3, 4, 2);
        let before = DedupPlan::build(&plan).v_ori();
        let reorg = reorganize(plan);
        assert_eq!(DedupPlan::build(&reorg).v_ori(), before);
    }

    #[test]
    fn trivial_plans_pass_through() {
        let mut rng = SeededRng::new(9);
        let g = generators::erdos_renyi(50, 3.0, &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 1, 1, 1);
        let reorg = reorganize(plan);
        assert_eq!(reorg.chunks[0][0].num_dests(), 50);
    }
}
