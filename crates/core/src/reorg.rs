//! Cost-effective subgraph reorganization (paper Algorithm 4, §5.3).
//!
//! Minimizing Equation 4 exactly is NP-hard (reducible to a TSP variant),
//! so HongTu uses a 2-phase greedy heuristic, which we extend with a
//! cache-aware third phase:
//!
//! - **Phase 1** keeps partition 0's chunk order and, for every other
//!   partition, greedily assigns to each batch the not-yet-placed chunk
//!   with the largest neighbor overlap against the batch's running
//!   transition union — maximizing *inter-GPU* duplication.
//! - **Phase 2** reorders whole batches so adjacent batches share the most
//!   transition vertices — maximizing *intra-GPU* reuse.
//! - **Phase 3** refines the phase-2 chain with a bounded adjacent-swap
//!   hill-climb on *frequency-weighted* overlap: vertices appearing in
//!   many batch unions (the hot-vertex cache's best candidates) pull
//!   their batches together, so one resident row serves a run of
//!   consecutive batches through the reuse window and the cache.

use crate::cost::{comm_cost_cached, CommVolumes};
use crate::dedup::{intersect_size, DedupPlan};
use hongtu_graph::VertexId;
use hongtu_partition::{ChunkSubgraph, TwoLevelPartition};
use hongtu_sim::MachineConfig;

/// Applies Algorithm 4 and keeps the result only if the Equation-4 cost
/// improved — the "cost model-guided" part of §5.3. Greedy heuristics can
/// regress on adversarial inputs; the guard makes the pass monotone.
pub fn reorganize_guarded(plan: TwoLevelPartition, cfg: &MachineConfig) -> TwoLevelPartition {
    reorganize_guarded_cached(plan, cfg, 0)
}

/// [`reorganize_guarded`] with the cache term: the guard evaluates the
/// extended Equation 4 assuming up to `cache_rows_budget` host-load rows
/// will be served by the hot-vertex cache (clamped to each candidate's
/// `V_+ru` by the cost model). With a cache in play a candidate plan
/// whose raw PCIe volume looks worse can still win once its hot rows are
/// resident.
pub fn reorganize_guarded_cached(
    plan: TwoLevelPartition,
    cfg: &MachineConfig,
    cache_rows_budget: usize,
) -> TwoLevelPartition {
    const ROW_BYTES: usize = 128; // any constant: cost is linear in row size
    let before = comm_cost_cached(
        CommVolumes::from_plan(&DedupPlan::build(&plan)),
        cache_rows_budget,
        cfg,
        ROW_BYTES,
    );
    let cand = reorganize(plan.clone());
    let after = comm_cost_cached(
        CommVolumes::from_plan(&DedupPlan::build(&cand)),
        cache_rows_budget,
        cfg,
        ROW_BYTES,
    );
    if after <= before {
        cand
    } else {
        plan
    }
}

/// Applies Algorithm 4 and returns the reorganized partition plan.
pub fn reorganize(plan: TwoLevelPartition) -> TwoLevelPartition {
    let (m, n) = (plan.m, plan.n);
    if m * n <= 1 {
        return plan;
    }
    let mut grid = plan.chunks.clone();

    // ---- Phase 1: within-partition chunk placement ----
    // unions[j] = running ℕ^∪_j, seeded with partition 0's chunks.
    let mut unions: Vec<Vec<VertexId>> = (0..n).map(|j| grid[0][j].neighbors.clone()).collect();
    for i in 1..m {
        let mut remaining: Vec<ChunkSubgraph> = std::mem::take(&mut grid[i]);
        let mut placed: Vec<ChunkSubgraph> = Vec::with_capacity(n);
        for union in unions.iter_mut().take(n) {
            // Chunk with the maximum duplicate-neighbor count vs ℕ^∪_j.
            let best = (0..remaining.len())
                .max_by_key(|&c| intersect_size(&remaining[c].neighbors, union))
                .expect("remaining chunks exhausted");
            let chunk = remaining.swap_remove(best);
            merge_sorted_into(union, &chunk.neighbors);
            placed.push(chunk);
        }
        grid[i] = placed;
    }

    // ---- Phase 2: batch ordering ----
    let mut order: Vec<usize> = Vec::with_capacity(n);
    order.push(0);
    let mut remaining: Vec<usize> = (1..n).collect();
    while !remaining.is_empty() {
        let prev = *order.last().unwrap();
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|&(_, &k)| intersect_size(&unions[k], &unions[prev]))
            .unwrap();
        order.push(remaining.swap_remove(pos));
    }

    // ---- Phase 3: hot-vertex affinity refinement ----
    refine_order_by_heat(&mut order, &unions);

    let mut reordered: Vec<Vec<ChunkSubgraph>> = (0..m).map(|_| Vec::with_capacity(n)).collect();
    // Drain grid columns in the chosen batch order.
    let mut grid_opt: Vec<Vec<Option<ChunkSubgraph>>> = grid
        .into_iter()
        .map(|row| row.into_iter().map(Some).collect())
        .collect();
    for &j in &order {
        for (i, row) in grid_opt.iter_mut().enumerate() {
            reordered[i].push(row[j].take().expect("batch column drained twice"));
        }
    }
    plan.with_chunks(reordered)
}

/// Upper bound on hill-climb sweeps: each sweep is `O(n)` swaps over the
/// precomputed `n × n` weight matrix, and adjacent-swap chains converge
/// fast; the cap only bounds adversarial inputs.
const MAX_HEAT_PASSES: usize = 8;

/// Phase 3: deterministic adjacent-swap hill-climb maximizing
/// `Σ_k heat(order[k], order[k+1])`, where `heat(a, b)` weighs each
/// vertex shared by batch unions `a` and `b` with the number of unions
/// it appears in. Phase 2 already chains raw overlaps greedily; this
/// pass fixes the cases where a *hot* vertex (the cache's best
/// candidate) was split across distant batches by a larger but colder
/// overlap.
fn refine_order_by_heat(order: &mut [usize], unions: &[Vec<VertexId>]) {
    let n = order.len();
    if n < 3 {
        return;
    }
    // freq[v] = number of batch unions loading v.
    let mut freq = std::collections::HashMap::<VertexId, u64>::new();
    for u in unions {
        for &v in u {
            *freq.entry(v).or_insert(0) += 1;
        }
    }
    // Symmetric pairwise heat matrix (n is small: one row per batch).
    let heat = |a: &[VertexId], b: &[VertexId]| -> u64 {
        let (mut i, mut j, mut w) = (0usize, 0usize, 0u64);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    w += freq[&a[i]];
                    i += 1;
                    j += 1;
                }
            }
        }
        w
    };
    let mut w = vec![vec![0u64; n]; n];
    for a in 0..n {
        for b in (a + 1)..n {
            let h = heat(&unions[a], &unions[b]);
            w[a][b] = h;
            w[b][a] = h;
        }
    }
    for _ in 0..MAX_HEAT_PASSES {
        let mut improved = false;
        for k in 0..n - 1 {
            let (a, b) = (order[k], order[k + 1]);
            // Swapping positions k/k+1 only changes the edges to the
            // outside neighbors (the middle edge is symmetric).
            let mut delta = 0i128;
            if k > 0 {
                let p = order[k - 1];
                delta += w[p][b] as i128 - w[p][a] as i128;
            }
            if k + 2 < n {
                let s = order[k + 2];
                delta += w[a][s] as i128 - w[b][s] as i128;
            }
            if delta > 0 {
                order.swap(k, k + 1);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Merges sorted `extra` into sorted `target`, deduplicating.
fn merge_sorted_into(target: &mut Vec<VertexId>, extra: &[VertexId]) {
    let mut merged = Vec::with_capacity(target.len() + extra.len());
    let (mut a, mut b) = (0usize, 0usize);
    while a < target.len() && b < extra.len() {
        match target[a].cmp(&extra[b]) {
            std::cmp::Ordering::Less => {
                merged.push(target[a]);
                a += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(extra[b]);
                b += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(target[a]);
                a += 1;
                b += 1;
            }
        }
    }
    merged.extend_from_slice(&target[a..]);
    merged.extend_from_slice(&extra[b..]);
    *target = merged;
}

#[cfg(test)]
mod tests {
    use super::super::cost::{comm_cost, CommVolumes};
    use super::*;
    use crate::dedup::DedupPlan;
    use hongtu_graph::generators;
    use hongtu_tensor::SeededRng;

    #[test]
    fn merge_sorted_into_dedups() {
        let mut t = vec![1, 3, 5];
        merge_sorted_into(&mut t, &[2, 3, 6]);
        assert_eq!(t, vec![1, 2, 3, 5, 6]);
        let mut t: Vec<VertexId> = vec![];
        merge_sorted_into(&mut t, &[4, 9]);
        assert_eq!(t, vec![4, 9]);
    }

    #[test]
    fn reorganization_preserves_plan_validity() {
        let mut rng = SeededRng::new(1);
        let g = generators::rmat(11, 16_000, generators::RmatParams::social(), &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 4, 6, 1);
        let reorg = reorganize(plan);
        assert!(reorg.validate(&g).is_ok());
        let d = DedupPlan::build(&reorg);
        assert!(d.validate(&reorg).is_ok());
    }

    #[test]
    fn reorganization_does_not_increase_cost() {
        // On graphs with duplicated neighbors, Algorithm 4 should lower (or
        // at worst keep) the Equation-4 cost.
        let cfg = MachineConfig::a100_4x();
        for seed in [1u64, 2, 3] {
            let mut rng = SeededRng::new(seed);
            let g = generators::rmat(11, 20_000, generators::RmatParams::social(), &mut rng);
            let plan = hongtu_partition::TwoLevelPartition::build(&g, 4, 8, seed);
            let before = comm_cost(CommVolumes::from_plan(&DedupPlan::build(&plan)), &cfg, 128);
            let reorg = reorganize(plan);
            let after = comm_cost(CommVolumes::from_plan(&DedupPlan::build(&reorg)), &cfg, 128);
            assert!(
                after <= before * 1.02,
                "seed {seed}: cost went up: {before:.6} -> {after:.6}"
            );
        }
    }

    #[test]
    fn guarded_reorganization_never_regresses_cost() {
        // On an id-local graph scrambled by chunk order, the guarded pass
        // must end at a plan no more expensive than the scrambled input.
        let cfg = MachineConfig::a100_4x();
        let mut rng = SeededRng::new(5);
        let g = generators::local_window(4000, 8.0, 40.0, &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 2, 8, 3);
        let mut grid = plan.chunks.clone();
        for row in &mut grid {
            row.swap(0, 5);
            row.swap(1, 6);
            row.swap(2, 4);
        }
        let scrambled = plan.with_chunks(grid);
        let cost_of = |p: &hongtu_partition::TwoLevelPartition| {
            comm_cost(CommVolumes::from_plan(&DedupPlan::build(p)), &cfg, 128)
        };
        let before = cost_of(&scrambled);
        let reorg = reorganize_guarded(scrambled, &cfg);
        let after = cost_of(&reorg);
        assert!(
            after <= before,
            "guarded cost regressed: {before} -> {after}"
        );
        assert!(reorg.validate(&g).is_ok());
    }

    #[test]
    fn heat_refinement_pulls_hot_batches_together() {
        // Batches 0 and 2 share three hot vertices; batch 1 shares
        // nothing with either. Phase 3 must make 0 and 2 adjacent.
        let unions: Vec<Vec<VertexId>> = vec![vec![1, 2, 3, 9], vec![7, 8], vec![1, 2, 3]];
        let mut order = vec![0usize, 1, 2];
        refine_order_by_heat(&mut order, &unions);
        let pos = |b: usize| order.iter().position(|&x| x == b).unwrap();
        assert_eq!(
            pos(0).abs_diff(pos(2)),
            1,
            "hot pair split: order {order:?}"
        );
        // Deterministic: a second run from the refined order is a fixpoint.
        let again = order.clone();
        let mut order2 = order.clone();
        refine_order_by_heat(&mut order2, &unions);
        assert_eq!(order2, again);
    }

    #[test]
    fn heat_refinement_ignores_short_chains() {
        let unions: Vec<Vec<VertexId>> = vec![vec![1], vec![1]];
        let mut order = vec![0usize, 1];
        refine_order_by_heat(&mut order, &unions);
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn cached_guard_never_regresses_cached_cost() {
        // Same scrambled scenario as the plain guard, evaluated under the
        // cache-extended Equation 4: still monotone.
        let cfg = MachineConfig::a100_4x();
        let mut rng = SeededRng::new(6);
        let g = generators::local_window(4000, 8.0, 40.0, &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 2, 8, 3);
        let mut grid = plan.chunks.clone();
        for row in &mut grid {
            row.swap(0, 7);
            row.swap(2, 5);
        }
        let scrambled = plan.with_chunks(grid);
        let budget = 10_000usize;
        let cost_of = |p: &hongtu_partition::TwoLevelPartition| {
            comm_cost_cached(
                CommVolumes::from_plan(&DedupPlan::build(p)),
                budget,
                &cfg,
                128,
            )
        };
        let before = cost_of(&scrambled);
        let reorg = reorganize_guarded_cached(scrambled, &cfg, budget);
        let after = cost_of(&reorg);
        assert!(
            after <= before,
            "cached guard regressed: {before} -> {after}"
        );
        assert!(reorg.validate(&g).is_ok());
    }

    #[test]
    fn volumes_preserved_in_total_access() {
        // Reorganization permutes chunks; V_ori (total accesses) only
        // depends on the chunk contents, so it must be unchanged.
        let mut rng = SeededRng::new(7);
        let g = generators::erdos_renyi(2000, 6.0, &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 3, 4, 2);
        let before = DedupPlan::build(&plan).v_ori();
        let reorg = reorganize(plan);
        assert_eq!(DedupPlan::build(&reorg).v_ori(), before);
    }

    #[test]
    fn trivial_plans_pass_through() {
        let mut rng = SeededRng::new(9);
        let g = generators::erdos_renyi(50, 3.0, &mut rng);
        let plan = hongtu_partition::TwoLevelPartition::build(&g, 1, 1, 1);
        let reorg = reorganize(plan);
        assert_eq!(reorg.chunks[0][0].num_dests(), 50);
    }
}
