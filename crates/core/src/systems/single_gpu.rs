//! Single-GPU full-graph comparator — the "DGL" rows of Tables 5 and 6.
//!
//! All training data (topology, every layer's representations and
//! gradients, all intermediates) stays resident on one GPU, so epochs are
//! pure compute; the flip side is an exact memory check that produces the
//! OOM cells the paper reports for deep GAT configurations.

use super::Workload;
use hongtu_sim::{
    Access, BarrierScope, Device, Event, EventKind, MachineConfig, Region, ResourceId, SimError,
    Trace,
};

/// The single-GPU full-graph system.
#[derive(Debug, Clone)]
pub struct SingleGpuFullGraph {
    /// Platform (only GPU 0 is used).
    pub machine: MachineConfig,
}

impl SingleGpuFullGraph {
    /// A system on the given platform.
    pub fn new(machine: MachineConfig) -> Self {
        SingleGpuFullGraph { machine }
    }

    /// Resident bytes this system needs on its one GPU.
    pub fn required_bytes(&self, w: &Workload<'_>) -> usize {
        let ds = w.dataset;
        let (v, e) = (ds.num_vertices(), ds.num_edges());
        ds.graph.topology_bytes()
            + w.vertex_data_bytes(v)
            + w.total_intermediate_bytes(v, e, v)
            + 3 * w.param_bytes()
    }

    /// Per-epoch seconds, or OOM.
    pub fn epoch_time(&self, w: &Workload<'_>) -> Result<f64, SimError> {
        let required = self.required_bytes(w);
        if required > self.machine.gpu_memory {
            return Err(SimError::OutOfMemory {
                device: "GPU0".into(),
                label: "full-graph training data".into(),
                requested: required,
                in_use: 0,
                capacity: self.machine.gpu_memory,
            });
        }
        let ds = w.dataset;
        let (v, e) = (ds.num_vertices() as f64, ds.num_edges() as f64);
        // All intermediates are retained, so no recomputation (3× forward).
        let flops = w.epoch_flops(v, e, v, false);
        Ok(flops.dense / self.machine.gpu_dense_flops + flops.edge / self.machine.gpu_edge_flops)
    }

    /// The annotated execution schedule of one epoch, for the
    /// happens-before checker (`hongtu-verify`'s trace pass). Purely
    /// structural — timings live in [`SingleGpuFullGraph::epoch_time`],
    /// which also gates this method on the memory check.
    pub fn epoch_schedule(&self, w: &Workload<'_>) -> Result<Trace, SimError> {
        self.epoch_time(w)?;
        let mut t = Trace::unbounded();
        let gpu = Device::Gpu(0);
        let dims = w.dims();
        let v = w.dataset.num_vertices();
        let rep = |l: usize| ResourceId::Rep { layer: l as u32 };
        let grad = |l: usize| ResourceId::Grad { layer: l as u32 };
        // Everything is resident on the one GPU: each layer is a single
        // compute reading h^l and producing h^{l+1}, program-ordered on
        // the device with no communication and no barriers until the end.
        for l in 0..w.layers {
            t.record(
                Event::new(EventKind::GpuCompute, gpu, 0, 0.0, 0.0).with_accesses(vec![
                    Access::read(rep(l), Region::All),
                    Access::write(rep(l + 1), Region::All),
                ]),
            );
        }
        t.record(
            Event::new(
                EventKind::GpuCompute,
                gpu,
                v * dims[w.layers] * F32,
                0.0,
                0.0,
            )
            .with_accesses(vec![
                Access::read(rep(w.layers), Region::All),
                Access::write(grad(w.layers), Region::All),
            ]),
        );
        for l in (0..w.layers).rev() {
            t.record(
                Event::new(EventKind::GpuCompute, gpu, 0, 0.0, 0.0).with_accesses(vec![
                    Access::read(rep(l), Region::All),
                    Access::read(grad(l + 1), Region::All),
                    Access::write(grad(l), Region::All),
                ]),
            );
        }
        t.record(Event::new(
            EventKind::Barrier(BarrierScope::Epoch),
            Device::Host,
            0,
            0.0,
            0.0,
        ));
        Ok(t)
    }
}

const F32: usize = std::mem::size_of::<f32>();

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_datasets::{load, DatasetKey};
    use hongtu_nn::ModelKind;
    use hongtu_tensor::SeededRng;

    fn rdt() -> hongtu_datasets::Dataset {
        load(DatasetKey::Rdt, &mut SeededRng::new(1))
    }

    fn fds() -> hongtu_datasets::Dataset {
        load(DatasetKey::Fds, &mut SeededRng::new(1))
    }

    #[test]
    fn small_graph_fits_and_reports_time() {
        let ds = rdt();
        let sys = SingleGpuFullGraph::new(MachineConfig::scaled(1, 256 << 20));
        let t = sys
            .epoch_time(&Workload::new(&ds, ModelKind::Gcn, 16, 2))
            .unwrap();
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn runtime_grows_with_layers_and_model_weight() {
        let ds = rdt();
        let sys = SingleGpuFullGraph::new(MachineConfig::scaled(1, 1 << 30));
        let t2 = sys
            .epoch_time(&Workload::new(&ds, ModelKind::Gcn, 16, 2))
            .unwrap();
        let t4 = sys
            .epoch_time(&Workload::new(&ds, ModelKind::Gcn, 16, 4))
            .unwrap();
        let gat2 = sys
            .epoch_time(&Workload::new(&ds, ModelKind::Gat, 16, 2))
            .unwrap();
        assert!(t4 > t2 * 1.5);
        assert!(gat2 > t2, "GAT must be slower than GCN");
    }

    #[test]
    fn large_graph_overflows_small_gpu() {
        let ds = fds();
        let sys = SingleGpuFullGraph::new(MachineConfig::scaled(1, 8 << 20));
        let r = sys.epoch_time(&Workload::new(&ds, ModelKind::Gcn, 32, 3));
        assert!(matches!(r, Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn epoch_schedule_certifies_clean() {
        let ds = rdt();
        let sys = SingleGpuFullGraph::new(MachineConfig::scaled(1, 256 << 20));
        let trace = sys
            .epoch_schedule(&Workload::new(&ds, ModelKind::Gcn, 16, 2))
            .unwrap();
        assert!(!trace.is_empty());
        let report = hongtu_verify::verify_trace(&trace);
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn epoch_schedule_inherits_oom_gate() {
        let ds = fds();
        let sys = SingleGpuFullGraph::new(MachineConfig::scaled(1, 8 << 20));
        let r = sys.epoch_schedule(&Workload::new(&ds, ModelKind::Gcn, 32, 3));
        assert!(matches!(r, Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn gat_needs_more_memory_than_gcn() {
        let ds = rdt();
        let sys = SingleGpuFullGraph::new(MachineConfig::scaled(1, 1 << 30));
        let gcn = sys.required_bytes(&Workload::new(&ds, ModelKind::Gcn, 16, 4));
        let gat = sys.required_bytes(&Workload::new(&ds, ModelKind::Gat, 16, 4));
        assert!(gat > gcn, "GAT {gat} vs GCN {gcn}");
    }
}
