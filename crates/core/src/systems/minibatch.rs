//! Sampled mini-batch comparator — the "DistDGL" rows of Table 6 and the
//! mini-batch curve of Figure 8.
//!
//! Mini-batch GNN training samples, for every batch of training vertices, a
//! `fanout`-bounded multi-layer neighborhood and trains on the sampled
//! blocks. This sidesteps the full-graph memory wall but (a) changes the
//! training semantics (sampled, not full, neighbor aggregation — the
//! accuracy gap of Figure 8) and (b) suffers *neighbor explosion*: the
//! sampled neighborhood grows roughly `fanout^L`, so deep models blow up
//! in both time and memory (the exponential runtimes and OOM cells of
//! Table 6).

use super::Workload;
use hongtu_datasets::Dataset;
use hongtu_graph::VertexId;
use hongtu_nn::{masked_cross_entropy, GnnModel};
use hongtu_partition::ChunkSubgraph;
use hongtu_sim::{
    Access, BarrierScope, Device, Event, EventKind, MachineConfig, Region, ResourceId, SimError,
    Trace,
};
use hongtu_tensor::{Matrix, Optimizer, SeededRng};

const F32: usize = std::mem::size_of::<f32>();

/// The mini-batch training system.
pub struct MiniBatchSystem {
    /// Neighbors sampled per vertex per layer (paper §7.1: 10).
    pub fanout: usize,
    /// Training vertices per batch (paper: 1024; proxies use a scaled
    /// value).
    pub batch_size: usize,
    /// Platform for the cost model.
    pub machine: MachineConfig,
    /// Sampling seed.
    pub seed: u64,
}

impl MiniBatchSystem {
    /// A system with the paper's fanout-10 default.
    pub fn new(machine: MachineConfig, batch_size: usize, seed: u64) -> Self {
        MiniBatchSystem {
            fanout: 10,
            batch_size,
            machine,
            seed,
        }
    }

    /// Samples the layered blocks for one batch of `seeds`. Returns blocks
    /// in forward order: `blocks[l]` consumes representations of its
    /// `neighbors` (⊆ `blocks[l-1].dests`; layer 0 reads input features)
    /// and produces representations of its `dests`.
    pub fn sample_blocks(
        &self,
        ds: &Dataset,
        seeds: &[VertexId],
        layers: usize,
        rng: &mut SeededRng,
    ) -> Vec<ChunkSubgraph> {
        let g = &ds.graph;
        let mut blocks_rev: Vec<ChunkSubgraph> = Vec::with_capacity(layers);
        let mut dests: Vec<VertexId> = seeds.to_vec();
        dests.sort_unstable();
        dests.dedup();
        for l in (0..layers).rev() {
            // Sample up to `fanout` in-neighbors per destination; the
            // self-loop is always kept so every layer sees h_v itself.
            let mut edges: Vec<Vec<VertexId>> = Vec::with_capacity(dests.len());
            for &d in &dests {
                let nbrs = g.in_neighbors(d);
                let mut picked: Vec<VertexId> = if nbrs.len() <= self.fanout {
                    nbrs.to_vec()
                } else {
                    let idx = rng.sample_indices(nbrs.len(), self.fanout);
                    idx.into_iter().map(|i| nbrs[i]).collect()
                };
                if !picked.contains(&d) && nbrs.contains(&d) {
                    picked.push(d);
                }
                picked.sort_unstable();
                picked.dedup();
                edges.push(picked);
            }
            let mut neighbors: Vec<VertexId> = edges.iter().flatten().copied().collect();
            neighbors.sort_unstable();
            neighbors.dedup();
            let mut offsets = vec![0usize];
            let mut nbr_index = Vec::new();
            let mut weights = Vec::new();
            for (k, picked) in edges.iter().enumerate() {
                let d = dests[k];
                let dv = (1 + g.in_degree(d)) as f32;
                for &u in picked {
                    let pos = neighbors
                        .binary_search(&u)
                        .expect("sampled neighbor present");
                    nbr_index.push(pos as u32);
                    let du = (1 + g.out_degree(u)) as f32;
                    weights.push(1.0 / (du * dv).sqrt());
                }
                offsets.push(nbr_index.len());
            }
            blocks_rev.push(ChunkSubgraph {
                part: 0,
                chunk: l,
                dests: dests.clone(),
                neighbors: neighbors.clone(),
                offsets,
                nbr_index,
                gcn_weights: weights,
            });
            dests = neighbors;
        }
        blocks_rev.reverse();
        blocks_rev
    }

    /// Number of batches per epoch for the dataset's training split.
    pub fn batches_per_epoch(&self, ds: &Dataset) -> usize {
        ds.splits.num_train().div_ceil(self.batch_size)
    }

    /// Cost-model epoch time: samples a few representative batches,
    /// prices sampling (CPU), feature/block transfer (H2D) and compute
    /// (GPU), checks the peak batch footprint, and extrapolates.
    pub fn epoch_time(&self, w: &Workload<'_>) -> Result<f64, SimError> {
        let ds = w.dataset;
        let train: Vec<VertexId> = ds
            .splits
            .train
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v as VertexId)
            .collect();
        let num_batches = self.batches_per_epoch(ds);
        let probe = num_batches.min(3);
        let mut rng = SeededRng::new(self.seed);
        let mut probe_time = 0.0f64;
        let mut peak_bytes = 0usize;
        for b in 0..probe {
            let start = b * self.batch_size;
            let end = (start + self.batch_size).min(train.len());
            let blocks = self.sample_blocks(ds, &train[start..end], w.layers, &mut rng);
            let mut batch_bytes = 0usize;
            let mut sampled_edges = 0usize;
            for (l, blk) in blocks.iter().enumerate() {
                let (v, e, nbr) = (
                    blk.num_dests() as f64,
                    blk.num_edges() as f64,
                    blk.num_neighbors() as f64,
                );
                let flops = w.layer_flops(l, v, e, nbr).scale(3.0);
                probe_time += flops.dense / self.machine.gpu_dense_flops
                    + flops.edge / self.machine.gpu_edge_flops;
                batch_bytes += w.layer_intermediate_bytes(
                    l,
                    blk.num_dests(),
                    blk.num_edges(),
                    blk.num_neighbors(),
                ) + blk.topology_bytes()
                    + (blk.num_neighbors() + blk.num_dests()) * w.dims()[l] * F32;
                sampled_edges += blk.num_edges();
            }
            // Input features of the widest (bottom) block go host→GPU.
            let feat_bytes = blocks[0].num_neighbors() * ds.feat_dim() * F32;
            probe_time += feat_bytes as f64 * self.machine.pcie_seconds_per_byte();
            // CPU-side sampling: random in-neighbor selection, dedup and
            // block construction cost tens of ops per sampled edge.
            probe_time += (sampled_edges as f64 * 60.0) / self.machine.cpu_flops;
            peak_bytes = peak_bytes.max(batch_bytes);
        }
        if peak_bytes + 3 * w.param_bytes() > self.machine.gpu_memory {
            return Err(SimError::OutOfMemory {
                device: "GPU0".into(),
                label: "sampled batch blocks".into(),
                requested: peak_bytes,
                in_use: 0,
                capacity: self.machine.gpu_memory,
            });
        }
        Ok(probe_time * num_batches as f64 / probe.max(1) as f64)
    }

    /// The annotated execution schedule of the probe batches, for the
    /// happens-before checker. Each batch is: CPU-side sampling, a
    /// feature/block H2D tagged with the batch generation, per-layer
    /// compute on the sampled blocks, and a batch barrier — the sampled
    /// world never writes back to the host layer stores, so only the
    /// input features (`h^0`) and the GPU-resident block buffer appear.
    pub fn epoch_schedule(&self, w: &Workload<'_>) -> Result<Trace, SimError> {
        self.epoch_time(w)?;
        let ds = w.dataset;
        let train: Vec<VertexId> = ds
            .splits
            .train
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v as VertexId)
            .collect();
        let probe = self.batches_per_epoch(ds).min(3);
        let mut rng = SeededRng::new(self.seed);
        let mut t = Trace::unbounded();
        let gpu = Device::Gpu(0);
        let buf = ResourceId::DevRep { gpu: 0 };
        for b in 0..probe {
            let start = b * self.batch_size;
            let end = (start + self.batch_size).min(train.len());
            let blocks = self.sample_blocks(ds, &train[start..end], w.layers, &mut rng);
            // CPU-side neighborhood sampling (reads only the topology).
            t.record(Event::new(EventKind::CpuCompute, Device::Host, 0, 0.0, 0.0));
            // Input features of the widest block move host→GPU into the
            // batch's block buffer.
            let feat_bytes = blocks[0].num_neighbors() * ds.feat_dim() * F32;
            t.record(
                Event::new(EventKind::H2D, gpu, feat_bytes, 0.0, 0.0).with_accesses(vec![
                    Access::read(ResourceId::Rep { layer: 0 }, Region::All),
                    Access::write(buf, Region::All).with_gen(b as u32),
                ]),
            );
            // Per-layer compute over the sampled blocks (forward +
            // backward + optimizer step, all GPU-resident).
            for blk in &blocks {
                t.record(
                    Event::new(EventKind::GpuCompute, gpu, blk.topology_bytes(), 0.0, 0.0)
                        .with_accesses(vec![Access::read(buf, Region::All).with_gen(b as u32)]),
                );
            }
            t.record(Event::new(
                EventKind::Barrier(BarrierScope::Batch),
                Device::Host,
                0,
                0.0,
                0.0,
            ));
        }
        t.record(Event::new(
            EventKind::Barrier(BarrierScope::Epoch),
            Device::Host,
            0,
            0.0,
            0.0,
        ));
        Ok(t)
    }

    /// Real mini-batch training for one epoch (Figure 8). Performs an
    /// optimizer step per batch; returns the mean batch loss.
    pub fn train_epoch_real(
        &self,
        model: &mut GnnModel,
        ds: &Dataset,
        opt: &mut dyn Optimizer,
        rng: &mut SeededRng,
    ) -> f32 {
        let mut train: Vec<VertexId> = ds
            .splits
            .train
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v as VertexId)
            .collect();
        rng.shuffle(&mut train);
        let mut total_loss = 0.0f32;
        let mut batches = 0usize;
        for seeds in train.chunks(self.batch_size) {
            let blocks = self.sample_blocks(ds, seeds, model.num_layers(), rng);
            total_loss += self.train_batch(model, ds, &blocks, opt);
            batches += 1;
        }
        total_loss / batches.max(1) as f32
    }

    /// Forward/backward over one batch's blocks with an optimizer step.
    fn train_batch(
        &self,
        model: &mut GnnModel,
        ds: &Dataset,
        blocks: &[ChunkSubgraph],
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let l_count = model.num_layers();
        // Forward, keeping each block's input for the backward pass.
        let feat_idx: Vec<usize> = blocks[0].neighbors.iter().map(|&v| v as usize).collect();
        let mut inputs: Vec<Matrix> = vec![ds.features.gather_rows(&feat_idx)];
        for l in 0..l_count {
            let out = model.layer(l).forward(&blocks[l], &inputs[l]).out;
            if l + 1 < l_count {
                // Next block's neighbors are a subset of this block's dests.
                let map: Vec<usize> = blocks[l + 1]
                    .neighbors
                    .iter()
                    .map(|v| {
                        blocks[l]
                            .dests
                            .binary_search(v)
                            .expect("block chaining broken")
                    })
                    .collect();
                inputs.push(out.gather_rows(&map));
            } else {
                inputs.push(out);
            }
        }
        // Loss over the seed vertices.
        let seeds = &blocks[l_count - 1].dests;
        let labels: Vec<u32> = seeds.iter().map(|&v| ds.labels[v as usize]).collect();
        let mask = vec![true; seeds.len()];
        let loss = masked_cross_entropy(inputs.last().unwrap(), &labels, &mask);

        // Backward through the blocks.
        let mut grads = model.zero_grads();
        let mut grad_out = loss.grad.clone();
        for l in (0..l_count).rev() {
            let grad_nbr = model.layer(l).backward_from_input(
                &blocks[l],
                &inputs[l],
                &grad_out,
                &mut grads[l],
            );
            if l > 0 {
                let mut prev = Matrix::zeros(blocks[l - 1].num_dests(), model.layer(l).in_dim());
                let map: Vec<usize> = blocks[l]
                    .neighbors
                    .iter()
                    .map(|v| {
                        blocks[l - 1]
                            .dests
                            .binary_search(v)
                            .expect("block chaining broken")
                    })
                    .collect();
                prev.scatter_add_rows(&map, &grad_nbr);
                grad_out = prev;
            }
        }
        model.apply_grads(&grads, opt);
        loss.loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_datasets::{load, DatasetKey};
    use hongtu_nn::ModelKind;
    use hongtu_tensor::Adam;

    fn rdt() -> Dataset {
        load(DatasetKey::Rdt, &mut SeededRng::new(1))
    }

    fn sys() -> MiniBatchSystem {
        MiniBatchSystem::new(MachineConfig::scaled(1, 1 << 30), 128, 7)
    }

    #[test]
    fn blocks_chain_correctly() {
        let ds = rdt();
        let s = sys();
        let mut rng = SeededRng::new(2);
        let seeds: Vec<VertexId> = (0..64).map(|i| i * 7 % ds.num_vertices() as u32).collect();
        let blocks = s.sample_blocks(&ds, &seeds, 3, &mut rng);
        assert_eq!(blocks.len(), 3);
        // Final block's dests are exactly the (dedup'd) seeds.
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(blocks[2].dests, sorted);
        // Chaining: every block's neighbors appear in the previous dests.
        for l in 1..3 {
            for v in &blocks[l].neighbors {
                assert!(blocks[l - 1].dests.binary_search(v).is_ok());
            }
        }
        // Fanout bound (+1 for the forced self-loop).
        for blk in &blocks {
            for k in 0..blk.num_dests() {
                assert!(blk.in_edges_of(k).len() <= s.fanout + 1);
            }
        }
    }

    #[test]
    fn expansion_grows_with_layers() {
        let ds = rdt();
        let s = sys();
        let mut rng = SeededRng::new(3);
        let seeds: Vec<VertexId> = (0..32u32).collect();
        let b1 = s.sample_blocks(&ds, &seeds, 1, &mut rng);
        let b3 = s.sample_blocks(&ds, &seeds, 3, &mut rng);
        assert!(
            b3[0].num_neighbors() > 4 * b1[0].num_neighbors(),
            "3-layer frontier {} vs 1-layer {}",
            b3[0].num_neighbors(),
            b1[0].num_neighbors()
        );
    }

    #[test]
    fn epoch_time_grows_superlinearly_with_layers() {
        // Neighbor explosion needs room to explode: use the large sparse
        // it-2004 proxy (dense RDT saturates at |V| after two hops).
        let ds = load(DatasetKey::It, &mut SeededRng::new(9));
        let s = MiniBatchSystem::new(MachineConfig::scaled(1, 1 << 30), 128, 7);
        let t2 = s
            .epoch_time(&Workload::new(&ds, ModelKind::Gcn, 16, 2))
            .unwrap();
        let t4 = s
            .epoch_time(&Workload::new(&ds, ModelKind::Gcn, 16, 4))
            .unwrap();
        assert!(t4 > 2.5 * t2, "t2 {t2} t4 {t4}");
    }

    #[test]
    fn deep_models_oom_on_small_gpu() {
        let ds = rdt();
        let s = MiniBatchSystem::new(MachineConfig::scaled(1, 1 << 20), 256, 7);
        let r = s.epoch_time(&Workload::new(&ds, ModelKind::Gcn, 16, 6));
        assert!(matches!(r, Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn real_training_reduces_loss_and_learns() {
        let ds = rdt();
        let s = sys();
        let mut rng = SeededRng::new(5);
        let mut model = GnnModel::new(ModelKind::Gcn, &ds.model_dims(16, 2), &mut rng);
        let mut opt = Adam::new(0.01);
        let mut train_rng = SeededRng::new(6);
        let first = s.train_epoch_real(&mut model, &ds, &mut opt, &mut train_rng);
        let mut last = first;
        for _ in 0..14 {
            last = s.train_epoch_real(&mut model, &ds, &mut opt, &mut train_rng);
        }
        assert!(last < first, "loss {first} -> {last}");
        // Full-neighbor inference accuracy after mini-batch training.
        let chunk = hongtu_nn::model::whole_graph_chunk(&ds.graph);
        let logits = model.forward_reference(&chunk, &ds.features).pop().unwrap();
        let acc = hongtu_nn::loss::masked_accuracy(&logits, &ds.labels, &ds.splits.val);
        assert!(acc > 0.5, "val accuracy {acc}");
    }

    #[test]
    fn epoch_schedule_certifies_clean() {
        let ds = rdt();
        let s = sys();
        let trace = s
            .epoch_schedule(&Workload::new(&ds, ModelKind::Gcn, 16, 2))
            .unwrap();
        assert!(!trace.is_empty());
        let report = hongtu_verify::verify_trace(&trace);
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        let ds = rdt();
        let s = MiniBatchSystem::new(MachineConfig::scaled(1, 1 << 30), 100, 1);
        let n = ds.splits.num_train();
        assert_eq!(s.batches_per_epoch(&ds), n.div_ceil(100));
    }
}
