//! CPU-based full-graph comparators — the "DistGNN" rows of Tables 5 and 7.
//!
//! DistGNN keeps everything in (distributed) host memory: epochs pay CPU
//! compute (dense FLOPs at CPU throughput; irregular aggregation at host
//! memory bandwidth) plus, in the cluster case, network transfers of the
//! neighbor replicas between shared-nothing nodes. Memory checks include
//! the replica and communication buffers the paper calls out ("DistGNN
//! also needs to maintain the data of neighbor replicas and communication
//! buffers"), which is why 16 × 512 GB still OOMs on deep GAT workloads.

use super::Workload;
use hongtu_nn::ModelKind;
use hongtu_partition::{replication_factor, simple::hash_partition};
use hongtu_sim::{
    Access, BarrierScope, CpuClusterConfig, Device, Event, EventKind, Region, ResourceId, SimError,
    Trace,
};

const F32: usize = std::mem::size_of::<f32>();

/// Single node or shared-nothing cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuSystemKind {
    /// One big-memory server (Table 5's "DistGNN" column).
    SingleNode,
    /// A cluster of `num_nodes` from the config (Table 7).
    Cluster,
}

/// The CPU full-graph system.
pub struct CpuSystem {
    /// Deployment shape.
    pub kind: CpuSystemKind,
    /// Cluster (or single-node) parameters.
    pub cluster: CpuClusterConfig,
    /// Replication factor of the node-level partition (1.0 single node).
    alpha: f64,
}

impl CpuSystem {
    /// Builds the system; for clusters, computes the replication factor.
    /// DistGNN partitions with Libra, a vertex-cut scheme whose vertex
    /// replication is far higher than an edge-cut METIS split; the
    /// replication factor of a hash partition is a good proxy for that
    /// regime.
    pub fn new(
        kind: CpuSystemKind,
        cluster: CpuClusterConfig,
        dataset: &hongtu_datasets::Dataset,
    ) -> Self {
        let alpha = match kind {
            CpuSystemKind::SingleNode => 1.0,
            CpuSystemKind::Cluster => {
                let a = hash_partition(dataset.num_vertices(), cluster.num_nodes);
                replication_factor(&dataset.graph, &a)
            }
        };
        CpuSystem {
            kind,
            cluster,
            alpha,
        }
    }

    /// Replication factor in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Memory required on the most-loaded node.
    pub fn per_node_bytes(&self, w: &Workload<'_>) -> usize {
        let ds = w.dataset;
        let nodes = self.cluster.num_nodes;
        let (v, e) = (ds.num_vertices(), ds.num_edges());
        let dims = w.dims();
        let dim_sum: usize = dims.iter().sum();
        let base = ds.graph.topology_bytes() / nodes
            + w.vertex_data_bytes(v) / nodes
            + w.total_intermediate_bytes(v, e, v) / nodes;
        // Replicas (representations of every layer) + send/recv buffers.
        let replica_rows = ((self.alpha - 1.0).max(0.0) * v as f64 / nodes as f64) as usize;
        let replica = replica_rows * dim_sum * F32 * 2; // reps + comm buffers
                                                        // Edge-softmax models cannot use DistGNN's in-place CPU
                                                        // aggregation: per-edge attention scalars (score + weight) are
                                                        // retained for every layer's backward pass, and a double-buffered
                                                        // per-edge message tensor is live during aggregation — this is
                                                        // what blows past 16 × 512 GB in Table 7.
        let edge_state = if w.kind == ModelKind::Gat {
            let retained = 2 * (e / nodes) * F32 * w.layers;
            // Forward message tensor, its gradient, and double buffering
            // for communication overlap: four E×hidden buffers live at the
            // aggregation peak.
            let transient = 4 * (e / nodes) * w.hidden * F32;
            retained + transient
        } else {
            0
        };
        base + replica + edge_state + 3 * w.param_bytes()
    }

    /// Per-epoch seconds, or OOM on a node.
    pub fn epoch_time(&self, w: &Workload<'_>) -> Result<f64, SimError> {
        let need = self.per_node_bytes(w);
        if need > self.cluster.node_memory {
            return Err(SimError::OutOfMemory {
                device: format!("CPU node (of {})", self.cluster.num_nodes),
                label: "full-graph training data + replicas".into(),
                requested: need,
                in_use: 0,
                capacity: self.cluster.node_memory,
            });
        }
        let ds = w.dataset;
        let (v, e) = (ds.num_vertices() as f64, ds.num_edges() as f64);
        // Shared-nothing CPU clusters scale poorly for full-graph GNN
        // epochs (bulk-synchronous layers, stragglers, remote aggregation
        // stalls): DistGNN's own evaluation shows well under half of ideal
        // scaling at 16 nodes, which we model with ~0.45 efficiency beyond
        // the first node.
        let nodes = if self.cluster.num_nodes > 1 {
            1.0 + 0.45 * (self.cluster.num_nodes as f64 - 1.0)
        } else {
            1.0
        };
        let flops = w.epoch_flops(v, e, v, false);
        // Dense work at CPU FLOPs; irregular edge work is memory-bandwidth
        // bound on CPUs (the gather/scatter touches `flops.edge` elements
        // a couple of times).
        let compute = flops.dense / (self.cluster.node_flops * nodes)
            + (flops.edge * 8.0) / (self.cluster.node_mem_bw * nodes);
        // Cluster: replica representations cross the network twice per
        // layer (forward values, backward gradients).
        let comm = if self.cluster.num_nodes > 1 {
            let dims = w.dims();
            let replica_rows = (self.alpha - 1.0).max(0.0) * v;
            let bytes: f64 = dims[..w.layers]
                .iter()
                .map(|&d| 2.0 * replica_rows * (d * F32) as f64)
                .sum();
            bytes / (self.cluster.network_bw * nodes)
        } else {
            0.0
        };
        // GAT's per-edge softmax/attention is markedly worse on CPUs (the
        // paper measures ~2× larger GCN→GAT gaps on DistGNN than on GPUs).
        let model_penalty = if w.kind == ModelKind::Gat { 2.0 } else { 1.0 };
        Ok((compute + comm) * model_penalty)
    }

    /// The annotated execution schedule of one epoch, for the
    /// happens-before checker. There is no GPU: cluster nodes appear as
    /// logical *streams* of the host device, each aggregating its own
    /// partition of every layer into `h^{l+1}` (disjoint `Part` regions),
    /// with replica representations crossing the network between layers
    /// and a bulk-synchronous barrier closing each one.
    pub fn epoch_schedule(&self, w: &Workload<'_>) -> Result<Trace, SimError> {
        self.epoch_time(w)?;
        let nodes = self.cluster.num_nodes;
        let dims = w.dims();
        let v = w.dataset.num_vertices();
        let mut t = Trace::unbounded();
        let stream_of = |s: usize| (s & 0xFF) as u8;
        let rep = |l: usize| ResourceId::Rep { layer: l as u32 };
        let grad = |l: usize| ResourceId::Grad { layer: l as u32 };
        let barrier = |t: &mut Trace, scope| {
            t.record(Event::new(
                EventKind::Barrier(scope),
                Device::Host,
                0,
                0.0,
                0.0,
            ));
        };
        for l in 0..w.layers {
            for s in 0..nodes {
                if nodes > 1 {
                    // Replica exchange: this node receives the layer-l rows
                    // of vertices replicated onto it.
                    t.record(
                        Event::new(
                            EventKind::D2D,
                            Device::Host,
                            (v / nodes) * dims[l] * F32,
                            0.0,
                            0.0,
                        )
                        .on_stream(stream_of(s))
                        .with_accesses(vec![Access::read(rep(l), Region::All)]),
                    );
                }
                t.record(
                    Event::new(EventKind::CpuCompute, Device::Host, 0, 0.0, 0.0)
                        .on_stream(stream_of(s))
                        .with_accesses(vec![
                            Access::read(rep(l), Region::All),
                            Access::write(rep(l + 1), Region::Part(s as u32)),
                        ]),
                );
            }
            barrier(&mut t, BarrierScope::Batch);
        }
        // Downstream loss on node 0, then bulk-synchronous backward.
        t.record(
            Event::new(EventKind::CpuCompute, Device::Host, 0, 0.0, 0.0).with_accesses(vec![
                Access::read(rep(w.layers), Region::All),
                Access::write(grad(w.layers), Region::All),
            ]),
        );
        barrier(&mut t, BarrierScope::Batch);
        for l in (0..w.layers).rev() {
            for s in 0..nodes {
                t.record(
                    Event::new(EventKind::CpuCompute, Device::Host, 0, 0.0, 0.0)
                        .on_stream(stream_of(s))
                        .with_accesses(vec![
                            Access::read(rep(l), Region::All),
                            Access::read(grad(l + 1), Region::All),
                            Access::accum(grad(l), Region::All),
                        ]),
                );
            }
            barrier(&mut t, BarrierScope::Batch);
        }
        barrier(&mut t, BarrierScope::Epoch);
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_datasets::{load, DatasetKey};
    use hongtu_sim::MachineConfig;
    use hongtu_tensor::SeededRng;

    fn rdt() -> hongtu_datasets::Dataset {
        load(DatasetKey::Rdt, &mut SeededRng::new(1))
    }

    #[test]
    fn cpu_is_order_of_magnitude_slower_than_gpu() {
        let ds = rdt();
        let w = Workload::new(&ds, ModelKind::Gcn, 16, 2);
        let cpu = CpuSystem::new(
            CpuSystemKind::SingleNode,
            CpuClusterConfig::scaled(1, 1 << 34),
            &ds,
        );
        let gpu = super::super::SingleGpuFullGraph::new(MachineConfig::scaled(1, 1 << 30));
        let tc = cpu.epoch_time(&w).unwrap();
        let tg = gpu.epoch_time(&w).unwrap();
        assert!(tc > 8.0 * tg, "CPU {tc} vs GPU {tg}");
    }

    #[test]
    fn gat_penalty_is_larger_on_cpu() {
        let ds = rdt();
        let cpu = CpuSystem::new(
            CpuSystemKind::SingleNode,
            CpuClusterConfig::scaled(1, 1 << 34),
            &ds,
        );
        let gcn = cpu
            .epoch_time(&Workload::new(&ds, ModelKind::Gcn, 16, 2))
            .unwrap();
        let gat = cpu
            .epoch_time(&Workload::new(&ds, ModelKind::Gat, 16, 2))
            .unwrap();
        assert!(gat > gcn * 2.0, "GAT {gat} vs GCN {gcn}");
    }

    #[test]
    fn cluster_alpha_exceeds_one() {
        let ds = load(DatasetKey::Fds, &mut SeededRng::new(2));
        let sys = CpuSystem::new(
            CpuSystemKind::Cluster,
            CpuClusterConfig::scaled(16, 1 << 34),
            &ds,
        );
        assert!(sys.alpha() > 1.5, "cluster α {}", sys.alpha());
    }

    #[test]
    fn cluster_ooms_on_gat_with_tight_nodes() {
        let ds = load(DatasetKey::Opr, &mut SeededRng::new(3));
        let sys = CpuSystem::new(
            CpuSystemKind::Cluster,
            CpuClusterConfig::scaled(16, 3 << 20),
            &ds,
        );
        let gat = sys.epoch_time(&Workload::new(&ds, ModelKind::Gat, 32, 3));
        assert!(matches!(gat, Err(SimError::OutOfMemory { .. })));
        // With much larger nodes, it fits.
        let big = CpuSystem::new(
            CpuSystemKind::Cluster,
            CpuClusterConfig::scaled(16, 1 << 34),
            &ds,
        );
        assert!(big
            .epoch_time(&Workload::new(&ds, ModelKind::Gat, 32, 3))
            .is_ok());
    }

    #[test]
    fn epoch_schedule_certifies_clean_single_node_and_cluster() {
        let ds = rdt();
        let w = Workload::new(&ds, ModelKind::Gcn, 16, 2);
        for (kind, nodes) in [(CpuSystemKind::SingleNode, 1), (CpuSystemKind::Cluster, 4)] {
            let sys = CpuSystem::new(kind, CpuClusterConfig::scaled(nodes, 1 << 34), &ds);
            let trace = sys.epoch_schedule(&w).unwrap();
            assert!(!trace.is_empty());
            let report = hongtu_verify::verify_trace(&trace);
            assert!(report.is_ok(), "{kind:?}: {}", report.render());
        }
    }

    #[test]
    fn more_nodes_are_faster_but_replicate_more() {
        let ds = load(DatasetKey::It, &mut SeededRng::new(4));
        let w = Workload::new(&ds, ModelKind::Gcn, 32, 2);
        let one = CpuSystem::new(
            CpuSystemKind::SingleNode,
            CpuClusterConfig::scaled(1, 1 << 34),
            &ds,
        );
        let sixteen = CpuSystem::new(
            CpuSystemKind::Cluster,
            CpuClusterConfig::scaled(16, 1 << 34),
            &ds,
        );
        assert!(sixteen.alpha() > one.alpha());
        let t1 = one.epoch_time(&w).unwrap();
        let t16 = sixteen.epoch_time(&w).unwrap();
        assert!(t16 < t1, "16 nodes {t16} vs 1 node {t1}");
    }
}
