//! Comparator systems for the paper's evaluation (§7).
//!
//! These model the systems HongTu is compared against. Runtime numbers come
//! from the same analytic cost structure as the simulator (FLOPs over
//! device throughputs, bytes over link bandwidths), and out-of-memory
//! conditions come from exact footprint accounting against the configured
//! capacities — reproducing the OOM cells of Tables 5–7. The mini-batch
//! comparator ([`minibatch`]) additionally supports *real* sampled
//! training for the accuracy curves of Figure 8.

pub mod cpu;
pub mod minibatch;
pub mod multi_gpu_im;
pub mod partial;
pub mod single_gpu;

pub use cpu::{CpuSystem, CpuSystemKind};
pub use minibatch::MiniBatchSystem;
pub use multi_gpu_im::{InMemoryKind, MultiGpuInMemory};
pub use partial::{Limitation, NeutronStyle, RocStyle};
pub use single_gpu::SingleGpuFullGraph;

use hongtu_datasets::Dataset;
use hongtu_nn::{LayerFlops, ModelKind};

const F32: usize = std::mem::size_of::<f32>();

/// A (dataset, model) workload shared by all comparator systems.
#[derive(Clone, Copy)]
pub struct Workload<'a> {
    /// Input dataset.
    pub dataset: &'a Dataset,
    /// GNN architecture.
    pub kind: ModelKind,
    /// Hidden dimension.
    pub hidden: usize,
    /// Layer count.
    pub layers: usize,
}

impl<'a> Workload<'a> {
    /// Convenience constructor.
    pub fn new(dataset: &'a Dataset, kind: ModelKind, hidden: usize, layers: usize) -> Self {
        Workload {
            dataset,
            kind,
            hidden,
            layers,
        }
    }

    /// Layer dimension boundaries.
    pub fn dims(&self) -> Vec<usize> {
        self.dataset.model_dims(self.hidden, self.layers)
    }

    /// Whole-graph forward FLOPs of layer `l` with `v` destination
    /// vertices, `e` in-edges and `nbr` input rows (mirrors each layer's
    /// `forward_flops`).
    pub fn layer_flops(&self, l: usize, v: f64, e: f64, nbr: f64) -> LayerFlops {
        let dims = self.dims();
        let (d_in, d_out) = (dims[l] as f64, dims[l + 1] as f64);
        match self.kind {
            ModelKind::Gcn => LayerFlops {
                dense: 2.0 * v * d_in * d_out,
                edge: 2.0 * e * d_in,
            },
            ModelKind::Gat => LayerFlops {
                dense: 2.0 * nbr * d_in * d_out,
                edge: 6.0 * e * (2.0 * d_out + 8.0) + 2.0 * nbr * d_out,
            },
            ModelKind::Sage | ModelKind::CommNet => LayerFlops {
                dense: 4.0 * v * d_in * d_out,
                edge: 2.0 * e * d_in,
            },
            ModelKind::Gin => LayerFlops {
                dense: 2.0 * v * d_in * d_out,
                edge: e * d_in,
            },
            ModelKind::Ggnn => LayerFlops {
                dense: 2.0 * v * d_in * d_out * 2.0
                    + 2.0 * v * d_out * d_out * 6.0
                    + 10.0 * v * d_out,
                edge: e * d_in,
            },
        }
    }

    /// Whole-graph forward+backward FLOPs per epoch (backward ≈ 2×
    /// forward, plus the full re-forward when `recompute` is true).
    pub fn epoch_flops(&self, v: f64, e: f64, nbr: f64, recompute: bool) -> LayerFlops {
        let mut total = LayerFlops::default();
        for l in 0..self.layers {
            let f = self.layer_flops(l, v, e, nbr);
            let factor = if recompute { 4.0 } else { 3.0 };
            total = total.add(f.scale(factor));
        }
        total
    }

    /// Intermediate-data bytes of layer `l` for `v` destinations / `e`
    /// edges / `nbr` input rows (mirrors each layer's
    /// `intermediate_bytes`).
    pub fn layer_intermediate_bytes(&self, l: usize, v: usize, e: usize, nbr: usize) -> usize {
        let dims = self.dims();
        let (d_in, d_out) = (dims[l], dims[l + 1]);
        match self.kind {
            ModelKind::Gcn | ModelKind::Gin => v * (d_in + d_out) * F32,
            ModelKind::Gat => (nbr * d_out + 2 * e + v * d_out) * F32,
            ModelKind::Sage | ModelKind::CommNet => v * (2 * d_in + d_out) * F32,
            ModelKind::Ggnn => v * (2 * d_in + 6 * d_out) * F32,
        }
    }

    /// Total intermediate bytes across all layers (what an in-memory
    /// system must keep resident between forward and backward).
    pub fn total_intermediate_bytes(&self, v: usize, e: usize, nbr: usize) -> usize {
        (0..self.layers)
            .map(|l| self.layer_intermediate_bytes(l, v, e, nbr))
            .sum()
    }

    /// Vertex-data bytes: representations and gradients of every layer.
    pub fn vertex_data_bytes(&self, v: usize) -> usize {
        2 * v * self.dims().iter().sum::<usize>() * F32
    }

    /// Model parameter bytes.
    pub fn param_bytes(&self) -> usize {
        let dims = self.dims();
        match self.kind {
            ModelKind::Ggnn => {
                // 2 input projections + 6 square gate matrices per layer.
                dims.windows(2)
                    .map(|w| 2 * w[0] * w[1] + 6 * w[1] * w[1])
                    .sum::<usize>()
                    * F32
            }
            ModelKind::Sage | ModelKind::CommNet => {
                dims.windows(2).map(|w| 2 * w[0] * w[1]).sum::<usize>() * F32
            }
            _ => dims.windows(2).map(|w| w[0] * w[1]).sum::<usize>() * F32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_datasets::{load, DatasetKey};
    use hongtu_tensor::SeededRng;

    fn ds() -> Dataset {
        load(DatasetKey::Rdt, &mut SeededRng::new(1))
    }

    #[test]
    fn flops_match_real_layers_on_whole_graph() {
        let ds = ds();
        let w = Workload::new(&ds, ModelKind::Gcn, 16, 2);
        let chunk = hongtu_nn::model::whole_graph_chunk(&ds.graph);
        let mut rng = SeededRng::new(2);
        let model = hongtu_nn::GnnModel::new(ModelKind::Gcn, &w.dims(), &mut rng);
        let (v, e, nbr) = (
            chunk.num_dests() as f64,
            chunk.num_edges() as f64,
            chunk.num_neighbors() as f64,
        );
        for l in 0..2 {
            let analytic = w.layer_flops(l, v, e, nbr);
            let real = model.layer(l).forward_flops(&chunk);
            assert_eq!(analytic, real, "layer {l}");
        }
    }

    #[test]
    fn intermediate_bytes_match_real_layers() {
        let ds = ds();
        let chunk = hongtu_nn::model::whole_graph_chunk(&ds.graph);
        for kind in [
            ModelKind::Gcn,
            ModelKind::Gat,
            ModelKind::Sage,
            ModelKind::Gin,
        ] {
            let w = Workload::new(&ds, kind, 16, 2);
            let mut rng = SeededRng::new(3);
            let model = hongtu_nn::GnnModel::new(kind, &w.dims(), &mut rng);
            for l in 0..2 {
                let analytic = w.layer_intermediate_bytes(
                    l,
                    chunk.num_dests(),
                    chunk.num_edges(),
                    chunk.num_neighbors(),
                );
                let real = model.layer(l).intermediate_bytes(&chunk);
                assert_eq!(analytic, real, "{} layer {l}", kind.name());
            }
        }
    }

    #[test]
    fn gat_epoch_flops_exceed_gcn() {
        let ds = ds();
        let v = ds.num_vertices() as f64;
        let e = ds.num_edges() as f64;
        let gcn = Workload::new(&ds, ModelKind::Gcn, 16, 2).epoch_flops(v, e, v, true);
        let gat = Workload::new(&ds, ModelKind::Gat, 16, 2).epoch_flops(v, e, v, true);
        assert!(gat.edge > gcn.edge);
    }

    #[test]
    fn param_bytes_counts_sage_double() {
        let ds = ds();
        let gcn = Workload::new(&ds, ModelKind::Gcn, 16, 2).param_bytes();
        let sage = Workload::new(&ds, ModelKind::Sage, 16, 2).param_bytes();
        assert_eq!(sage, 2 * gcn);
    }
}
