//! Multi-GPU in-memory comparators: "Sancus" and HongTu-IM (Tables 5–6).
//!
//! Both keep all training data resident across the GPUs (vertex data and
//! intermediates partitioned; neighbor replicas buffered); neither touches
//! host memory during an epoch. They differ in how remote neighbor
//! representations move:
//!
//! - **Sancus** broadcasts each partition's representations to every other
//!   GPU per layer (its staleness machinery decides *when*, not *what*;
//!   at steady state every GPU holds a full replica);
//! - **HongTu-IM** (this repo's in-memory mode) fetches only the remote
//!   neighbors each partition actually needs — the same deduplicated
//!   access pattern as the offloading engine, minus the host trips.

use super::Workload;
use hongtu_graph::VertexId;
use hongtu_partition::multilevel::metis_like;
use hongtu_sim::{
    Access, BarrierScope, Device, Event, EventKind, MachineConfig, Region, ResourceId, SimError,
    Trace,
};

const F32: usize = std::mem::size_of::<f32>();

/// Which in-memory communication scheme to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InMemoryKind {
    /// Broadcast-everything (Sancus-like).
    Sancus,
    /// Fetch-what-you-need (HongTu-IM).
    HongTuIm,
}

/// Per-partition statistics computed once per dataset.
#[derive(Debug, Clone)]
struct PartitionStats {
    /// Owned vertices per partition.
    owned: Vec<usize>,
    /// In-edges per partition.
    edges: Vec<usize>,
    /// Distinct remote in-neighbors per partition.
    remote: Vec<usize>,
}

/// The multi-GPU in-memory system.
pub struct MultiGpuInMemory {
    /// Communication scheme.
    pub kind: InMemoryKind,
    /// Platform.
    pub machine: MachineConfig,
    stats: PartitionStats,
}

impl MultiGpuInMemory {
    /// Partitions the workload's graph across the machine's GPUs and
    /// precomputes per-partition statistics.
    pub fn new(
        kind: InMemoryKind,
        machine: MachineConfig,
        dataset: &hongtu_datasets::Dataset,
        seed: u64,
    ) -> Self {
        let m = machine.num_gpus;
        let g = &dataset.graph;
        let assignment = metis_like(g, m, seed);
        // Per-partition scans are independent (each worker keeps its own
        // visited marks and writes one disjoint slot), so the result is
        // deterministic at any pool size.
        let mut per_part = vec![(0usize, 0usize, 0usize); m];
        hongtu_parallel::global().for_each_indexed(&mut per_part, |p, slot| {
            let (mut owned, mut edges, mut remote) = (0usize, 0usize, 0usize);
            let mut mark = vec![false; g.num_vertices()];
            for v in 0..g.num_vertices() {
                if assignment.partition_of[v] as usize != p {
                    continue;
                }
                owned += 1;
                edges += g.in_degree(v as VertexId);
                for &u in g.in_neighbors(v as VertexId) {
                    if assignment.partition_of[u as usize] as usize != p && !mark[u as usize] {
                        mark[u as usize] = true;
                        remote += 1;
                    }
                }
            }
            *slot = (owned, edges, remote);
        });
        MultiGpuInMemory {
            kind,
            machine,
            stats: PartitionStats {
                owned: per_part.iter().map(|s| s.0).collect(),
                edges: per_part.iter().map(|s| s.1).collect(),
                remote: per_part.iter().map(|s| s.2).collect(),
            },
        }
    }

    /// Resident bytes on the most-loaded GPU.
    pub fn max_gpu_bytes(&self, w: &Workload<'_>) -> usize {
        let dims = w.dims();
        let dim_sum: usize = dims.iter().sum();
        (0..self.machine.num_gpus)
            .map(|p| {
                let v = self.stats.owned[p];
                let e = self.stats.edges[p];
                let replicas = match self.kind {
                    // Full replica of every other partition's vertices.
                    InMemoryKind::Sancus => w.dataset.num_vertices() - v,
                    InMemoryKind::HongTuIm => self.stats.remote[p],
                };
                let nbr_rows = v + replicas;
                // Topology share + owned vertex data (reps + grads, every
                // layer) + replica buffers (reps of every layer) +
                // intermediates + params.
                e * 12
                    + w.vertex_data_bytes(v)
                    + replicas * dim_sum * F32
                    + w.total_intermediate_bytes(v, e, nbr_rows)
                    + 3 * w.param_bytes()
            })
            .max()
            .unwrap_or(0)
    }

    /// Per-epoch seconds, or OOM on the most-loaded GPU.
    pub fn epoch_time(&self, w: &Workload<'_>) -> Result<f64, SimError> {
        let need = self.max_gpu_bytes(w);
        if need > self.machine.gpu_memory {
            return Err(SimError::OutOfMemory {
                device: "GPU (max over partitions)".into(),
                label: "in-memory training data".into(),
                requested: need,
                in_use: 0,
                capacity: self.machine.gpu_memory,
            });
        }
        let m = self.machine.num_gpus;
        let dims = w.dims();
        // Critical path: the slowest GPU per epoch.
        let mut worst: f64 = 0.0;
        for p in 0..m {
            let v = self.stats.owned[p] as f64;
            let e = self.stats.edges[p] as f64;
            let replicas = match self.kind {
                InMemoryKind::Sancus => (w.dataset.num_vertices() - self.stats.owned[p]) as f64,
                InMemoryKind::HongTuIm => self.stats.remote[p] as f64,
            };
            let nbr = v + replicas;
            let flops = w.epoch_flops(v, e, nbr, false);
            let compute = flops.dense / self.machine.gpu_dense_flops
                + flops.edge / self.machine.gpu_edge_flops;
            // Per layer: receive replica representations (forward) and send
            // the gradients back (backward).
            let comm_bytes: f64 = dims[..w.layers]
                .iter()
                .map(|&d| 2.0 * replicas * (d * F32) as f64)
                .sum();
            let comm = comm_bytes / self.machine.nvlink_bw;
            worst = worst.max(compute + comm);
        }
        Ok(worst)
    }

    /// The annotated execution schedule of one epoch, for the
    /// happens-before checker. Forward layers alternate a replica
    /// exchange (Sancus broadcasts everything; HongTu-IM fetches the
    /// needed remote neighbors) with partition-local compute, each closed
    /// by a barrier; backward layers accumulate gradients into each
    /// owner's buffer (local compute + remote pushes commute) before the
    /// owner applies them.
    pub fn epoch_schedule(&self, w: &Workload<'_>) -> Result<Trace, SimError> {
        self.epoch_time(w)?;
        let m = self.machine.num_gpus;
        let dims = w.dims();
        let mut t = Trace::unbounded();
        let rep = |p: usize| ResourceId::DevRep { gpu: p as u32 };
        let grad = |p: usize| ResourceId::DevGrad { gpu: p as u32 };
        let barrier = |t: &mut Trace, scope| {
            t.record(Event::new(
                EventKind::Barrier(scope),
                Device::Host,
                0,
                0.0,
                0.0,
            ));
        };
        // One-time feature load: each GPU populates the owned region of
        // its resident representation buffer (generation 0 = layer 0).
        for p in 0..m {
            let bytes = self.stats.owned[p] * dims[0] * F32;
            t.record(
                Event::new(EventKind::H2D, Device::Gpu(p as u32), bytes, 0.0, 0.0).with_accesses(
                    vec![
                        Access::read(ResourceId::Rep { layer: 0 }, Region::All),
                        Access::write(rep(p), Region::Owned).with_gen(0),
                    ],
                ),
            );
        }
        barrier(&mut t, BarrierScope::Batch);
        for l in 0..w.layers {
            // Replica exchange: every GPU pulls the remote layer-l rows it
            // needs from their owners' buffers.
            for p in 0..m {
                let replicas = match self.kind {
                    InMemoryKind::Sancus => w.dataset.num_vertices() - self.stats.owned[p],
                    InMemoryKind::HongTuIm => self.stats.remote[p],
                };
                let per_src = replicas.div_ceil(m.max(1));
                for k in 0..m {
                    if k == p || per_src == 0 {
                        continue;
                    }
                    t.record(
                        Event::new(
                            EventKind::D2D,
                            Device::Gpu(p as u32),
                            per_src * dims[l] * F32,
                            0.0,
                            0.0,
                        )
                        .with_accesses(vec![
                            Access::read(rep(k), Region::Owned).with_gen(l as u32),
                            Access::write(rep(p), Region::Fetched).with_gen(l as u32),
                        ]),
                    );
                }
            }
            barrier(&mut t, BarrierScope::Batch);
            // Partition-local aggregation + update of layer l.
            for p in 0..m {
                t.record(
                    Event::new(EventKind::GpuCompute, Device::Gpu(p as u32), 0, 0.0, 0.0)
                        .with_accesses(vec![
                            Access::read(rep(p), Region::All),
                            Access::write(rep(p), Region::Owned).with_gen(l as u32 + 1),
                        ]),
                );
            }
            barrier(&mut t, BarrierScope::Batch);
        }
        // Backward: per layer, local gradient compute accumulates into the
        // owner buffer while remote partitions push their contributions.
        for l in (0..w.layers).rev() {
            for p in 0..m {
                t.record(
                    Event::new(EventKind::GpuCompute, Device::Gpu(p as u32), 0, 0.0, 0.0)
                        .with_accesses(vec![
                            Access::read(rep(p), Region::All),
                            Access::accum(grad(p), Region::All),
                        ]),
                );
                for k in 0..m {
                    if k == p {
                        continue;
                    }
                    t.record(
                        Event::new(
                            EventKind::D2D,
                            Device::Gpu(p as u32),
                            dims[l] * F32,
                            0.0,
                            0.0,
                        )
                        .with_accesses(vec![Access::accum(grad(k), Region::All)]),
                    );
                }
            }
            barrier(&mut t, BarrierScope::Batch);
        }
        // Owners apply the fully-accumulated gradients.
        for p in 0..m {
            t.record(
                Event::new(EventKind::GpuCompute, Device::Gpu(p as u32), 0, 0.0, 0.0)
                    .with_accesses(vec![Access::read(grad(p), Region::All)]),
            );
        }
        barrier(&mut t, BarrierScope::Epoch);
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_datasets::{load, DatasetKey};
    use hongtu_nn::ModelKind;
    use hongtu_tensor::SeededRng;

    fn rdt() -> hongtu_datasets::Dataset {
        load(DatasetKey::Rdt, &mut SeededRng::new(1))
    }

    #[test]
    fn four_gpus_beat_one_gpu_compute() {
        let ds = rdt();
        let cfg = MachineConfig::scaled(4, 1 << 30);
        let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, cfg.clone(), &ds, 1);
        let w = Workload::new(&ds, ModelKind::Gcn, 16, 4);
        let t4 = im.epoch_time(&w).unwrap();
        let single = super::super::SingleGpuFullGraph::new(MachineConfig::scaled(1, 1 << 30));
        let t1 = single.epoch_time(&w).unwrap();
        assert!(t4 < t1, "4-GPU {t4} must beat 1-GPU {t1}");
    }

    #[test]
    fn hongtu_im_needs_no_more_memory_than_sancus() {
        let ds = rdt();
        let cfg = MachineConfig::scaled(4, 1 << 30);
        let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, cfg.clone(), &ds, 1);
        let sancus = MultiGpuInMemory::new(InMemoryKind::Sancus, cfg, &ds, 1);
        let w = Workload::new(&ds, ModelKind::Gcn, 16, 2);
        assert!(im.max_gpu_bytes(&w) <= sancus.max_gpu_bytes(&w));
    }

    #[test]
    fn hongtu_im_is_at_least_as_fast_as_sancus() {
        let ds = rdt();
        let cfg = MachineConfig::scaled(4, 1 << 30);
        let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, cfg.clone(), &ds, 1);
        let sancus = MultiGpuInMemory::new(InMemoryKind::Sancus, cfg, &ds, 1);
        let w = Workload::new(&ds, ModelKind::Gcn, 16, 3);
        let ti = im.epoch_time(&w).unwrap();
        let ts = sancus.epoch_time(&w).unwrap();
        assert!(ti <= ts, "IM {ti} vs Sancus {ts}");
    }

    #[test]
    fn ooms_on_large_graph_with_small_gpus() {
        let ds = load(DatasetKey::Fds, &mut SeededRng::new(2));
        let cfg = MachineConfig::scaled(4, 4 << 20);
        let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, cfg, &ds, 1);
        let w = Workload::new(&ds, ModelKind::Gcn, 32, 3);
        assert!(matches!(
            im.epoch_time(&w),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn epoch_schedule_certifies_clean_for_both_kinds() {
        let ds = rdt();
        let cfg = MachineConfig::scaled(4, 1 << 30);
        let w = Workload::new(&ds, ModelKind::Gcn, 16, 2);
        for kind in [InMemoryKind::Sancus, InMemoryKind::HongTuIm] {
            let im = MultiGpuInMemory::new(kind, cfg.clone(), &ds, 1);
            let trace = im.epoch_schedule(&w).unwrap();
            assert!(!trace.is_empty());
            let report = hongtu_verify::verify_trace(&trace);
            assert!(report.is_ok(), "{kind:?}: {}", report.render());
        }
    }

    #[test]
    fn partition_stats_cover_graph() {
        let ds = rdt();
        let cfg = MachineConfig::scaled(4, 1 << 30);
        let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, cfg, &ds, 1);
        assert_eq!(im.stats.owned.iter().sum::<usize>(), ds.num_vertices());
        assert_eq!(im.stats.edges.iter().sum::<usize>(), ds.num_edges());
    }
}
