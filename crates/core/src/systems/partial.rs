//! Partially-offloading comparators — the systems of the paper's §2.4
//! whose limitations motivate HongTu (Table 2's NeuGraph/NeutronStar and
//! ROC rows).
//!
//! - **NeuGraph/NeutronStar style**: 2-D partitioning streams *vertex*
//!   data chunk-by-chunk, but all **intermediate** data stays resident in
//!   GPU memory, and the 2-D split separates a vertex's neighbors across
//!   chunks — full-neighbor softmax models (GAT) cannot be trained
//!   chunk-at-a-time (Limitation 1, first half).
//! - **ROC style**: all **vertex** data stays resident in GPU memory,
//!   while intermediate tensors are swapped to the CPU at whole-graph
//!   granularity under a cost model — inefficient for edge-heavy models
//!   and impossible when a single intermediate tensor exceeds device
//!   memory (Limitation 1, second half).

use super::Workload;
use hongtu_nn::ModelKind;
use hongtu_sim::{
    Access, BarrierScope, Device, Event, EventKind, MachineConfig, Region, ResourceId, SimError,
    Trace,
};

const F32: usize = std::mem::size_of::<f32>();

/// Why a partially-offloading system cannot run a workload.
#[derive(Debug)]
pub enum Limitation {
    /// Required resident data exceeds device memory.
    OutOfMemory(SimError),
    /// The system's partitioning cannot express the model's aggregation.
    Unsupported(String),
}

impl std::fmt::Display for Limitation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Limitation::OutOfMemory(e) => write!(f, "{e}"),
            Limitation::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

/// NeuGraph/NeutronStar-style partial offloading: streamed vertex data,
/// resident intermediates, 2-D partitioning.
pub struct NeutronStyle {
    /// Platform (all GPUs used).
    pub machine: MachineConfig,
}

impl NeutronStyle {
    /// A system on the given platform.
    pub fn new(machine: MachineConfig) -> Self {
        NeutronStyle { machine }
    }

    /// Per-epoch seconds, or the limitation that stops the run.
    pub fn epoch_time(&self, w: &Workload<'_>) -> Result<f64, Limitation> {
        if w.kind == ModelKind::Gat {
            return Err(Limitation::Unsupported(
                "2-D partitioning splits a vertex's neighbor set across chunks; \
                 GAT's per-neighbor-set softmax needs all of them at once"
                    .into(),
            ));
        }
        let ds = w.dataset;
        let m = self.machine.num_gpus;
        let (v, e) = (ds.num_vertices(), ds.num_edges());
        // All intermediates resident, per GPU.
        let resident = w.total_intermediate_bytes(v, e, v) / m
            + ds.graph.topology_bytes() / m
            + 3 * w.param_bytes();
        if resident > self.machine.gpu_memory {
            return Err(Limitation::OutOfMemory(SimError::OutOfMemory {
                device: "GPU (NeuGraph/NeutronStar-style)".into(),
                label: "resident intermediate data".into(),
                requested: resident,
                in_use: 0,
                capacity: self.machine.gpu_memory,
            }));
        }
        // Vertex data streamed per 2-D chunk with full neighbor-replica
        // amplification (no deduplication; paper Limitation 2). The 2-D
        // grid uses m × m chunks.
        let dims = w.dims();
        let alpha = 1.0 + (m as f64).ln(); // coarse 2-D replication growth
        let streamed: f64 = dims
            .iter()
            .map(|&d| 2.0 * alpha * v as f64 * (d * F32) as f64)
            .sum();
        let flops = w.epoch_flops(v as f64, e as f64, v as f64, false);
        let compute =
            flops.dense / self.machine.gpu_dense_flops + flops.edge / self.machine.gpu_edge_flops;
        Ok(compute / m as f64 + streamed / (self.machine.pcie_bw * m as f64))
    }

    /// The annotated execution schedule of one epoch, for the
    /// happens-before checker. Vertex data streams host→GPU per layer
    /// chunk (no deduplication — every GPU loads its full 2-D neighbor
    /// slice), intermediates stay resident, and layer results go back to
    /// the host store per-partition.
    pub fn epoch_schedule(&self, w: &Workload<'_>) -> Result<Trace, Limitation> {
        self.epoch_time(w)?;
        let m = self.machine.num_gpus;
        let dims = w.dims();
        let v = w.dataset.num_vertices();
        let mut t = Trace::unbounded();
        let rep = |l: usize| ResourceId::Rep { layer: l as u32 };
        let grad = |l: usize| ResourceId::Grad { layer: l as u32 };
        let dev = |g: usize| ResourceId::DevRep { gpu: g as u32 };
        let barrier = |t: &mut Trace, scope| {
            t.record(Event::new(
                EventKind::Barrier(scope),
                Device::Host,
                0,
                0.0,
                0.0,
            ));
        };
        for l in 0..w.layers {
            for g in 0..m {
                let bytes = (v / m) * dims[l] * F32;
                t.record(
                    Event::new(EventKind::H2D, Device::Gpu(g as u32), bytes, 0.0, 0.0)
                        .with_accesses(vec![
                            Access::read(rep(l), Region::All),
                            Access::write(dev(g), Region::All).with_gen(l as u32),
                        ]),
                );
                t.record(
                    Event::new(EventKind::GpuCompute, Device::Gpu(g as u32), 0, 0.0, 0.0)
                        .with_accesses(vec![Access::read(dev(g), Region::All).with_gen(l as u32)]),
                );
                t.record(
                    Event::new(EventKind::D2H, Device::Gpu(g as u32), bytes, 0.0, 0.0)
                        .with_accesses(vec![Access::write(rep(l + 1), Region::Part(g as u32))]),
                );
            }
            barrier(&mut t, BarrierScope::Batch);
        }
        t.record(
            Event::new(EventKind::GpuCompute, Device::Gpu(0), 0, 0.0, 0.0).with_accesses(vec![
                Access::read(rep(w.layers), Region::All),
                Access::write(grad(w.layers), Region::All),
            ]),
        );
        barrier(&mut t, BarrierScope::Batch);
        for l in (0..w.layers).rev() {
            for g in 0..m {
                let bytes = (v / m) * dims[l + 1] * F32;
                t.record(
                    Event::new(EventKind::H2D, Device::Gpu(g as u32), bytes, 0.0, 0.0)
                        .with_accesses(vec![
                            Access::read(grad(l + 1), Region::All),
                            Access::read(rep(l), Region::All),
                        ]),
                );
                t.record(Event::new(
                    EventKind::GpuCompute,
                    Device::Gpu(g as u32),
                    0,
                    0.0,
                    0.0,
                ));
                t.record(
                    Event::new(EventKind::D2H, Device::Gpu(g as u32), bytes, 0.0, 0.0)
                        .with_accesses(vec![Access::accum(grad(l), Region::All)]),
                );
            }
            barrier(&mut t, BarrierScope::Batch);
        }
        barrier(&mut t, BarrierScope::Epoch);
        Ok(t)
    }
}

/// ROC-style partial offloading: resident vertex data, swapped
/// intermediates at whole-graph granularity.
pub struct RocStyle {
    /// Platform (all GPUs used).
    pub machine: MachineConfig,
}

impl RocStyle {
    /// A system on the given platform.
    pub fn new(machine: MachineConfig) -> Self {
        RocStyle { machine }
    }

    /// Per-epoch seconds, or the limitation that stops the run.
    pub fn epoch_time(&self, w: &Workload<'_>) -> Result<f64, Limitation> {
        let ds = w.dataset;
        let m = self.machine.num_gpus;
        let (v, e) = (ds.num_vertices(), ds.num_edges());
        // Vertex data must be fully resident (partitioned across GPUs).
        let vertex_share =
            w.vertex_data_bytes(v) / m + ds.graph.topology_bytes() / m + 3 * w.param_bytes();
        if vertex_share > self.machine.gpu_memory {
            return Err(Limitation::OutOfMemory(SimError::OutOfMemory {
                device: "GPU (ROC-style)".into(),
                label: "resident vertex data".into(),
                requested: vertex_share,
                in_use: 0,
                capacity: self.machine.gpu_memory,
            }));
        }
        // Intermediates are swapped at whole-tensor granularity: the
        // largest single layer tensor must fit next to the vertex data.
        let largest_tensor = (0..w.layers)
            .map(|l| w.layer_intermediate_bytes(l, v, e, v) / m)
            .max()
            .unwrap_or(0);
        if vertex_share + largest_tensor > self.machine.gpu_memory {
            return Err(Limitation::OutOfMemory(SimError::OutOfMemory {
                device: "GPU (ROC-style)".into(),
                label: "single whole-graph intermediate tensor".into(),
                requested: vertex_share + largest_tensor,
                in_use: 0,
                capacity: self.machine.gpu_memory,
            }));
        }
        // Tensors beyond the residual budget are swapped out and back.
        let budget = self.machine.gpu_memory - vertex_share;
        let total_inter = w.total_intermediate_bytes(v, e, v) / m;
        let swapped = total_inter.saturating_sub(budget);
        let flops = w.epoch_flops(v as f64, e as f64, v as f64, false);
        let compute =
            flops.dense / self.machine.gpu_dense_flops + flops.edge / self.machine.gpu_edge_flops;
        Ok(compute / m as f64 + (2.0 * swapped as f64) / self.machine.pcie_bw)
    }

    /// The annotated execution schedule of one epoch, for the
    /// happens-before checker. Vertex data is loaded once and stays
    /// resident; per-layer intermediate tensors are checkpointed to the
    /// host at whole-graph granularity on the way forward and reloaded on
    /// the way back — the same store/reload pattern HongTu's hybrid
    /// strategy applies per chunk.
    pub fn epoch_schedule(&self, w: &Workload<'_>) -> Result<Trace, Limitation> {
        self.epoch_time(w)?;
        let m = self.machine.num_gpus;
        let dims = w.dims();
        let v = w.dataset.num_vertices();
        let (ve, ee) = (v, w.dataset.num_edges());
        let mut t = Trace::unbounded();
        let dev = |g: usize| ResourceId::DevRep { gpu: g as u32 };
        let dgrad = |g: usize| ResourceId::DevGrad { gpu: g as u32 };
        let swap = |l: usize, g: usize| ResourceId::AggCache {
            layer: l as u32,
            gpu: g as u32,
            chunk: 0,
        };
        let barrier = |t: &mut Trace, scope| {
            t.record(Event::new(
                EventKind::Barrier(scope),
                Device::Host,
                0,
                0.0,
                0.0,
            ));
        };
        // One-time resident vertex-data load.
        for g in 0..m {
            t.record(
                Event::new(
                    EventKind::H2D,
                    Device::Gpu(g as u32),
                    (v / m) * dims[0] * F32,
                    0.0,
                    0.0,
                )
                .with_accesses(vec![
                    Access::read(ResourceId::Rep { layer: 0 }, Region::All),
                    Access::write(dev(g), Region::All).with_gen(0),
                ]),
            );
        }
        barrier(&mut t, BarrierScope::Batch);
        for l in 0..w.layers {
            for g in 0..m {
                t.record(
                    Event::new(EventKind::GpuCompute, Device::Gpu(g as u32), 0, 0.0, 0.0)
                        .with_accesses(vec![
                            Access::read(dev(g), Region::All),
                            Access::write(dev(g), Region::All).with_gen(l as u32 + 1),
                        ]),
                );
                // Whole-tensor intermediate swap-out under the cost model.
                let bytes = w.layer_intermediate_bytes(l, ve, ee, ve) / m;
                t.record(
                    Event::new(EventKind::D2H, Device::Gpu(g as u32), bytes, 0.0, 0.0)
                        .with_accesses(vec![Access::write(swap(l, g), Region::All)]),
                );
            }
            barrier(&mut t, BarrierScope::Batch);
        }
        for g in 0..m {
            t.record(
                Event::new(EventKind::GpuCompute, Device::Gpu(g as u32), 0, 0.0, 0.0)
                    .with_accesses(vec![
                        Access::read(dev(g), Region::All),
                        Access::write(dgrad(g), Region::All),
                    ]),
            );
        }
        barrier(&mut t, BarrierScope::Batch);
        for l in (0..w.layers).rev() {
            for g in 0..m {
                // Reload the layer's swapped intermediates, then run the
                // layer backward against the resident gradient state.
                let bytes = w.layer_intermediate_bytes(l, ve, ee, ve) / m;
                t.record(
                    Event::new(EventKind::H2D, Device::Gpu(g as u32), bytes, 0.0, 0.0)
                        .with_accesses(vec![Access::read(swap(l, g), Region::All)]),
                );
                t.record(
                    Event::new(EventKind::GpuCompute, Device::Gpu(g as u32), 0, 0.0, 0.0)
                        .with_accesses(vec![
                            Access::read(dev(g), Region::All),
                            Access::accum(dgrad(g), Region::All),
                        ]),
                );
            }
            barrier(&mut t, BarrierScope::Batch);
        }
        barrier(&mut t, BarrierScope::Epoch);
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_datasets::{load, DatasetKey};
    use hongtu_tensor::SeededRng;

    fn ds(key: DatasetKey) -> hongtu_datasets::Dataset {
        load(key, &mut SeededRng::new(1))
    }

    #[test]
    fn neutron_style_rejects_gat() {
        let d = ds(DatasetKey::Rdt);
        let sys = NeutronStyle::new(MachineConfig::scaled(4, 1 << 30));
        let err = sys
            .epoch_time(&Workload::new(&d, ModelKind::Gat, 32, 2))
            .unwrap_err();
        assert!(matches!(err, Limitation::Unsupported(_)), "{err}");
        assert!(err.to_string().contains("softmax"));
    }

    #[test]
    fn neutron_style_runs_gcn_on_small_graphs() {
        let d = ds(DatasetKey::Rdt);
        let sys = NeutronStyle::new(MachineConfig::scaled(4, 34 << 20));
        let t = sys
            .epoch_time(&Workload::new(&d, ModelKind::Gcn, 32, 2))
            .unwrap();
        assert!(t > 0.0);
    }

    #[test]
    fn neutron_style_ooms_on_resident_intermediates() {
        // Large graph: streamed vertex data would be fine, but the
        // resident intermediates blow the budget.
        let d = ds(DatasetKey::Opr);
        let sys = NeutronStyle::new(MachineConfig::scaled(4, 34 << 20));
        let err = sys
            .epoch_time(&Workload::new(&d, ModelKind::Gcn, 32, 4))
            .unwrap_err();
        assert!(matches!(err, Limitation::OutOfMemory(_)), "{err}");
    }

    #[test]
    fn roc_style_ooms_on_resident_vertex_data() {
        let d = ds(DatasetKey::Opr);
        let sys = RocStyle::new(MachineConfig::scaled(4, 34 << 20));
        let err = sys
            .epoch_time(&Workload::new(&d, ModelKind::Gcn, 32, 3))
            .unwrap_err();
        match err {
            Limitation::OutOfMemory(SimError::OutOfMemory { label, .. }) => {
                assert!(label.contains("vertex data"), "{label}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn roc_style_swaps_gat_intermediates_expensively() {
        // On the small graph with a small budget, ROC runs GAT but pays
        // heavy swap traffic relative to GCN.
        let d = ds(DatasetKey::Rdt);
        let sys = RocStyle::new(MachineConfig::scaled(4, 8 << 20));
        let gcn = sys
            .epoch_time(&Workload::new(&d, ModelKind::Gcn, 32, 4))
            .unwrap();
        let gat = sys
            .epoch_time(&Workload::new(&d, ModelKind::Gat, 32, 4))
            .unwrap();
        assert!(gat > 2.0 * gcn, "GAT {gat} vs GCN {gcn}");
    }

    #[test]
    fn epoch_schedules_certify_clean() {
        let d = ds(DatasetKey::Rdt);
        let machine = MachineConfig::scaled(4, 1 << 30);
        let w = Workload::new(&d, ModelKind::Gcn, 16, 2);
        let nt = NeutronStyle::new(machine.clone())
            .epoch_schedule(&w)
            .unwrap();
        assert!(!nt.is_empty());
        let report = hongtu_verify::verify_trace(&nt);
        assert!(report.is_ok(), "neutron: {}", report.render());
        let roc = RocStyle::new(machine).epoch_schedule(&w).unwrap();
        assert!(!roc.is_empty());
        let report = hongtu_verify::verify_trace(&roc);
        assert!(report.is_ok(), "roc: {}", report.render());
    }

    #[test]
    fn epoch_schedule_inherits_limitations() {
        let d = ds(DatasetKey::Rdt);
        let sys = NeutronStyle::new(MachineConfig::scaled(4, 1 << 30));
        let err = sys
            .epoch_schedule(&Workload::new(&d, ModelKind::Gat, 32, 2))
            .unwrap_err();
        assert!(matches!(err, Limitation::Unsupported(_)));
    }

    #[test]
    fn hongtu_outlives_both_partial_systems() {
        // The motivating comparison: on the largest proxy both partial
        // systems fail while HongTu trains (at the calibrated 34 MB/GPU
        // budget). OPR's vertex count sinks NeuGraph-style resident
        // intermediates and ROC-style resident vertex data alike.
        let d = ds(DatasetKey::Opr);
        let machine = MachineConfig::scaled(4, 34 << 20);
        let w = Workload::new(&d, ModelKind::Gcn, 32, 3);
        assert!(NeutronStyle::new(machine.clone()).epoch_time(&w).is_err());
        assert!(RocStyle::new(machine.clone()).epoch_time(&w).is_err());
        let mut engine = crate::HongTuEngine::new(
            &d,
            ModelKind::Gcn,
            32,
            3,
            32,
            crate::HongTuConfig::full(machine),
        )
        .expect("HongTu engine");
        assert!(engine.train_epoch().is_ok());
    }
}
