//! Shared command-line flag parsing for the HongTu binaries.
//!
//! Every CLI (`train`, `infer`, `verify-trace`, `verify-plan`, the bench
//! bins) historically carried its own copy of the flag-value parsers,
//! with drifting spellings (`--comm full` in one bin, `--comm p2pru` in
//! another). This module is the single home for those parsers: each
//! accepts the union of the spellings the bins used to accept, so no
//! existing invocation breaks.
//!
//! All parsers are `fn(&str) -> Result<T, String>` — the binaries decide
//! how to report errors (usage text, exit codes).

use crate::engine::{CommMode, ExecutionMode, MemoryStrategy, Mode, OverlapMode};
use hongtu_cache::{CachePolicy, DegreeRanked, FrequencyRanked, Off as CacheOff};
use hongtu_datasets::{all_keys, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_tensor::Matrix;

/// Parses one dataset key. Accepts the short key (`rdt`) and the real
/// dataset name (`reddit`).
pub fn parse_dataset(s: &str) -> Result<DatasetKey, String> {
    match s.to_ascii_lowercase().as_str() {
        "rdt" | "reddit" => Ok(DatasetKey::Rdt),
        "opt" | "products" => Ok(DatasetKey::Opt),
        "it" | "it-2004" => Ok(DatasetKey::It),
        "opr" | "papers" => Ok(DatasetKey::Opr),
        "fds" | "friendster" => Ok(DatasetKey::Fds),
        other => Err(format!(
            "unknown dataset {other:?} (want rdt|opt|it|opr|fds)"
        )),
    }
}

/// Parses a dataset selection that may be `all`.
pub fn parse_datasets(s: &str) -> Result<Vec<DatasetKey>, String> {
    if s.eq_ignore_ascii_case("all") {
        Ok(all_keys().to_vec())
    } else {
        parse_dataset(s)
            .map(|k| vec![k])
            .map_err(|e| e.replace("rdt|opt|it|opr|fds", "rdt|opt|it|opr|fds|all"))
    }
}

/// Parses a model kind.
pub fn parse_model(s: &str) -> Result<ModelKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "gcn" => Ok(ModelKind::Gcn),
        "gat" => Ok(ModelKind::Gat),
        "sage" => Ok(ModelKind::Sage),
        "gin" => Ok(ModelKind::Gin),
        "commnet" => Ok(ModelKind::CommNet),
        "ggnn" | "ggcn" => Ok(ModelKind::Ggnn),
        other => Err(format!(
            "unknown model {other:?} (want gcn|gat|sage|gin|commnet|ggnn)"
        )),
    }
}

/// Parses a communication mode. `full` and `p2p+ru` are aliases for
/// `p2pru`; `baseline` is an alias for `vanilla`.
pub fn parse_comm(s: &str) -> Result<CommMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "vanilla" | "baseline" => Ok(CommMode::Vanilla),
        "p2p" => Ok(CommMode::P2p),
        "p2pru" | "p2p+ru" | "full" => Ok(CommMode::P2pRu),
        other => Err(format!(
            "unknown comm mode {other:?} (want vanilla|p2p|p2pru|full)"
        )),
    }
}

/// Parses an intermediate-data memory strategy.
pub fn parse_memory(s: &str) -> Result<MemoryStrategy, String> {
    match s.to_ascii_lowercase().as_str() {
        "recompute" => Ok(MemoryStrategy::Recompute),
        "hybrid" => Ok(MemoryStrategy::Hybrid),
        other => Err(format!(
            "unknown memory strategy {other:?} (want recompute|hybrid)"
        )),
    }
}

/// Parses a host execution mode.
pub fn parse_exec(s: &str) -> Result<ExecutionMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "sequential" | "seq" => Ok(ExecutionMode::Sequential),
        "parallel" | "par" => Ok(ExecutionMode::Parallel),
        other => Err(format!(
            "unknown execution mode {other:?} (want sequential|parallel)"
        )),
    }
}

/// Parses a transfer/compute overlap mode.
pub fn parse_overlap(s: &str) -> Result<OverlapMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "off" => Ok(OverlapMode::Off),
        "doublebuffer" | "db" => Ok(OverlapMode::DoubleBuffer),
        other => Err(format!(
            "unknown overlap mode {other:?} (want off|doublebuffer)"
        )),
    }
}

/// Parses a hot-vertex cache policy selection into the trait object the
/// [`HongTuConfigBuilder::cache`](crate::engine::HongTuConfigBuilder::cache)
/// setter takes.
pub fn parse_cache(s: &str) -> Result<std::sync::Arc<dyn CachePolicy>, String> {
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" => Ok(std::sync::Arc::new(CacheOff)),
        "freq" | "frequency" => Ok(std::sync::Arc::new(FrequencyRanked)),
        "degree" | "deg" => Ok(std::sync::Arc::new(DegreeRanked)),
        other => Err(format!(
            "unknown cache policy {other:?} (want off|freq|degree)"
        )),
    }
}

/// Parses a session mode (training vs forward-only inference).
pub fn parse_mode(s: &str) -> Result<Mode, String> {
    match s.to_ascii_lowercase().as_str() {
        "train" => Ok(Mode::Train),
        "infer" | "inference" | "serve" => Ok(Mode::Infer),
        other => Err(format!("unknown mode {other:?} (want train|infer)")),
    }
}

/// Shared argv walker for the binaries' flag loops.
///
/// Every bin used to hand-roll the same `while let Some(flag) = it.next()`
/// loop with a local closure for pulling the flag's value token. This
/// wraps that loop: [`next_flag`](FlagParser::next_flag) yields raw flag
/// tokens, and the `value*` methods consume the following token with a
/// uniform `"--x requires a value"` error. Error *reporting* (usage
/// text, exit codes) stays with the caller, matching the rest of this
/// module.
pub struct FlagParser {
    args: std::vec::IntoIter<String>,
}

impl FlagParser {
    /// Walks `std::env::args()`, skipping the program name.
    pub fn from_env() -> Self {
        FlagParser {
            args: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
        }
    }

    /// Walks an explicit argv vector (tests, pre-collected args).
    pub fn new(argv: Vec<String>) -> Self {
        FlagParser {
            args: argv.into_iter(),
        }
    }

    /// Next flag token, or `None` when argv is exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        self.args.next()
    }

    /// Consumes the value token following `flag`.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.args
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))
    }

    /// Consumes and `str::parse`s the value token following `flag`.
    pub fn parse_value<T>(&mut self, flag: &str) -> Result<T, String>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        self.value(flag)?
            .parse()
            .map_err(|e| format!("{flag}: {e}"))
    }

    /// Consumes the value token following `flag` and feeds it through one
    /// of this module's `parse_*` helpers (or any compatible closure).
    pub fn value_with<T>(
        &mut self,
        flag: &str,
        parse: impl FnOnce(&str) -> Result<T, String>,
    ) -> Result<T, String> {
        parse(&self.value(flag)?)
    }
}

/// FNV-1a digest over a logits matrix's exact f32 bit patterns: two runs
/// print the same digest iff their logits are bitwise identical, which
/// is how the CLIs assert the determinism contract cheaply.
pub fn logits_digest(m: &Matrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &x in m.as_slice() {
        for b in x.to_bits().to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash ^= m.rows() as u64;
    hash = hash.wrapping_mul(PRIME);
    hash ^= m.cols() as u64;
    hash.wrapping_mul(PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_aliases_agree() {
        for s in ["p2pru", "p2p+ru", "full", "P2PRU"] {
            assert_eq!(parse_comm(s).unwrap(), CommMode::P2pRu, "{s}");
        }
        for s in ["vanilla", "baseline"] {
            assert_eq!(parse_comm(s).unwrap(), CommMode::Vanilla, "{s}");
        }
        assert!(parse_comm("nvlink").is_err());
    }

    #[test]
    fn datasets_all_expands() {
        assert_eq!(parse_datasets("all").unwrap(), all_keys().to_vec());
        assert_eq!(parse_datasets("reddit").unwrap(), vec![DatasetKey::Rdt]);
        assert!(parse_datasets("imagenet").is_err());
    }

    #[test]
    fn mode_and_exec_spellings() {
        assert_eq!(parse_mode("serve").unwrap(), Mode::Infer);
        assert_eq!(parse_mode("TRAIN").unwrap(), Mode::Train);
        assert!(parse_mode("eval").is_err());
        assert_eq!(parse_exec("par").unwrap(), ExecutionMode::Parallel);
        assert_eq!(parse_overlap("db").unwrap(), OverlapMode::DoubleBuffer);
    }

    #[test]
    fn cache_policy_spellings() {
        for (s, name, enabled) in [
            ("off", "off", false),
            ("none", "off", false),
            ("freq", "freq", true),
            ("FREQUENCY", "freq", true),
            ("degree", "degree", true),
            ("deg", "degree", true),
        ] {
            let p = parse_cache(s).unwrap();
            assert_eq!(p.name(), name, "{s}");
            assert_eq!(p.enabled(), enabled, "{s}");
        }
        assert!(parse_cache("lru").is_err());
    }

    #[test]
    fn flag_parser_walks_flags_and_values() {
        let argv: Vec<String> = ["--gpus", "4", "--comm", "full", "--measure"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut p = FlagParser::new(argv);
        assert_eq!(p.next_flag().as_deref(), Some("--gpus"));
        assert_eq!(p.parse_value::<usize>("--gpus").unwrap(), 4);
        assert_eq!(p.next_flag().as_deref(), Some("--comm"));
        assert_eq!(p.value_with("--comm", parse_comm).unwrap(), CommMode::P2pRu);
        assert_eq!(p.next_flag().as_deref(), Some("--measure"));
        assert_eq!(p.next_flag(), None);
        // A flag at the end of argv has no value token.
        let argv: Vec<String> = vec!["--seed".to_string()];
        let mut p = FlagParser::new(argv);
        p.next_flag();
        assert_eq!(
            p.parse_value::<u64>("--seed").unwrap_err(),
            "--seed requires a value"
        );
    }

    #[test]
    fn digest_separates_bitwise_differences() {
        let mut a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(3, 2);
        assert_eq!(logits_digest(&a), logits_digest(&b));
        // -0.0 == 0.0 under f32 comparison but differs bitwise: the
        // digest must see it.
        a.as_mut_slice()[0] = -0.0;
        assert_ne!(logits_digest(&a), logits_digest(&b));
        // Shape is part of the digest.
        assert_ne!(
            logits_digest(&Matrix::zeros(2, 3)),
            logits_digest(&Matrix::zeros(3, 2))
        );
    }
}
