//! Serving-path support: ≤ L-hop dependency cones over the chunk
//! topology.
//!
//! A vertex-subset logit query `Q` does not need a full-graph sweep: the
//! layer-`L` logits of `Q` depend only on the vertices within `L` hops
//! of `Q` (following in-edges). The executor's unit of work is a
//! *batch* — chunk `j` on every GPU runs between the same barriers — so
//! the pruned sweep is expressed batch-granularly: a [`ServeMask`] marks
//! which `(layer, batch)` steps must run, and the step functions skip
//! the rest.
//!
//! The mask is computed by walking the layers top-down over the
//! partition's chunk topology (no per-vertex BFS at serve time):
//!
//! ```text
//! needed[L]  = Q
//! active[l]  = { j | batch_of(v) = j for some v ∈ needed[l+1] }
//! needed[l]  = needed[l+1] ∪ ⋃_{j ∈ active[l], i < m} (V_ij ∪ N_ij)
//! ```
//!
//! Including the destination sets `V_ij` (not just the neighbor lists
//! `N_ij`) in the closure makes the mask *downward closed* —
//! `active[l] ⊇ active[l+1]` — which keeps the executor's layer-0
//! topology H2D covering every batch that is ever active, and gives the
//! simple correctness induction: every row an active chunk reads at
//! layer `l+1` was recomputed at layer `l`.
//!
//! The recurrence arithmetic itself lives in [`crate::cone`], shared
//! with the dual *upward-closed* delta-invalidation cone
//! ([`ServeMask::from_dirty`]) so query pruning and incremental
//! recompute can never diverge.

use crate::cone;
use hongtu_partition::TwoLevelPartition;
use hongtu_sim::TimeBuckets;
use hongtu_tensor::Matrix;

/// Which `(layer, batch)` steps a pruned forward sweep executes. All
/// `m` GPUs of batch `j` run or skip together, so the inter-GPU fetch
/// structure within an active batch is identical to a full sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeMask {
    /// `active[l][j]`: whether batch `j` runs at layer `l`.
    active: Vec<Vec<bool>>,
}

impl ServeMask {
    /// Computes the downward-closed union of the queried vertices'
    /// ≤ L-hop dependency cones, expressed as active batches per layer
    /// (module docs give the recurrence).
    ///
    /// # Panics
    ///
    /// Panics if any queried vertex id is out of range for the plan's
    /// graph, or if `vertices` is empty (an empty query has no cone and
    /// no meaningful sweep).
    pub fn from_queries(plan: &TwoLevelPartition, layers: usize, vertices: &[usize]) -> ServeMask {
        ServeMask {
            active: cone::downward_closed(plan, layers, vertices),
        }
    }

    /// Computes the upward-closed union of the dirty vertices' ≤ L-hop
    /// *out*-neighborhood cones — the set of `(layer, batch)` steps an
    /// incremental recompute must replay after a graph mutation
    /// invalidated those vertices' layer-1 rows ([`crate::cone`] gives
    /// the recurrence and the duality with the query cone).
    ///
    /// # Panics
    ///
    /// Panics if any dirty vertex id is out of range for the plan's
    /// graph, or if `dirty` is empty (a mutation with no dirty vertices
    /// has nothing to replay).
    pub fn from_dirty(plan: &TwoLevelPartition, layers: usize, dirty: &[usize]) -> ServeMask {
        ServeMask {
            active: cone::upward_closed(plan, layers, dirty),
        }
    }

    /// Whether batch `j` runs at layer `l`.
    #[inline]
    pub fn active(&self, l: usize, j: usize) -> bool {
        self.active[l][j]
    }

    /// Number of layers the mask covers.
    pub fn layers(&self) -> usize {
        self.active.len()
    }

    /// Number of batches per layer.
    pub fn batches(&self) -> usize {
        self.active.first().map_or(0, Vec::len)
    }

    /// Count of active `(layer, batch)` steps.
    pub fn active_steps(&self) -> usize {
        self.active
            .iter()
            .map(|l| l.iter().filter(|&&a| a).count())
            .sum()
    }

    /// Total `(layer, batch)` steps a full sweep would run.
    pub fn total_steps(&self) -> usize {
        self.layers() * self.batches()
    }

    /// The raw `active[l][j]` grid, for closure certification
    /// (`hongtu_verify::verify_cone`).
    pub fn grid(&self) -> &[Vec<bool>] {
        &self.active
    }
}

/// Result of one pruned serving sweep ([`Session::serve`]).
///
/// [`Session::serve`]: crate::Session::serve
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Logits of the queried vertices, one row per query vertex in
    /// query order — bitwise equal to the same rows of a full
    /// [`infer_epoch`](crate::Session::infer_epoch)'s logits.
    pub logits: Matrix,
    /// Simulated sweep time in seconds (critical path over GPUs).
    pub time: f64,
    /// Per-component simulated time/volume.
    pub buckets: TimeBuckets,
    /// High-water device memory across GPUs, in bytes.
    pub peak_gpu_bytes: usize,
    /// High-water host memory in bytes.
    pub peak_host_bytes: usize,
    /// `(layer, batch)` steps the pruned sweep executed.
    pub active_steps: usize,
    /// `(layer, batch)` steps a full sweep would have executed.
    pub total_steps: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::GraphBuilder;

    /// 8-vertex ring 0→1→…→7→0, 4 chunks of 2 on 1 partition: batch j
    /// owns {2j, 2j+1}, and the ≤1-hop cone of vertex 2j is
    /// {2j-1, 2j} — spanning batches j-1 and j.
    fn ring_plan() -> TwoLevelPartition {
        let mut b = GraphBuilder::new(8);
        for v in 0..8 {
            b.add_edge(v, (v + 1) % 8);
        }
        TwoLevelPartition::build(&b.build(), 1, 4, 7)
    }

    #[test]
    fn single_vertex_single_layer_cone() {
        let plan = ring_plan();
        // Find vertex 0's batch, then query it for one layer: only that
        // batch is active.
        let j0 = plan.all_chunks().find(|c| c.dests.contains(&0)).unwrap();
        let mask = ServeMask::from_queries(&plan, 1, &[0]);
        assert!(mask.active(0, j0.chunk));
        assert_eq!(mask.active_steps(), 1);
        assert_eq!(mask.total_steps(), 4);
    }

    #[test]
    fn mask_is_downward_closed() {
        let plan = ring_plan();
        let mask = ServeMask::from_queries(&plan, 3, &[3]);
        for l in 0..2 {
            for j in 0..4 {
                assert!(
                    !mask.active(l + 1, j) || mask.active(l, j),
                    "batch {j} active at layer {} but not {}",
                    l + 1,
                    l
                );
            }
        }
    }

    #[test]
    fn dirty_mask_is_upward_closed() {
        let plan = ring_plan();
        let mask = ServeMask::from_dirty(&plan, 3, &[3]);
        for l in 0..2 {
            for j in 0..4 {
                assert!(
                    !mask.active(l, j) || mask.active(l + 1, j),
                    "batch {j} active at layer {l} but not {}",
                    l + 1
                );
            }
        }
        assert!(mask.active_steps() >= 1);
    }

    #[test]
    fn full_query_activates_everything() {
        let plan = ring_plan();
        let all: Vec<usize> = (0..8).collect();
        let mask = ServeMask::from_queries(&plan, 2, &all);
        assert_eq!(mask.active_steps(), mask.total_steps());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_panics() {
        let plan = ring_plan();
        ServeMask::from_queries(&plan, 1, &[99]);
    }

    #[test]
    #[should_panic(expected = "empty query")]
    fn empty_query_panics() {
        let plan = ring_plan();
        ServeMask::from_queries(&plan, 1, &[]);
    }
}
