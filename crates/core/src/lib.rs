//! HongTu core: the memory-efficient training framework (paper §4), the
//! deduplicated communication framework (paper §5), and the comparator
//! systems used in the evaluation (§7).
//!
//! The execution engine runs *real* training numerics (via `hongtu-nn`)
//! while charging all data movement and compute to the hardware simulator
//! (`hongtu-sim`), so accuracy results are exact and performance results
//! follow the paper's cost structure.
//!
//! Module map:
//! - [`dedup`] — transition-set construction and the per-batch
//!   communication plan (Algorithms 2 & 3, §5.1–5.2); lives in
//!   `hongtu-partition`, re-exported here for back-compat;
//! - [`cost`] — the communication cost model (Equation 4);
//! - [`reorg`] — cost-guided partition reorganization (Algorithm 4, §5.3);
//! - [`buffers`] — in-place transition/neighbor buffer index planning
//!   (§6: stable slots for reused vertices, freed-slot insertion,
//!   merged-buffer deduplication); also re-exported from
//!   `hongtu-partition`;
//! - [`engine`] — the HongTu executor (Algorithm 1): partition-based
//!   training with recomputation-caching-hybrid intermediate data
//!   management and deduplicated communication;
//! - [`cone`] — the shared cone-recurrence arithmetic behind both the
//!   downward-closed query cone and the upward-closed delta cone;
//! - [`serve`] — ≤ L-hop dependency cones over the chunk topology: the
//!   per-batch activity mask [`Session::serve`] prunes its sweep with;
//! - `Session::apply_deltas` (in [`engine`]) — incremental cone-local
//!   recompute after graph mutations (`hongtu-delta` holds the typed
//!   mutation API and delta log);
//! - [`systems`] — comparator systems: single-GPU full-graph ("DGL"),
//!   multi-GPU in-memory ("Sancus" / HongTu-IM), single-node and
//!   distributed CPU ("DistGNN"), and sampled mini-batch ("DistDGL").

#![forbid(unsafe_code)]
// Indexed loops are deliberate: indices double as GPU/batch identifiers.
#![allow(clippy::needless_range_loop)]

pub mod cli;
pub mod cone;
pub mod cost;
pub mod engine;
pub mod reorg;
pub mod serve;
pub mod systems;

// The plan-construction modules moved to `hongtu-partition` so that the
// static verifier (`hongtu-verify`) can analyze plans without depending on
// this crate. `crate::dedup::...` paths keep working via these re-exports.
pub use hongtu_partition::{buffers, dedup};

pub use buffers::GpuBufferPlan;
pub use cost::{comm_cost, comm_cost_cached, CommVolumes};
pub use dedup::DedupPlan;
pub use engine::{
    CommMode, ConfigError, DeltaReport, EpochReport, ExecutionMode, HongTuConfig,
    HongTuConfigBuilder, HongTuEngine, InferReport, Inferencer, MemoryStrategy, Mode, OverlapMode,
    Plans, Session, StaticMemoryBound, Trainer, ValidationLevel,
};
// The hot-vertex cache subsystem (policies, plan, runtime journal) lives
// in `hongtu-cache`; re-exported here so downstream users configure it
// through the same crate that accepts the policy.
pub use hongtu_cache::{
    CachePlan, CachePolicy, CacheRuntime, DegreeRanked, FrequencyRanked, HitStats, Off as CacheOff,
};
pub use reorg::{reorganize, reorganize_guarded, reorganize_guarded_cached};
pub use serve::{ServeMask, ServeReport};
