//! The deduplicated-communication cost model (paper Equation 4):
//!
//! `C = V_+ru/T_hd + (V_ori − V_+p2p)/T_dd + (V_+p2p − V_+ru)/T_ru`
//!
//! where `T_hd`, `T_dd`, `T_ru` are the host↔GPU, inter-GPU, and intra-GPU
//! throughputs of the platform. The reorganization heuristic (Algorithm 4)
//! minimizes this quantity by redistributing chunks.

use crate::dedup::DedupPlan;
use hongtu_sim::MachineConfig;

/// The three communication volumes of §5.3, in vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommVolumes {
    /// `V_ori`: per-chunk full neighbor transfer.
    pub v_ori: usize,
    /// `V_+p2p`: after inter-GPU deduplication.
    pub v_p2p: usize,
    /// `V_+ru`: after inter-GPU deduplication and intra-GPU reuse.
    pub v_ru: usize,
}

impl CommVolumes {
    /// Extracts the volumes from a communication plan.
    pub fn from_plan(plan: &DedupPlan) -> Self {
        CommVolumes {
            v_ori: plan.v_ori(),
            v_p2p: plan.v_p2p(),
            v_ru: plan.v_ru(),
        }
    }

    /// Rows served by inter-GPU communication.
    pub fn inter_gpu(&self) -> usize {
        self.v_ori - self.v_p2p
    }

    /// Rows served by intra-GPU reuse.
    pub fn intra_gpu(&self) -> usize {
        self.v_p2p - self.v_ru
    }

    /// Fraction of the original host-GPU volume eliminated
    /// (paper §7.3 headline: 25%–71% on the three large graphs).
    pub fn h2d_reduction(&self) -> f64 {
        if self.v_ori == 0 {
            0.0
        } else {
            1.0 - self.v_ru as f64 / self.v_ori as f64
        }
    }
}

/// Evaluates Equation 4 in seconds for rows of `bytes_per_vertex` bytes.
pub fn comm_cost(v: CommVolumes, cfg: &MachineConfig, bytes_per_vertex: usize) -> f64 {
    comm_cost_cached(v, 0, cfg, bytes_per_vertex)
}

/// Equation 4 extended with the hot-vertex cache term: `cached_rows` of
/// the `V_+ru` host loads are served from resident HBM instead, moving
/// them from the `T_hd` (PCIe) term to the `T_ru` (HBM) term:
///
/// `C = (V_+ru − c)/T_hd + (V_ori − V_+p2p)/T_dd + (V_+p2p − V_+ru + c)/T_ru`
///
/// with `c = min(cached_rows, V_+ru)` — the cache can never serve more
/// than the scheduled host loads.
pub fn comm_cost_cached(
    v: CommVolumes,
    cached_rows: usize,
    cfg: &MachineConfig,
    bytes_per_vertex: usize,
) -> f64 {
    assert!(
        v.v_ori >= v.v_p2p && v.v_p2p >= v.v_ru,
        "volume ordering violated: {v:?}"
    );
    let c = cached_rows.min(v.v_ru);
    let b = bytes_per_vertex as f64;
    let t_hd = cfg.pcie_bw;
    let t_dd = cfg.nvlink_bw;
    let t_ru = cfg.hbm_bw;
    ((v.v_ru - c) as f64 * b) / t_hd
        + (v.inter_gpu() as f64 * b) / t_dd
        + ((v.intra_gpu() + c) as f64 * b) / t_ru
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_partition::TwoLevelPartition;
    use hongtu_tensor::SeededRng;

    fn volumes() -> CommVolumes {
        let mut rng = SeededRng::new(1);
        let g = hongtu_graph::generators::rmat(
            10,
            8000,
            hongtu_graph::generators::RmatParams::social(),
            &mut rng,
        );
        let p = TwoLevelPartition::build(&g, 4, 4, 1);
        CommVolumes::from_plan(&DedupPlan::build(&p))
    }

    #[test]
    fn reductions_are_consistent() {
        let v = volumes();
        assert_eq!(v.inter_gpu() + v.intra_gpu() + v.v_ru, v.v_ori);
        assert!(v.h2d_reduction() > 0.0 && v.h2d_reduction() < 1.0);
    }

    #[test]
    fn dedup_cost_beats_vanilla_cost() {
        let v = volumes();
        let cfg = MachineConfig::a100_4x();
        let dedup = comm_cost(v, &cfg, 128);
        let vanilla = comm_cost(
            CommVolumes {
                v_ori: v.v_ori,
                v_p2p: v.v_ori,
                v_ru: v.v_ori,
            },
            &cfg,
            128,
        );
        assert!(dedup < vanilla, "dedup {dedup} vs vanilla {vanilla}");
    }

    #[test]
    fn pcie_only_platform_still_benefits_from_reuse() {
        // §5.3: with T_dd == T_hd inter-GPU sharing gains nothing, but
        // intra-GPU reuse still reduces cost.
        let v = volumes();
        let cfg = MachineConfig::a100_4x().pcie_only();
        let with_ru = comm_cost(v, &cfg, 128);
        let no_ru = comm_cost(CommVolumes { v_ru: v.v_p2p, ..v }, &cfg, 128);
        assert!(with_ru < no_ru);
    }

    #[test]
    fn cost_scales_linearly_with_row_bytes() {
        let v = volumes();
        let cfg = MachineConfig::a100_4x();
        let c1 = comm_cost(v, &cfg, 64);
        let c2 = comm_cost(v, &cfg, 128);
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cache_term_monotonically_cuts_cost() {
        let v = volumes();
        let cfg = MachineConfig::a100_4x();
        let base = comm_cost(v, &cfg, 128);
        assert_eq!(comm_cost_cached(v, 0, &cfg, 128), base);
        let mut prev = base;
        for c in [v.v_ru / 4, v.v_ru / 2, v.v_ru] {
            let cost = comm_cost_cached(v, c, &cfg, 128);
            assert!(cost < prev, "cached {c} rows: {cost} !< {prev}");
            prev = cost;
        }
        // Clamped at V_+ru: extra claimed rows buy nothing.
        assert_eq!(
            comm_cost_cached(v, v.v_ru, &cfg, 128),
            comm_cost_cached(v, v.v_ru * 10, &cfg, 128)
        );
    }

    #[test]
    #[should_panic(expected = "volume ordering violated")]
    fn rejects_inconsistent_volumes() {
        let cfg = MachineConfig::a100_4x();
        let _ = comm_cost(
            CommVolumes {
                v_ori: 1,
                v_p2p: 5,
                v_ru: 0,
            },
            &cfg,
            4,
        );
    }
}
