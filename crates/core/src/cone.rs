//! Shared cone-recurrence arithmetic for batch-granular sweep masks.
//!
//! Two sweeps on one `Session` prune by `(layer, batch)` masks that are
//! duals of each other over the chunk topology:
//!
//! * the **downward-closed query cone** ([`ServeMask::from_queries`]):
//!   a vertex-subset logit query needs the ≤ L-hop *in*-neighborhood of
//!   the queried vertices, walked top-down — `active[l] ⊇ active[l+1]`;
//! * the **upward-closed delta cone** ([`ServeMask::from_dirty`]): a
//!   graph mutation invalidates the ≤ L-hop *out*-neighborhood of the
//!   dirty vertices, walked bottom-up — `active[l] ⊆ active[l+1]`.
//!
//! Both recurrences live here so query pruning and delta invalidation
//! can never diverge: they share the vertex→batch map and the
//! mark-active step, and differ only in the walk direction and which
//! edge direction grows the frontier.
//!
//! [`ServeMask::from_queries`]: crate::ServeMask::from_queries
//! [`ServeMask::from_dirty`]: crate::ServeMask::from_dirty

use hongtu_partition::TwoLevelPartition;

/// Batch (chunk index) of each vertex: destination sets partition the
/// vertex set across `(gpu, chunk)`, with the chunk id shared across
/// GPUs.
pub fn batch_of_vertices(plan: &TwoLevelPartition) -> Vec<u32> {
    let num_v = plan.assignment.partition_of.len();
    let mut batch_of = vec![0u32; num_v];
    for c in plan.all_chunks() {
        for &v in &c.dests {
            batch_of[v as usize] = c.chunk as u32;
        }
    }
    batch_of
}

/// Marks active every batch owning a member of `set`.
fn mark_active(batch_of: &[u32], set: &[bool], act: &mut [bool]) {
    for (v, &member) in set.iter().enumerate() {
        if member {
            act[batch_of[v] as usize] = true;
        }
    }
}

/// Asserts the seed set is non-empty and in range, returning it as a
/// membership vector.
fn seed_set(what: &str, num_v: usize, vertices: &[usize]) -> Vec<bool> {
    assert!(!vertices.is_empty(), "{what}: empty {what}");
    let mut set = vec![false; num_v];
    for &v in vertices {
        assert!(v < num_v, "{what}: vertex {v} out of range ({num_v})");
        set[v] = true;
    }
    set
}

/// The downward-closed query cone: active batches per layer for a
/// pruned serving sweep (module docs give the duality; the serve-path
/// docs in [`crate::serve`] give the recurrence):
///
/// ```text
/// needed[L]  = Q
/// active[l]  = { j | batch_of(v) = j for some v ∈ needed[l+1] }
/// needed[l]  = needed[l+1] ∪ ⋃_{j ∈ active[l], i < m} (V_ij ∪ N_ij)
/// ```
///
/// Including the destination sets `V_ij` (not just the neighbor lists
/// `N_ij`) makes the mask downward closed — `active[l] ⊇ active[l+1]` —
/// which keeps the executor's layer-0 topology H2D covering every batch
/// that is ever active, and gives the correctness induction: every row
/// an active chunk reads at layer `l+1` was recomputed at layer `l`.
///
/// # Panics
///
/// Panics if `vertices` is empty or contains an out-of-range id.
pub fn downward_closed(
    plan: &TwoLevelPartition,
    layers: usize,
    vertices: &[usize],
) -> Vec<Vec<bool>> {
    let num_v = plan.assignment.partition_of.len();
    let batch_of = batch_of_vertices(plan);
    let mut needed = seed_set("query", num_v, vertices);
    let mut active = vec![vec![false; plan.n]; layers];
    for l in (0..layers).rev() {
        // Batches holding any currently-needed vertex. `needed` only
        // grows walking down, so active[l] ⊇ active[l+1].
        let act = &mut active[l];
        mark_active(&batch_of, &needed, act);
        // Layer l recomputes every row layer l+1's active chunks
        // read: grow `needed` by those chunks' dests and neighbors.
        for c in plan.all_chunks() {
            if act[c.chunk] {
                for &v in c.dests.iter().chain(&c.neighbors) {
                    needed[v as usize] = true;
                }
            }
        }
    }
    active
}

/// The upward-closed delta cone: active batches per layer for an
/// incremental recompute sweep after a graph mutation.
///
/// `dirty` seeds the vertices whose layer-1 rows (or whose producing
/// computation, for weight-touching topology edits) are invalid:
///
/// ```text
/// R[0]    = dirty
/// active[l] = { j | batch_of(v) = j for some v ∈ R[l] }
/// R[l+1]  = R[l] ∪ { d ∈ V_ij | N(d) ∩ R[l] ≠ ∅ }
/// ```
///
/// The frontier grows along *out*-edges (a dest is invalidated when any
/// of its in-neighbors holds a dirty row), resolved exactly per dest
/// through the chunks' local CSC structure — no chunk-granular
/// over-approximation on the growth step. Keeping `R[l]` in `R[l+1]`
/// makes the mask upward closed — `active[l] ⊆ active[l+1]` — the dual
/// of the query cone's downward closure, giving the replay induction:
/// every row a replayed chunk reads at layer `l` is either untouched in
/// `h^l` or was recomputed at layer `l−1`.
///
/// # Panics
///
/// Panics if `dirty` is empty or contains an out-of-range id.
pub fn upward_closed(plan: &TwoLevelPartition, layers: usize, dirty: &[usize]) -> Vec<Vec<bool>> {
    let num_v = plan.assignment.partition_of.len();
    let batch_of = batch_of_vertices(plan);
    let mut invalid = seed_set("dirty set", num_v, dirty);
    let mut active = vec![vec![false; plan.n]; layers];
    for l in 0..layers {
        // Batches holding any currently-invalid row. `invalid` only
        // grows walking up, so active[l] ⊆ active[l+1].
        let act = &mut active[l];
        mark_active(&batch_of, &invalid, act);
        if l + 1 == layers {
            break;
        }
        // Layer l+1 reads the rows layer l rewrote: a dest whose
        // in-neighbor list touches the invalid set joins it.
        let mut next = invalid.clone();
        for c in plan.all_chunks() {
            for (k, &d) in c.dests.iter().enumerate() {
                if !next[d as usize]
                    && c.nbr_index[c.in_edges_of(k)]
                        .iter()
                        .any(|&t| invalid[c.neighbors[t as usize] as usize])
                {
                    next[d as usize] = true;
                }
            }
        }
        invalid = next;
    }
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::GraphBuilder;

    /// 8-vertex ring 0→1→…→7→0, 4 chunks of 2 on 1 partition.
    fn ring_plan() -> TwoLevelPartition {
        let mut b = GraphBuilder::new(8);
        for v in 0..8 {
            b.add_edge(v, (v + 1) % 8);
        }
        TwoLevelPartition::build(&b.build(), 1, 4, 7)
    }

    #[test]
    fn duality_on_the_ring() {
        let plan = ring_plan();
        // Downward: the query cone of v grows along in-edges toward
        // layer 0; upward: the dirty cone of v grows along out-edges
        // toward layer L−1. On a directed ring these sweep opposite
        // directions from the same seed.
        let down = downward_closed(&plan, 3, &[4]);
        let up = upward_closed(&plan, 3, &[4]);
        for l in 0..2 {
            for j in 0..plan.n {
                assert!(!down[l + 1][j] || down[l][j], "downward closure broken");
                assert!(!up[l][j] || up[l + 1][j], "upward closure broken");
            }
        }
        // Both start from the seed's own batch at their narrow end.
        let batch_of = batch_of_vertices(&plan);
        let j4 = batch_of[4] as usize;
        assert!(down[2][j4]);
        assert!(up[0][j4]);
    }

    #[test]
    fn upward_growth_follows_out_edges() {
        let plan = ring_plan();
        let batch_of = batch_of_vertices(&plan);
        // Dirty {0}: layer 0 recomputes 0's batch; out-neighbor 1 is
        // invalid from layer 1 on.
        let up = upward_closed(&plan, 2, &[0]);
        assert!(up[0][batch_of[0] as usize]);
        assert!(up[1][batch_of[1] as usize]);
        // Vertex 2 is two out-hops away — not reached in 2 layers
        // unless it shares a batch with {0, 1}.
        let j2 = batch_of[2] as usize;
        if j2 != batch_of[0] as usize && j2 != batch_of[1] as usize {
            assert!(!up[1][j2]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn upward_out_of_range_panics() {
        let plan = ring_plan();
        upward_closed(&plan, 1, &[99]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn upward_empty_panics() {
        let plan = ring_plan();
        upward_closed(&plan, 1, &[]);
    }
}
