//! The work-stealing thread pool and its structured-concurrency scope.
//!
//! Design (a miniature of rayon's core):
//!
//! - every worker owns a deque; `spawn` from a worker pushes onto its own
//!   deque (LIFO for cache locality), `spawn` from outside goes to a shared
//!   injector queue;
//! - idle workers drain the injector FIFO, then steal the *oldest* job from
//!   a sibling's deque;
//! - [`ThreadPool::scope`] provides scoped (non-`'static`) jobs. The caller
//!   **helps**: while waiting for its spawned jobs it executes queued work
//!   instead of blocking, so nested scopes (a pool worker whose job opens
//!   another scope) make progress even on a single-thread pool and can
//!   never deadlock.
//!
//! Panics inside a spawned job are caught, the first one is stored, and it
//! is re-thrown from `scope` on the spawning thread after every job of the
//! scope has finished.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool ids disambiguate nested/multiple pools in the worker thread-local.
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

struct Shared {
    id: usize,
    injector: Mutex<VecDeque<Job>>,
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs currently sitting in any queue (wake-up signal, not a latch).
    queued: AtomicUsize,
    shutdown: AtomicBool,
    idle: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    /// The current thread's worker index in *this* pool, if any.
    fn me(&self) -> Option<usize> {
        WORKER
            .with(|w| w.get())
            .filter(|&(pool, _)| pool == self.id)
            .map(|(_, idx)| idx)
    }

    fn push(&self, job: Job) {
        match self.me() {
            Some(i) => self.locals[i].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.queued.fetch_add(1, Ordering::SeqCst);
        // Take the idle lock (empty critical section) so a worker between
        // its queue check and `wait` cannot miss this notification.
        let _guard = self.idle.lock().unwrap();
        self.wake.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let me = self.me();
        if let Some(i) = me {
            if let Some(job) = self.locals[i].lock().unwrap().pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for (k, queue) in self.locals.iter().enumerate() {
            if Some(k) == me {
                continue;
            }
            if let Some(job) = queue.lock().unwrap().pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.id, index))));
    loop {
        if let Some(job) = shared.pop() {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let guard = shared.idle.lock().unwrap();
        if shared.queued.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            // Timed wait as a backstop against any wake-up race.
            drop(
                shared
                    .wake
                    .wait_timeout(guard, Duration::from_millis(20))
                    .unwrap(),
            );
        }
    }
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("hongtu-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `body` with a [`Scope`] that can spawn borrowing jobs, and
    /// returns only after every spawned job has finished. The calling
    /// thread executes queued jobs while it waits (help-first), so scopes
    /// nest safely at any pool size.
    pub fn scope<'scope, OP, R>(&self, body: OP) -> R
    where
        OP: FnOnce(&Scope<'scope, '_>) -> R + 'scope,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
        let mut misses = 0u32;
        while scope.state.pending.load(Ordering::SeqCst) > 0 {
            if let Some(job) = self.shared.pop() {
                job();
                misses = 0;
            } else if misses < 64 {
                misses += 1;
                thread::yield_now();
            } else {
                thread::sleep(Duration::from_micros(50));
            }
        }
        let job_panic = scope.state.panic.lock().unwrap().take();
        match (result, job_panic) {
            (Err(payload), _) => resume_unwind(payload),
            (Ok(_), Some(payload)) => resume_unwind(payload),
            (Ok(value), None) => value,
        }
    }

    /// Runs `f(index, &mut item)` for every item, in parallel on this pool.
    /// The per-item closures see disjoint `&mut` data, so no two workers
    /// ever share state; completion of *all* items is awaited.
    pub fn for_each_indexed<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Send + Sync,
    {
        let f = &f;
        self.scope(|s| {
            for (i, item) in items.iter_mut().enumerate() {
                s.spawn(move || f(i, item));
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.idle.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct ScopeState {
    /// Spawned-but-unfinished jobs of this scope (the completion latch).
    pending: AtomicUsize,
    /// First panic payload from any job of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, like `std::thread::Scope`.
    _marker: PhantomData<std::cell::Cell<&'scope ()>>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawns a job that may borrow data outliving the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            state.pending.fetch_sub(1, Ordering::SeqCst);
        });
        // SAFETY: `ThreadPool::scope` does not return (not even by panic)
        // until `pending` reaches zero, i.e. until this job has run to
        // completion, so every `'scope` borrow it captures stays live for
        // the job's whole execution. Erasing the lifetime is therefore
        // sound, exactly as in std's scoped threads.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.pool.shared.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn borrows_stack_data_mutably() {
        let pool = ThreadPool::new(2);
        let mut values = vec![0u64; 64];
        pool.scope(|s| {
            for (i, v) in values.iter_mut().enumerate() {
                s.spawn(move || *v = (i * i) as u64);
            }
        });
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn nested_scopes_complete_on_single_thread_pool() {
        // One worker + helping caller: inner scopes spawned from pool jobs
        // must not deadlock.
        let pool = ThreadPool::new(1);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let total = &total;
                s.spawn(move || {
                    pool.scope(|inner| {
                        for j in 0..8 {
                            inner.spawn(move || {
                                total.fetch_add(j, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * (0..8).sum::<u64>());
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = ThreadPool::new(2);
        let r = pool.scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(r, 42);
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_finish() {
        let pool = ThreadPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&finished);
        let f3 = Arc::clone(&finished);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(move || {
                    f2.fetch_add(1, Ordering::SeqCst);
                });
                s.spawn(move || {
                    f3.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(r.is_err(), "scope must re-throw the job panic");
        assert_eq!(finished.load(Ordering::SeqCst), 2, "siblings still run");
        // The pool stays usable after a panic.
        let ok = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn for_each_indexed_covers_every_item() {
        let pool = ThreadPool::new(3);
        let mut items = vec![0usize; 17];
        pool.for_each_indexed(&mut items, |i, v| *v = i + 1);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_threads(), 1);
        let hit = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                hit.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }
}
