//! Work-stealing thread pool for HongTu's parallel execution layer.
//!
//! The original system overlaps the m partitions of a batch across m GPUs
//! (paper §5, Fig. 9); this crate supplies the host-side concurrency that
//! makes our simulated reproduction do the same for real: the engine runs
//! each batch's per-GPU work on pool threads, and `hongtu-tensor` routes
//! its row-parallel kernels (GEMM, SpMM, softmax) through the same pool.
//!
//! Like every dependency of this workspace, the crate is built entirely
//! from `std` — no registry crates — so the workspace stays offline-
//! buildable.
//!
//! ## Determinism contract
//!
//! Parallelism here never changes results:
//!
//! - scoped jobs own disjoint `&mut` data (enforced by the borrow checker),
//! - row-parallel kernels compute each output row with the *same*
//!   reduction order regardless of how rows are chunked across workers,
//! - callers that need randomness fork one RNG stream per work item
//!   *index* (not per thread), so draws are stable under any schedule.
//!
//! The pool size comes from `HONGTU_THREADS` (falling back to the number
//! of available cores); see [`configured_threads`].

mod pool;

pub use pool::{Scope, ThreadPool};

use std::sync::OnceLock;

/// The process-wide pool used by tensor kernels and the parallel engine.
/// Built lazily on first use, sized by [`configured_threads`].
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(configured_threads()))
}

/// Worker-thread count for the global pool: the `HONGTU_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism. Invalid values fall back to the
/// default rather than erroring, so misconfigured CI legs still run.
pub fn configured_threads() -> usize {
    std::env::var("HONGTU_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(available_threads)
}

/// Available hardware parallelism (1 if it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `data` into contiguous chunks of at most `chunk_len` elements
/// and runs `f(start_offset, chunk)` for every chunk on the global pool
/// (`start_offset` is the index of the chunk's first element in `data`).
///
/// Small inputs (a single chunk) run inline with zero pool traffic.
/// Because each chunk is computed independently and chunk boundaries do
/// not alter per-element results in any caller, output is bitwise
/// identical for every thread count.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Send + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    if data.len() <= chunk_len {
        f(0, data);
        return;
    }
    let f = &f;
    global().scope(|s| {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            s.spawn(move || f(ci * chunk_len, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_mut_visits_every_element_once() {
        let mut data = vec![0u32; 1000];
        par_chunks_mut(&mut data, 64, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v += (start + k) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_small_input_runs_inline() {
        let mut data = vec![1u8; 3];
        par_chunks_mut(&mut data, 64, |start, chunk| {
            assert_eq!(start, 0);
            assert_eq!(chunk.len(), 3);
            chunk.fill(7);
        });
        assert_eq!(data, vec![7u8; 3]);
    }

    #[test]
    fn par_chunks_mut_empty_is_noop() {
        let mut data: Vec<u8> = Vec::new();
        par_chunks_mut(&mut data, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn global_pool_is_reused() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().num_threads() >= 1);
    }
}
