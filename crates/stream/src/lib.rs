//! Stream scheduler: the copy/compute overlap model.
//!
//! HongTu hides its large host↔GPU traffic by issuing transfers on
//! dedicated copy streams and overlapping them with computation, so the
//! per-batch cost is `max(transfer, compute)` rather than their sum (§6's
//! implementation discipline). This crate models that scheduler for the
//! simulated machine:
//!
//! - [`StreamId`] names the three per-GPU streams — compute, copy-in
//!   (H2D), copy-out (D2H) — that map onto `hongtu_sim`'s per-stream
//!   clocks ([`hongtu_sim::NUM_STREAMS`]). Streams are independent event
//!   timelines: their clocks only relate through explicit cross-stream
//!   waits ([`hongtu_sim::EventKind::StreamWait`]) and barriers.
//! - [`pipeline`] generates the software-pipelined segment structure:
//!   while batch `j` computes, batch `j+1`'s dedup H2D load and
//!   checkpoint reloads are prefetched on copy-in, and batch `j-1`'s
//!   gradient/checkpoint D2H drains on copy-out. One prologue segment
//!   fills the pipe; one epilogue segment drains it.
//! - [`slot_of`] / [`rep_slot`] / [`grad_slot`] give the double-buffer
//!   slot discipline: batch `j` lives in staging slot `j % 2`, so a
//!   prefetch always writes the slot the current compute batch is *not*
//!   using. Slots are distinct resources to the happens-before checker —
//!   the one genuinely cross-stream hazard left is the in-place `ℕ^gpu`
//!   reuse refill, which must wait for the copy-in stream's H2D into the
//!   same slot (and is exactly the R402 class of race the checker
//!   rejects when the wait is missing).
//! - [`StagingPlan`] sizes and installs the per-GPU staging buffers: two
//!   input slots and two output slots, allocated *statically* at engine
//!   construction. A staging pair that does not fit device memory fails
//!   construction with [`SimError::OutOfMemory`] naming the slot label
//!   and GPU.

#![forbid(unsafe_code)]

use hongtu_sim::{Machine, ResourceId, SimError};

/// The per-GPU streams of the overlap executor. The numeric ids index
/// `hongtu_sim`'s per-stream clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// Kernel launches (and the default stream everything uses when
    /// overlap is off).
    Compute,
    /// Host→GPU copies: dedup loads, checkpoint/aggregate reloads.
    CopyIn,
    /// GPU→host copies: checkpoint stores, gradient evictions.
    CopyOut,
}

impl StreamId {
    /// The stream index used by the simulator's per-stream clocks and
    /// event tags.
    pub fn id(self) -> u8 {
        match self {
            StreamId::Compute => 0,
            StreamId::CopyIn => 1,
            StreamId::CopyOut => 2,
        }
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamId::Compute => f.write_str("compute"),
            StreamId::CopyIn => f.write_str("copy-in"),
            StreamId::CopyOut => f.write_str("copy-out"),
        }
    }
}

/// Whether the engine overlaps transfers with compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapMode {
    /// Everything on the default stream; load, compute, and evict phases
    /// are charged additively (the pre-overlap model).
    #[default]
    Off,
    /// Software-pipelined batches over double-buffered staging: batch
    /// `j+1` loads and batch `j-1` drains behind batch `j`'s compute.
    /// Changes time and memory, never results.
    DoubleBuffer,
}

/// The staging slot batch `j` occupies under double buffering.
pub fn slot_of(batch: usize) -> u8 {
    (batch % 2) as u8
}

/// The resource identity of GPU `gpu`'s representation staging slot for
/// batch `batch`.
pub fn rep_slot(gpu: usize, batch: usize) -> ResourceId {
    ResourceId::DevRepSlot {
        gpu: gpu as u32,
        slot: slot_of(batch),
    }
}

/// The resource identity of GPU `gpu`'s gradient staging slot for batch
/// `batch`.
pub fn grad_slot(gpu: usize, batch: usize) -> ResourceId {
    ResourceId::DevGradSlot {
        gpu: gpu as u32,
        slot: slot_of(batch),
    }
}

/// One segment of the software pipeline: the per-batch work co-scheduled
/// between two barriers. Within a segment the three roles run on their
/// three streams; the segment's simulated cost is the *maximum* of the
/// three, not the sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Batch whose loads are issued on the copy-in stream.
    pub prefetch: Option<usize>,
    /// Batch computing on the compute stream.
    pub compute: Option<usize>,
    /// Batch whose stores drain on the copy-out stream.
    pub drain: Option<usize>,
}

impl Segment {
    /// True for the pipe-filling segment (first prefetch, nothing else).
    pub fn is_prologue(&self) -> bool {
        self.compute.is_none() && self.drain.is_none()
    }

    /// True for the pipe-draining segment (last drain, nothing else).
    pub fn is_epilogue(&self) -> bool {
        self.compute.is_none() && self.prefetch.is_none() && self.drain.is_some()
    }
}

/// The pipelined schedule for `n` batches: a prologue that prefetches
/// batch 0, `n` steady segments (compute `j`, prefetch `j+1`, drain
/// `j-1`), and an epilogue that drains batch `n-1`. Every batch appears
/// exactly once in each role, and a segment never prefetches into the
/// slot its compute batch occupies (`(j+1) % 2 != j % 2`).
pub fn pipeline(n: usize) -> impl Iterator<Item = Segment> {
    let prologue = (n > 0).then_some(Segment {
        prefetch: Some(0),
        compute: None,
        drain: None,
    });
    let steady = (0..n).map(move |j| Segment {
        prefetch: (j + 1 < n).then_some(j + 1),
        compute: Some(j),
        drain: (j > 0).then(|| j - 1),
    });
    let epilogue = (n > 0).then(|| Segment {
        prefetch: None,
        compute: None,
        drain: Some(n - 1),
    });
    prologue.into_iter().chain(steady).chain(epilogue)
}

/// Static sizing of one GPU's double-buffered staging memory. Installed
/// once at engine construction; the overlap executor then runs with no
/// per-batch allocation churn (slots are reused in `j % 2` rotation), so
/// peak memory is flat at `2·(in + out)` staging bytes above the
/// resident model state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingPlan {
    /// GPU this plan sizes.
    pub gpu: usize,
    /// Bytes of one *input* staging slot: the worst-case (layer, batch)
    /// footprint of chunk topology, neighbor/transition buffer, and
    /// reloaded checkpoints.
    pub in_slot_bytes: usize,
    /// Bytes of one *output* staging slot: the worst-case (layer, batch)
    /// footprint of layer output, intermediates, and gradient staging
    /// awaiting its D2H drain.
    pub out_slot_bytes: usize,
}

impl StagingPlan {
    /// Total staging bytes the plan pins: two slots of each kind.
    pub fn total_bytes(&self) -> usize {
        2 * (self.in_slot_bytes + self.out_slot_bytes)
    }

    /// Byte budget one in-flight batch may occupy: one input plus one
    /// output slot. The serving layer's admission control holds a
    /// request cone's worst per-batch footprint to this bound, so an
    /// admitted pruned sweep fits the staging the full sweep was sized
    /// for.
    pub fn slot_budget(&self) -> usize {
        self.in_slot_bytes + self.out_slot_bytes
    }

    /// Whether a batch with the given input/output footprint fits the
    /// staging slots component-wise.
    pub fn fits(&self, in_bytes: usize, out_bytes: usize) -> bool {
        in_bytes <= self.in_slot_bytes && out_bytes <= self.out_slot_bytes
    }

    /// Allocates the four staging slots on the machine. Fails with
    /// [`SimError::OutOfMemory`] — naming the slot label and the GPU —
    /// when the double-buffer does not fit, which is how an oversized
    /// overlap configuration is rejected *at construction* instead of
    /// corrupting a running epoch.
    pub fn install(&self, machine: &mut Machine) -> Result<(), SimError> {
        for slot in 0..2u8 {
            machine.alloc(
                self.gpu,
                self.in_slot_bytes,
                &format!("input staging buffer (slot {slot})"),
            )?;
            machine.alloc(
                self.gpu,
                self.out_slot_bytes,
                &format!("output staging buffer (slot {slot})"),
            )?;
        }
        Ok(())
    }

    /// Frees the four staging slots.
    pub fn uninstall(&self, machine: &mut Machine) {
        machine.free(self.gpu, self.total_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_sim::MachineConfig;

    #[test]
    fn stream_ids_are_stable_and_distinct() {
        assert_eq!(StreamId::Compute.id(), 0);
        assert_eq!(StreamId::CopyIn.id(), 1);
        assert_eq!(StreamId::CopyOut.id(), 2);
        assert!((StreamId::CopyOut.id() as usize) < hongtu_sim::NUM_STREAMS);
        assert_eq!(StreamId::CopyIn.to_string(), "copy-in");
    }

    #[test]
    fn pipeline_covers_every_batch_once_per_role() {
        for n in 0..7 {
            let segs: Vec<_> = pipeline(n).collect();
            if n == 0 {
                assert!(segs.is_empty());
                continue;
            }
            assert_eq!(segs.len(), n + 2);
            assert!(segs[0].is_prologue());
            assert!(segs[n + 1].is_epilogue());
            for role in [
                |s: &Segment| s.prefetch,
                |s: &Segment| s.compute,
                |s: &Segment| s.drain,
            ] {
                let batches: Vec<_> = segs.iter().filter_map(role).collect();
                assert_eq!(batches, (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn pipeline_shifts_roles_by_one_batch() {
        for seg in pipeline(5) {
            if let (Some(p), Some(c)) = (seg.prefetch, seg.compute) {
                assert_eq!(p, c + 1);
                // The prefetch never lands in the computing batch's slot.
                assert_ne!(slot_of(p), slot_of(c));
            }
            if let (Some(c), Some(d)) = (seg.compute, seg.drain) {
                assert_eq!(d, c - 1);
                assert_ne!(slot_of(d), slot_of(c));
            }
        }
    }

    #[test]
    fn slot_resources_alternate_per_gpu() {
        assert_eq!(slot_of(0), 0);
        assert_eq!(slot_of(3), 1);
        assert_ne!(rep_slot(1, 2), rep_slot(1, 3));
        assert_eq!(rep_slot(1, 2), rep_slot(1, 4));
        assert_ne!(rep_slot(0, 0), rep_slot(1, 0));
        assert_ne!(rep_slot(0, 0), grad_slot(0, 0));
    }

    #[test]
    fn staging_plan_installs_and_reports_oom() {
        let mut m = Machine::new(MachineConfig::scaled(2, 10_000));
        let plan = StagingPlan {
            gpu: 0,
            in_slot_bytes: 3_000,
            out_slot_bytes: 1_000,
        };
        assert_eq!(plan.total_bytes(), 8_000);
        plan.install(&mut m).unwrap();
        assert_eq!(m.gpu_memory(0).in_use(), 8_000);
        plan.uninstall(&mut m);
        assert_eq!(m.gpu_memory(0).in_use(), 0);

        let too_big = StagingPlan {
            gpu: 1,
            in_slot_bytes: 4_000,
            out_slot_bytes: 2_000,
        };
        match too_big.install(&mut m).unwrap_err() {
            SimError::OutOfMemory { device, label, .. } => {
                assert_eq!(device, "GPU1");
                assert!(label.contains("staging buffer"), "label: {label}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overlap_mode_defaults_off() {
        assert_eq!(OverlapMode::default(), OverlapMode::Off);
    }

    #[test]
    fn slot_budget_is_one_batch_of_staging() {
        let plan = StagingPlan {
            gpu: 0,
            in_slot_bytes: 3_000,
            out_slot_bytes: 1_000,
        };
        assert_eq!(plan.slot_budget(), 4_000);
        assert_eq!(plan.total_bytes(), 2 * plan.slot_budget());
        assert!(plan.fits(3_000, 1_000));
        assert!(!plan.fits(3_001, 0));
        assert!(!plan.fits(0, 1_001));
    }
}
