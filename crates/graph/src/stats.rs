//! Degree statistics used for workload characterization and load balancing.

use crate::csr::{Graph, VertexId};

/// Summary of a degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th-percentile degree.
    pub p99: usize,
}

impl DegreeStats {
    fn from_degrees(mut degs: Vec<usize>) -> Self {
        assert!(!degs.is_empty(), "DegreeStats: empty graph");
        degs.sort_unstable();
        let n = degs.len();
        let mean = degs.iter().sum::<usize>() as f64 / n as f64;
        DegreeStats {
            min: degs[0],
            max: degs[n - 1],
            mean,
            median: degs[n / 2],
            p99: degs[((n as f64 * 0.99) as usize).min(n - 1)],
        }
    }

    /// In-degree statistics of `g`.
    pub fn in_degrees(g: &Graph) -> Self {
        Self::from_degrees(
            (0..g.num_vertices())
                .map(|v| g.in_degree(v as VertexId))
                .collect(),
        )
    }

    /// Out-degree statistics of `g`.
    pub fn out_degrees(g: &Graph) -> Self {
        Self::from_degrees(
            (0..g.num_vertices())
                .map(|v| g.out_degree(v as VertexId))
                .collect(),
        )
    }
}

/// Degree histogram with logarithmic buckets `[2^i, 2^{i+1})`; bucket 0
/// counts degree-0 vertices.
pub fn log_degree_histogram(degrees: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut hist = Vec::new();
    for d in degrees {
        let bucket = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_on_star_graph() {
        // Star: 0 → {1..9}
        let mut b = GraphBuilder::new(10);
        for t in 1..10 {
            b.add_edge(0, t);
        }
        let g = b.build();
        let out = DegreeStats::out_degrees(&g);
        assert_eq!(out.max, 9);
        assert_eq!(out.min, 0);
        assert!((out.mean - 0.9).abs() < 1e-9);
        let ins = DegreeStats::in_degrees(&g);
        assert_eq!(ins.max, 1);
        assert_eq!(ins.median, 1);
    }

    #[test]
    fn histogram_buckets() {
        // degrees 0,1,2,3,4 → buckets 0,1,2,2,3
        let h = log_degree_histogram([0usize, 1, 2, 3, 4].into_iter());
        assert_eq!(h, vec![1, 1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn stats_reject_empty() {
        let _ = DegreeStats::from_degrees(vec![]);
    }
}
