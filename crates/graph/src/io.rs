//! Plain-text edge-list interchange format.
//!
//! One `src dst` pair per line, `#`-prefixed comment lines allowed — the
//! same format as SNAP dumps (friendster et al.), so real datasets can be
//! dropped in where the synthetic proxies are used.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge list I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "edge list parse error at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses an edge list from a reader. Vertex count is `max id + 1`.
pub fn read_edge_list(reader: impl Read) -> Result<Graph, EdgeListError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: VertexId = 0;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<VertexId> { tok?.parse().ok() };
        match (parse(it.next()), parse(it.next())) {
            (Some(s), Some(t)) => {
                max_id = max_id.max(s).max(t);
                edges.push((s, t));
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line: i + 1,
                    content: line.clone(),
                })
            }
        }
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::new(n);
    b.extend(edges);
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<Graph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes `g` as an edge list with a header comment.
pub fn write_edge_list(g: &Graph, writer: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# directed edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (s, t) in g.csr.edges() {
        writeln!(w, "{s} {t}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = GraphBuilder::new(5);
        for (s, t) in [(0, 1), (1, 2), (4, 0), (2, 4)] {
            b.add_edge(s, t);
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.csr.targets, g2.csr.targets);
        assert_eq!(g.csr.offsets, g2.csr.offsets);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n0 1\n  # another\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn handles_tabs_and_extra_whitespace() {
        let text = "0\t1\n 2   3 \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 4);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
