//! Compressed sparse row/column graph storage.
//!
//! A [`Graph`] stores a directed graph in both orientations:
//! - [`Csr`]: out-edges grouped by source (`u → {v}`), used for gradient
//!   scatter in the backward pass;
//! - [`Csc`]: in-edges grouped by destination (`v ← {u}`), used for
//!   full-neighbor aggregation in the forward pass. HongTu's 2-level
//!   partitioning groups *in-edges* of a destination range into a chunk, so
//!   CSC is the primary orientation.

/// Vertex identifier. `u32` bounds graphs at ~4.2B vertices, matching what
/// the paper's billion-edge datasets need while halving index memory.
pub type VertexId = u32;

/// Out-edge adjacency in compressed sparse row form.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    pub offsets: Vec<usize>,
    /// Flattened adjacency lists.
    pub targets: Vec<VertexId>,
}

/// In-edge adjacency in compressed sparse column form.
///
/// Structurally identical to [`Csr`] but indexed by *destination*:
/// `offsets[v]..offsets[v+1]` lists the in-neighbors (sources) of `v`.
pub type Csc = Csr;

impl Csr {
    /// An adjacency structure with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Adjacency list of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of vertex `v` in this orientation.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterates `(source, target)` pairs in storage order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.neighbors(v as VertexId)
                .iter()
                .map(move |&t| (v as VertexId, t))
        })
    }

    /// Validates structural invariants; returns a description of the first
    /// violation, if any. Used by tests and by loaders of external data.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if self.offsets[0] != 0 {
            return Err(format!("offsets[0] = {} (expected 0)", self.offsets[0]));
        }
        if *self.offsets.last().unwrap() != self.targets.len() {
            return Err(format!(
                "offsets[last] = {} but targets.len() = {}",
                self.offsets.last().unwrap(),
                self.targets.len()
            ));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets are not monotone".into());
        }
        let n = self.num_vertices() as VertexId;
        if let Some(&bad) = self.targets.iter().find(|&&t| t >= n) {
            return Err(format!("target {bad} out of range (n = {n})"));
        }
        Ok(())
    }

    /// Bytes consumed by the structure (used by the simulator memory model).
    pub fn byte_size(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }
}

/// A directed graph stored in both orientations plus per-edge GCN weights.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Out-edges: `csr.neighbors(u)` are the targets of `u`.
    pub csr: Csr,
    /// In-edges: `csc.neighbors(v)` are the sources pointing at `v`.
    pub csc: Csc,
}

impl Graph {
    /// Builds the dual representation from sorted, deduplicated edge pairs.
    /// Prefer [`crate::builder::GraphBuilder`] for arbitrary edge input.
    pub fn from_csr(csr: Csr) -> Self {
        let csc = transpose(&csr);
        Graph { csr, csc }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.csr.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.csc.degree(v)
    }

    /// In-neighbors (sources) of `v` — the set aggregated by GNN layers.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csc.neighbors(v)
    }

    /// Out-neighbors (targets) of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }

    /// Validates both orientations agree.
    pub fn validate(&self) -> Result<(), String> {
        self.csr.validate()?;
        self.csc.validate()?;
        if self.csr.num_vertices() != self.csc.num_vertices() {
            return Err("csr/csc vertex count mismatch".into());
        }
        if self.csr.num_edges() != self.csc.num_edges() {
            return Err("csr/csc edge count mismatch".into());
        }
        Ok(())
    }

    /// Total bytes of topology (both orientations), for the memory model.
    pub fn topology_bytes(&self) -> usize {
        self.csr.byte_size() + self.csc.byte_size()
    }
}

/// Transposes an adjacency structure (CSR → CSC or vice versa) with a
/// counting pass; `O(|V| + |E|)`.
pub fn transpose(a: &Csr) -> Csr {
    let n = a.num_vertices();
    let mut counts = vec![0usize; n + 1];
    for &t in &a.targets {
        counts[t as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut targets = vec![0 as VertexId; a.targets.len()];
    for v in 0..n {
        for &t in a.neighbors(v as VertexId) {
            let pos = cursor[t as usize];
            targets[pos] = v as VertexId;
            cursor[t as usize] += 1;
        }
    }
    Csr { offsets, targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> Graph {
        // 0→1, 0→2, 1→2, 2→0, 3→2
        let mut b = GraphBuilder::new(4);
        for (s, t) in [(0, 1), (0, 2), (1, 2), (2, 0), (3, 2)] {
            b.add_edge(s, t);
        }
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = toy();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 3);
        assert_eq!(g.in_degree(3), 0);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn neighbor_lists_are_sorted_and_correct() {
        let g = toy();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        let mut ins = g.in_neighbors(2).to_vec();
        ins.sort_unstable();
        assert_eq!(ins, vec![0, 1, 3]);
    }

    #[test]
    fn transpose_is_involutive() {
        let g = toy();
        let back = transpose(&g.csc);
        // Transposing twice recovers CSR up to within-list ordering.
        for v in 0..4 {
            let mut a = back.neighbors(v).to_vec();
            a.sort_unstable();
            let mut b = g.csr.neighbors(v).to_vec();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn transpose_preserves_edge_multiset() {
        let g = toy();
        let mut fwd: Vec<_> = g.csr.edges().collect();
        let mut bwd: Vec<_> = g.csc.edges().map(|(d, s)| (s, d)).collect();
        fwd.sort_unstable();
        bwd.sort_unstable();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let g = toy();
        assert!(g.validate().is_ok());
        let bad = Csr {
            offsets: vec![0, 2],
            targets: vec![0, 5],
        };
        assert!(bad.validate().unwrap_err().contains("out of range"));
        let bad2 = Csr {
            offsets: vec![1, 2],
            targets: vec![0, 0],
        };
        assert!(bad2.validate().is_err());
        let bad3 = Csr {
            offsets: vec![0, 3, 1],
            targets: vec![0; 1],
        };
        assert!(bad3.validate().is_err());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_csr(Csr::empty(3));
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
        assert!(g.in_neighbors(1).is_empty());
    }

    #[test]
    fn byte_size_accounts_offsets_and_targets() {
        let c = Csr {
            offsets: vec![0, 1, 2],
            targets: vec![1, 0],
        };
        assert_eq!(c.byte_size(), 3 * 8 + 2 * 4);
    }
}
