//! Seeded synthetic graph generators.
//!
//! These stand in for the paper's datasets (reddit, ogbn-products, it-2004,
//! ogbn-papers100M, friendster), which are either too large to ship or
//! require external downloads. Each generator controls the structural
//! property that drives HongTu's communication behaviour:
//!
//! - **degree skew** (R-MAT) → size of the high-degree "duplicated neighbor"
//!   population and hence the replication factor α;
//! - **id-locality** (window graphs) → how much adjacent chunks share
//!   neighbors, which is what intra-GPU reuse exploits;
//! - **community structure** (planted partition) → label signal for the
//!   accuracy experiments (Fig. 8).

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use hongtu_tensor::SeededRng;

/// Directed Erdős–Rényi-style graph with `n` vertices and approximately
/// `n * avg_degree` edges drawn uniformly.
pub fn erdos_renyi(n: usize, avg_degree: f64, rng: &mut SeededRng) -> Graph {
    assert!(n > 1, "erdos_renyi: need at least two vertices");
    let m = (n as f64 * avg_degree).round() as usize;
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let s = rng.index(n) as VertexId;
        let t = rng.index(n) as VertexId;
        b.add_edge(s, t);
    }
    b.build()
}

/// Parameters of the recursive-matrix (R-MAT) generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Probability mass of the four quadrants; must sum to ~1.
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Bottom-right quadrant.
    pub d: f64,
}

impl RmatParams {
    /// The classical Graph500 parameterization — strong degree skew,
    /// friendster/social-network-like expansion.
    pub fn social() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// Milder skew, web-graph-like.
    pub fn web() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }
}

/// R-MAT graph over `2^scale` vertices with `edges` directed edges.
pub fn rmat(scale: u32, edges: usize, params: RmatParams, rng: &mut SeededRng) -> Graph {
    let n = 1usize << scale;
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "RmatParams must sum to 1 (got {sum})"
    );
    let mut b = GraphBuilder::new(n);
    for _ in 0..edges {
        let (mut lo_s, mut hi_s) = (0usize, n);
        let (mut lo_t, mut hi_t) = (0usize, n);
        while hi_s - lo_s > 1 {
            let r = rng.uniform() as f64;
            let (down, right) = if r < params.a {
                (false, false)
            } else if r < params.a + params.b {
                (false, true)
            } else if r < params.a + params.b + params.c {
                (true, false)
            } else {
                (true, true)
            };
            let mid_s = (lo_s + hi_s) / 2;
            let mid_t = (lo_t + hi_t) / 2;
            if down {
                lo_s = mid_s;
            } else {
                hi_s = mid_s;
            }
            if right {
                lo_t = mid_t;
            } else {
                hi_t = mid_t;
            }
        }
        b.add_edge(lo_s as VertexId, lo_t as VertexId);
    }
    b.build()
}

/// Window graph: every vertex draws `avg_degree` in-neighbors from a
/// Gaussian window of width `window` around its own id (clamped to range).
/// High id-locality — adjacent destination ranges share most neighbors —
/// modeling citation/web graphs laid out by crawl or publication order.
pub fn local_window(n: usize, avg_degree: f64, window: f64, rng: &mut SeededRng) -> Graph {
    assert!(n > 1, "local_window: need at least two vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        let deg = poissonish(avg_degree, rng);
        for _ in 0..deg {
            let offset = rng.normal() * window as f32;
            let u = (v as i64 + offset.round() as i64).clamp(0, n as i64 - 1) as VertexId;
            b.add_edge(u, v as VertexId);
        }
    }
    b.build()
}

/// Hybrid web-like graph: a `locality` fraction of each vertex's in-edges
/// come from a local window, the rest from a skewed (power-law) global
/// distribution. `locality = 1.0` is a pure window graph; `0.0` is pure
/// preferential-style attachment.
pub fn web_hybrid(
    n: usize,
    avg_degree: f64,
    locality: f64,
    window: f64,
    rng: &mut SeededRng,
) -> Graph {
    assert!((0.0..=1.0).contains(&locality), "locality must be in [0,1]");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        let deg = poissonish(avg_degree, rng);
        for _ in 0..deg {
            let u = if rng.chance(locality) {
                let offset = rng.normal() * window as f32;
                (v as i64 + offset.round() as i64).clamp(0, n as i64 - 1) as VertexId
            } else {
                // Zipf-ish hub selection: squaring a uniform biases toward a
                // small popular set; the Fibonacci scramble then spreads the
                // hub identities across the whole id range, as in real web
                // graphs (popular pages are not clustered by crawl order).
                let r = rng.uniform() as f64;
                let raw = ((r * r * n as f64) as u64).min(n as u64 - 1);
                ((raw.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % n as u64) as VertexId
            };
            b.add_edge(u, v as VertexId);
        }
    }
    b.build()
}

/// Planted-partition (stochastic block model) graph for accuracy runs: `k`
/// communities of equal size; a `p_in` fraction of each vertex's edges stay
/// inside its community. Returns the graph and the community assignment
/// (the ground-truth labels).
pub fn planted_partition(
    n: usize,
    k: usize,
    avg_degree: f64,
    p_in: f64,
    rng: &mut SeededRng,
) -> (Graph, Vec<u32>) {
    assert!(k >= 1 && n >= k, "planted_partition: need n >= k >= 1");
    let labels: Vec<u32> = (0..n).map(|v| (v % k) as u32).collect();
    // Group members by community for in-community sampling.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for (v, &c) in labels.iter().enumerate() {
        members[c as usize].push(v as VertexId);
    }
    let mut b = GraphBuilder::new(n);
    for (v, &label) in labels.iter().enumerate() {
        let c = label as usize;
        let deg = poissonish(avg_degree, rng);
        for _ in 0..deg {
            let u = if rng.chance(p_in) {
                members[c][rng.index(members[c].len())]
            } else {
                rng.index(n) as VertexId
            };
            b.add_undirected(u, v as VertexId);
        }
    }
    (b.build(), labels)
}

/// Small integer sample with mean `mean` (geometric-ish; cheap stand-in for
/// Poisson that preserves the mean and adds degree variance).
fn poissonish(mean: f64, rng: &mut SeededRng) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - base as f64;
    let mut d = base;
    if rng.chance(frac) {
        d += 1;
    }
    // add ±1 jitter half the time to avoid a degenerate degree distribution
    if d > 0 && rng.chance(0.25) {
        d -= 1;
    } else if rng.chance(0.25) {
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeededRng {
        SeededRng::new(0xC0FFEE)
    }

    #[test]
    fn erdos_renyi_hits_target_density() {
        let g = erdos_renyi(500, 8.0, &mut rng());
        assert_eq!(g.num_vertices(), 500);
        // Dedup and self-loop removal lose a few edges; allow 15% slack.
        let m = g.num_edges() as f64;
        assert!(m > 500.0 * 8.0 * 0.85 && m <= 500.0 * 8.0, "m = {m}");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = erdos_renyi(100, 4.0, &mut rng());
        let g2 = erdos_renyi(100, 4.0, &mut rng());
        assert_eq!(g1.csr.targets, g2.csr.targets);
    }

    #[test]
    fn rmat_produces_skewed_degrees() {
        let g = rmat(10, 8192, RmatParams::social(), &mut rng());
        assert!(g.validate().is_ok());
        let max_deg = (0..g.num_vertices())
            .map(|v| g.out_degree(v as u32))
            .max()
            .unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            (max_deg as f64) > avg * 10.0,
            "expected heavy skew: max {max_deg} vs avg {avg:.1}"
        );
    }

    #[test]
    fn rmat_social_is_more_skewed_than_web() {
        let gini = |g: &Graph| {
            let mut degs: Vec<usize> = (0..g.num_vertices())
                .map(|v| g.in_degree(v as u32))
                .collect();
            degs.sort_unstable();
            let n = degs.len() as f64;
            let sum: f64 = degs.iter().map(|&d| d as f64).sum();
            let weighted: f64 = degs
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n * sum) - (n + 1.0) / n
        };
        let gs = rmat(11, 20_000, RmatParams::social(), &mut rng());
        let gw = rmat(11, 20_000, RmatParams::web(), &mut rng());
        assert!(
            gini(&gs) > gini(&gw),
            "social {} vs web {}",
            gini(&gs),
            gini(&gw)
        );
    }

    #[test]
    fn local_window_has_local_edges() {
        let g = local_window(1000, 6.0, 20.0, &mut rng());
        assert!(g.validate().is_ok());
        let mut near = 0usize;
        let mut total = 0usize;
        for (s, t) in g.csr.edges() {
            total += 1;
            if (s as i64 - t as i64).abs() <= 80 {
                near += 1;
            }
        }
        assert!(near as f64 > 0.99 * total as f64, "near {near}/{total}");
    }

    #[test]
    fn web_hybrid_locality_knob_works() {
        let frac_local = |locality: f64| {
            let g = web_hybrid(2000, 6.0, locality, 25.0, &mut rng());
            let total = g.num_edges().max(1);
            let near = g
                .csr
                .edges()
                .filter(|&(s, t)| (s as i64 - t as i64).abs() <= 100)
                .count();
            near as f64 / total as f64
        };
        assert!(frac_local(0.9) > frac_local(0.1) + 0.2);
    }

    #[test]
    fn planted_partition_is_assortative() {
        let (g, labels) = planted_partition(600, 3, 8.0, 0.9, &mut rng());
        assert!(g.validate().is_ok());
        assert_eq!(labels.len(), 600);
        let intra = g
            .csr
            .edges()
            .filter(|&(s, t)| labels[s as usize] == labels[t as usize])
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.75, "intra-community fraction {frac}");
    }

    #[test]
    fn planted_partition_labels_cover_all_communities() {
        let (_, labels) = planted_partition(30, 5, 3.0, 0.8, &mut rng());
        let distinct: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn poissonish_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        let total: usize = (0..n).map(|_| poissonish(5.5, &mut r)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 5.5).abs() < 0.2, "mean {mean}");
    }
}
