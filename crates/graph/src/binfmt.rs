//! Compact binary graph format (`.htg`).
//!
//! Parsing billion-edge text edge lists is slow; production systems keep a
//! binary CSR on disk. Layout (little-endian):
//! `magic "HTG1" | n u64 | m u64 | offsets u64×(n+1) | targets u32×m`.
//! The CSC orientation is rebuilt on load (cheaper than storing both).

use crate::csr::{Csr, Graph};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HTG1";

/// Errors from binary graph (de)serialization.
#[derive(Debug)]
pub enum BinGraphError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structurally invalid file.
    Format(String),
}

impl std::fmt::Display for BinGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinGraphError::Io(e) => write!(f, "binary graph I/O error: {e}"),
            BinGraphError::Format(m) => write!(f, "binary graph format error: {m}"),
        }
    }
}

impl std::error::Error for BinGraphError {}

impl From<io::Error> for BinGraphError {
    fn from(e: io::Error) -> Self {
        BinGraphError::Io(e)
    }
}

/// Writes `g`'s CSR orientation in binary form.
pub fn write_graph(g: &Graph, mut w: impl Write) -> Result<(), BinGraphError> {
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &off in &g.csr.offsets {
        w.write_all(&(off as u64).to_le_bytes())?;
    }
    for &t in &g.csr.targets {
        w.write_all(&t.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph written by [`write_graph`], validating the structure.
pub fn read_graph(mut r: impl Read) -> Result<Graph, BinGraphError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinGraphError::Format("bad magic (not a .htg file)".into()));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    if n > u32::MAX as usize {
        return Err(BinGraphError::Format(format!(
            "vertex count {n} exceeds u32 ids"
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut targets = Vec::with_capacity(m);
    let mut buf = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf)?;
        targets.push(u32::from_le_bytes(buf));
    }
    let csr = Csr { offsets, targets };
    csr.validate().map_err(BinGraphError::Format)?;
    Ok(Graph::from_csr(csr))
}

/// File-path convenience for [`write_graph`].
pub fn write_graph_file(g: &Graph, path: impl AsRef<Path>) -> Result<(), BinGraphError> {
    let f = std::fs::File::create(path)?;
    write_graph(g, io::BufWriter::new(f))
}

/// File-path convenience for [`read_graph`].
pub fn read_graph_file(path: impl AsRef<Path>) -> Result<Graph, BinGraphError> {
    let f = std::fs::File::open(path)?;
    read_graph(io::BufReader::new(f))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use hongtu_tensor::SeededRng;

    #[test]
    fn roundtrip_preserves_structure() {
        let mut rng = SeededRng::new(3);
        let g = generators::erdos_renyi(500, 6.0, &mut rng);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g.csr.offsets, g2.csr.offsets);
        assert_eq!(g.csr.targets, g2.csr.targets);
        assert_eq!(g.csc.targets, g2.csc.targets);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(matches!(
            read_graph(&b"XXXX"[..]),
            Err(BinGraphError::Format(_))
        ));
        let mut rng = SeededRng::new(4);
        let g = generators::erdos_renyi(50, 3.0, &mut rng);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_graph(buf.as_slice()),
            Err(BinGraphError::Io(_))
        ));
    }

    #[test]
    fn rejects_corrupted_topology() {
        let mut rng = SeededRng::new(5);
        let g = generators::erdos_renyi(30, 3.0, &mut rng);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        // Corrupt a target id to be out of range.
        let last = buf.len() - 4;
        buf[last..].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(matches!(
            read_graph(buf.as_slice()),
            Err(BinGraphError::Format(_))
        ));
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let mut rng = SeededRng::new(6);
        let g = generators::erdos_renyi(400, 8.0, &mut rng);
        let mut bin = Vec::new();
        write_graph(&g, &mut bin).unwrap();
        let mut text = Vec::new();
        crate::io::write_edge_list(&g, &mut text).unwrap();
        assert!(bin.len() < text.len());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::from_csr(Csr::empty(4));
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hongtu_graph_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.htg");
        let mut rng = SeededRng::new(7);
        let g = generators::erdos_renyi(100, 4.0, &mut rng);
        write_graph_file(&g, &path).unwrap();
        let g2 = read_graph_file(&path).unwrap();
        assert_eq!(g.csr.targets, g2.csr.targets);
        std::fs::remove_file(&path).ok();
    }
}
