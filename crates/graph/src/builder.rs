//! Incremental graph construction with sorting and deduplication.

use crate::csr::{Csr, Graph, VertexId};

/// Collects edges and builds a [`Graph`] with sorted, deduplicated
/// adjacency lists.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph over vertices `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            allow_self_loops: false,
        }
    }

    /// Keep self-loops instead of dropping them (dropped by default, as GNN
    /// aggregation treats self-information via the UPDATE path).
    pub fn keep_self_loops(mut self) -> Self {
        self.allow_self_loops = true;
        self
    }

    /// Number of vertices this builder was created for.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges currently buffered (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge `src → dst`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        assert!(
            (src as usize) < self.n && (dst as usize) < self.n,
            "edge ({src},{dst}) out of range (n = {})",
            self.n
        );
        if src == dst && !self.allow_self_loops {
            return;
        }
        self.edges.push((src, dst));
    }

    /// Adds both `u → v` and `v → u`.
    pub fn add_undirected(&mut self, u: VertexId, v: VertexId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Bulk insertion from an iterator of pairs.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        for (s, t) in edges {
            self.add_edge(s, t);
        }
    }

    /// Consumes the builder and produces the dual-orientation graph.
    /// Parallel edges are deduplicated; adjacency lists come out sorted.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut offsets = vec![0usize; self.n + 1];
        for &(s, _) in &self.edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let targets = self.edges.iter().map(|&(_, t)| t).collect();
        let csr = Csr { offsets, targets };
        debug_assert!(csr.validate().is_ok());
        Graph::from_csr(csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dedups_parallel_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let mut b = GraphBuilder::new(2).keep_self_loops();
        b.add_edge(0, 0);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(0, 2);
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[2]);
        assert_eq!(g.out_neighbors(2), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    proptest! {
        /// Built graphs always satisfy structural invariants, and in/out
        /// degree sums both equal the edge count.
        #[test]
        fn built_graphs_are_valid(
            n in 1usize..40,
            raw in proptest::collection::vec((0u32..40, 0u32..40), 0..200)
        ) {
            let mut b = GraphBuilder::new(n);
            for (s, t) in raw {
                let (s, t) = (s % n as u32, t % n as u32);
                b.add_edge(s, t);
            }
            let g = b.build();
            prop_assert!(g.validate().is_ok());
            let out_sum: usize = (0..n).map(|v| g.out_degree(v as u32)).sum();
            let in_sum: usize = (0..n).map(|v| g.in_degree(v as u32)).sum();
            prop_assert_eq!(out_sum, g.num_edges());
            prop_assert_eq!(in_sum, g.num_edges());
            // Every CSR edge appears in CSC and vice versa.
            for (s, t) in g.csr.edges() {
                prop_assert!(g.in_neighbors(t).contains(&s));
            }
        }
    }
}
