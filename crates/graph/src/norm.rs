//! GCN edge normalization.
//!
//! Equation 2 of the paper aggregates with normalized edge weights
//! `d_uv`. We use the standard symmetric GCN normalization
//! `d_uv = 1 / sqrt((1 + out_deg(u)) · (1 + in_deg(v)))`; the `+1` guards
//! isolated vertices (equivalent to the usual self-loop-augmented degree).

use crate::csr::{Graph, VertexId};

/// Per-edge GCN weights aligned with the CSC (in-edge) layout: entry `k` of
/// the result weights edge `csc.targets[k] → v` where `v` is the
/// destination owning position `k`.
pub fn gcn_edge_weights(g: &Graph) -> Vec<f32> {
    let mut w = Vec::with_capacity(g.num_edges());
    for v in 0..g.num_vertices() {
        let v = v as VertexId;
        let dv = (1 + g.in_degree(v)) as f32;
        for &u in g.in_neighbors(v) {
            let du = (1 + g.out_degree(u)) as f32;
            w.push(1.0 / (du * dv).sqrt());
        }
    }
    w
}

/// In-degree mean normalization (`1 / in_deg(v)`), used by GraphSAGE-mean.
pub fn mean_edge_weights(g: &Graph) -> Vec<f32> {
    let mut w = Vec::with_capacity(g.num_edges());
    for v in 0..g.num_vertices() {
        let v = v as VertexId;
        let dv = g.in_degree(v).max(1) as f32;
        for _ in g.in_neighbors(v) {
            w.push(1.0 / dv);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.build()
    }

    #[test]
    fn gcn_weights_match_formula() {
        let g = toy();
        let w = gcn_edge_weights(&g);
        assert_eq!(w.len(), 3);
        // Edge 0→1: out_deg(0)=2, in_deg(1)=1 → 1/sqrt(3*2)
        let expect01 = 1.0 / ((3.0_f32) * 2.0).sqrt();
        // v=1 has one in-neighbor (0); it is the first CSC row with edges.
        assert!((w[0] - expect01).abs() < 1e-6);
        // Edges into v=2 come from {0, 1}: in_deg(2)=2.
        let expect02 = 1.0 / ((3.0_f32) * 3.0).sqrt();
        let expect12 = 1.0 / ((2.0_f32) * 3.0).sqrt();
        let mut got = [w[1], w[2]];
        got.sort_by(f32::total_cmp);
        let mut want = [expect02, expect12];
        want.sort_by(f32::total_cmp);
        assert!((got[0] - want[0]).abs() < 1e-6 && (got[1] - want[1]).abs() < 1e-6);
    }

    #[test]
    fn weights_are_positive_and_bounded() {
        let mut rng = hongtu_tensor::SeededRng::new(1);
        let g = crate::generators::erdos_renyi(200, 5.0, &mut rng);
        for &w in &gcn_edge_weights(&g) {
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn mean_weights_sum_to_one_per_vertex() {
        let g = toy();
        let w = mean_edge_weights(&g);
        // v=2 has two in-edges, each weighted 1/2.
        assert!((w[1] - 0.5).abs() < 1e-6 && (w[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_graph_has_no_weights() {
        let g = Graph::from_csr(crate::csr::Csr::empty(4));
        assert!(gcn_edge_weights(&g).is_empty());
    }
}
