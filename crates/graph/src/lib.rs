//! Graph data structures and generators for HongTu.
//!
//! Provides the compressed sparse row/column (CSR/CSC) graph representation
//! used by the computation engine (paper §6: "HongTu organizes the topology
//! of each subgraph chunk into the compressed sparse row/column formats"),
//! seeded synthetic graph generators standing in for the paper's datasets,
//! GCN edge normalization, degree statistics, and a simple edge-list text
//! format for interchange.

#![forbid(unsafe_code)]

pub mod binfmt;
pub mod builder;
pub mod csr;
pub mod generators;
pub mod io;
pub mod norm;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{Csc, Csr, Graph, VertexId};
pub use norm::gcn_edge_weights;
pub use stats::DegreeStats;
