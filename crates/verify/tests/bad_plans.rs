//! Hand-crafted *bad* plans, each triggering its documented diagnostic
//! code, plus mutation-style tests that perturb one field of a valid plan
//! and assert the verifier notices.
//!
//! The corruptions are the silent-data-corruption bugs the verifier
//! exists to catch: a duplicated destination, a mis-routed transition
//! vertex, an aliased buffer slot — none of which would crash the engine,
//! all of which would corrupt training.

use hongtu_graph::generators;
use hongtu_graph::{Graph, VertexId};
use hongtu_partition::subgraph::ChunkSubgraph;
use hongtu_partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};
use hongtu_tensor::SeededRng;
use hongtu_verify::{
    verify_all, verify_all_buffers, verify_buffers, verify_dedup, verify_partition, verify_volumes,
    DiagCode, Report,
};

fn triple(
    seed: u64,
    m: usize,
    n: usize,
) -> (Graph, TwoLevelPartition, DedupPlan, Vec<GpuBufferPlan>) {
    let mut rng = SeededRng::new(seed);
    let g = generators::web_hybrid(800, 6.0, 0.9, 30.0, &mut rng);
    let plan = TwoLevelPartition::build(&g, m, n, seed);
    let dedup = DedupPlan::build(&plan);
    let bufs = GpuBufferPlan::build_all(&plan, &dedup);
    (g, plan, dedup, bufs)
}

fn codes(diags: &[hongtu_verify::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code.code()).collect()
}

/// Rebuilds chunk `(i, j)` from a doctored destination list, keeping the
/// chunk structurally valid so only the intended invariant breaks.
fn rebuild_chunk(
    g: &Graph,
    plan: &mut TwoLevelPartition,
    i: usize,
    j: usize,
    dests: Vec<VertexId>,
) {
    plan.chunks[i][j] = ChunkSubgraph::build(g, i, j, dests);
}

// ---------------------------------------------------------------- P codes

#[test]
fn duplicated_destination_is_p001() {
    let (g, mut plan, _, _) = triple(1, 3, 3);
    // Give chunk (0, 1) a destination that chunk (0, 0) already owns. The
    // rebuilt chunk is structurally sound — only ownership is violated.
    let stolen = plan.chunks[0][0].dests[0];
    let mut dests = plan.chunks[0][1].dests.clone();
    dests.push(stolen);
    dests.sort_unstable();
    rebuild_chunk(&g, &mut plan, 0, 1, dests);
    let diags = verify_partition(&g, &plan);
    assert!(codes(&diags).contains(&"P001"), "{diags:?}");
    // No structural or edge problems: the overlap is the only finding.
    assert!(
        diags.iter().all(|d| d.code == DiagCode::ChunkOverlap),
        "{diags:?}"
    );
}

#[test]
fn dropped_destination_is_p002() {
    let (g, mut plan, _, _) = triple(2, 2, 3);
    let mut dests = plan.chunks[1][0].dests.clone();
    let dropped = dests.remove(dests.len() / 2);
    rebuild_chunk(&g, &mut plan, 1, 0, dests);
    let diags = verify_partition(&g, &plan);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::CoverageGap),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.location.vertex == Some(dropped)),
        "{diags:?}"
    );
}

#[test]
fn removed_in_edge_is_p003() {
    let (g, mut plan, _, _) = triple(3, 2, 2);
    // Drop the last in-edge of a chunk: offsets stay monotone and
    // consistent with the edge arrays, so P004 stays silent.
    let c = &mut plan.chunks[0][0];
    let k = (0..c.dests.len())
        .rev()
        .find(|&k| c.offsets[k + 1] > c.offsets[k])
        .expect("some dest with an in-edge");
    assert_eq!(k, c.dests.len() - 1, "last dest must carry the last edge");
    c.nbr_index.pop();
    c.gcn_weights.pop();
    *c.offsets.last_mut().unwrap() -= 1;
    let victim = c.dests[k];
    let diags = verify_partition(&g, &plan);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::MissingInEdge),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.location.vertex == Some(victim)),
        "{diags:?}"
    );
}

#[test]
fn unsorted_neighbor_list_is_p004() {
    let (g, mut plan, _, _) = triple(4, 2, 2);
    plan.chunks[1][1].neighbors.swap(0, 1);
    let diags = verify_partition(&g, &plan);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::ChunkStructure),
        "{diags:?}"
    );
}

#[test]
fn wrong_chunk_ids_are_p005() {
    let (g, mut plan, _, _) = triple(5, 2, 2);
    plan.chunks[0][0].chunk = 1;
    let diags = verify_partition(&g, &plan);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::GridShape),
        "{diags:?}"
    );
}

#[test]
fn assignment_disagreement_is_p005() {
    let (g, mut plan, _, _) = triple(6, 3, 2);
    // Flip one vertex's level-1 label without touching the chunks.
    let v = plan.chunks[0][0].dests[0] as usize;
    plan.assignment.partition_of[v] = 1;
    let diags = verify_partition(&g, &plan);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::GridShape),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- D codes

/// First (batch, gpu) whose transition set has at least `len` vertices.
fn fat_set(dedup: &DedupPlan, len: usize) -> (usize, usize) {
    for (j, b) in dedup.batches.iter().enumerate() {
        for (i, t) in b.transition.iter().enumerate() {
            if t.len() >= len {
                return (j, i);
            }
        }
    }
    panic!("no transition set with {len} vertices");
}

#[test]
fn unsorted_transition_is_d101() {
    let (_, plan, mut dedup, _) = triple(7, 3, 3);
    let (j, i) = fat_set(&dedup, 2);
    dedup.batches[j].transition[i].swap(0, 1);
    let diags = verify_dedup(&plan, &dedup);
    assert!(codes(&diags).contains(&"D101"), "{diags:?}");
}

#[test]
fn misrouted_transition_vertex_is_d102() {
    let (_, plan, mut dedup, _) = triple(8, 3, 3);
    // Move one vertex from GPU 0's transition set to GPU 1's (sorted
    // insert, so D101 stays silent).
    let (j, _) = fat_set(&dedup, 2);
    let v = dedup.batches[j].transition[0].remove(0);
    let t = &mut dedup.batches[j].transition[1];
    let pos = t.binary_search(&v).unwrap_err();
    t.insert(pos, v);
    let diags = verify_dedup(&plan, &dedup);
    assert!(codes(&diags).contains(&"D102"), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.location.vertex == Some(v)),
        "{diags:?}"
    );
}

#[test]
fn vertex_in_two_transition_sets_is_d103() {
    let (_, plan, mut dedup, _) = triple(9, 3, 3);
    let (j, i) = fat_set(&dedup, 1);
    let v = dedup.batches[j].transition[i][0];
    let other = (i + 1) % 3;
    let t = &mut dedup.batches[j].transition[other];
    let pos = t.binary_search(&v).unwrap_err();
    t.insert(pos, v);
    let diags = verify_dedup(&plan, &dedup);
    assert!(codes(&diags).contains(&"D103"), "{diags:?}");
}

#[test]
fn vertex_dropped_from_union_is_d104() {
    let (_, plan, mut dedup, _) = triple(10, 2, 3);
    let (j, i) = fat_set(&dedup, 2);
    dedup.batches[j].transition[i].remove(0);
    let diags = verify_dedup(&plan, &dedup);
    assert!(codes(&diags).contains(&"D104"), "{diags:?}");
}

#[test]
fn duplicated_cpu_load_is_d105() {
    // The ISSUE's canonical corruption: one vertex loaded host→GPU twice —
    // present in ℕ^cpu_ij although it is reused from batch j−1.
    let (_, plan, mut dedup, _) = triple(11, 3, 4);
    let (j, i) = (1..plan.n)
        .flat_map(|j| (0..plan.m).map(move |i| (j, i)))
        .find(|&(j, i)| dedup.batches[j].reused[i] > 0)
        .expect("some batch with intra-GPU reuse");
    let reused_v = *dedup.batches[j].transition[i]
        .iter()
        .find(|v| dedup.batches[j].new_from_cpu[i].binary_search(v).is_err())
        .expect("a reused vertex");
    let fresh = &mut dedup.batches[j].new_from_cpu[i];
    let pos = fresh.binary_search(&reused_v).unwrap_err();
    fresh.insert(pos, reused_v);
    let diags = verify_dedup(&plan, &dedup);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::CpuLoadMismatch),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.location.vertex == Some(reused_v)),
        "{diags:?}"
    );
}

#[test]
fn wrong_reuse_count_is_d106() {
    let (_, plan, mut dedup, _) = triple(12, 2, 3);
    dedup.batches[1].reused[0] += 1;
    let diags = verify_dedup(&plan, &dedup);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::ReuseCountWrong),
        "{diags:?}"
    );
    assert_eq!(diags.len(), 1);
}

#[test]
fn corrupted_fetch_cell_is_d107_and_d108() {
    let (_, plan, mut dedup, _) = triple(13, 3, 2);
    dedup.batches[0].fetch[1][2] += 1;
    let diags = verify_dedup(&plan, &dedup);
    // One bad cell breaks both the row-sum and the cell identity.
    assert!(codes(&diags).contains(&"D107"), "{diags:?}");
    assert!(codes(&diags).contains(&"D108"), "{diags:?}");
}

#[test]
fn truncated_plan_is_d109() {
    let (_, plan, mut dedup, _) = triple(14, 2, 3);
    dedup.batches.pop();
    let diags = verify_dedup(&plan, &dedup);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::PlanShapeMismatch),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- B codes

#[test]
fn aliased_slot_is_b201() {
    let (_, plan, dedup, mut bufs) = triple(15, 2, 3);
    // In batch 0 everything is incoming, so pointing vertex t1 at vertex
    // t0's slot (and updating its incoming row and neighbor slots to
    // match) leaves exactly one broken invariant: two live vertices in
    // one slot.
    let bp = &mut bufs[0];
    let b = &mut bp.batches[0];
    let (t0, t1) = (0usize, 1usize);
    let shared = b.position[t0];
    let old = b.position[t1];
    b.position[t1] = shared;
    for inc in b.incoming.iter_mut() {
        if inc.0 == t1 as u32 {
            inc.1 = shared;
        }
    }
    for s in b.nbr_slot.iter_mut() {
        if *s == old {
            *s = shared;
        }
    }
    let diags = verify_buffers(&plan, &dedup, &bufs[0]);
    assert!(codes(&diags).contains(&"B201"), "{diags:?}");
}

#[test]
fn misdirected_neighbor_read_is_b202() {
    let (_, plan, dedup, mut bufs) = triple(16, 2, 3);
    // Route one neighbor read to a different (valid, occupied) slot.
    let b = &mut bufs[1].batches[0];
    assert!(b.nbr_slot.len() >= 2);
    b.nbr_slot[0] = b.nbr_slot[1];
    let diags = verify_buffers(&plan, &dedup, &bufs[1]);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::ReadUnwritten),
        "{diags:?}"
    );
    assert_eq!(diags.len(), 1);
}

#[test]
fn moved_slot_without_rewrite_is_b203() {
    let (_, plan, dedup, mut bufs) = triple(17, 2, 4);
    // Find a batch with a genuinely reused row, then claim it sits in a
    // fresh slot it was never copied to — a stale-read / use-after-free.
    let bp = &mut bufs[0];
    let (j, t) = (1..bp.batches.len())
        .find_map(|j| {
            let b = &bp.batches[j];
            let incoming: std::collections::HashSet<u32> =
                b.incoming.iter().map(|&(t, _)| t).collect();
            (0..b.merged.len())
                .find(|&t| !incoming.contains(&(t as u32)))
                .map(|t| (j, t))
        })
        .expect("some reused row");
    let fresh_slot = bp.capacity as u32 - 1;
    let b = &mut bp.batches[j];
    let v = b.merged[t];
    // Ensure the chosen slot is not otherwise occupied this batch.
    assert!(!b.position.contains(&fresh_slot) || b.position[t] == fresh_slot);
    let old = b.position[t];
    b.position[t] = fresh_slot;
    for s in b.nbr_slot.iter_mut() {
        if *s == old {
            *s = fresh_slot;
        }
    }
    let diags = verify_buffers(&plan, &dedup, &bufs[0]);
    assert!(codes(&diags).contains(&"B203"), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.location.vertex == Some(v)),
        "{diags:?}"
    );
}

#[test]
fn understated_capacity_is_b204() {
    let (_, plan, dedup, mut bufs) = triple(18, 2, 3);
    // The declared capacity is the high-water mark, so shrinking it by one
    // strands whichever rows were planned into the top slot.
    bufs[0].capacity -= 1;
    let diags = verify_buffers(&plan, &dedup, &bufs[0]);
    assert!(!diags.is_empty());
    assert!(
        diags.iter().all(|d| d.code == DiagCode::CapacityExceeded),
        "{diags:?}"
    );
}

#[test]
fn wrong_merged_set_is_b205() {
    let (_, plan, dedup, mut bufs) = triple(19, 2, 3);
    let b = &mut bufs[1].batches[0];
    b.merged.pop();
    b.position.pop();
    let diags = verify_buffers(&plan, &dedup, &bufs[1]);
    assert!(codes(&diags).contains(&"B205"), "{diags:?}");
}

#[test]
fn mislabelled_gpu_plan_is_b205() {
    let (_, plan, dedup, mut bufs) = triple(20, 3, 2);
    bufs.swap(0, 1);
    let diags = verify_all_buffers(&plan, &dedup, &bufs);
    assert!(
        diags.iter().all(|d| d.code == DiagCode::MergedSetWrong),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- V codes

#[test]
fn volume_mismatches_are_v301_v302_v303() {
    let (_, plan, dedup, _) = triple(21, 3, 3);

    // V_ori is derived from the fetch matrix.
    let mut d = dedup.clone();
    d.batches[0].fetch[0][0] += 1;
    let diags = verify_volumes(&plan, &d);
    assert!(
        diags.iter().all(|x| x.code == DiagCode::VOriMismatch),
        "{diags:?}"
    );

    // V_+p2p is derived from transition-set sizes.
    let mut d = dedup.clone();
    let v = d.batches[0].transition[0][0];
    d.batches[0].transition[0].push(v);
    let diags = verify_volumes(&plan, &d);
    assert!(
        diags.iter().all(|x| x.code == DiagCode::VP2pMismatch),
        "{diags:?}"
    );

    // V_+ru is derived from CPU-load sizes.
    let mut d = dedup.clone();
    let v = d.batches[0].new_from_cpu[0][0];
    d.batches[0].new_from_cpu[0].push(v);
    let diags = verify_volumes(&plan, &d);
    assert!(
        diags.iter().all(|x| x.code == DiagCode::VRuMismatch),
        "{diags:?}"
    );
}

// ------------------------------------------------------- mutation battery

/// Every single-field perturbation of a valid triple must be detected by
/// `verify_all` with its documented code, and the pristine triple must
/// stay clean — the mutation-testing framing of the suites above.
#[test]
fn mutation_battery_all_detected() {
    type Mutation = (
        &'static str,
        DiagCode,
        fn(&Graph, &mut TwoLevelPartition, &mut DedupPlan, &mut Vec<GpuBufferPlan>),
    );
    let mutations: [Mutation; 8] = [
        (
            "swap two chunk dests across partitions",
            DiagCode::GridShape,
            |g, p, _, _| {
                let a = p.chunks[0][0].dests[0];
                let b = p.chunks[1][0].dests[0];
                let mut da = p.chunks[0][0].dests.clone();
                let mut db = p.chunks[1][0].dests.clone();
                da[0] = b;
                db[0] = a;
                da.sort_unstable();
                db.sort_unstable();
                rebuild_chunk(g, p, 0, 0, da);
                rebuild_chunk(g, p, 1, 0, db);
            },
        ),
        (
            "duplicate a neighbor entry",
            DiagCode::ChunkStructure,
            |_, p, _, _| {
                let c = &mut p.chunks[0][0];
                c.neighbors[1] = c.neighbors[0];
            },
        ),
        (
            "clear a transition set",
            DiagCode::TransitionUnionMismatch,
            |_, _, d, _| {
                let (j, i) = fat_set(d, 1);
                d.batches[j].transition[i].clear();
            },
        ),
        (
            "zero the reuse counts",
            DiagCode::ReuseCountWrong,
            |_, p, d, _| {
                let (j, i) = (1..p.n)
                    .flat_map(|j| (0..p.m).map(move |i| (j, i)))
                    .find(|&(j, i)| d.batches[j].reused[i] > 0)
                    .expect("reuse somewhere");
                d.batches[j].reused[i] = 0;
            },
        ),
        (
            "transpose the fetch matrix",
            DiagCode::FetchCellMismatch,
            |_, _, d, _| {
                let b = &mut d.batches[0];
                let f = b.fetch.clone();
                let asym = (0..f.len())
                    .flat_map(|i| (0..f.len()).map(move |k| (i, k)))
                    .find(|&(i, k)| f[i][k] != f[k][i])
                    .expect("asymmetric fetch cell");
                for (i, row) in f.iter().enumerate() {
                    for (k, _) in row.iter().enumerate() {
                        b.fetch[i][k] = f[k][i];
                    }
                }
                let _ = asym;
            },
        ),
        (
            "swap two buffer positions",
            DiagCode::ReadUnwritten,
            |_, _, _, bufs| {
                // Swapping positions without updating nbr_slot misroutes every
                // read of the two vertices.
                let b = &mut bufs[0].batches[0];
                b.position.swap(0, 1);
                let (i0, i1) = (b.incoming[0].1, b.incoming[1].1);
                b.incoming[0].1 = i1;
                b.incoming[1].1 = i0;
            },
        ),
        (
            "shrink one nbr_slot vector",
            DiagCode::MergedSetWrong,
            |_, _, _, bufs| {
                bufs[1].batches[0].nbr_slot.pop();
            },
        ),
        (
            "drop the last buffer plan",
            DiagCode::MergedSetWrong,
            |_, _, _, bufs| {
                bufs.pop();
            },
        ),
    ];

    for (k, (what, code, mutate)) in mutations.into_iter().enumerate() {
        let (g, mut plan, mut dedup, mut bufs) = triple(100 + k as u64, 2, 3);
        assert!(
            verify_all(&g, &plan, &dedup, &bufs).is_ok(),
            "pristine triple {k} must verify clean"
        );
        mutate(&g, &mut plan, &mut dedup, &mut bufs);
        let report: Report = verify_all(&g, &plan, &dedup, &bufs);
        assert!(!report.is_ok(), "mutation {k} ({what}) went undetected");
        assert!(
            report.has(code),
            "mutation {k} ({what}) expected {} in:\n{}",
            code.code(),
            report.render()
        );
    }
}
