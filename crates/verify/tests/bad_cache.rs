//! Hand-crafted *bad* cache journals, each firing its documented `H10xx`
//! diagnostic in isolation, plus a clean-journal control.
//!
//! The corruptions mirror the silent bugs pass 11 exists to catch: a hit
//! charged before the row was installed (the executor would skip an H2D
//! for a row not on the GPU), a delta commit that leaves a patched row
//! resident (every later sweep serves stale features), an install the
//! plan never admitted, and a resident set that outgrows its headroom.

use hongtu_cache::{
    load_sets, CacheEvent, CacheLog, CachePlan, CacheRuntime, FrequencyRanked, LoadPattern,
};
use hongtu_graph::Graph;
use hongtu_partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};
use hongtu_tensor::SeededRng;
use hongtu_verify::{verify_cache, DiagCode};

const SLOT: usize = 32;

fn triple(seed: u64, m: usize, n: usize) -> (Graph, TwoLevelPartition, DedupPlan) {
    let mut rng = SeededRng::new(seed);
    let g = hongtu_graph::generators::web_hybrid(800, 6.0, 0.9, 30.0, &mut rng);
    let plan = TwoLevelPartition::build(&g, m, n, seed);
    let dedup = DedupPlan::build(&plan);
    (g, plan, dedup)
}

/// Builds a plan + a runtime that has committed `sweeps` full sweeps, and
/// returns everything pass 11 needs.
fn setup(
    seed: u64,
    m: usize,
    n: usize,
    sweeps: usize,
) -> (
    Graph,
    TwoLevelPartition,
    DedupPlan,
    Vec<GpuBufferPlan>,
    Vec<usize>,
    CachePlan,
    CacheRuntime,
) {
    let (g, plan, dedup) = triple(seed, m, n);
    let bufs = GpuBufferPlan::build_all(&plan, &dedup);
    let sets = load_sets(&plan, &dedup, Some(&bufs), LoadPattern::P2pRu);
    let degrees: Vec<u32> = (0..g.num_vertices())
        .map(|v| g.out_degree(v as u32) as u32)
        .collect();
    let headroom = vec![4096usize; m];
    let cache = CachePlan::build(&sets, &degrees, &headroom, SLOT, &FrequencyRanked);
    assert!(!cache.is_empty(), "seed {seed} admitted nothing");
    let mut rt = CacheRuntime::new(cache.clone(), sets, g.num_vertices(), None);
    for _ in 0..sweeps {
        rt.begin_sweep();
        rt.end_sweep(&vec![true; n]);
    }
    (g, plan, dedup, bufs, headroom, cache, rt)
}

fn certify(
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bufs: &[GpuBufferPlan],
    cache: &CachePlan,
    headroom: &[usize],
    log: &CacheLog,
) -> hongtu_verify::Report {
    verify_cache(
        plan,
        dedup,
        Some(bufs),
        LoadPattern::P2pRu,
        cache,
        headroom,
        log,
    )
}

#[test]
fn honest_journal_certifies_clean() {
    let (_, plan, dedup, bufs, headroom, cache, mut rt) = setup(1, 3, 3, 2);
    // A delta invalidation the runtime performed itself is also clean.
    let victim = cache.per_gpu[0].vertices[0];
    rt.invalidate(&[victim]);
    rt.begin_sweep();
    rt.end_sweep(&[true, true, true]);
    let report = certify(&plan, &dedup, &bufs, &cache, &headroom, rt.log());
    assert!(report.is_ok(), "{}", report.render());
}

#[test]
fn overfull_plan_is_h1001() {
    let (_, plan, dedup, bufs, _, cache, rt) = setup(2, 2, 3, 1);
    // Shrink the declared headroom below what the plan spends.
    let tiny = vec![SLOT - 1; 2];
    let report = certify(&plan, &dedup, &bufs, &cache, &tiny, rt.log());
    assert!(report.has(DiagCode::CacheOverflow), "{}", report.render());
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.code == DiagCode::CacheOverflow),
        "{}",
        report.render()
    );
}

#[test]
fn hit_before_install_is_h1002() {
    let (_, plan, dedup, bufs, headroom, cache, rt) = setup(3, 2, 3, 1);
    let mut log = rt.log().clone();
    // Doctor the first (cold) sweep to claim a hit nothing installed yet.
    match &mut log.events[0] {
        CacheEvent::Sweep { hits, .. } => hits[0][0] += 1,
        other => panic!("expected sweep event, got {other:?}"),
    }
    let report = certify(&plan, &dedup, &bufs, &cache, &headroom, &log);
    assert!(report.has(DiagCode::CachePhantomHit), "{}", report.render());
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.code == DiagCode::CachePhantomHit),
        "{}",
        report.render()
    );
}

#[test]
fn hit_on_pruned_batch_is_h1002() {
    let (_, plan, dedup, bufs, headroom, cache, mut rt) = setup(4, 2, 3, 1);
    rt.begin_sweep();
    rt.end_sweep(&[true, false, true]); // batch 1 pruned by a cone mask
    let mut log = rt.log().clone();
    match log.events.last_mut().unwrap() {
        CacheEvent::Sweep { hits, .. } => hits[1][1] = 1, // claims a pruned-batch hit
        other => panic!("expected sweep event, got {other:?}"),
    }
    let report = certify(&plan, &dedup, &bufs, &cache, &headroom, &log);
    assert!(report.has(DiagCode::CachePhantomHit), "{}", report.render());
}

#[test]
fn stale_row_after_delta_is_h1003() {
    let (_, plan, dedup, bufs, headroom, cache, mut rt) = setup(5, 2, 3, 2);
    let victim = cache.per_gpu[0].vertices[0];
    rt.invalidate(&[victim]);
    let mut log = rt.log().clone();
    // Doctor the invalidation to "forget" dropping the row on GPU 0.
    match log.events.last_mut().unwrap() {
        CacheEvent::Invalidate { removed, .. } => {
            let pos = removed[0]
                .binary_search(&victim)
                .expect("victim was resident");
            removed[0].remove(pos);
        }
        other => panic!("expected invalidate event, got {other:?}"),
    }
    let report = certify(&plan, &dedup, &bufs, &cache, &headroom, &log);
    assert!(report.has(DiagCode::CacheStaleRow), "{}", report.render());
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.code == DiagCode::CacheStaleRow),
        "{}",
        report.render()
    );
}

#[test]
fn unplanned_install_is_h1004() {
    let (_, plan, dedup, bufs, headroom, mut cache, rt) = setup(6, 2, 3, 1);
    let log = rt.log().clone();
    // The journal installed rows the (now doctored) plan never admitted:
    // retroactively shrink GPU 0's admitted set.
    let dropped = cache.per_gpu[0].vertices.pop().expect("non-empty plan");
    cache.per_gpu[0].bytes -= SLOT;
    let installed_dropped = match &log.events[0] {
        CacheEvent::Sweep { installs, .. } => installs[0].contains(&dropped),
        other => panic!("expected sweep event, got {other:?}"),
    };
    assert!(
        installed_dropped,
        "first sweep should install every admitted row"
    );
    let report = certify(&plan, &dedup, &bufs, &cache, &headroom, &log);
    assert!(
        report.has(DiagCode::CacheUnplannedInstall),
        "{}",
        report.render()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.code == DiagCode::CacheUnplannedInstall),
        "{}",
        report.render()
    );
}

#[test]
fn double_install_is_h1004() {
    let (_, plan, dedup, bufs, headroom, cache, rt) = setup(7, 2, 3, 1);
    let mut log = rt.log().clone();
    // Replay the cold sweep twice: the second installs rows already
    // resident.
    let first = log.events[0].clone();
    log.events.push(first);
    let report = certify(&plan, &dedup, &bufs, &cache, &headroom, &log);
    assert!(
        report.has(DiagCode::CacheUnplannedInstall),
        "{}",
        report.render()
    );
}
