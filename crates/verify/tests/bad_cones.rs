//! Hand-corrupted *bad* cone masks, each triggering its documented
//! `C9xx` diagnostic — the mutation suite for the cone-closure pass,
//! mirroring `bad_dataflow.rs` for pass 9.
//!
//! Each test starts from a well-formed activity grid and applies one
//! surgical corruption: flipping a single step breaks exactly the
//! declared closure direction, and shape corruptions (empty, ragged,
//! all-inactive) are malformed regardless of direction. Each test
//! asserts its own code fires and the sibling code stays quiet, so the
//! codes genuinely discriminate failure modes.

use hongtu_verify::{verify_cone, ConeDir, DiagCode};

/// A 3-layer × 4-batch downward-closed cone (widens toward layer 0).
fn down_grid() -> Vec<Vec<bool>> {
    vec![
        vec![true, true, true, true],
        vec![true, true, true, false],
        vec![false, true, true, false],
    ]
}

/// Its upward-closed mirror (widens toward layer L−1).
fn up_grid() -> Vec<Vec<bool>> {
    let mut g = down_grid();
    g.reverse();
    g
}

#[test]
fn well_formed_grids_certify() {
    assert!(verify_cone(&down_grid(), ConeDir::Downward).is_ok());
    assert!(verify_cone(&up_grid(), ConeDir::Upward).is_ok());
}

#[test]
fn downward_hole_fires_cone_not_closed() {
    let mut g = down_grid();
    // Batch 2 active at layer 2 but deactivated at layer 1: the sweep
    // would read layer-1 rows never recomputed.
    g[1][2] = false;
    let r = verify_cone(&g, ConeDir::Downward);
    assert!(r.has(DiagCode::ConeNotClosed), "{}", r.render());
    assert!(!r.has(DiagCode::ConeShapeInvalid));
    assert!(r.render().contains("C901"));
}

#[test]
fn upward_hole_fires_cone_not_closed() {
    let mut g = up_grid();
    // Batch 1 active at layer 0 but deactivated at layer 1: the replay
    // would skip rows the layer-0 recompute invalidated.
    g[1][1] = false;
    let r = verify_cone(&g, ConeDir::Upward);
    assert!(r.has(DiagCode::ConeNotClosed), "{}", r.render());
    assert!(!r.has(DiagCode::ConeShapeInvalid));
}

#[test]
fn direction_is_not_symmetric() {
    // A strictly-downward grid read as an upward cone is broken, and
    // vice versa — the pass checks the *declared* direction.
    assert!(verify_cone(&down_grid(), ConeDir::Upward).has(DiagCode::ConeNotClosed));
    assert!(verify_cone(&up_grid(), ConeDir::Downward).has(DiagCode::ConeNotClosed));
}

#[test]
fn shape_corruptions_fire_cone_shape_invalid() {
    // Empty grid.
    let r = verify_cone(&[], ConeDir::Downward);
    assert!(r.has(DiagCode::ConeShapeInvalid));
    assert!(r.render().contains("C902"));

    // Ragged grid.
    let mut ragged = down_grid();
    ragged[2].pop();
    let r = verify_cone(&ragged, ConeDir::Downward);
    assert!(r.has(DiagCode::ConeShapeInvalid), "{}", r.render());

    // All-inactive grid: nothing to sweep is a caller bug, not a
    // degenerate success.
    let dead = vec![vec![false; 4]; 3];
    let r = verify_cone(&dead, ConeDir::Upward);
    assert!(r.has(DiagCode::ConeShapeInvalid));
    assert!(!r.has(DiagCode::ConeNotClosed));
}
