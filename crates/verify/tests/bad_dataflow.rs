//! Hand-corrupted *bad* dataflows, each triggering its documented `F8xx`
//! diagnostic — the mutation suite for the conservation pass (pass 9),
//! mirroring `bad_schedules.rs` for passes 7–8.
//!
//! Each test starts from a miniature but faithful rendition of one
//! training batch's provenance-annotated flow on a 3-GPU P2P config
//! (host-load of the transition rows, two remote fetches, aggregation,
//! activation store/consume, local + pushed gradient accumulations,
//! flush) and applies one surgical corruption. Every corruption is
//! *schedule-safe* — passes 5–8 certify all of them clean — yet each
//! silently corrupts the training values; only the conservation ledgers
//! catch them. Each test asserts its own code fires and its siblings
//! stay quiet, so the codes genuinely discriminate failure modes.

use hongtu_sim::{
    Access, BarrierScope, ContribKind, Device, Event, EventKind, Provenance, Region, ResourceId,
    Trace,
};
use hongtu_verify::{verify_dataflow, ChunkFlow, CommKind, DataflowSpec, DiagCode, Report};

fn sev(g: u32, kind: EventKind, accesses: Vec<Access>) -> Event {
    Event::new(kind, Device::Gpu(g), 64, 1e-6, 0.0).with_accesses(accesses)
}

fn barrier(scope: BarrierScope) -> Event {
    Event::new(EventKind::Barrier(scope), Device::Host, 0, 0.0, 0.0)
}

fn trace_of(events: Vec<Event>) -> Trace {
    let mut t = Trace::unbounded();
    for e in events {
        t.record(e);
    }
    t
}

const REP: ResourceId = ResourceId::DevRep { gpu: 0 };
const GRAD: ResourceId = ResourceId::DevGrad { gpu: 0 };
const ACT: ResourceId = ResourceId::Rep { layer: 1 };

/// The spec the clean flow satisfies: GPU 0, batch 0, P2P dedup.
/// Demand `|N_00| = 10` decomposes by owner as `[5, 3, 2]`; the
/// transition set `ℕ_00` has 6 rows (one more than the own-demand 5 —
/// transitions may over-cover), GPUs 1 and 2 serve their demands
/// exactly. Backward transposes the forward: 6 locally-accumulated rows
/// (`fetch[0][0]`), 4 pushed back by GPU 1 and 1 by GPU 2, 6 flushed.
fn spec() -> DataflowSpec {
    let flow = ChunkFlow {
        demand_total: 10,
        demand_by_owner: vec![5, 3, 2],
        host_rows: 6,
        fetch_rows: vec![0, 3, 2],
        reuse_rows: 0,
        reuse_by_owner: vec![0, 0, 0],
        grad_local_rows: 6,
        grad_push_rows: vec![0, 4, 1],
        grad_flush_rows: 6,
    };
    DataflowSpec {
        comm: CommKind::P2p,
        m: 3,
        n: 1,
        flows: vec![
            vec![flow],
            vec![ChunkFlow::default()],
            vec![ChunkFlow::default()],
        ],
    }
}

/// Indices of the clean flow's events, so mutations can name their
/// target without counting.
const HOST_LOAD: usize = 0;
const FETCH_1: usize = 1;
const FETCH_2: usize = 2;
#[allow(dead_code)]
const AGGREGATE: usize = 3;
const ACT_STORE: usize = 4;
const ACT_CONSUME: usize = 5;
#[allow(dead_code)]
const GRAD_LOCAL: usize = 6;
const GRAD_PUSH_1: usize = 7;
const GRAD_PUSH_2: usize = 8;
const GRAD_FLUSH: usize = 9;

/// One conserved batch: every contribution delivered exactly once,
/// activation consumed before anything overwrites it, backward flow the
/// exact transpose of the forward.
fn clean_flow() -> Vec<Event> {
    vec![
        // Forward supply: transition rows from the host, demand-exact
        // remote fetches from GPUs 1 and 2.
        sev(
            0,
            EventKind::H2D,
            vec![Access::write(REP, Region::Owned).with_prov(
                Provenance::new(ContribKind::HostLoad, 0, 0)
                    .owned_by(0)
                    .rows(6),
            )],
        ),
        sev(
            0,
            EventKind::D2D,
            vec![Access::write(REP, Region::Fetched).with_prov(
                Provenance::new(ContribKind::Fetch, 0, 0)
                    .owned_by(1)
                    .from_gpu(1)
                    .rows(3),
            )],
        ),
        sev(
            0,
            EventKind::D2D,
            vec![Access::write(REP, Region::Fetched).with_prov(
                Provenance::new(ContribKind::Fetch, 0, 0)
                    .owned_by(2)
                    .from_gpu(2)
                    .rows(2),
            )],
        ),
        // Aggregation closes the supply ledger.
        sev(
            0,
            EventKind::GpuCompute,
            vec![Access::read(REP, Region::All)
                .with_prov(Provenance::new(ContribKind::Aggregate, 0, 0).rows(10))],
        ),
        // Activation store, then its consuming read (next layer / loss).
        sev(
            0,
            EventKind::D2H,
            vec![
                Access::write(ACT, Region::Chunk { gpu: 0, chunk: 0 }).with_prov(
                    Provenance::new(ContribKind::ActStore, 1, 0)
                        .owned_by(0)
                        .rows(4),
                ),
            ],
        ),
        sev(
            0,
            EventKind::CpuCompute,
            vec![Access::read(ACT, Region::Chunk { gpu: 0, chunk: 0 })],
        ),
        // Backward: local accumulation plus the transposed pushes.
        sev(
            0,
            EventKind::GpuCompute,
            vec![Access::accum(GRAD, Region::All).with_prov(
                Provenance::new(ContribKind::GradLocal, 0, 0)
                    .owned_by(0)
                    .rows(6),
            )],
        ),
        sev(
            1,
            EventKind::D2D,
            vec![Access::accum(GRAD, Region::All).with_prov(
                Provenance::new(ContribKind::GradPush, 0, 0)
                    .owned_by(0)
                    .from_gpu(1)
                    .rows(4),
            )],
        ),
        sev(
            2,
            EventKind::D2D,
            vec![Access::accum(GRAD, Region::All).with_prov(
                Provenance::new(ContribKind::GradPush, 0, 0)
                    .owned_by(0)
                    .from_gpu(2)
                    .rows(1),
            )],
        ),
        // Flush closes the deposit ledger.
        sev(
            0,
            EventKind::D2H,
            vec![Access::read(GRAD, Region::All).with_prov(
                Provenance::new(ContribKind::GradFlush, 0, 0)
                    .owned_by(0)
                    .rows(6),
            )],
        ),
        barrier(BarrierScope::Epoch),
    ]
}

fn certify(events: Vec<Event>) -> Report {
    verify_dataflow(&trace_of(events), &spec())
}

/// Asserts `code` fired and every *other* F8xx code stayed quiet — the
/// corruption is diagnosed, not just noticed.
fn assert_only(r: &Report, code: DiagCode) {
    assert!(r.has(code), "expected {code:?}:\n{}", r.render());
    for other in [
        DiagCode::DroppedContribution,
        DiagCode::DoubleCountedContribution,
        DiagCode::ActivationOverwritten,
        DiagCode::GradFlushEarly,
        DiagCode::OrphanGradient,
        DiagCode::DedupMultisetMismatch,
    ] {
        if other != code {
            assert!(
                !r.has(other),
                "{other:?} must stay quiet when the corruption is {code:?}:\n{}",
                r.render()
            );
        }
    }
}

#[test]
fn clean_flow_certifies_conserved() {
    let r = certify(clean_flow());
    assert!(r.is_ok(), "{}", r.render());
}

// ---------------------------------------------- F801 DroppedContribution

/// Deleting one remote fetch starves the aggregation: GPU 2's two rows
/// of `N_00` never arrive, the aggregate silently averages over a
/// zero-filled region. Supply 9 < 11 promised.
#[test]
fn dropped_fetch_is_f801() {
    let mut events = clean_flow();
    events.remove(FETCH_2);
    assert_only(&certify(events), DiagCode::DroppedContribution);
}

// ----------------------------------------- F802 DoubleCountedContribution

/// Replaying the host load deposits the transition rows twice — the
/// aggregation sums every host-supplied neighbor with weight 2. Supply
/// 17 > 11 promised.
#[test]
fn replayed_host_load_is_f802() {
    let mut events = clean_flow();
    let dup = events[HOST_LOAD].clone();
    events.insert(HOST_LOAD + 1, dup);
    assert_only(&certify(events), DiagCode::DoubleCountedContribution);
}

// ------------------------------------------- F803 ActivationOverwritten

/// A second store into `h^1`'s chunk region before anything read the
/// first one: the first activation generation is lost — downstream
/// layers and the backward pass see values the forward never produced.
#[test]
fn clobbered_activation_is_f803() {
    let mut events = clean_flow();
    let dup = events[ACT_STORE].clone();
    events.insert(ACT_STORE + 1, dup);
    assert_only(&certify(events), DiagCode::ActivationOverwritten);
}

/// The same double store *after* a consuming read is the legitimate
/// next-generation overwrite — no diagnostic.
#[test]
fn consumed_then_overwritten_is_clean() {
    let mut events = clean_flow();
    let dup = events[ACT_STORE].clone();
    events.insert(ACT_CONSUME + 1, dup);
    let r = certify(events);
    assert!(r.is_ok(), "{}", r.render());
}

// ------------------------------------------------- F804 GradFlushEarly

/// Deleting GPU 1's gradient push before the flush: the flush evicts a
/// partial sum — 4 boundary-vertex gradients are permanently lost, the
/// exact transpose of F801. Caught at the flush, not end-of-trace.
#[test]
fn flush_before_push_is_f804() {
    let mut events = clean_flow();
    events.remove(GRAD_PUSH_1);
    assert_only(&certify(events), DiagCode::GradFlushEarly);
}

// ------------------------------------------------- F805 OrphanGradient

/// GPU 2 pushes 3 rows where its forward fetch was 1: two accumulated
/// gradient rows have no forward counterpart — the dedup transpose was
/// mis-derived and the flush over-counts.
#[test]
fn excess_push_is_f805() {
    let mut events = clean_flow();
    events[GRAD_PUSH_2] = sev(
        2,
        EventKind::D2D,
        vec![Access::accum(GRAD, Region::All).with_prov(
            Provenance::new(ContribKind::GradPush, 0, 0)
                .owned_by(0)
                .from_gpu(2)
                .rows(3),
        )],
    );
    assert_only(&certify(events), DiagCode::OrphanGradient);
}

/// Deleting the flush entirely leaves the whole deposit ledger dangling
/// at end of trace — accumulated gradients that never reach the host
/// optimizer state.
#[test]
fn never_flushed_is_f805() {
    let mut events = clean_flow();
    events.remove(GRAD_FLUSH);
    assert_only(&certify(events), DiagCode::OrphanGradient);
}

// -------------------------------------------- F806 DedupMultisetMismatch

/// Swapping the two fetches' row counts (GPU 1 serves 2, GPU 2 serves 3)
/// conserves the total — F801/F802 see nothing — but the per-owner
/// multiset no longer matches the vanilla comparator: one of GPU 1's
/// rows was replaced by a row GPU 2 already supplied.
#[test]
fn owner_swapped_fetches_are_f806() {
    let mut events = clean_flow();
    events[FETCH_1] = sev(
        0,
        EventKind::D2D,
        vec![Access::write(REP, Region::Fetched).with_prov(
            Provenance::new(ContribKind::Fetch, 0, 0)
                .owned_by(1)
                .from_gpu(1)
                .rows(2),
        )],
    );
    events[FETCH_2] = sev(
        0,
        EventKind::D2D,
        vec![Access::write(REP, Region::Fetched).with_prov(
            Provenance::new(ContribKind::Fetch, 0, 0)
                .owned_by(2)
                .from_gpu(2)
                .rows(3),
        )],
    );
    assert_only(&certify(events), DiagCode::DedupMultisetMismatch);
}

/// The transition set may over-cover the own demand (6 host rows vs 5
/// owned demand rows) — that asymmetry is legal and must stay clean; a
/// host load *below* the own demand that a bogus remote fetch tops up is
/// not.
#[test]
fn understocked_transition_is_f806() {
    let mut events = clean_flow();
    // Host supplies only 4 of the 5 own-demand rows; GPU 1 "helpfully"
    // ships 5 instead of 3. Totals conserve at 11.
    events[HOST_LOAD] = sev(
        0,
        EventKind::H2D,
        vec![Access::write(REP, Region::Owned).with_prov(
            Provenance::new(ContribKind::HostLoad, 0, 0)
                .owned_by(0)
                .rows(4),
        )],
    );
    events[FETCH_1] = sev(
        0,
        EventKind::D2D,
        vec![Access::write(REP, Region::Fetched).with_prov(
            Provenance::new(ContribKind::Fetch, 0, 0)
                .owned_by(1)
                .from_gpu(1)
                .rows(5),
        )],
    );
    assert_only(&certify(events), DiagCode::DedupMultisetMismatch);
}
