//! Hand-corrupted *bad* schedules, each triggering its documented
//! `L6xx` / `X7xx` diagnostic — the mutation suite for the static
//! certification passes, mirroring `bad_traces.rs` for pass 5.
//!
//! Each test starts from a miniature but faithful rendition of the
//! overlap executor's schedule shapes (staging-slot installs tagged with
//! batch generations, stream-separated prefetch/compute, hybrid
//! checkpoint store/reload) and applies one of the classic silent
//! corruptions: a dropped `stream_wait`, a swapped install/evict pair, a
//! rotated slot reuse, a leaked gradient slot, a reload of a checkpoint
//! nothing stored. None would crash the simulator; all would corrupt
//! training on real hardware.

use hongtu_sim::{Access, BarrierScope, Device, Event, EventKind, Region, ResourceId, Trace};
use hongtu_verify::{
    verify_interleavings, verify_lifetimes, verify_schedule, DiagCode, DEFAULT_EXPLORE_BUDGET,
};

fn sev(g: u32, stream: u8, kind: EventKind, accesses: Vec<Access>) -> Event {
    Event::new(kind, Device::Gpu(g), 64, 1e-6, 0.0)
        .on_stream(stream)
        .with_accesses(accesses)
}

fn barrier(scope: BarrierScope) -> Event {
    Event::new(EventKind::Barrier(scope), Device::Host, 0, 0.0, 0.0)
}

fn trace_of(events: Vec<Event>) -> Trace {
    let mut t = Trace::unbounded();
    for e in events {
        t.record(e);
    }
    t
}

fn slot(gpu: u32, batch: u32) -> ResourceId {
    ResourceId::DevRepSlot {
        gpu,
        slot: (batch % 2) as u8,
    }
}

fn gslot(gpu: u32, batch: u32) -> ResourceId {
    ResourceId::DevGradSlot {
        gpu,
        slot: (batch % 2) as u8,
    }
}

const CKPT: ResourceId = ResourceId::AggCache {
    layer: 0,
    gpu: 0,
    chunk: 0,
};

const COMPUTE: u8 = 0;
const COPY_IN: u8 = 1;
const COPY_OUT: u8 = 2;

/// A clean two-batch double-buffered layer: prefetch batch `j` on the
/// copy-in stream, stream-wait, compute batch `j` reading its slot, with
/// batch barriers between pipeline segments — the shape
/// `ov_forward_prefetch`/`ov_forward_compute` synthesize.
fn pipelined_layer() -> Vec<Event> {
    vec![
        // Segment 0: prefetch batch 0.
        sev(
            0,
            COPY_IN,
            EventKind::H2D,
            vec![Access::write(slot(0, 0), Region::All).with_gen(0)],
        ),
        barrier(BarrierScope::Phase),
        // Segment 1: prefetch batch 1 ∥ compute batch 0.
        sev(
            0,
            COPY_IN,
            EventKind::H2D,
            vec![Access::write(slot(0, 1), Region::All).with_gen(1)],
        ),
        sev(
            0,
            COMPUTE,
            EventKind::StreamWait { upstream: COPY_IN },
            vec![],
        ),
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::read(slot(0, 0), Region::All)],
        ),
        barrier(BarrierScope::Batch),
        // Segment 2: compute batch 1.
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::read(slot(0, 1), Region::All)],
        ),
        barrier(BarrierScope::Batch),
    ]
}

#[test]
fn pipelined_layer_certifies_clean() {
    let t = trace_of(pipelined_layer());
    let r = verify_schedule(&t, Some(DEFAULT_EXPLORE_BUDGET));
    assert!(r.is_ok(), "{}", r.render());
}

// ------------------------------------------------- X701 InterleavingRace

/// Dropping the `stream_wait` that orders the in-place refill behind the
/// prefetch H2D leaves compute free to overtake the copy — pass 8 finds
/// the interleaving in which the read observes the wrong deposits.
#[test]
fn dropped_stream_wait_is_x701() {
    // The hazardous shape needs the wait to *matter*: the compute-stream
    // refill (`ov_reuse_handoff`) writes the same slot the copy-in H2D
    // is filling, inside one segment.
    let waited = vec![
        sev(
            0,
            COPY_IN,
            EventKind::H2D,
            vec![Access::write(slot(0, 1), Region::Owned).with_gen(1)],
        ),
        sev(
            0,
            COMPUTE,
            EventKind::StreamWait { upstream: COPY_IN },
            vec![],
        ),
        sev(
            0,
            COMPUTE,
            EventKind::Reuse,
            vec![Access::write(slot(0, 1), Region::Owned).with_gen(1)],
        ),
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::read(slot(0, 1), Region::Owned).with_gen(1)],
        ),
        barrier(BarrierScope::Batch),
    ];
    assert!(verify_interleavings(&trace_of(waited.clone()), DEFAULT_EXPLORE_BUDGET).is_ok());

    let mutated: Vec<Event> = waited
        .into_iter()
        .filter(|e| !matches!(e.kind, EventKind::StreamWait { .. }))
        .collect();
    let r = verify_interleavings(&trace_of(mutated), DEFAULT_EXPLORE_BUDGET);
    assert!(r.has(DiagCode::InterleavingRace), "{}", r.render());
}

// --------------------------------------- X702 InterleavingBudgetExceeded

#[test]
fn starved_budget_is_x702() {
    let t = trace_of(pipelined_layer());
    let r = verify_interleavings(&t, 2);
    assert!(
        r.has(DiagCode::InterleavingBudgetExceeded),
        "{}",
        r.render()
    );
}

// ------------------------------------------------------ L601 UseAfterEvict

/// Rotating the slot a reuse reads from — batch 2's compute pointed back
/// at a slot whose generation was already replaced — is a use-after-evict.
#[test]
fn rotated_slot_reuse_is_l601() {
    let t = trace_of(vec![
        sev(
            0,
            COPY_IN,
            EventKind::H2D,
            vec![Access::write(slot(0, 0), Region::All).with_gen(0)],
        ),
        barrier(BarrierScope::Phase),
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::read(slot(0, 0), Region::All)],
        ),
        barrier(BarrierScope::Batch),
        sev(
            0,
            COPY_IN,
            EventKind::H2D,
            vec![Access::write(slot(0, 2), Region::All).with_gen(2)],
        ),
        barrier(BarrierScope::Phase),
        // Mutation: the reuse reads generation 0 — evicted when batch 2
        // was installed over it (slot(0, 2) aliases slot(0, 0)).
        sev(
            0,
            COMPUTE,
            EventKind::Reuse,
            vec![Access::read(slot(0, 0), Region::Owned).with_gen(0)],
        ),
        barrier(BarrierScope::Batch),
    ]);
    let r = verify_lifetimes(&t);
    assert!(r.has(DiagCode::UseAfterEvict), "{}", r.render());
}

// ------------------------------------------------------ L602 DoubleInstall

/// Swapping an install in front of the consume it was scheduled behind —
/// batch 2's prefetch issued before batch 0's compute — clobbers staged
/// but never-read data.
#[test]
fn swapped_install_evict_is_l602() {
    let t = trace_of(vec![
        sev(
            0,
            COPY_IN,
            EventKind::H2D,
            vec![Access::write(slot(0, 0), Region::All).with_gen(0)],
        ),
        barrier(BarrierScope::Phase),
        // Mutation: batch 2 installed while batch 0 is still unread.
        sev(
            0,
            COPY_IN,
            EventKind::H2D,
            vec![Access::write(slot(0, 2), Region::All).with_gen(2)],
        ),
        barrier(BarrierScope::Phase),
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::read(slot(0, 2), Region::All)],
        ),
        barrier(BarrierScope::Batch),
    ]);
    let r = verify_lifetimes(&t);
    assert!(r.has(DiagCode::DoubleInstall), "{}", r.render());
}

// ---------------------------------------------------- L603 StagingSlotLeak

/// Dropping a gradient drain leaves the accumulated slot undrained when
/// the next generation lands (and at the end of the trace).
#[test]
fn dropped_gradient_drain_is_l603() {
    let clean = vec![
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::accum(gslot(0, 0), Region::All).with_gen(0)],
        ),
        barrier(BarrierScope::Batch),
        sev(
            0,
            COPY_OUT,
            EventKind::D2H,
            vec![Access::read(gslot(0, 0), Region::All).with_gen(0)],
        ),
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::accum(gslot(0, 2), Region::All).with_gen(2)],
        ),
        barrier(BarrierScope::Batch),
        sev(
            0,
            COPY_OUT,
            EventKind::D2H,
            vec![Access::read(gslot(0, 2), Region::All).with_gen(2)],
        ),
        barrier(BarrierScope::Epoch),
    ];
    assert!(verify_lifetimes(&trace_of(clean.clone())).is_ok());

    // Mutation: drop the first drain — generation 0's gradients leak.
    let mutated: Vec<Event> = clean
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, e)| e)
        .collect();
    let r = verify_lifetimes(&trace_of(mutated));
    assert!(r.has(DiagCode::StagingSlotLeak), "{}", r.render());
}

/// A gradient slot still holding unconsumed accumulations when the trace
/// ends leaks too, even without a later install to collide with.
#[test]
fn undrained_final_slot_is_l603() {
    let t = trace_of(vec![
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::accum(gslot(0, 1), Region::All).with_gen(1)],
        ),
        barrier(BarrierScope::Epoch),
    ]);
    let r = verify_lifetimes(&t);
    assert!(r.has(DiagCode::StagingSlotLeak), "{}", r.render());
}

// -------------------------------------------------- L604 ReloadBeforeStore

/// Removing the forward checkpoint store leaves the backward reload
/// reading a cache slot nothing wrote.
#[test]
fn removed_checkpoint_store_is_l604() {
    let clean = vec![
        sev(
            0,
            COPY_OUT,
            EventKind::D2H,
            vec![Access::write(CKPT, Region::All)],
        ),
        barrier(BarrierScope::Batch),
        sev(
            0,
            COPY_IN,
            EventKind::H2D,
            vec![Access::read(CKPT, Region::All)],
        ),
        barrier(BarrierScope::Batch),
    ];
    assert!(verify_lifetimes(&trace_of(clean.clone())).is_ok());

    let mutated: Vec<Event> = clean.into_iter().skip(2).collect();
    let r = verify_lifetimes(&trace_of(mutated));
    assert!(r.has(DiagCode::ReloadBeforeStore), "{}", r.render());
}

// ------------------------------------------- combined pass plumbing

/// `verify_schedule` reports lifetime violations even when pass 6 is
/// clean, and skips exploration when earlier passes already failed.
#[test]
fn verify_schedule_combines_passes() {
    // Write-before-read is fine for pass 5 (ordered on one entity), but
    // the tagged read of a replaced generation is an L601.
    let t = trace_of(vec![
        sev(
            0,
            COMPUTE,
            EventKind::H2D,
            vec![Access::write(slot(0, 0), Region::All).with_gen(0)],
        ),
        sev(
            0,
            COMPUTE,
            EventKind::H2D,
            vec![Access::write(slot(0, 2), Region::All).with_gen(2)],
        ),
        sev(
            0,
            COMPUTE,
            EventKind::GpuCompute,
            vec![Access::read(slot(0, 0), Region::All).with_gen(0)],
        ),
        barrier(BarrierScope::Batch),
    ]);
    let r = verify_schedule(&t, Some(DEFAULT_EXPLORE_BUDGET));
    assert!(r.has(DiagCode::UseAfterEvict), "{}", r.render());
    assert!(!r.has(DiagCode::InterleavingRace), "{}", r.render());
}
