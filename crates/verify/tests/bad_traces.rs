//! Hand-corrupted *bad* traces, each triggering its documented `R4xx` /
//! `S5xx` diagnostic, plus mutation-style tests that take a known-good
//! schedule and reorder, drop, or duplicate one event and assert the
//! happens-before checker notices.
//!
//! These are the silent-ordering bugs the trace pass exists to catch: a
//! backward reload racing the forward store it depends on, a stale
//! checkpoint generation, an `ℕ^gpu` in-place reuse clobbering a buffer
//! another GPU is still pulling from — none of which would crash the
//! simulator, all of which would corrupt training on real hardware.

use hongtu_sim::{Access, BarrierScope, Device, Event, EventKind, Region, ResourceId, Trace};
use hongtu_verify::{verify_determinism, verify_trace, DiagCode};

fn ev(g: u32, kind: EventKind, accesses: Vec<Access>) -> Event {
    Event::new(kind, Device::Gpu(g), 64, 1e-6, 0.0).with_accesses(accesses)
}

fn barrier(scope: BarrierScope) -> Event {
    Event::new(EventKind::Barrier(scope), Device::Host, 0, 0.0, 0.0)
}

fn trace_of(events: Vec<Event>) -> Trace {
    let mut t = Trace::unbounded();
    for e in events {
        t.record(e);
    }
    t
}

const DEV_REP: ResourceId = ResourceId::DevRep { gpu: 0 };
const DEV_GRAD: ResourceId = ResourceId::DevGrad { gpu: 1 };
const CKPT: ResourceId = ResourceId::AggCache {
    layer: 0,
    gpu: 0,
    chunk: 0,
};

// --------------------------------------------------- R400 TraceIncomplete

#[test]
fn disabled_trace_is_r400() {
    let r = verify_trace(&Trace::disabled());
    assert!(r.has(DiagCode::TraceIncomplete), "{}", r.render());
}

#[test]
fn pruned_trace_is_r400() {
    // A capacity-bounded trace that evicted events cannot be certified:
    // the dropped prefix could hide any race.
    let mut t = Trace::with_capacity(2);
    for _ in 0..5 {
        t.record(ev(0, EventKind::GpuCompute, vec![]));
    }
    assert!(t.dropped() > 0);
    let r = verify_trace(&t);
    assert!(r.has(DiagCode::TraceIncomplete), "{}", r.render());
}

// --------------------------------------------------- R401 RaceWriteWrite

#[test]
fn concurrent_writes_same_buffer_is_r401() {
    // Two GPUs H2D into the same merged buffer with no barrier between:
    // the §6 in-place layout makes this a lost update.
    let t = trace_of(vec![
        ev(0, EventKind::H2D, vec![Access::write(DEV_REP, Region::All)]),
        ev(1, EventKind::H2D, vec![Access::write(DEV_REP, Region::All)]),
    ]);
    let r = verify_trace(&t);
    assert!(r.has(DiagCode::RaceWriteWrite), "{}", r.render());
}

#[test]
fn disjoint_region_writes_are_clean() {
    // Owned and fetched segments of the merged buffer are disjoint (§6),
    // so concurrent writes to them commute.
    let t = trace_of(vec![
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::Owned)],
        ),
        ev(
            1,
            EventKind::D2D,
            vec![Access::write(DEV_REP, Region::Fetched)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.is_ok(), "{}", r.render());
}

// ---------------------------------------------------- R402 RaceWriteRead

#[test]
fn read_racing_write_is_r402() {
    // GPU 1 pulls from GPU 0's buffer while the host is still refilling
    // it — the §5.2 reuse-window hazard.
    let t = trace_of(vec![
        ev(
            1,
            EventKind::D2D,
            vec![Access::read(DEV_REP, Region::Owned)],
        ),
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::Owned)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.has(DiagCode::RaceWriteRead), "{}", r.render());
}

#[test]
fn barrier_separated_write_read_is_clean() {
    let t = trace_of(vec![
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::Owned)],
        ),
        barrier(BarrierScope::Phase),
        ev(
            1,
            EventKind::D2D,
            vec![Access::read(DEV_REP, Region::Owned)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.is_ok(), "{}", r.render());
}

// --------------------------------------------------- R403 ReadUnpopulated

#[test]
fn backward_reload_without_forward_store_is_r403() {
    // Backward H2Ds a checkpoint slot that forward never D2H'd (§4.2).
    let t = trace_of(vec![ev(
        0,
        EventKind::H2D,
        vec![Access::read(CKPT, Region::All)],
    )]);
    let r = verify_trace(&t);
    assert!(r.has(DiagCode::ReadUnpopulated), "{}", r.render());
}

#[test]
fn input_features_are_initially_valid() {
    // Layer-0 host representations are the input features: readable
    // without a populating write.
    let t = trace_of(vec![ev(
        0,
        EventKind::H2D,
        vec![Access::read(ResourceId::Rep { layer: 0 }, Region::All)],
    )]);
    let r = verify_trace(&t);
    assert!(r.is_ok(), "{}", r.render());
}

// --------------------------------------------------- R404 StaleGeneration

#[test]
fn reading_previous_batch_generation_is_r404() {
    // The buffer holds batch 0's rows; batch 1's compute consumes it
    // without the batch-1 refill — stale data, not a race.
    let t = trace_of(vec![
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(0)],
        ),
        barrier(BarrierScope::Batch),
        ev(
            0,
            EventKind::GpuCompute,
            vec![Access::read(DEV_REP, Region::All).with_gen(1)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.has(DiagCode::StaleGeneration), "{}", r.render());
}

#[test]
fn matching_generation_is_clean() {
    let t = trace_of(vec![
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(1)],
        ),
        ev(
            0,
            EventKind::GpuCompute,
            vec![Access::read(DEV_REP, Region::All).with_gen(1)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.is_ok(), "{}", r.render());
}

// ------------------------------------------------------- R405 RaceAccum

#[test]
fn accumulate_racing_read_is_r405() {
    // GPU 0 pushes a remote gradient accumulate into GPU 1's buffer
    // while GPU 1 is draining it to the host.
    let t = trace_of(vec![
        ev(1, EventKind::D2H, vec![Access::read(DEV_GRAD, Region::All)]),
        ev(
            0,
            EventKind::D2D,
            vec![Access::accum(DEV_GRAD, Region::All)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.has(DiagCode::RaceAccum), "{}", r.render());
}

#[test]
fn concurrent_accumulates_commute() {
    // Atomic scatter-adds from different GPUs into the same gradient
    // buffer are order-free — the one commutative concurrent pattern.
    let t = trace_of(vec![
        ev(
            0,
            EventKind::D2D,
            vec![Access::accum(DEV_GRAD, Region::All)],
        ),
        ev(
            2,
            EventKind::D2D,
            vec![Access::accum(DEV_GRAD, Region::All)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.is_ok(), "{}", r.render());
}

// ------------------------------------------------- S501 BatchNotBarriered

#[test]
fn two_batch_generations_in_one_segment_is_s501() {
    // Batch 1's refill lands before batch 0's segment was closed by a
    // batch barrier (Algorithm 1 requires one per chunk batch).
    let t = trace_of(vec![
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(0)],
        ),
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(1)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.has(DiagCode::BatchNotBarriered), "{}", r.render());
}

#[test]
fn phase_barrier_does_not_close_a_batch() {
    // Phase barriers order intra-batch stages; only Batch/Epoch scope
    // closes the segment for S501 purposes.
    let t = trace_of(vec![
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(0)],
        ),
        barrier(BarrierScope::Phase),
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(1)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.has(DiagCode::BatchNotBarriered), "{}", r.render());
}

#[test]
fn batch_barrier_separates_generations_cleanly() {
    let t = trace_of(vec![
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(0)],
        ),
        barrier(BarrierScope::Batch),
        ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(1)],
        ),
    ]);
    let r = verify_trace(&t);
    assert!(r.is_ok(), "{}", r.render());
}

// ----------------------------------------- mutations of a known-good trace

/// A minimal known-good schedule: host loads GPU 0's buffer, a phase
/// barrier publishes it, both GPUs consume it, a batch barrier closes
/// the batch, and the next generation repeats the pattern.
fn good_trace() -> Vec<Event> {
    let mut events = Vec::new();
    for gen in 0..2u32 {
        events.push(ev(
            0,
            EventKind::H2D,
            vec![Access::write(DEV_REP, Region::All).with_gen(gen)],
        ));
        events.push(barrier(BarrierScope::Phase));
        events.push(ev(
            0,
            EventKind::GpuCompute,
            vec![Access::read(DEV_REP, Region::All).with_gen(gen)],
        ));
        events.push(ev(
            1,
            EventKind::D2D,
            vec![Access::read(DEV_REP, Region::All).with_gen(gen)],
        ));
        events.push(barrier(BarrierScope::Batch));
    }
    events
}

#[test]
fn good_trace_is_clean() {
    let r = verify_trace(&trace_of(good_trace()));
    assert!(r.is_ok(), "{}", r.render());
}

#[test]
fn reordering_read_before_write_is_caught() {
    // Swap the batch-0 load past the phase barrier and its consumers:
    // the reads now race the write and (first read) find it unpopulated.
    let mut events = good_trace();
    let load = events.remove(0);
    events.insert(3, load);
    let r = verify_trace(&trace_of(events));
    assert!(
        r.has(DiagCode::ReadUnpopulated) || r.has(DiagCode::RaceWriteRead),
        "{}",
        r.render()
    );
}

#[test]
fn dropping_the_phase_barrier_is_caught() {
    // Without the phase barrier the cross-GPU read races the host load.
    let mut events = good_trace();
    events.remove(1);
    let r = verify_trace(&trace_of(events));
    assert!(r.has(DiagCode::RaceWriteRead), "{}", r.render());
}

#[test]
fn dropping_the_batch_barrier_is_caught() {
    // Without the batch barrier, generation 1's load lands in
    // generation 0's segment.
    let mut events = good_trace();
    events.remove(4);
    let r = verify_trace(&trace_of(events));
    assert!(r.has(DiagCode::BatchNotBarriered), "{}", r.render());
}

#[test]
fn duplicating_the_load_on_another_gpu_is_caught() {
    // Replay the batch-0 load from a second entity in the same segment:
    // two unordered writes to the same region.
    let mut events = good_trace();
    let mut dup = events[0].clone();
    dup.device = Device::Gpu(1);
    events.insert(1, dup);
    let r = verify_trace(&trace_of(events));
    assert!(r.has(DiagCode::RaceWriteWrite), "{}", r.render());
}

#[test]
fn dropping_the_forward_store_is_caught() {
    // Forward stores a checkpoint, backward reloads it; deleting the
    // store leaves the reload reading an unpopulated slot (§4.2).
    let store = ev(0, EventKind::D2H, vec![Access::write(CKPT, Region::All)]);
    let reload = ev(0, EventKind::H2D, vec![Access::read(CKPT, Region::All)]);
    let good = vec![store, barrier(BarrierScope::Batch), reload];
    assert!(verify_trace(&trace_of(good.clone())).is_ok());
    let r = verify_trace(&trace_of(good[1..].to_vec()));
    assert!(r.has(DiagCode::ReadUnpopulated), "{}", r.render());
}

// --------------------------------------- S502 NonDeterministicSchedule

#[test]
fn commuted_cross_gpu_pair_is_equivalent() {
    // Different GPUs' events within a segment may execute in any order.
    let a = trace_of(good_trace());
    let mut events = good_trace();
    events.swap(2, 3);
    let b = trace_of(events);
    let r = verify_determinism(&a, &b);
    assert!(r.is_ok(), "{}", r.render());
}

#[test]
fn same_gpu_swap_is_s502() {
    let extra = ev(0, EventKind::D2H, vec![]);
    let mut events = good_trace();
    events.insert(3, extra);
    let a = trace_of(events.clone());
    // Events 2 and 3 are both on GPU 0: their order is program order.
    events.swap(2, 3);
    let b = trace_of(events);
    let r = verify_determinism(&a, &b);
    assert!(r.has(DiagCode::NonDeterministicSchedule), "{}", r.render());
}

#[test]
fn dropped_event_is_s502() {
    let a = trace_of(good_trace());
    let mut events = good_trace();
    events.remove(2);
    let b = trace_of(events);
    let r = verify_determinism(&a, &b);
    assert!(r.has(DiagCode::NonDeterministicSchedule), "{}", r.render());
}

#[test]
fn duplicated_event_is_s502() {
    let a = trace_of(good_trace());
    let mut events = good_trace();
    let dup = events[2].clone();
    events.insert(3, dup);
    let b = trace_of(events);
    let r = verify_determinism(&a, &b);
    assert!(r.has(DiagCode::NonDeterministicSchedule), "{}", r.render());
}

#[test]
fn moved_across_barrier_is_s502() {
    let a = trace_of(good_trace());
    let mut events = good_trace();
    // Move GPU 1's batch-0 read into batch 1's segment.
    let moved = events.remove(3);
    events.insert(5, moved);
    let b = trace_of(events);
    let r = verify_determinism(&a, &b);
    assert!(r.has(DiagCode::NonDeterministicSchedule), "{}", r.render());
}

#[test]
fn incomplete_trace_refused_for_determinism() {
    let a = trace_of(good_trace());
    let r = verify_determinism(&a, &Trace::disabled());
    assert!(r.has(DiagCode::TraceIncomplete), "{}", r.render());
}
