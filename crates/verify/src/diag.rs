//! Diagnostic types shared by all verifier passes.
//!
//! Every invariant the verifier checks has a stable code (`P…`/`D…`/`B…`/
//! `V…` for the partition, dedup, buffer, and volume passes) and a paper
//! reference, so a failure points straight at the part of HongTu whose
//! contract was broken.

use std::fmt;

/// Cap on diagnostics accumulated per pass: a thoroughly corrupt plan on a
/// large graph would otherwise produce one diagnostic per vertex.
pub(crate) const MAX_DIAGS_PER_PASS: usize = 256;

/// Which invariant a diagnostic reports. See `DESIGN.md` ("Checked
/// invariants") for the full catalogue with paper citations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    // ---- partition pass (P0xx) ----
    /// A vertex is owned (as destination) by more than one chunk.
    ChunkOverlap,
    /// A vertex is owned by no chunk.
    CoverageGap,
    /// A chunk's edge list disagrees with the graph's in-edges of an
    /// owned destination (missing, extra, or wrong-source edge).
    MissingInEdge,
    /// A chunk's local structure is corrupt: unsorted/duplicated neighbor
    /// list, out-of-range edge index, or malformed CSC offsets.
    ChunkStructure,
    /// The chunk grid does not have the declared `m × n` shape, or a
    /// chunk's ids / partition ownership disagree with the assignment.
    GridShape,

    // ---- dedup pass (D1xx) ----
    /// A transition set `ℕ_ij` (or CPU-load set `ℕ^cpu_ij`) is not sorted
    /// strictly ascending.
    TransitionUnsorted,
    /// A transition-set vertex is routed to a GPU that does not own it.
    TransitionWrongOwner,
    /// A vertex appears in more than one transition set of the same batch.
    TransitionOverlap,
    /// `∪_i ℕ_ij` differs from the batch's neighbor union `∪_i N_ij`.
    TransitionUnionMismatch,
    /// `ℕ^cpu_ij` is not exactly `ℕ_ij \ ℕ_i,j−1` (stale, duplicated, or
    /// missing host→GPU loads).
    CpuLoadMismatch,
    /// `reused[i]` differs from `|ℕ_ij ∩ ℕ_i,j−1|`.
    ReuseCountWrong,
    /// `Σ_k fetch[i][k]` differs from `|N_ij|` (some neighbor access is
    /// unserved or double-served).
    FetchRowSumMismatch,
    /// `fetch[i][k]` differs from `|N_ij ∩ ℕ_kj|`.
    FetchCellMismatch,
    /// The dedup plan's `m`/`n`/per-batch vector shapes disagree with the
    /// partition plan.
    PlanShapeMismatch,

    // ---- buffer pass (B2xx) ----
    /// Two live vertices occupy the same buffer slot in one batch.
    SlotAliased,
    /// A slot is read (via `nbr_slot` or a claimed in-place reuse) that no
    /// write ever populated with the expected vertex.
    ReadUnwritten,
    /// A retained vertex changed slots between batches without being
    /// rewritten, or reuses a slot freed in an intervening batch
    /// (use-after-free).
    SlotMoved,
    /// A planned slot lies at or beyond the declared buffer capacity.
    CapacityExceeded,
    /// `M_ij` (or its index vectors) disagrees with `ℕ_ij ∪ N_ij`.
    MergedSetWrong,

    // ---- volume pass (V3xx) ----
    /// Reported `V_ori` differs from the independently recomputed value.
    VOriMismatch,
    /// Reported `V_+p2p` differs from the independently recomputed value.
    VP2pMismatch,
    /// Reported `V_+ru` differs from the independently recomputed value.
    VRuMismatch,

    // ---- trace race pass (R4xx) ----
    /// The trace cannot be certified: tracing was disabled or the bounded
    /// trace evicted events (`dropped() > 0`), so absence of hazards in
    /// what remains proves nothing.
    TraceIncomplete,
    /// Two unordered writes touch overlapping regions of one resource.
    RaceWriteWrite,
    /// A write and a read of overlapping regions are unordered — e.g. a
    /// checkpoint reloaded before its store, or the in-place `ℕ^gpu`
    /// window overwritten while a remote P2P read is outstanding.
    RaceWriteRead,
    /// A read of a resource no happens-before write ever populated.
    ReadUnpopulated,
    /// A generation-tagged read has no happens-before write of that
    /// generation: the slot holds another batch's (stale) data.
    StaleGeneration,
    /// An atomic accumulate is unordered with a plain read or write of an
    /// overlapping region (accumulates commute only with each other).
    RaceAccum,

    // ---- trace schedule pass (S5xx) ----
    /// A resource was rewritten for a new batch generation with no
    /// batch-scope barrier since the previous generation's writes.
    BatchNotBarriered,
    /// Two traces of the same plan differ by more than commutable
    /// reorderings (the schedule is not deterministic).
    NonDeterministicSchedule,

    // ---- resource lifetime pass (L6xx) ----
    /// A staging slot (or checkpoint slot) generation is accessed after
    /// the slot was recycled to a newer generation — the data has been
    /// evicted/overwritten by the pipeline's slot rotation.
    UseAfterEvict,
    /// A slot generation is (re)installed after its contents were already
    /// consumed — a second install clobbering a generation readers have
    /// started draining.
    DoubleInstall,
    /// A staging slot generation was installed but never consumed before
    /// the slot moved on — the installed data (and the transfer that
    /// staged it) leaked.
    StagingSlotLeak,
    /// A hybrid aggregate checkpoint is reloaded before any store wrote
    /// it (backward reading a checkpoint the forward never produced).
    ReloadBeforeStore,

    // ---- interleaving exploration pass (X7xx) ----
    /// Some barrier-respecting interleaving of the schedule's
    /// per-(device, stream) entities reads data before the deposit it
    /// needs — the counterexample linearization is in the message.
    InterleavingRace,
    /// Exploration exhausted its linearization budget before covering
    /// every interleaving: absence of a counterexample proves nothing.
    InterleavingBudgetExceeded,

    // ---- dataflow conservation pass (F8xx) ----
    /// An aggregation ran with fewer supplied contribution rows than the
    /// plans promise — some in-neighbor contribution was dropped.
    DroppedContribution,
    /// An aggregation ran with more supplied contribution rows than the
    /// plans promise — some contribution was delivered twice.
    DoubleCountedContribution,
    /// An activation write overlaps a previous write that no read ever
    /// consumed — the earlier generation's values were lost.
    ActivationOverwritten,
    /// A gradient buffer was flushed to the host before every expected
    /// accumulation (local or pushed) had arrived.
    GradFlushEarly,
    /// A gradient accumulation has no forward counterpart: a push from a
    /// GPU that fetched nothing, or more rows than the forward flow.
    OrphanGradient,
    /// The deduplicated transfer decomposition does not carry the same
    /// per-owner contribution multiset as the vanilla comparator.
    DedupMultisetMismatch,

    // ---- cone-mask pass (C9xx) ----
    /// A pruned-sweep activity grid violates its declared closure
    /// direction: a downward-closed query cone with a batch active at
    /// layer `l+1` but not `l`, or an upward-closed delta cone with a
    /// batch active at `l` but not `l+1` — the sweep would read rows
    /// never (re)computed.
    ConeNotClosed,
    /// A pruned-sweep activity grid is malformed: empty, ragged, or
    /// with no active step at all.
    ConeShapeInvalid,

    // ---- hot-vertex cache pass (H10xx) ----
    /// The admitted cache plan (or a replayed resident set) does not fit
    /// the GPU's post-staging HBM headroom, or its byte accounting
    /// disagrees with `rows × slot_bytes`.
    CacheOverflow,
    /// A sweep charged cache hits that the replayed resident set cannot
    /// serve: the count disagrees with `|S_ij ∩ resident|`, or a batch
    /// that never executed claims hits (hit-before-install).
    CachePhantomHit,
    /// A delta commit left a patched row resident (or journaled a removal
    /// of a row that was never resident): a later sweep would serve stale
    /// features.
    CacheStaleRow,
    /// A sweep installed a row the plan never admitted, that no executed
    /// batch loaded, or that was already resident.
    CacheUnplannedInstall,
}

impl DiagCode {
    /// Stable short code (`"P001"`, `"D106"`, …).
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::ChunkOverlap => "P001",
            DiagCode::CoverageGap => "P002",
            DiagCode::MissingInEdge => "P003",
            DiagCode::ChunkStructure => "P004",
            DiagCode::GridShape => "P005",
            DiagCode::TransitionUnsorted => "D101",
            DiagCode::TransitionWrongOwner => "D102",
            DiagCode::TransitionOverlap => "D103",
            DiagCode::TransitionUnionMismatch => "D104",
            DiagCode::CpuLoadMismatch => "D105",
            DiagCode::ReuseCountWrong => "D106",
            DiagCode::FetchRowSumMismatch => "D107",
            DiagCode::FetchCellMismatch => "D108",
            DiagCode::PlanShapeMismatch => "D109",
            DiagCode::SlotAliased => "B201",
            DiagCode::ReadUnwritten => "B202",
            DiagCode::SlotMoved => "B203",
            DiagCode::CapacityExceeded => "B204",
            DiagCode::MergedSetWrong => "B205",
            DiagCode::VOriMismatch => "V301",
            DiagCode::VP2pMismatch => "V302",
            DiagCode::VRuMismatch => "V303",
            DiagCode::TraceIncomplete => "R400",
            DiagCode::RaceWriteWrite => "R401",
            DiagCode::RaceWriteRead => "R402",
            DiagCode::ReadUnpopulated => "R403",
            DiagCode::StaleGeneration => "R404",
            DiagCode::RaceAccum => "R405",
            DiagCode::BatchNotBarriered => "S501",
            DiagCode::NonDeterministicSchedule => "S502",
            DiagCode::UseAfterEvict => "L601",
            DiagCode::DoubleInstall => "L602",
            DiagCode::StagingSlotLeak => "L603",
            DiagCode::ReloadBeforeStore => "L604",
            DiagCode::InterleavingRace => "X701",
            DiagCode::InterleavingBudgetExceeded => "X702",
            DiagCode::DroppedContribution => "F801",
            DiagCode::DoubleCountedContribution => "F802",
            DiagCode::ActivationOverwritten => "F803",
            DiagCode::GradFlushEarly => "F804",
            DiagCode::OrphanGradient => "F805",
            DiagCode::DedupMultisetMismatch => "F806",
            DiagCode::ConeNotClosed => "C901",
            DiagCode::ConeShapeInvalid => "C902",
            DiagCode::CacheOverflow => "H1001",
            DiagCode::CachePhantomHit => "H1002",
            DiagCode::CacheStaleRow => "H1003",
            DiagCode::CacheUnplannedInstall => "H1004",
        }
    }

    /// The section of the HongTu paper whose contract the code checks.
    pub fn paper_ref(self) -> &'static str {
        match self {
            DiagCode::ChunkOverlap
            | DiagCode::CoverageGap
            | DiagCode::MissingInEdge
            | DiagCode::ChunkStructure
            | DiagCode::GridShape => "§4.1",
            DiagCode::TransitionUnsorted
            | DiagCode::TransitionWrongOwner
            | DiagCode::TransitionOverlap
            | DiagCode::TransitionUnionMismatch
            | DiagCode::FetchRowSumMismatch
            | DiagCode::FetchCellMismatch
            | DiagCode::PlanShapeMismatch => "§5.1",
            DiagCode::CpuLoadMismatch | DiagCode::ReuseCountWrong => "§5.2",
            DiagCode::SlotAliased
            | DiagCode::ReadUnwritten
            | DiagCode::SlotMoved
            | DiagCode::CapacityExceeded
            | DiagCode::MergedSetWrong => "§6",
            DiagCode::VOriMismatch | DiagCode::VP2pMismatch | DiagCode::VRuMismatch => "§5.3",
            DiagCode::TraceIncomplete | DiagCode::BatchNotBarriered => "§4.1",
            DiagCode::RaceWriteWrite | DiagCode::RaceWriteRead | DiagCode::ReadUnpopulated => {
                "§4.2"
            }
            DiagCode::StaleGeneration => "§5.2",
            DiagCode::RaceAccum => "§5.1",
            DiagCode::NonDeterministicSchedule => "§6",
            DiagCode::UseAfterEvict | DiagCode::DoubleInstall | DiagCode::StagingSlotLeak => "§6",
            DiagCode::ReloadBeforeStore => "§4.2",
            DiagCode::InterleavingRace | DiagCode::InterleavingBudgetExceeded => "§4.1",
            DiagCode::DroppedContribution
            | DiagCode::DoubleCountedContribution
            | DiagCode::DedupMultisetMismatch => "§5.1",
            DiagCode::ActivationOverwritten => "§4.2",
            DiagCode::GradFlushEarly | DiagCode::OrphanGradient => "§5.2",
            DiagCode::ConeNotClosed | DiagCode::ConeShapeInvalid => "§4.1",
            DiagCode::CacheOverflow
            | DiagCode::CachePhantomHit
            | DiagCode::CacheStaleRow
            | DiagCode::CacheUnplannedInstall => "§5.2",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Where in the plan a diagnostic points. All parts are optional: a
/// grid-shape error has no vertex, a coverage gap has no GPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Location {
    /// GPU / partition index.
    pub gpu: Option<usize>,
    /// Batch (chunk) index.
    pub batch: Option<usize>,
    /// Global vertex id.
    pub vertex: Option<u32>,
}

impl Location {
    /// Location naming only a GPU.
    pub fn gpu(gpu: usize) -> Self {
        Location {
            gpu: Some(gpu),
            ..Default::default()
        }
    }

    /// Location naming a GPU and a batch.
    pub fn gpu_batch(gpu: usize, batch: usize) -> Self {
        Location {
            gpu: Some(gpu),
            batch: Some(batch),
            vertex: None,
        }
    }

    /// Location naming a batch only.
    pub fn batch(batch: usize) -> Self {
        Location {
            batch: Some(batch),
            ..Default::default()
        }
    }

    /// Location naming a vertex only.
    pub fn vertex(vertex: u32) -> Self {
        Location {
            vertex: Some(vertex),
            ..Default::default()
        }
    }

    /// Attaches a vertex to this location.
    pub fn with_vertex(mut self, vertex: u32) -> Self {
        self.vertex = Some(vertex);
        self
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(g) = self.gpu {
            parts.push(format!("gpu {g}"));
        }
        if let Some(b) = self.batch {
            parts.push(format!("batch {b}"));
        }
        if let Some(v) = self.vertex {
            parts.push(format!("vertex {v}"));
        }
        if parts.is_empty() {
            f.write_str("plan")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// One finding from a verifier pass.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which invariant was violated.
    pub code: DiagCode,
    /// Where.
    pub location: Location,
    /// Human-readable explanation with the observed vs expected values.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(code: DiagCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {}] {}: {}",
            self.code,
            self.code.paper_ref(),
            self.location,
            self.message
        )
    }
}

/// All findings from a verification run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Diagnostics in pass order (partition, dedup, buffers, volumes).
    pub diagnostics: Vec<Diagnostic>,
    /// How many passes hit their diagnostic cap (their counts are lower
    /// bounds).
    pub truncated_passes: usize,
}

impl Report {
    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The first (most upstream) diagnostic, if any. Upstream passes run
    /// first, so this is the root-cause candidate.
    pub fn first(&self) -> Option<&Diagnostic> {
        self.diagnostics.first()
    }

    /// True when some diagnostic carries `code`.
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        if self.is_ok() {
            return "plan OK: all checked invariants hold".to_string();
        }
        let mut out = format!("plan INVALID: {} diagnostic(s)\n", self.diagnostics.len());
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        if self.truncated_passes > 0 {
            out.push_str(&format!(
                "  … {} pass(es) hit the {}-diagnostic cap; counts are lower bounds\n",
                self.truncated_passes, MAX_DIAGS_PER_PASS
            ));
        }
        out
    }

    /// Absorbs a pass's diagnostics, tracking truncation.
    pub(crate) fn extend_pass(&mut self, pass: Vec<Diagnostic>) {
        if pass.len() >= MAX_DIAGS_PER_PASS {
            self.truncated_passes += 1;
        }
        self.diagnostics.extend(pass);
    }

    /// Absorbs another report's findings (for callers combining pass
    /// families run by separate drivers, e.g. schedule certification
    /// plus dataflow conservation).
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
        self.truncated_passes += other.truncated_passes;
    }
}

/// How much checking the engine performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationLevel {
    /// No verification (trusted plans, e.g. benchmarks).
    Off,
    /// Verify all plans once at engine construction.
    #[default]
    Plan,
    /// Also re-verify the dedup/buffer/volume passes at every epoch in
    /// debug builds (catches accidental in-training plan mutation).
    Paranoid,
}

/// Appends `diag` unless the pass already hit its cap.
pub(crate) fn push(diags: &mut Vec<Diagnostic>, diag: Diagnostic) {
    if diags.len() < MAX_DIAGS_PER_PASS {
        diags.push(diag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let all = [
            DiagCode::ChunkOverlap,
            DiagCode::CoverageGap,
            DiagCode::MissingInEdge,
            DiagCode::ChunkStructure,
            DiagCode::GridShape,
            DiagCode::TransitionUnsorted,
            DiagCode::TransitionWrongOwner,
            DiagCode::TransitionOverlap,
            DiagCode::TransitionUnionMismatch,
            DiagCode::CpuLoadMismatch,
            DiagCode::ReuseCountWrong,
            DiagCode::FetchRowSumMismatch,
            DiagCode::FetchCellMismatch,
            DiagCode::PlanShapeMismatch,
            DiagCode::SlotAliased,
            DiagCode::ReadUnwritten,
            DiagCode::SlotMoved,
            DiagCode::CapacityExceeded,
            DiagCode::MergedSetWrong,
            DiagCode::VOriMismatch,
            DiagCode::VP2pMismatch,
            DiagCode::VRuMismatch,
            DiagCode::TraceIncomplete,
            DiagCode::RaceWriteWrite,
            DiagCode::RaceWriteRead,
            DiagCode::ReadUnpopulated,
            DiagCode::StaleGeneration,
            DiagCode::RaceAccum,
            DiagCode::BatchNotBarriered,
            DiagCode::NonDeterministicSchedule,
            DiagCode::UseAfterEvict,
            DiagCode::DoubleInstall,
            DiagCode::StagingSlotLeak,
            DiagCode::ReloadBeforeStore,
            DiagCode::InterleavingRace,
            DiagCode::InterleavingBudgetExceeded,
            DiagCode::DroppedContribution,
            DiagCode::DoubleCountedContribution,
            DiagCode::ActivationOverwritten,
            DiagCode::GradFlushEarly,
            DiagCode::OrphanGradient,
            DiagCode::DedupMultisetMismatch,
            DiagCode::ConeNotClosed,
            DiagCode::ConeShapeInvalid,
            DiagCode::CacheOverflow,
            DiagCode::CachePhantomHit,
            DiagCode::CacheStaleRow,
            DiagCode::CacheUnplannedInstall,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in all {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            // Pass families use 4-char codes; the two-digit cache family
            // (pass 11) uses 5.
            assert!(c.code().len() == 4 || c.code().starts_with("H10"));
            assert!(c.paper_ref().starts_with('§'));
        }
    }

    #[test]
    fn report_render_mentions_codes() {
        let mut r = Report::default();
        r.extend_pass(vec![Diagnostic::new(
            DiagCode::SlotAliased,
            Location::gpu_batch(1, 2).with_vertex(7),
            "slot 3 double-booked",
        )]);
        assert!(!r.is_ok());
        assert!(r.has(DiagCode::SlotAliased));
        assert!(!r.has(DiagCode::CoverageGap));
        let s = r.render();
        assert!(s.contains("B201"));
        assert!(s.contains("§6"));
        assert!(s.contains("gpu 1, batch 2, vertex 7"));
    }

    #[test]
    fn merge_combines_reports() {
        let mut a = Report::default();
        a.extend_pass(vec![Diagnostic::new(
            DiagCode::DroppedContribution,
            Location::gpu_batch(0, 1),
            "short 3 rows",
        )]);
        let mut b = Report::default();
        b.extend_pass(vec![Diagnostic::new(
            DiagCode::OrphanGradient,
            Location::gpu(2),
            "push with no fetch",
        )]);
        b.truncated_passes = 1;
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 2);
        assert_eq!(a.truncated_passes, 1);
        assert!(a.has(DiagCode::DroppedContribution));
        assert!(a.has(DiagCode::OrphanGradient));
        assert!(a.render().contains("F805"));
    }

    #[test]
    fn location_display_forms() {
        assert_eq!(Location::default().to_string(), "plan");
        assert_eq!(Location::gpu(3).to_string(), "gpu 3");
        assert_eq!(
            Location::batch(1).with_vertex(9).to_string(),
            "batch 1, vertex 9"
        );
    }

    #[test]
    fn push_caps_at_limit() {
        let mut v = Vec::new();
        for _ in 0..(MAX_DIAGS_PER_PASS + 50) {
            push(
                &mut v,
                Diagnostic::new(DiagCode::CoverageGap, Location::default(), "x"),
            );
        }
        assert_eq!(v.len(), MAX_DIAGS_PER_PASS);
    }
}
