//! Pass 10: cone-mask closure certification (`C9xx`).
//!
//! Both pruned sweeps the engine runs — the serving query sweep and the
//! incremental delta-recompute sweep — are driven by a `(layer, batch)`
//! activity grid whose *closure direction* carries the correctness
//! induction:
//!
//! * a **downward-closed** query cone (`active[l] ⊇ active[l+1]`)
//!   guarantees every row an active chunk reads at layer `l+1` was
//!   recomputed at layer `l`;
//! * an **upward-closed** delta cone (`active[l] ⊆ active[l+1]`)
//!   guarantees every row a replayed chunk reads at layer `l` is either
//!   untouched in `h^l` or was recomputed at layer `l−1`.
//!
//! A mask violating its direction silently serves stale rows or skips
//! invalidated ones — no executor step would crash. This pass holds the
//! raw grid to its declared direction ([`ConeDir`]) and to basic shape
//! sanity before the engine installs it.

use crate::diag::{push, DiagCode, Diagnostic, Location, Report};

/// Which closure direction a cone mask must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConeDir {
    /// Query cone: `active[l] ⊇ active[l+1]` (grows toward layer 0).
    Downward,
    /// Delta cone: `active[l] ⊆ active[l+1]` (grows toward layer L−1).
    Upward,
}

/// Certifies a cone mask grid (`active[l][j]`) against its declared
/// closure direction: the grid must be rectangular and non-empty with at
/// least one active step (`C902`), and every layer must be a
/// subset/superset of the next per `dir` (`C901`).
pub fn verify_cone(active: &[Vec<bool>], dir: ConeDir) -> Report {
    let mut diags = Vec::new();
    let batches = active.first().map_or(0, Vec::len);
    if active.is_empty() || batches == 0 {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::ConeShapeInvalid,
                Location::default(),
                format!(
                    "cone grid is empty ({} layers × {batches} batches)",
                    active.len()
                ),
            ),
        );
    }
    for (l, row) in active.iter().enumerate() {
        if row.len() != batches {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::ConeShapeInvalid,
                    Location::batch(l),
                    format!(
                        "ragged cone grid: layer {l} has {} batches, layer 0 has {batches}",
                        row.len()
                    ),
                ),
            );
        }
    }
    if active.iter().all(|row| row.iter().all(|&a| !a)) && !active.is_empty() && batches > 0 {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::ConeShapeInvalid,
                Location::default(),
                "cone grid has no active step: nothing to sweep".to_string(),
            ),
        );
    }
    for l in 0..active.len().saturating_sub(1) {
        for (j, (&lo, &hi)) in active[l].iter().zip(&active[l + 1]).enumerate() {
            let violated = match dir {
                // Downward: active above ⇒ active below.
                ConeDir::Downward => hi && !lo,
                // Upward: active below ⇒ active above.
                ConeDir::Upward => lo && !hi,
            };
            if violated {
                let (have, miss) = match dir {
                    ConeDir::Downward => (l + 1, l),
                    ConeDir::Upward => (l, l + 1),
                };
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::ConeNotClosed,
                        Location::batch(j),
                        format!(
                            "{dir:?}-closed cone broken: batch {j} active at layer {have} \
                             but not at layer {miss}"
                        ),
                    ),
                );
            }
        }
    }
    let mut report = Report::default();
    report.extend_pass(diags);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_masks_certify() {
        // Downward: widens toward layer 0; upward: its mirror.
        let down = vec![vec![true, true, true], vec![true, true, false]];
        let up = vec![vec![true, false, false], vec![true, true, false]];
        assert!(verify_cone(&down, ConeDir::Downward).is_ok());
        assert!(verify_cone(&up, ConeDir::Upward).is_ok());
    }

    #[test]
    fn direction_violations_are_flagged() {
        let down_broken = vec![vec![true, false, false], vec![true, true, false]];
        let r = verify_cone(&down_broken, ConeDir::Downward);
        assert!(r.has(DiagCode::ConeNotClosed), "{}", r.render());
        // The same grid read upward is fine…
        assert!(verify_cone(&down_broken, ConeDir::Upward).is_ok());
        // …and its transpose-in-direction fails upward.
        let up_broken = vec![vec![true, true, false], vec![true, false, false]];
        let r = verify_cone(&up_broken, ConeDir::Upward);
        assert!(r.has(DiagCode::ConeNotClosed));
        assert!(r.render().contains("C901"));
    }

    #[test]
    fn shape_violations_are_flagged() {
        assert!(verify_cone(&[], ConeDir::Downward).has(DiagCode::ConeShapeInvalid));
        let ragged = vec![vec![true, true], vec![true]];
        assert!(verify_cone(&ragged, ConeDir::Upward).has(DiagCode::ConeShapeInvalid));
        let dead = vec![vec![false, false], vec![false, false]];
        let r = verify_cone(&dead, ConeDir::Downward);
        assert!(r.has(DiagCode::ConeShapeInvalid));
        assert!(r.render().contains("C902"));
    }
}
