//! Happens-before schedule checking over simulated execution traces.
//!
//! The plan passes (`P`/`D`/`B`/`V` codes) prove the *artifacts* are
//! well-formed; this pass proves the *schedule that executed them* is.
//! HongTu's correctness hinges on ordering: checkpoints must be written
//! before backward reloads them (§4.2), the in-place `ℕ^gpu` reuse window
//! must not be overwritten while a neighboring GPU's P2P read is
//! outstanding (§5.2, §6), and adjacent batches must be separated by
//! barriers (§4.1, Algorithm 1).
//!
//! The checker reconstructs a happens-before order from the trace with
//! **vector clocks**: each (device, stream) pair is an entity with its own
//! logical clock; events on one entity are program-ordered, and barrier
//! events join every entity's clock (the simulator's barriers are global).
//! Two conflicting accesses of overlapping regions that the resulting
//! order does not relate are a race. On top of the race check it verifies
//! write-before-read (with optional batch-generation matching, catching
//! *stale* data that plain write-before-read would miss) and per-batch
//! barrier coverage. A separate entry point, [`verify_determinism`],
//! checks that two traces of the same plan agree modulo commutable pairs.
//!
//! Diagnostic codes: `R400`–`R405` (races / data hazards) and
//! `S501`–`S502` (schedule structure). See `DESIGN.md` ("Happens-before
//! invariants") for the catalogue.

use crate::diag::{push, DiagCode, Diagnostic, Location, Report};
use hongtu_sim::{
    Access, BarrierScope, Device, Event, EventKind, Intent, Region, ResourceId, Trace,
};
use std::collections::HashMap;

pub(crate) fn location_of(device: Device) -> Location {
    match device {
        Device::Host => Location::default(),
        Device::Gpu(g) => Location::gpu(g as usize),
    }
}

pub(crate) fn conflicts(a: Intent, b: Intent) -> bool {
    match (a, b) {
        (Intent::Read, Intent::Read) => false,
        // Atomic accumulates commute with each other…
        (Intent::Accum, Intent::Accum) => false,
        // …but with nothing else; and write/write, write/read conflict.
        _ => true,
    }
}

pub(crate) fn is_deposit(i: Intent) -> bool {
    matches!(i, Intent::Write | Intent::Accum)
}

/// A not-yet-barrier-settled access of one resource.
struct Rec {
    entity: usize,
    /// The entity's clock value when the access happened.
    tick: u32,
    intent: Intent,
    region: Region,
    gen: Option<u32>,
    ev_idx: usize,
    device: Device,
}

/// Per-resource checking state.
#[derive(Default)]
struct ResState {
    /// Deposits (writes/accumulates) from before the last barrier: they
    /// happen-before everything that follows, so only their (region, gen)
    /// matters. Deduplicated.
    settled: Vec<(Region, Option<u32>)>,
    /// Accesses since the last barrier.
    recent: Vec<Rec>,
    /// Last deposit generation and the batch-barrier segment it happened
    /// in (for the `S501` per-batch barrier-coverage check).
    last_deposit: Option<(u32, u32)>,
}

/// The vector-clock happens-before checker.
struct Checker {
    entities: Vec<(Device, u8)>,
    index: HashMap<(Device, u8), usize>,
    /// `clocks[e][f]`: what entity `e` knows of entity `f`'s clock.
    clocks: Vec<Vec<u32>>,
    /// Clock snapshot at the last barrier (inherited by new entities).
    floor: Vec<u32>,
    /// Number of batch-scope (Batch/Epoch) barriers seen so far.
    batch_no: u32,
    resources: HashMap<ResourceId, ResState>,
    diags: Vec<Diagnostic>,
}

impl Checker {
    fn new() -> Self {
        Checker {
            entities: Vec::new(),
            index: HashMap::new(),
            clocks: Vec::new(),
            floor: Vec::new(),
            batch_no: 0,
            resources: HashMap::new(),
            diags: Vec::new(),
        }
    }

    fn entity(&mut self, device: Device, stream: u8) -> usize {
        if let Some(&e) = self.index.get(&(device, stream)) {
            return e;
        }
        let e = self.entities.len();
        self.entities.push((device, stream));
        self.index.insert((device, stream), e);
        for c in &mut self.clocks {
            c.push(0);
        }
        self.floor.push(0);
        // A new entity inherits the last barrier's knowledge: everything
        // before that barrier happens-before its first event.
        self.clocks.push(self.floor.clone());
        e
    }

    fn on_barrier(&mut self, scope: BarrierScope) {
        let n = self.entities.len();
        let mut join = vec![0u32; n];
        for c in &self.clocks {
            for (f, &v) in c.iter().enumerate() {
                join[f] = join[f].max(v);
            }
        }
        for c in &mut self.clocks {
            c.clone_from(&join);
        }
        self.floor = join;
        if scope != BarrierScope::Phase {
            self.batch_no += 1;
        }
        for st in self.resources.values_mut() {
            for r in st.recent.drain(..) {
                if is_deposit(r.intent) {
                    let entry = (r.region, r.gen);
                    if !st.settled.contains(&entry) {
                        st.settled.push(entry);
                    }
                }
            }
        }
    }

    fn on_event(&mut self, idx: usize, ev: &Event) {
        if let EventKind::Barrier(scope) = ev.kind {
            self.on_barrier(scope);
            return;
        }
        let e = self.entity(ev.device, ev.stream);
        if let EventKind::StreamWait { upstream } = ev.kind {
            // A device-local cross-stream dependency: the waiting stream
            // learns everything the upstream stream of the *same* device
            // has done so far (the cudaStreamWaitEvent edge).
            let up = self.entity(ev.device, upstream);
            if up != e {
                let snapshot = self.clocks[up].clone();
                for (f, v) in snapshot.into_iter().enumerate() {
                    self.clocks[e][f] = self.clocks[e][f].max(v);
                }
            }
        }
        self.clocks[e][e] += 1;
        let tick = self.clocks[e][e];
        for a in &ev.accesses {
            self.check_access(idx, ev, e, tick, a);
        }
    }

    fn check_access(&mut self, idx: usize, ev: &Event, e: usize, tick: u32, a: &Access) {
        let clocks_e = &self.clocks[e];
        let diags = &mut self.diags;
        let batch_no = self.batch_no;
        let st = self.resources.entry(a.resource).or_default();
        // `r` happens-before the current event iff `e` has seen `r`'s
        // entity advance to (at least) `r.tick` — true for earlier events
        // of `e` itself and for anything before the last barrier.
        let ordered = |r: &Rec| clocks_e[r.entity] >= r.tick;

        // ---- race detection ----
        for r in &st.recent {
            if r.entity != e
                && conflicts(r.intent, a.intent)
                && r.region.overlaps(a.region)
                && !ordered(r)
            {
                let code = match (r.intent, a.intent) {
                    (Intent::Accum, _) | (_, Intent::Accum) => DiagCode::RaceAccum,
                    (Intent::Write, Intent::Write) => DiagCode::RaceWriteWrite,
                    _ => DiagCode::RaceWriteRead,
                };
                push(
                    diags,
                    Diagnostic::new(
                        code,
                        location_of(ev.device),
                        format!(
                            "event {idx} ({:?} on {}) {:?}s {} {:?} unordered with \
                             event {} ({:?} on {})",
                            ev.kind,
                            ev.device,
                            a.intent,
                            a.resource,
                            a.region,
                            r.ev_idx,
                            r.intent,
                            r.device,
                        ),
                    ),
                );
            }
        }

        // ---- write-before-read / generation staleness ----
        if a.intent == Intent::Read && !a.resource.initially_valid() {
            let mut populated = false;
            let mut gen_ok = a.gen.is_none();
            for (region, gen) in &st.settled {
                if region.overlaps(a.region) {
                    populated = true;
                    if a.gen.is_some() && *gen == a.gen {
                        gen_ok = true;
                    }
                }
            }
            for r in &st.recent {
                if is_deposit(r.intent) && r.region.overlaps(a.region) && ordered(r) {
                    populated = true;
                    if a.gen.is_some() && r.gen == a.gen {
                        gen_ok = true;
                    }
                }
            }
            if !populated {
                push(
                    diags,
                    Diagnostic::new(
                        DiagCode::ReadUnpopulated,
                        location_of(ev.device),
                        format!(
                            "event {idx} ({:?} on {}) reads {} {:?} but no \
                             happens-before write populated it",
                            ev.kind, ev.device, a.resource, a.region,
                        ),
                    ),
                );
            } else if !gen_ok {
                push(
                    diags,
                    Diagnostic::new(
                        DiagCode::StaleGeneration,
                        location_of(ev.device),
                        format!(
                            "event {idx} ({:?} on {}) reads {} {:?} expecting batch \
                             generation {} but no happens-before write of that \
                             generation exists (stale data)",
                            ev.kind,
                            ev.device,
                            a.resource,
                            a.region,
                            a.gen.unwrap(),
                        ),
                    ),
                );
            }
        }

        // ---- per-batch barrier coverage ----
        if is_deposit(a.intent) {
            if let Some(g) = a.gen {
                if let Some((prev_gen, prev_batch)) = st.last_deposit {
                    if prev_gen != g && prev_batch == batch_no {
                        push(
                            diags,
                            Diagnostic::new(
                                DiagCode::BatchNotBarriered,
                                location_of(ev.device),
                                format!(
                                    "event {idx} ({:?} on {}) writes {} for batch \
                                     generation {g} but generation {prev_gen} was \
                                     written in the same barrier segment — adjacent \
                                     batches must be separated by a batch barrier",
                                    ev.kind, ev.device, a.resource,
                                ),
                            ),
                        );
                    }
                }
                st.last_deposit = Some((g, batch_no));
            }
        }

        st.recent.push(Rec {
            entity: e,
            tick,
            intent: a.intent,
            region: a.region,
            gen: a.gen,
            ev_idx: idx,
            device: ev.device,
        });
    }
}

pub(crate) fn incomplete(trace: &Trace) -> Option<Diagnostic> {
    if !trace.is_enabled() {
        return Some(Diagnostic::new(
            DiagCode::TraceIncomplete,
            Location::default(),
            "trace is disabled: nothing was recorded, nothing can be certified",
        ));
    }
    if trace.dropped() > 0 {
        return Some(Diagnostic::new(
            DiagCode::TraceIncomplete,
            Location::default(),
            format!(
                "trace evicted {} event(s) under its capacity bound; a pruned trace \
                 cannot be certified (use Trace::unbounded() for verification runs)",
                trace.dropped()
            ),
        ));
    }
    None
}

fn check_trace(trace: &Trace) -> Vec<Diagnostic> {
    if let Some(d) = incomplete(trace) {
        return vec![d];
    }
    let mut checker = Checker::new();
    for (idx, ev) in trace.events().enumerate() {
        checker.on_event(idx, ev);
    }
    checker.diags
}

/// Certifies a recorded execution trace: builds the happens-before order
/// over (device, stream, barrier) edges and checks every annotated access
/// for races (`R401`/`R402`/`R405`), missing or stale populating writes
/// (`R403`/`R404`), and per-batch barrier coverage (`S501`). Refuses
/// (`R400`) traces that are disabled or evicted events.
pub fn verify_trace(trace: &Trace) -> Report {
    let mut report = Report::default();
    report.extend_pass(check_trace(trace));
    report
}

fn events_equivalent(a: &Event, b: &Event) -> bool {
    a.kind == b.kind
        && a.device == b.device
        && a.stream == b.stream
        && a.bytes == b.bytes
        && a.accesses == b.accesses
}

/// Splits a trace into barrier-delimited segments; each segment's events
/// are stable-sorted by (device, stream) — the canonical order modulo
/// commutable (cross-entity) pairs, since per-entity order is preserved.
fn normalized_segments(trace: &Trace) -> Vec<(Vec<&Event>, Option<BarrierScope>)> {
    let mut segments = Vec::new();
    let mut current: Vec<&Event> = Vec::new();
    for ev in trace.events() {
        if let EventKind::Barrier(scope) = ev.kind {
            current.sort_by_key(|e| (e.device, e.stream));
            segments.push((std::mem::take(&mut current), Some(scope)));
        } else {
            current.push(ev);
        }
    }
    if !current.is_empty() {
        current.sort_by_key(|e| (e.device, e.stream));
        segments.push((current, None));
    }
    segments
}

/// Checks schedule determinism: two traces of the same plan must contain
/// the same events in the same order *modulo commutable pairs* — i.e.
/// identical barrier structure, and within each barrier segment the same
/// per-(device, stream) event sequences. Any difference is `S502`;
/// incomplete traces are refused with `R400`.
pub fn verify_determinism(a: &Trace, b: &Trace) -> Report {
    let mut diags = Vec::new();
    for t in [a, b] {
        if let Some(d) = incomplete(t) {
            diags.push(d);
        }
    }
    if diags.is_empty() {
        let sa = normalized_segments(a);
        let sb = normalized_segments(b);
        if sa.len() != sb.len() {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::NonDeterministicSchedule,
                    Location::default(),
                    format!(
                        "traces have different barrier structure: {} vs {} segments",
                        sa.len(),
                        sb.len()
                    ),
                ),
            );
        } else {
            for (seg, ((ea, ba), (eb, bb))) in sa.iter().zip(&sb).enumerate() {
                if ba != bb {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::NonDeterministicSchedule,
                            Location::default(),
                            format!("segment {seg}: barrier scope {ba:?} vs {bb:?}"),
                        ),
                    );
                    continue;
                }
                if ea.len() != eb.len() {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::NonDeterministicSchedule,
                            Location::default(),
                            format!("segment {seg}: {} vs {} events", ea.len(), eb.len()),
                        ),
                    );
                    continue;
                }
                if let Some(p) = (0..ea.len()).find(|&p| !events_equivalent(ea[p], eb[p])) {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::NonDeterministicSchedule,
                            location_of(ea[p].device),
                            format!(
                                "segment {seg}, canonical position {p}: {:?} on {} vs \
                                 {:?} on {} (schedules diverge beyond commutable \
                                 reorderings)",
                                ea[p].kind, ea[p].device, eb[p].kind, eb[p].device,
                            ),
                        ),
                    );
                }
            }
        }
    }
    let mut report = Report::default();
    report.extend_pass(diags);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_ev(g: u32, kind: EventKind, accesses: Vec<Access>) -> Event {
        Event::new(kind, Device::Gpu(g), 0, 1e-6, 0.0).with_accesses(accesses)
    }

    fn barrier(scope: BarrierScope) -> Event {
        Event::new(EventKind::Barrier(scope), Device::Host, 0, 0.0, 0.0)
    }

    fn stream_ev(g: u32, stream: u8, kind: EventKind, accesses: Vec<Access>) -> Event {
        gpu_ev(g, kind, accesses).on_stream(stream)
    }

    const REP: ResourceId = ResourceId::DevRep { gpu: 0 };

    #[test]
    fn empty_unbounded_trace_is_clean() {
        assert!(verify_trace(&Trace::unbounded()).is_ok());
    }

    #[test]
    fn same_entity_accesses_are_ordered() {
        let mut t = Trace::unbounded();
        t.record(gpu_ev(
            0,
            EventKind::H2D,
            vec![Access::write(REP, Region::All)],
        ));
        t.record(gpu_ev(
            0,
            EventKind::GpuCompute,
            vec![Access::read(REP, Region::All)],
        ));
        assert!(verify_trace(&t).is_ok(), "{}", verify_trace(&t).render());
    }

    #[test]
    fn cross_entity_conflict_without_barrier_races() {
        let mut t = Trace::unbounded();
        t.record(gpu_ev(
            0,
            EventKind::H2D,
            vec![Access::write(REP, Region::All)],
        ));
        t.record(gpu_ev(
            1,
            EventKind::H2D,
            vec![Access::write(REP, Region::All)],
        ));
        assert!(verify_trace(&t).has(DiagCode::RaceWriteWrite));
    }

    #[test]
    fn barrier_orders_cross_entity_accesses() {
        let mut t = Trace::unbounded();
        t.record(gpu_ev(
            0,
            EventKind::H2D,
            vec![Access::write(REP, Region::All)],
        ));
        t.record(barrier(BarrierScope::Phase));
        t.record(gpu_ev(
            1,
            EventKind::D2D,
            vec![Access::read(REP, Region::All)],
        ));
        let r = verify_trace(&t);
        assert!(r.is_ok(), "{}", r.render());
    }

    #[test]
    fn new_entity_inherits_barrier_floor() {
        // GPU 1's first-ever event comes after a barrier; the pre-barrier
        // write must count as happened-before for it.
        let mut t = Trace::unbounded();
        t.record(gpu_ev(
            0,
            EventKind::H2D,
            vec![Access::write(REP, Region::All)],
        ));
        t.record(barrier(BarrierScope::Batch));
        t.record(gpu_ev(
            1,
            EventKind::GpuCompute,
            vec![Access::read(REP, Region::All)],
        ));
        assert!(verify_trace(&t).is_ok());
    }

    #[test]
    fn same_device_streams_race_without_a_wait() {
        // Copy-in stream fills the buffer while the compute stream reads
        // it: unordered within the segment, so a W/R race.
        let mut t = Trace::unbounded();
        t.record(stream_ev(
            0,
            1,
            EventKind::H2D,
            vec![Access::write(REP, Region::All)],
        ));
        t.record(stream_ev(
            0,
            0,
            EventKind::GpuCompute,
            vec![Access::read(REP, Region::All)],
        ));
        assert!(verify_trace(&t).has(DiagCode::RaceWriteRead));
    }

    #[test]
    fn stream_wait_orders_cross_stream_accesses() {
        // Same schedule, but the compute stream waits for the copy-in
        // stream before reading — the cudaStreamWaitEvent pattern.
        let mut t = Trace::unbounded();
        t.record(stream_ev(
            0,
            1,
            EventKind::H2D,
            vec![Access::write(REP, Region::All)],
        ));
        t.record(stream_ev(
            0,
            0,
            EventKind::StreamWait { upstream: 1 },
            vec![],
        ));
        t.record(stream_ev(
            0,
            0,
            EventKind::GpuCompute,
            vec![Access::read(REP, Region::All)],
        ));
        let r = verify_trace(&t);
        assert!(r.is_ok(), "{}", r.render());
    }

    #[test]
    fn stream_wait_only_covers_prior_upstream_events() {
        // The wait is issued *before* the copy-in stream's write, so the
        // read is not ordered after it.
        let mut t = Trace::unbounded();
        t.record(stream_ev(
            0,
            0,
            EventKind::StreamWait { upstream: 1 },
            vec![],
        ));
        t.record(stream_ev(
            0,
            1,
            EventKind::H2D,
            vec![Access::write(REP, Region::All)],
        ));
        t.record(stream_ev(
            0,
            0,
            EventKind::GpuCompute,
            vec![Access::read(REP, Region::All)],
        ));
        assert!(verify_trace(&t).has(DiagCode::RaceWriteRead));
    }

    #[test]
    fn stream_wait_does_not_order_other_devices() {
        // GPU 1's wait on its own copy stream says nothing about GPU 0.
        let mut t = Trace::unbounded();
        t.record(stream_ev(
            0,
            0,
            EventKind::GpuCompute,
            vec![Access::write(REP, Region::All)],
        ));
        t.record(stream_ev(
            1,
            0,
            EventKind::StreamWait { upstream: 1 },
            vec![],
        ));
        t.record(stream_ev(
            1,
            0,
            EventKind::D2D,
            vec![Access::read(REP, Region::All)],
        ));
        assert!(verify_trace(&t).has(DiagCode::RaceWriteRead));
    }

    #[test]
    fn determinism_accepts_commuted_pair() {
        let (e0, e1) = (
            gpu_ev(0, EventKind::H2D, vec![]),
            gpu_ev(1, EventKind::H2D, vec![]),
        );
        let mut a = Trace::unbounded();
        a.record(e0.clone());
        a.record(e1.clone());
        let mut b = Trace::unbounded();
        b.record(e1);
        b.record(e0);
        assert!(verify_determinism(&a, &b).is_ok());
    }

    #[test]
    fn determinism_rejects_same_entity_swap() {
        let (e0, e1) = (
            gpu_ev(0, EventKind::H2D, vec![]),
            gpu_ev(0, EventKind::D2H, vec![]),
        );
        let mut a = Trace::unbounded();
        a.record(e0.clone());
        a.record(e1.clone());
        let mut b = Trace::unbounded();
        b.record(e1);
        b.record(e0);
        assert!(verify_determinism(&a, &b).has(DiagCode::NonDeterministicSchedule));
    }

    #[test]
    fn determinism_rejects_cross_barrier_move() {
        let e = gpu_ev(1, EventKind::H2D, vec![]);
        let mut a = Trace::unbounded();
        a.record(e.clone());
        a.record(barrier(BarrierScope::Batch));
        let mut b = Trace::unbounded();
        b.record(barrier(BarrierScope::Batch));
        b.record(e);
        assert!(verify_determinism(&a, &b).has(DiagCode::NonDeterministicSchedule));
    }
}
