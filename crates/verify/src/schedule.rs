//! Static schedule certification (passes 6–8): happens-before over a
//! *synthesized* schedule, resource lifetimes, and bounded exhaustive
//! interleaving exploration (codes `X701`/`X702`).
//!
//! [`verify_schedule`] is the entry point the engine's symbolic schedule
//! synthesizer feeds: pass 6 re-runs the vector-clock happens-before
//! checker ([`crate::verify_trace`]) over the synthesized event DAG,
//! pass 7 runs the lifetime analysis ([`crate::lifetime`]), and pass 8 —
//! this module — explores *every* barrier-respecting interleaving of the
//! schedule, not just the one linearization the simulator recorded.
//!
//! The explorer reconstructs, per barrier-delimited segment, the exact
//! dependency DAG pass 5 reasons over: per-(device, stream) program
//! order plus `StreamWait` edges. It then enumerates the DAG's
//! linearizations with a DPOR-style partial-order reduction — an enabled
//! event that conflicts with no *remaining, DAG-unordered* event commutes
//! with every interleaving of the rest, so it is executed without
//! branching; only genuinely racing frontiers fork the search. Along
//! each linearization, every `Read`/`Accum` access records its
//! *observation*: the set of in-segment conflicting deposits executed
//! before it. If any linearization produces an observation different
//! from the recorded schedule's, the reads are order-sensitive — a real
//! race — and the offending linearization is reported as a
//! counterexample (`X701`). A schedule whose conflicting pairs are all
//! DAG-ordered (what pass 5 certifies) branches nowhere, so exploration
//! of a clean schedule is linear in the trace; the work budget (`X702`
//! on exhaustion) only bites on corrupt schedules, where the frontier
//! genuinely explodes.

use crate::diag::{push, DiagCode, Diagnostic, Location, Report};
use crate::lifetime::check_lifetimes;
use crate::trace::{conflicts, incomplete, is_deposit, location_of, verify_trace};
use hongtu_sim::{Access, Device, Event, EventKind, Intent, Trace};
use std::collections::HashMap;

/// Default work budget (executed events summed over every explored
/// linearization) for pass 8. Clean schedules cost exactly one event of
/// budget per trace event, so this covers any config small enough to be
/// worth exploring exhaustively with plenty of headroom for
/// counterexample searches on corrupt schedules.
pub const DEFAULT_EXPLORE_BUDGET: usize = 1_000_000;

/// One barrier-delimited segment of the trace with its intra-segment
/// dependency DAG. Barriers join every clock, so segments are
/// independent: the explorer never interleaves across a barrier.
struct Segment<'a> {
    /// `(absolute trace index, event)` in recorded order — which is a
    /// topological order of the DAG, since every edge points backwards.
    events: Vec<(usize, &'a Event)>,
    /// Direct predecessors, by local index.
    preds: Vec<Vec<usize>>,
}

fn build_segment(events: Vec<(usize, &Event)>) -> Segment<'_> {
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); events.len()];
    let mut last_on: HashMap<(Device, u8), usize> = HashMap::new();
    for (n, &(_, ev)) in events.iter().enumerate() {
        if let Some(&p) = last_on.get(&(ev.device, ev.stream)) {
            preds[n].push(p);
        }
        if let EventKind::StreamWait { upstream } = ev.kind {
            if upstream != ev.stream {
                // The wait orders this stream after everything the
                // upstream stream of the same device has issued so far
                // in this segment (pre-barrier work is ordered anyway).
                if let Some(&p) = last_on.get(&(ev.device, upstream)) {
                    if !preds[n].contains(&p) {
                        preds[n].push(p);
                    }
                }
            }
        }
        last_on.insert((ev.device, ev.stream), n);
    }
    Segment { events, preds }
}

fn segments(trace: &Trace) -> Vec<Segment<'_>> {
    let mut out = Vec::new();
    let mut cur: Vec<(usize, &Event)> = Vec::new();
    for (idx, ev) in trace.events().enumerate() {
        if matches!(ev.kind, EventKind::Barrier(_)) {
            if !cur.is_empty() {
                out.push(build_segment(std::mem::take(&mut cur)));
            }
        } else {
            cur.push((idx, ev));
        }
    }
    if !cur.is_empty() {
        out.push(build_segment(cur));
    }
    out
}

/// Whether any access pair of the two events conflicts (same resource,
/// overlapping region, non-commuting intents).
fn events_conflict(a: &Event, b: &Event) -> bool {
    a.accesses.iter().any(|x| {
        b.accesses.iter().any(|y| {
            x.resource == y.resource && conflicts(x.intent, y.intent) && x.region.overlaps(y.region)
        })
    })
}

/// The per-segment interleaving explorer.
struct Explorer<'a> {
    seg: &'a Segment<'a>,
    /// For each event, the remaining-unexecuted conflicting events the
    /// DAG does *not* order it against — the only pairs whose relative
    /// order a linearization gets to choose.
    danger: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    /// Unexecuted direct-predecessor counts.
    pred_count: Vec<usize>,
    executed: Vec<bool>,
    /// Executed local indices, in execution order.
    order: Vec<usize>,
    /// Reference observations per (event, read-access), taken from the
    /// recorded order.
    ref_obs: Vec<Vec<Vec<usize>>>,
    budget: usize,
    outcome: Option<Outcome>,
}

enum Outcome {
    Race(Diagnostic),
    Budget,
}

impl<'a> Explorer<'a> {
    fn new(seg: &'a Segment<'a>, budget: usize) -> Self {
        let n = seg.events.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ps) in seg.preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(i);
            }
        }
        // Transitive "happens-after" sets, walking the topological
        // (= recorded) order backwards.
        let words = n.div_ceil(64).max(1);
        let mut after: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        for i in (0..n).rev() {
            for &j in &succs[i] {
                let (lo, hi) = after.split_at_mut(j);
                for (w, v) in lo[i].iter_mut().zip(&hi[0]) {
                    *w |= v;
                }
                after[i][j / 64] |= 1 << (j % 64);
            }
        }
        let ordered = |i: usize, j: usize| {
            after[i][j / 64] >> (j % 64) & 1 == 1 || after[j][i / 64] >> (i % 64) & 1 == 1
        };
        let mut danger: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in i + 1..n {
                if !ordered(i, j) && events_conflict(seg.events[i].1, seg.events[j].1) {
                    danger[i].push(j);
                    danger[j].push(i);
                }
            }
        }
        let pred_count: Vec<usize> = seg.preds.iter().map(Vec::len).collect();
        let mut ex = Explorer {
            seg,
            danger,
            succs,
            pred_count,
            executed: vec![false; n],
            order: Vec::with_capacity(n),
            ref_obs: vec![Vec::new(); n],
            budget,
            outcome: None,
        };
        ex.take_reference();
        ex
    }

    /// The observation of one read access given the current execution
    /// prefix: which in-segment conflicting deposits it sees.
    fn observe(&self, a: &Access) -> Vec<usize> {
        self.order
            .iter()
            .copied()
            .filter(|&d| {
                self.seg.events[d].1.accesses.iter().any(|w| {
                    is_deposit(w.intent)
                        && w.resource == a.resource
                        && conflicts(w.intent, a.intent)
                        && w.region.overlaps(a.region)
                })
            })
            .collect()
    }

    /// Replays the recorded order once to capture each read access's
    /// reference observation. The recorded order is always a valid
    /// linearization (every DAG edge points backwards in it).
    fn take_reference(&mut self) {
        let n = self.seg.events.len();
        for e in 0..n {
            self.ref_obs[e] = self.seg.events[e]
                .1
                .accesses
                .iter()
                .map(|a| {
                    if a.intent == Intent::Write {
                        Vec::new()
                    } else {
                        self.observe(a)
                    }
                })
                .collect();
            self.order.push(e);
        }
        self.order.clear();
    }

    fn enabled(&self) -> Vec<usize> {
        (0..self.seg.events.len())
            .filter(|&i| !self.executed[i] && self.pred_count[i] == 0)
            .collect()
    }

    /// Whether `e` commutes with every remaining event: none of its
    /// DAG-unordered conflict partners is still unexecuted.
    fn commutes(&self, e: usize) -> bool {
        self.danger[e].iter().all(|&p| self.executed[p])
    }

    /// Executes one event: spends budget, checks its read observations
    /// against the reference, applies deposits. Returns `true` to abort
    /// (outcome set).
    fn execute(&mut self, e: usize) -> bool {
        if self.budget == 0 {
            self.outcome = Some(Outcome::Budget);
            return true;
        }
        self.budget -= 1;
        let ev = self.seg.events[e].1;
        for (ai, a) in ev.accesses.iter().enumerate() {
            // Plain writes don't observe; `Accum` observes prior writes
            // and `Read` observes prior writes *and* accumulates —
            // `conflicts` inside `observe` encodes exactly that.
            if a.intent == Intent::Write {
                continue;
            }
            let obs = self.observe(a);
            if obs != self.ref_obs[e][ai] {
                let d = self.race_diag(e, a, &obs, &self.ref_obs[e][ai]);
                self.outcome = Some(Outcome::Race(d));
                return true;
            }
        }
        self.executed[e] = true;
        self.order.push(e);
        for s in 0..self.succs[e].len() {
            self.pred_count[self.succs[e][s]] -= 1;
        }
        false
    }

    fn undo(&mut self, e: usize) {
        debug_assert_eq!(self.order.last(), Some(&e));
        self.order.pop();
        self.executed[e] = false;
        for s in 0..self.succs[e].len() {
            self.pred_count[self.succs[e][s]] += 1;
        }
    }

    fn race_diag(&self, e: usize, a: &Access, obs: &[usize], want: &[usize]) -> Diagnostic {
        let (abs, ev) = self.seg.events[e];
        let fmt = |ids: &[usize]| {
            let v: Vec<String> = ids
                .iter()
                .map(|&l| self.seg.events[l].0.to_string())
                .collect();
            format!("{{{}}}", v.join(", "))
        };
        let prefix: Vec<String> = self
            .order
            .iter()
            .map(|&l| self.seg.events[l].0.to_string())
            .collect();
        Diagnostic::new(
            DiagCode::InterleavingRace,
            location_of(ev.device),
            format!(
                "interleaving [{}] → {abs} is barrier- and stream-legal but racy: \
                 event {abs} ({:?} on {}) {:?}s {} {:?} observing deposits {} where \
                 the recorded schedule observed {} — a conflicting access pair is \
                 unordered",
                prefix.join(", "),
                ev.kind,
                ev.device,
                a.intent,
                a.resource,
                a.region,
                fmt(obs),
                fmt(want),
            ),
        )
    }

    /// Depth-first exploration from the current state; restores the
    /// state it entered with. Returns `true` to abort.
    fn run(&mut self) -> bool {
        let mark = self.order.len();
        let abort = self.run_inner();
        while self.order.len() > mark {
            let e = *self.order.last().expect("order above mark");
            self.undo(e);
        }
        abort
    }

    fn run_inner(&mut self) -> bool {
        loop {
            let enabled = self.enabled();
            if enabled.is_empty() {
                // A complete linearization (the DAG is acyclic, so an
                // empty frontier means everything executed).
                return false;
            }
            if let Some(&e) = enabled.iter().find(|&&e| self.commutes(e)) {
                if self.execute(e) {
                    return true;
                }
                continue;
            }
            // Every enabled event races with something still pending:
            // branch over the whole frontier.
            for &e in &enabled {
                if self.execute(e) {
                    return true;
                }
                if self.run() {
                    return true;
                }
                self.undo(e);
            }
            return false;
        }
    }
}

pub(crate) fn check_interleavings(trace: &Trace, budget: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut remaining = budget;
    for seg in &segments(trace) {
        let mut ex = Explorer::new(seg, remaining);
        ex.run();
        remaining = ex.budget;
        match ex.outcome {
            None => {}
            Some(Outcome::Race(d)) => {
                push(&mut diags, d);
                break;
            }
            Some(Outcome::Budget) => {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::InterleavingBudgetExceeded,
                        Location::default(),
                        format!(
                            "interleaving exploration exhausted its budget of {budget} \
                             event executions — the remaining interleavings are \
                             uncertified (raise the budget or shrink the config)"
                        ),
                    ),
                );
                break;
            }
        }
    }
    diags
}

/// Pass 8 alone: explores every barrier-respecting interleaving of the
/// trace and reports the first linearization on which some read observes
/// different data than the recorded schedule (`X701`), or budget
/// exhaustion (`X702`). Refuses (`R400`) incomplete traces.
pub fn verify_interleavings(trace: &Trace, budget: usize) -> Report {
    let mut report = Report::default();
    if let Some(d) = incomplete(trace) {
        report.extend_pass(vec![d]);
        return report;
    }
    report.extend_pass(check_interleavings(trace, budget));
    report
}

/// Full static schedule certification over a synthesized (or recorded)
/// trace: pass 6 (happens-before, `R4xx`/`S501`), pass 7 (resource
/// lifetimes, `L6xx`), and — when `explore` is `Some(budget)` — pass 8
/// (exhaustive interleavings, `X7xx`). Exploration is skipped when the
/// earlier passes already failed: a schedule with unordered conflicting
/// accesses makes the interleaving frontier explode, and the defect is
/// already reported.
pub fn verify_schedule(trace: &Trace, explore: Option<usize>) -> Report {
    let mut report = verify_trace(trace);
    if incomplete(trace).is_some() {
        return report;
    }
    report.extend_pass(check_lifetimes(trace));
    if let Some(budget) = explore {
        if report.is_ok() {
            report.extend_pass(check_interleavings(trace, budget));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_sim::{Access, BarrierScope, Region, ResourceId};

    const SLOT: ResourceId = ResourceId::DevRepSlot { gpu: 0, slot: 0 };

    fn ev(stream: u8, kind: EventKind, accesses: Vec<Access>) -> Event {
        Event::new(kind, Device::Gpu(0), 0, 1e-6, 0.0)
            .on_stream(stream)
            .with_accesses(accesses)
    }

    fn barrier() -> Event {
        Event::new(
            EventKind::Barrier(BarrierScope::Batch),
            Device::Host,
            0,
            0.0,
            0.0,
        )
    }

    fn trace_of(events: Vec<Event>) -> Trace {
        let mut t = Trace::unbounded();
        for e in events {
            t.record(e);
        }
        t
    }

    /// Write on the copy stream, stream-wait, read on the compute
    /// stream: the wait orders the pair, so every interleaving agrees.
    fn waited() -> Vec<Event> {
        vec![
            ev(
                1,
                EventKind::H2D,
                vec![Access::write(SLOT, Region::All).with_gen(0)],
            ),
            ev(0, EventKind::StreamWait { upstream: 1 }, vec![]),
            ev(
                0,
                EventKind::GpuCompute,
                vec![Access::read(SLOT, Region::All)],
            ),
            barrier(),
        ]
    }

    #[test]
    fn ordered_cross_stream_pair_explores_clean() {
        let t = trace_of(waited());
        assert!(verify_interleavings(&t, DEFAULT_EXPLORE_BUDGET).is_ok());
        assert!(verify_schedule(&t, Some(DEFAULT_EXPLORE_BUDGET)).is_ok());
    }

    #[test]
    fn dropped_stream_wait_yields_racy_interleaving() {
        let mut events = waited();
        events.remove(1);
        let t = trace_of(events);
        let report = verify_interleavings(&t, DEFAULT_EXPLORE_BUDGET);
        assert!(
            report.diagnostics.iter().any(|d| d.code.code() == "X701"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn exhausted_budget_is_reported() {
        let t = trace_of(waited());
        let report = verify_interleavings(&t, 1);
        assert_eq!(report.diagnostics[0].code.code(), "X702");
    }

    #[test]
    fn clean_schedule_costs_linear_budget() {
        // 3 non-barrier events: exactly 3 units of work, not more.
        let t = trace_of(waited());
        assert!(verify_interleavings(&t, 3).is_ok());
    }

    #[test]
    fn barriers_limit_the_frontier() {
        // Conflicting writes separated by a barrier never interleave.
        let t = trace_of(vec![
            ev(
                0,
                EventKind::H2D,
                vec![Access::write(SLOT, Region::All).with_gen(0)],
            ),
            barrier(),
            ev(
                1,
                EventKind::GpuCompute,
                vec![Access::read(SLOT, Region::All)],
            ),
            barrier(),
        ]);
        assert!(verify_interleavings(&t, DEFAULT_EXPLORE_BUDGET).is_ok());
    }

    #[test]
    fn incomplete_trace_is_refused() {
        let r = verify_interleavings(&Trace::disabled(), 10);
        assert_eq!(r.diagnostics[0].code.code(), "R400");
        assert!(!verify_schedule(&Trace::disabled(), None).is_ok());
    }
}
