//! Pass 9 — dataflow conservation (F8xx): the value-preservation layer
//! on top of the schedule passes.
//!
//! Passes 5–8 prove a schedule is race-free, slot-safe, and robust under
//! reordering — but a schedule that silently drops a boundary vertex's
//! contribution, or double-counts a deduplicated gradient flush, passes
//! all of them: it is perfectly synchronized wrong arithmetic. This pass
//! closes that gap by abstract interpretation over the provenance
//! annotations ([`hongtu_sim::Provenance`]) the engine attaches to its
//! trace accesses: symbolic *contribution multisets* are tracked per
//! buffer × `(layer, batch)` value generation and balanced against a
//! [`DataflowSpec`] derived independently from the partition/dedup
//! plans. Per layer and batch it proves:
//!
//! - every aggregation consumes each in-neighbor contribution exactly
//!   once — a supply shortfall is F801 (dropped contribution), an excess
//!   is F802 (double-counted);
//! - every activation write is consumed before its region is
//!   overwritten — F803 (the hybrid checkpoint stores live on separate
//!   `AggCache` resources, so a host-layer overwrite cannot hide behind
//!   a checkpoint);
//! - the backward flow is the exact transpose of the forward flow: a
//!   gradient buffer flushed before every expected accumulation arrived
//!   is F804, an accumulation with no forward counterpart (a push from a
//!   GPU that fetched nothing, or excess rows) is F805;
//! - the deduplicated transfer decomposition carries the same per-owner
//!   contribution multiset as the vanilla comparator — F806, checked
//!   against per-owner demands recomputed from the raw chunk neighbor
//!   lists, not from the dedup plan's own `fetch` matrix.

use crate::diag::{push, DiagCode, Diagnostic, Location, Report};
use crate::trace::incomplete;
use hongtu_partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};
use hongtu_sim::{BarrierScope, ContribKind, EventKind, Intent, Region, ResourceId, Trace};
use std::collections::HashMap;

/// Communication mode of the schedule under certification. Mirrors the
/// engine's `CommMode` without depending on `hongtu-core` (which
/// depends on this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommKind {
    /// Full-neighbor host loads, no inter-GPU traffic.
    Vanilla,
    /// Deduplicated owner-routed loads with P2P fetches (§5.1).
    P2p,
    /// P2P plus intra-GPU `ℕ^gpu` reuse and merged in-place buffers
    /// (§5.2, §6).
    P2pRu,
}

/// Expected contribution flows of one `(gpu, batch)` chunk, derived
/// from the plans. Row counts are layer-independent (every layer moves
/// the same row sets at different widths).
#[derive(Debug, Clone, Default)]
pub struct ChunkFlow {
    /// `|N_ij|`: total in-neighbor contributions the aggregation must
    /// consume.
    pub demand_total: usize,
    /// `demand_by_owner[k]`: rows of `N_ij` owned by partition `k` — the
    /// vanilla comparator multiset (recomputed from the raw chunk
    /// neighbor lists).
    pub demand_by_owner: Vec<usize>,
    /// Expected host-load rows into the buffer.
    pub host_rows: usize,
    /// `fetch_rows[k]`: expected P2P rows served by GPU `k` (`0` for
    /// `k == gpu` and under vanilla).
    pub fetch_rows: Vec<usize>,
    /// Expected in-place reuse rows (P2P+RU only).
    pub reuse_rows: usize,
    /// `reuse_by_owner[k]`: owner decomposition of the reused rows,
    /// from the merged-buffer plan.
    pub reuse_by_owner: Vec<usize>,
    /// Expected locally-accumulated gradient rows.
    pub grad_local_rows: usize,
    /// `grad_push_rows[p]`: expected gradient rows pushed *into* this
    /// GPU by pusher `p` — the transpose of the forward fetches.
    pub grad_push_rows: Vec<usize>,
    /// Expected rows of the gradient flush (evicted to the host).
    pub grad_flush_rows: usize,
}

/// The full expected-flow table for one configuration: what every
/// `(gpu, batch)` buffer must be fed and drained with.
#[derive(Debug, Clone)]
pub struct DataflowSpec {
    /// Communication mode the flows were derived for.
    pub comm: CommKind,
    /// Number of GPUs / partitions.
    pub m: usize,
    /// Number of batches (chunks per partition).
    pub n: usize,
    /// `flows[gpu][batch]`.
    pub flows: Vec<Vec<ChunkFlow>>,
}

/// Per-owner decomposition of chunk `(gpu, batch)`'s in-neighbor demand
/// `N_ij`, recomputed from the raw chunk neighbor list and the level-1
/// assignment — the vanilla comparator multiset for F806 (and the
/// property-test oracle).
pub fn demand_by_owner(plan: &TwoLevelPartition, gpu: usize, batch: usize) -> Vec<usize> {
    let mut by_owner = vec![0usize; plan.m];
    for &v in &plan.chunks[gpu][batch].neighbors {
        by_owner[plan.assignment.partition_of[v as usize] as usize] += 1;
    }
    by_owner
}

impl DataflowSpec {
    /// Derives the expected flows from the partition and dedup plans.
    /// `bufplans` must be `Some` for [`CommKind::P2pRu`] (the merged
    /// in-place buffer plan determines the H2D/D2D/reuse split).
    pub fn from_plans(
        plan: &TwoLevelPartition,
        dedup: &DedupPlan,
        bufplans: Option<&[GpuBufferPlan]>,
        comm: CommKind,
    ) -> Self {
        let (m, n) = (plan.m, plan.n);
        let owner_of = |v: u32| plan.assignment.partition_of[v as usize] as usize;
        let mut flows = Vec::with_capacity(m);
        for i in 0..m {
            let mut per_batch = Vec::with_capacity(n);
            for j in 0..n {
                let by_owner = demand_by_owner(plan, i, j);
                let demand_total: usize = by_owner.iter().sum();
                let batch = &dedup.batches[j];
                let mut flow = ChunkFlow {
                    demand_total,
                    demand_by_owner: by_owner,
                    fetch_rows: vec![0; m],
                    reuse_by_owner: vec![0; m],
                    grad_push_rows: vec![0; m],
                    ..Default::default()
                };
                match comm {
                    CommKind::Vanilla => {
                        flow.host_rows = demand_total;
                        flow.grad_local_rows = demand_total;
                        flow.grad_flush_rows = demand_total;
                    }
                    CommKind::P2p => {
                        flow.host_rows = batch.transition[i].len();
                        for k in 0..m {
                            if k != i {
                                flow.fetch_rows[k] = batch.fetch[i][k];
                            }
                        }
                        flow.grad_flush_rows = batch.transition[i].len();
                    }
                    CommKind::P2pRu => {
                        let bp = &bufplans.expect("buffer plans required for P2pRu")[i];
                        let bb = &bp.batches[j];
                        let mut incoming = vec![false; bb.merged.len()];
                        for &(t, _) in &bb.incoming {
                            incoming[t as usize] = true;
                            let o = owner_of(bb.merged[t as usize]);
                            if o == i {
                                flow.host_rows += 1;
                            } else {
                                flow.fetch_rows[o] += 1;
                            }
                        }
                        for (t, &v) in bb.merged.iter().enumerate() {
                            if !incoming[t] {
                                flow.reuse_rows += 1;
                                flow.reuse_by_owner[owner_of(v)] += 1;
                            }
                        }
                        let next_reused = if j + 1 < n {
                            dedup.batches[j + 1].reused[i]
                        } else {
                            0
                        };
                        flow.grad_flush_rows = batch.transition[i].len() - next_reused;
                    }
                }
                if comm != CommKind::Vanilla {
                    flow.grad_local_rows = batch.fetch[i][i];
                    for p in 0..m {
                        if p != i {
                            flow.grad_push_rows[p] = batch.fetch[p][i];
                        }
                    }
                }
                per_batch.push(flow);
            }
            flows.push(per_batch);
        }
        DataflowSpec { comm, m, n, flows }
    }
}

/// Supply ledger of one rep-buffer `(gpu, layer, batch)` instance.
#[derive(Debug, Default)]
struct RepLedger {
    host: usize,
    reuse: usize,
    fetch: Vec<usize>,
}

/// Deposit ledger of one grad-buffer `(gpu, layer, batch)` instance.
#[derive(Debug, Default)]
struct GradLedger {
    local: usize,
    push: Vec<usize>,
}

fn rep_buf_gpu(r: ResourceId) -> Option<usize> {
    match r {
        ResourceId::DevRep { gpu } | ResourceId::DevRepSlot { gpu, .. } => Some(gpu as usize),
        _ => None,
    }
}

fn grad_buf_gpu(r: ResourceId) -> Option<usize> {
    match r {
        ResourceId::DevGrad { gpu } | ResourceId::DevGradSlot { gpu, .. } => Some(gpu as usize),
        _ => None,
    }
}

/// Runs the dataflow-conservation analysis over `trace`, returning raw
/// diagnostics. Prefer [`verify_dataflow`], which also refuses
/// incomplete traces.
pub fn check_dataflow(trace: &Trace, spec: &DataflowSpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // (gpu, layer, batch) → supply / deposit ledgers.
    let mut reps: HashMap<(usize, u32, u32), RepLedger> = HashMap::new();
    let mut grads: HashMap<(usize, u32, u32), GradLedger> = HashMap::new();
    // Per host layer: activation writes awaiting a consuming read.
    let mut pending_writes: HashMap<u32, Vec<(Region, bool)>> = HashMap::new();

    for event in trace.events() {
        if let EventKind::Barrier(BarrierScope::Epoch) = event.kind {
            // Epoch boundary: the epoch's outputs (logits) are consumed
            // externally; surviving activation writes are not leaks.
            pending_writes.clear();
        }
        for access in &event.accesses {
            // F803 bookkeeping rides on *all* host-layer accesses, with
            // or without provenance.
            if let ResourceId::Rep { layer } = access.resource {
                let pending = pending_writes.entry(layer).or_default();
                match access.intent {
                    Intent::Write => {
                        for (region, consumed) in pending.iter() {
                            if !consumed && region.overlaps(access.region) {
                                push(
                                    &mut diags,
                                    Diagnostic::new(
                                        DiagCode::ActivationOverwritten,
                                        Location::default(),
                                        format!(
                                            "h^{layer} {region:?} overwritten before any \
                                             read consumed it"
                                        ),
                                    ),
                                );
                            }
                        }
                        pending.retain(|(region, _)| !region.overlaps(access.region));
                        pending.push((access.region, false));
                    }
                    Intent::Read | Intent::Accum => {
                        for (region, consumed) in pending.iter_mut() {
                            if region.overlaps(access.region) {
                                *consumed = true;
                            }
                        }
                    }
                }
            }

            let Some(prov) = access.prov else { continue };
            let (l, j) = (prov.layer, prov.batch);
            match prov.kind {
                ContribKind::HostLoad | ContribKind::Reuse | ContribKind::Fetch => {
                    let Some(gpu) = rep_buf_gpu(access.resource) else {
                        continue;
                    };
                    let entry = reps.entry((gpu, l, j)).or_insert_with(|| RepLedger {
                        fetch: vec![0; spec.m],
                        ..Default::default()
                    });
                    match prov.kind {
                        ContribKind::HostLoad => entry.host += prov.rows,
                        ContribKind::Reuse => entry.reuse += prov.rows,
                        _ => {
                            let from = prov.from as usize;
                            if from < spec.m {
                                entry.fetch[from] += prov.rows;
                            }
                        }
                    }
                }
                ContribKind::Aggregate => {
                    let Some(gpu) = rep_buf_gpu(access.resource) else {
                        continue;
                    };
                    if gpu >= spec.m || (j as usize) >= spec.n {
                        continue;
                    }
                    let flow = &spec.flows[gpu][j as usize];
                    let ledger = reps.remove(&(gpu, l, j)).unwrap_or_else(|| RepLedger {
                        fetch: vec![0; spec.m],
                        ..Default::default()
                    });
                    check_aggregate(&mut diags, spec, flow, &ledger, gpu, l, j);
                }
                ContribKind::GradLocal | ContribKind::GradPush => {
                    let Some(gpu) = grad_buf_gpu(access.resource) else {
                        continue;
                    };
                    let entry = grads.entry((gpu, l, j)).or_insert_with(|| GradLedger {
                        push: vec![0; spec.m],
                        ..Default::default()
                    });
                    if prov.kind == ContribKind::GradLocal {
                        entry.local += prov.rows;
                    } else {
                        let from = prov.from as usize;
                        if from < spec.m {
                            entry.push[from] += prov.rows;
                        }
                    }
                }
                ContribKind::GradFlush => {
                    let Some(gpu) = grad_buf_gpu(access.resource) else {
                        continue;
                    };
                    if gpu >= spec.m || (j as usize) >= spec.n {
                        continue;
                    }
                    let flow = &spec.flows[gpu][j as usize];
                    let ledger = grads.remove(&(gpu, l, j)).unwrap_or_else(|| GradLedger {
                        push: vec![0; spec.m],
                        ..Default::default()
                    });
                    check_flush(&mut diags, spec, flow, &ledger, prov.rows, gpu, l, j);
                }
                // Checkpoint stores/reloads live on dedicated AggCache
                // resources whose lifecycle pass 7 already certifies
                // (L604); conservation needs no ledger for them. The
                // activation-store write is handled by the F803
                // bookkeeping above.
                ContribKind::ActStore | ContribKind::CkptStore | ContribKind::CkptReload => {}
            }
        }
    }

    // Gradient deposits that never flushed have no forward counterpart
    // draining them — orphaned accumulations.
    let mut dangling: Vec<_> = grads
        .iter()
        .filter(|(_, g)| g.local > 0 || g.push.iter().any(|&p| p > 0))
        .map(|(&(gpu, l, j), _)| (gpu, l, j))
        .collect();
    dangling.sort_unstable();
    for (gpu, l, j) in dangling {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::OrphanGradient,
                Location::gpu_batch(gpu, j as usize),
                format!("layer {l}: gradient accumulations never flushed to the host"),
            ),
        );
    }
    diags
}

/// Balances one aggregation's supply ledger against the spec: totals
/// first (F801/F802), then — only when the totals conserve — the
/// per-owner decomposition against the vanilla comparator (F806).
fn check_aggregate(
    diags: &mut Vec<Diagnostic>,
    spec: &DataflowSpec,
    flow: &ChunkFlow,
    ledger: &RepLedger,
    gpu: usize,
    l: u32,
    j: u32,
) {
    let expected_total = flow.host_rows + flow.reuse_rows + flow.fetch_rows.iter().sum::<usize>();
    let supplied_total = ledger.host + ledger.reuse + ledger.fetch.iter().sum::<usize>();
    let loc = Location::gpu_batch(gpu, j as usize);
    if supplied_total < expected_total {
        push(
            diags,
            Diagnostic::new(
                DiagCode::DroppedContribution,
                loc,
                format!(
                    "layer {l}: aggregation supplied {supplied_total} contribution rows, \
                     plans promise {expected_total} — some in-neighbor contribution dropped"
                ),
            ),
        );
        return;
    }
    if supplied_total > expected_total {
        push(
            diags,
            Diagnostic::new(
                DiagCode::DoubleCountedContribution,
                loc,
                format!(
                    "layer {l}: aggregation supplied {supplied_total} contribution rows, \
                     plans promise {expected_total} — some contribution delivered twice"
                ),
            ),
        );
        return;
    }
    if spec.comm == CommKind::Vanilla {
        // No decomposition to compare: the one mixed host load is the
        // comparator itself.
        return;
    }
    // Per-owner multiset vs the vanilla comparator: P2P rows served by
    // `k` plus the planned reuse rows owned by `k` must equal the raw
    // demand `|N_ij ∩ V_k|`; the owner's own rows satisfy demand from
    // the (possibly larger) transition set.
    for k in 0..spec.m {
        if k == gpu {
            continue;
        }
        let got = ledger.fetch[k] + flow.reuse_by_owner[k];
        if got != flow.demand_by_owner[k] {
            push(
                diags,
                Diagnostic::new(
                    DiagCode::DedupMultisetMismatch,
                    loc,
                    format!(
                        "layer {l}: rows owned by gpu {k}: dedup transfers carry {got}, \
                         vanilla comparator demands {}",
                        flow.demand_by_owner[k]
                    ),
                ),
            );
        }
    }
    let own = ledger.host + flow.reuse_by_owner[gpu];
    if own < flow.demand_by_owner[gpu] {
        push(
            diags,
            Diagnostic::new(
                DiagCode::DedupMultisetMismatch,
                loc,
                format!(
                    "layer {l}: rows owned by gpu {gpu}: transition supply {own} cannot \
                     cover the vanilla comparator demand {}",
                    flow.demand_by_owner[gpu]
                ),
            ),
        );
    }
}

/// Balances one gradient flush against the transpose of the forward
/// flow: a shortfall is F804 (flushed early), an excess or an
/// unexpected pusher is F805 (orphan).
#[allow(clippy::too_many_arguments)]
fn check_flush(
    diags: &mut Vec<Diagnostic>,
    spec: &DataflowSpec,
    flow: &ChunkFlow,
    ledger: &GradLedger,
    flush_rows: usize,
    gpu: usize,
    l: u32,
    j: u32,
) {
    let loc = Location::gpu_batch(gpu, j as usize);
    if ledger.local < flow.grad_local_rows {
        push(
            diags,
            Diagnostic::new(
                DiagCode::GradFlushEarly,
                loc,
                format!(
                    "layer {l}: flushed with {} local gradient rows accumulated, forward \
                     flow promises {}",
                    ledger.local, flow.grad_local_rows
                ),
            ),
        );
        return;
    }
    for p in 0..spec.m {
        if ledger.push[p] < flow.grad_push_rows[p] {
            push(
                diags,
                Diagnostic::new(
                    DiagCode::GradFlushEarly,
                    loc,
                    format!(
                        "layer {l}: flushed with {} gradient rows pushed from gpu {p}, \
                         forward flow promises {}",
                        ledger.push[p], flow.grad_push_rows[p]
                    ),
                ),
            );
            return;
        }
    }
    if ledger.local > flow.grad_local_rows {
        push(
            diags,
            Diagnostic::new(
                DiagCode::OrphanGradient,
                loc,
                format!(
                    "layer {l}: {} local gradient rows accumulated, forward flow has only {}",
                    ledger.local, flow.grad_local_rows
                ),
            ),
        );
        return;
    }
    for p in 0..spec.m {
        if ledger.push[p] > flow.grad_push_rows[p] {
            push(
                diags,
                Diagnostic::new(
                    DiagCode::OrphanGradient,
                    loc,
                    format!(
                        "layer {l}: gpu {p} pushed {} gradient rows, its forward fetch was \
                         only {} — no forward counterpart",
                        ledger.push[p], flow.grad_push_rows[p]
                    ),
                ),
            );
            return;
        }
    }
    if flush_rows != flow.grad_flush_rows {
        push(
            diags,
            Diagnostic::new(
                DiagCode::OrphanGradient,
                loc,
                format!(
                    "layer {l}: flush evicted {flush_rows} rows, plans promise {}",
                    flow.grad_flush_rows
                ),
            ),
        );
    }
}

/// Pass 9 entry point: refuses incomplete traces (R400, like the other
/// trace passes — an evicted deposit would be indistinguishable from a
/// dropped contribution), then runs the conservation analysis.
pub fn verify_dataflow(trace: &Trace, spec: &DataflowSpec) -> Report {
    let mut report = Report::default();
    if let Some(d) = incomplete(trace) {
        report.extend_pass(vec![d]);
        return report;
    }
    report.extend_pass(check_dataflow(trace, spec));
    report
}
