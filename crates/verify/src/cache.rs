//! Pass 11: hot-vertex cache coherence certification (`H10xx`).
//!
//! The engine journals every cache state transition — sweeps (frozen hit
//! tables plus end-of-sweep installs) and delta invalidations — in a
//! [`CacheLog`]. This pass replays that journal against load sets
//! `S[i][j]` recomputed *independently* from the partition/dedup/buffer
//! plans, reconstructing the resident set event by event, and holds the
//! engine to four invariants:
//!
//! * **Headroom** (`H1001`): the admitted plan, and every replayed
//!   resident set, fits each GPU's post-staging HBM headroom.
//! * **No phantom hits** (`H1002`): a sweep may only charge hits the
//!   pre-sweep resident set can actually serve — `hits[i][j] =
//!   |S[i][j] ∩ resident|` for executed batches and `0` otherwise. A hit
//!   recorded before the row was installed (or on a batch the cone mask
//!   pruned) would mean the executor skipped an H2D transfer for a row
//!   that is not on the GPU.
//! * **No stale rows** (`H1003`): a delta commit must remove *exactly*
//!   the resident rows inside the dirty set. A dirty row left resident
//!   would serve pre-patch features to every later sweep.
//! * **Planned installs only** (`H1004`): a sweep may install only rows
//!   the plan admits, that an executed batch actually loaded, and that
//!   were not already resident.
//!
//! The replay *follows the journal* (it applies the engine's recorded
//! installs/removals, not the corrected ones), so one corrupt event is
//! diagnosed once rather than cascading into spurious downstream
//! mismatches.

use std::collections::HashSet;

use crate::diag::{push, DiagCode, Diagnostic, Location, Report};
use hongtu_cache::{load_sets, CacheEvent, CacheLog, CachePlan, LoadPattern};
use hongtu_graph::VertexId;
use hongtu_partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};

/// Certifies a cache journal against independently recomputed load sets.
/// `headroom[i]` is GPU `i`'s post-staging byte budget the plan was built
/// against; `bufs` is required when `pattern` is [`LoadPattern::P2pRu`].
pub fn verify_cache(
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bufs: Option<&[GpuBufferPlan]>,
    pattern: LoadPattern,
    cache: &CachePlan,
    headroom: &[usize],
    log: &CacheLog,
) -> Report {
    let mut diags = Vec::new();
    let sets = load_sets(plan, dedup, bufs, pattern);
    let m = plan.m;
    let n = plan.n;
    let num_vertices = plan.assignment.partition_of.len();

    // -- static plan checks (H1001) ------------------------------------
    if cache.per_gpu.len() != m {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::CacheOverflow,
                Location::default(),
                format!(
                    "cache plan covers {} GPUs, partition plan has {m}",
                    cache.per_gpu.len()
                ),
            ),
        );
    }
    for (i, g) in cache.per_gpu.iter().enumerate() {
        let budget = headroom.get(i).copied().unwrap_or(0);
        if g.bytes > budget {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::CacheOverflow,
                    Location::gpu(i),
                    format!(
                        "admitted cache spends {} bytes, headroom is {budget}",
                        g.bytes
                    ),
                ),
            );
        }
        if g.bytes != g.vertices.len() * cache.slot_bytes {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::CacheOverflow,
                    Location::gpu(i),
                    format!(
                        "cache byte accounting broken: {} rows × {} slot bytes ≠ {}",
                        g.vertices.len(),
                        cache.slot_bytes,
                        g.bytes
                    ),
                ),
            );
        }
    }

    // -- journal replay (H1002/H1003/H1004, dynamic H1001) -------------
    let mut resident: Vec<Vec<bool>> = vec![vec![false; num_vertices]; m];
    for event in &log.events {
        match event {
            CacheEvent::Sweep {
                executed,
                hits,
                installs,
            } => {
                replay_sweep(
                    &mut diags,
                    &sets,
                    cache,
                    headroom,
                    &mut resident,
                    executed,
                    hits,
                    installs,
                    n,
                );
            }
            CacheEvent::Invalidate { dirty, removed } => {
                replay_invalidate(&mut diags, &mut resident, dirty, removed);
            }
        }
    }

    let mut report = Report::default();
    report.extend_pass(diags);
    report
}

#[allow(clippy::too_many_arguments)]
fn replay_sweep(
    diags: &mut Vec<Diagnostic>,
    sets: &[Vec<Vec<VertexId>>],
    cache: &CachePlan,
    headroom: &[usize],
    resident: &mut [Vec<bool>],
    executed: &[bool],
    hits: &[Vec<usize>],
    installs: &[Vec<VertexId>],
    n: usize,
) {
    let m = sets.len();
    if executed.len() != n || hits.len() != m || installs.len() != m {
        push(
            diags,
            Diagnostic::new(
                DiagCode::CachePhantomHit,
                Location::default(),
                format!(
                    "malformed sweep event: {} executed flags / {} hit rows / {} install \
                     rows for an {m}×{n} plan",
                    executed.len(),
                    hits.len(),
                    installs.len()
                ),
            ),
        );
        return;
    }
    // Hits must match the pre-sweep resident set exactly.
    for (i, batches) in sets.iter().enumerate() {
        for (j, s) in batches.iter().enumerate() {
            let expected = if executed[j] {
                s.iter().filter(|&&v| resident[i][v as usize]).count()
            } else {
                0
            };
            let got = hits[i].get(j).copied().unwrap_or(0);
            if got != expected {
                push(
                    diags,
                    Diagnostic::new(
                        DiagCode::CachePhantomHit,
                        Location::gpu_batch(i, j),
                        format!(
                            "sweep charged {got} cache hit(s), resident set serves {expected}{}",
                            if executed[j] {
                                ""
                            } else {
                                " (batch not executed)"
                            }
                        ),
                    ),
                );
            }
        }
    }
    // Installs must be planned, loaded by an executed batch, and new.
    for (i, new_rows) in installs.iter().enumerate() {
        let loaded: HashSet<VertexId> = sets[i]
            .iter()
            .enumerate()
            .filter(|&(j, _)| executed[j])
            .flat_map(|(_, s)| s.iter().copied())
            .collect();
        let planned = &cache.per_gpu.get(i).map(|g| &g.vertices);
        for &v in new_rows {
            let admitted = planned.is_some_and(|p| p.binary_search(&v).is_ok());
            let reason = if !admitted {
                Some("the plan never admitted it")
            } else if !loaded.contains(&v) {
                Some("no executed batch loaded it")
            } else if resident[i][v as usize] {
                Some("it was already resident")
            } else {
                None
            };
            if let Some(why) = reason {
                push(
                    diags,
                    Diagnostic::new(
                        DiagCode::CacheUnplannedInstall,
                        Location::gpu(i).with_vertex(v),
                        format!("sweep installed row {v} but {why}"),
                    ),
                );
            }
            // Follow the journal regardless.
            resident[i][v as usize] = true;
        }
        // Dynamic headroom re-check after the installs land.
        let rows = resident[i].iter().filter(|&&r| r).count();
        let bytes = rows * cache.slot_bytes;
        let budget = headroom.get(i).copied().unwrap_or(0);
        if bytes > budget {
            push(
                diags,
                Diagnostic::new(
                    DiagCode::CacheOverflow,
                    Location::gpu(i),
                    format!("resident set grew to {bytes} bytes, headroom is {budget}"),
                ),
            );
        }
    }
}

fn replay_invalidate(
    diags: &mut Vec<Diagnostic>,
    resident: &mut [Vec<bool>],
    dirty: &[VertexId],
    removed: &[Vec<VertexId>],
) {
    let dirty_set: HashSet<VertexId> = dirty.iter().copied().collect();
    for (i, res) in resident.iter_mut().enumerate() {
        let journaled: HashSet<VertexId> = removed.get(i).into_iter().flatten().copied().collect();
        // Every resident dirty row must have been removed.
        for &v in &dirty_set {
            let is_resident = res.get(v as usize).copied().unwrap_or(false);
            if is_resident && !journaled.contains(&v) {
                push(
                    diags,
                    Diagnostic::new(
                        DiagCode::CacheStaleRow,
                        Location::gpu(i).with_vertex(v),
                        format!(
                            "delta commit patched row {v} but left its cached copy \
                             resident — later sweeps would serve stale features"
                        ),
                    ),
                );
            }
        }
        // Every journaled removal must have been a resident dirty row.
        for &v in &journaled {
            let is_resident = res.get(v as usize).copied().unwrap_or(false);
            if !dirty_set.contains(&v) || !is_resident {
                push(
                    diags,
                    Diagnostic::new(
                        DiagCode::CacheStaleRow,
                        Location::gpu(i).with_vertex(v),
                        format!(
                            "invalidation removed row {v} which was {}",
                            if is_resident {
                                "not in the dirty set"
                            } else {
                                "never resident"
                            }
                        ),
                    ),
                );
            }
            // Follow the journal.
            if let Some(slot) = res.get_mut(v as usize) {
                *slot = false;
            }
        }
    }
}
