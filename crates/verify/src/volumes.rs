//! Pass 4 — communication volumes (paper §5.3, Table 8).
//!
//! `V_ori`, `V_+p2p`, and `V_+ru` drive both the Equation-4 cost model
//! (which decides whether a reorganized plan is kept) and the evaluation
//! tables. The dedup plan *reports* them from its own internal state
//! (fetch matrix, transition lengths, CPU-load lengths); this pass
//! recomputes all three from nothing but the partition's chunks and the
//! level-1 assignment, so a bookkeeping slip in any of the three internal
//! representations is caught by cross-checking.

use crate::diag::{push, DiagCode, Diagnostic, Location};
use hongtu_graph::VertexId;
use hongtu_partition::{DedupPlan, TwoLevelPartition};

/// Independently recomputed volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedVolumes {
    /// `Σ_ij |N_ij|`.
    pub v_ori: usize,
    /// `Σ_j |∪_i N_ij|`.
    pub v_p2p: usize,
    /// `Σ_ij |T_ij \ T_i,j−1|` for the owner-split batch unions `T_ij`.
    pub v_ru: usize,
}

/// Recomputes the three §5.3 volumes from the partition plan alone.
pub fn expected_volumes(plan: &TwoLevelPartition) -> ExpectedVolumes {
    let owner = &plan.assignment.partition_of;
    let v_ori = plan.v_ori();
    let mut v_p2p = 0usize;
    let mut v_ru = 0usize;
    let mut prev_split: Vec<Vec<VertexId>> = vec![Vec::new(); plan.m];
    for j in 0..plan.n {
        let mut union: Vec<VertexId> = Vec::new();
        for c in plan.batch(j) {
            union.extend_from_slice(&c.neighbors);
        }
        union.sort_unstable();
        union.dedup();
        v_p2p += union.len();
        let mut split: Vec<Vec<VertexId>> = vec![Vec::new(); plan.m];
        for v in union {
            split[owner[v as usize] as usize].push(v);
        }
        for i in 0..plan.m {
            v_ru += split[i]
                .iter()
                .filter(|v| prev_split[i].binary_search(v).is_err())
                .count();
        }
        prev_split = split;
    }
    ExpectedVolumes { v_ori, v_p2p, v_ru }
}

/// Cross-checks the dedup plan's reported volumes against recomputation.
pub fn verify_volumes(plan: &TwoLevelPartition, dedup: &DedupPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let want = expected_volumes(plan);
    let checks = [
        (DiagCode::VOriMismatch, "V_ori", dedup.v_ori(), want.v_ori),
        (DiagCode::VP2pMismatch, "V_+p2p", dedup.v_p2p(), want.v_p2p),
        (DiagCode::VRuMismatch, "V_+ru", dedup.v_ru(), want.v_ru),
    ];
    for (code, name, got, expected) in checks {
        if got != expected {
            push(
                &mut diags,
                Diagnostic::new(
                    code,
                    Location::default(),
                    format!("{name} reported as {got}, recomputed as {expected}"),
                ),
            );
        }
    }
    diags
}
