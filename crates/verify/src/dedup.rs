//! Pass 2 — deduplicated-communication plan (paper §5.1–5.2).
//!
//! Recomputes, from the partition alone, what every transition set, CPU
//! load set, reuse count, and fetch cell *must* be, and diffs the plan
//! against it. The checks mirror Algorithms 2 and 3: each vertex crosses
//! PCIe at most once per batch (owner-routed transition sets), reuse
//! counts match `|ℕ_ij ∩ ℕ_i,j−1|`, and the fetch matrix accounts for
//! every neighbor access.

use crate::diag::{push, DiagCode, Diagnostic, Location};
use hongtu_graph::VertexId;
use hongtu_partition::dedup::intersect_size;
use hongtu_partition::{DedupPlan, TwoLevelPartition};
use std::collections::HashMap;

/// Checks the dedup plan against the partition plan it was built for.
pub fn verify_dedup(plan: &TwoLevelPartition, dedup: &DedupPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // ---- shape (D109) ----
    if dedup.m != plan.m || dedup.n != plan.n {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::PlanShapeMismatch,
                Location::default(),
                format!(
                    "dedup plan is {}×{} but the partition is {}×{}",
                    dedup.m, dedup.n, plan.m, plan.n
                ),
            ),
        );
    }
    if dedup.batches.len() != plan.n {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::PlanShapeMismatch,
                Location::default(),
                format!("{} batch plans for {} batches", dedup.batches.len(), plan.n),
            ),
        );
        return diags; // per-batch checks below index by batch
    }

    let owner = &plan.assignment.partition_of;
    let mut prev_transition: Option<&Vec<Vec<VertexId>>> = None;
    for (j, b) in dedup.batches.iter().enumerate() {
        if b.transition.len() != plan.m
            || b.new_from_cpu.len() != plan.m
            || b.reused.len() != plan.m
            || b.fetch.len() != plan.m
            || b.fetch.iter().any(|row| row.len() != plan.m)
        {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::PlanShapeMismatch,
                    Location::batch(j),
                    format!(
                        "per-GPU vectors sized {}/{}/{}/{} for m = {}",
                        b.transition.len(),
                        b.new_from_cpu.len(),
                        b.reused.len(),
                        b.fetch.len(),
                        plan.m
                    ),
                ),
            );
            prev_transition = Some(&b.transition);
            continue;
        }

        // ---- sortedness (D101) and ownership (D102) ----
        for i in 0..plan.m {
            for (name, set) in [("ℕ", &b.transition[i]), ("ℕ^cpu", &b.new_from_cpu[i])] {
                if let Some(w) = set.windows(2).find(|w| w[0] >= w[1]) {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::TransitionUnsorted,
                            Location::gpu_batch(i, j).with_vertex(w[1]),
                            format!("{name}_ij is not sorted strictly ascending near {}", w[1]),
                        ),
                    );
                }
            }
            for &v in &b.transition[i] {
                match owner.get(v as usize) {
                    Some(&o) if o as usize == i => {}
                    Some(&o) => push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::TransitionWrongOwner,
                            Location::gpu_batch(i, j).with_vertex(v),
                            format!("vertex {v} belongs to partition {o}, not {i}"),
                        ),
                    ),
                    None => push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::TransitionWrongOwner,
                            Location::gpu_batch(i, j).with_vertex(v),
                            format!("vertex {v} is outside the graph"),
                        ),
                    ),
                }
            }
        }

        // ---- pairwise disjointness (D103) ----
        let mut seen: HashMap<VertexId, usize> = HashMap::new();
        for (i, t) in b.transition.iter().enumerate() {
            for &v in t {
                if let Some(&pi) = seen.get(&v) {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::TransitionOverlap,
                            Location::gpu_batch(i, j).with_vertex(v),
                            format!("vertex {v} already in GPU {pi}'s transition set"),
                        ),
                    );
                } else {
                    seen.insert(v, i);
                }
            }
        }

        // ---- union coverage (D104) ----
        let mut union: Vec<VertexId> = Vec::new();
        for c in plan.batch(j) {
            union.extend_from_slice(&c.neighbors);
        }
        union.sort_unstable();
        union.dedup();
        let mut combined: Vec<VertexId> = b.transition.iter().flatten().copied().collect();
        combined.sort_unstable();
        combined.dedup();
        if combined != union {
            let missing = union.iter().find(|v| combined.binary_search(v).is_err());
            let extra = combined.iter().find(|v| union.binary_search(v).is_err());
            let detail = match (missing, extra) {
                (Some(v), _) => format!("batch neighbor {v} is in no transition set"),
                (None, Some(v)) => {
                    format!("vertex {v} is in a transition set but no chunk needs it")
                }
                (None, None) => "transition multiset disagrees with the union".to_string(),
            };
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::TransitionUnionMismatch,
                    Location::batch(j).with_vertex(*missing.or(extra).unwrap_or(&0)),
                    format!("∪_i ℕ_ij ≠ ∪_i N_ij: {detail}"),
                ),
            );
        }

        // ---- CPU-load split (D105) and reuse counts (D106) ----
        for i in 0..plan.m {
            let empty: Vec<VertexId> = Vec::new();
            let prev = prev_transition.map(|p| &p[i]).unwrap_or(&empty);
            let expected_fresh: Vec<VertexId> = b.transition[i]
                .iter()
                .copied()
                .filter(|v| prev.binary_search(v).is_err())
                .collect();
            if b.new_from_cpu[i] != expected_fresh {
                let bad = b.new_from_cpu[i]
                    .iter()
                    .find(|v| expected_fresh.binary_search(v).is_err())
                    .or_else(|| {
                        expected_fresh
                            .iter()
                            .find(|v| b.new_from_cpu[i].binary_search(v).is_err())
                    });
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::CpuLoadMismatch,
                        Location::gpu_batch(i, j).with_vertex(bad.copied().unwrap_or(0)),
                        format!(
                            "ℕ^cpu_ij has {} vertices, expected ℕ_ij \\ ℕ_i,j−1 with {}",
                            b.new_from_cpu[i].len(),
                            expected_fresh.len()
                        ),
                    ),
                );
            }
            let expected_reused = intersect_size(&b.transition[i], prev);
            if b.reused[i] != expected_reused {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::ReuseCountWrong,
                        Location::gpu_batch(i, j),
                        format!(
                            "reused[{i}] = {} but |ℕ_ij ∩ ℕ_i,j−1| = {expected_reused}",
                            b.reused[i]
                        ),
                    ),
                );
            }
        }

        // ---- fetch matrix (D107 / D108) ----
        for (i, c) in plan.batch(j).enumerate() {
            let total: usize = b.fetch[i].iter().sum();
            if total != c.num_neighbors() {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::FetchRowSumMismatch,
                        Location::gpu_batch(i, j),
                        format!(
                            "Σ_k fetch[{i}][k] = {total} but |N_ij| = {}",
                            c.num_neighbors()
                        ),
                    ),
                );
            }
            for k in 0..plan.m {
                let expected = intersect_size(&c.neighbors, &b.transition[k]);
                if b.fetch[i][k] != expected {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::FetchCellMismatch,
                            Location::gpu_batch(i, j),
                            format!(
                                "fetch[{i}][{k}] = {} but |N_ij ∩ ℕ_kj| = {expected}",
                                b.fetch[i][k]
                            ),
                        ),
                    );
                }
            }
        }
        prev_transition = Some(&b.transition);
    }
    diags
}
