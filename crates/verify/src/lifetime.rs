//! Resource lifetime and liveness analysis over schedules (pass 7,
//! codes `L601`–`L604`).
//!
//! The happens-before pass proves accesses are *ordered*; this pass
//! proves the resources they touch are *live* when used. It replays a
//! trace in recorded order and tracks an install/consume lifecycle for
//! every double-buffered staging slot (`DevRepSlot`/`DevGradSlot`): a
//! tagged deposit *installs* a generation, a read of the installed
//! generation *consumes* it, and installed data must be consumed before
//! the slot is reused. Hybrid checkpoint slots (`AggCache`, §4.2) obey a
//! simpler store-before-reload discipline. Violations:
//!
//! * `L601` **use-after-evict** — a slot read tagged generation `g`
//!   while the slot holds a different generation (or was never
//!   installed): the staged data was already overwritten or evicted.
//! * `L602` **double-install** — a `Write` installs a new generation
//!   over live (installed but never consumed) data, clobbering a batch
//!   that was staged but not yet computed.
//! * `L603` **staging-slot leak** — an `Accum` installs a new
//!   generation over never-drained accumulated gradients, or a gradient
//!   slot still holds undrained data when the trace ends.
//! * `L604` **reload-before-store** — an `AggCache` checkpoint slot is
//!   read before any store wrote it, so the backward recompute would
//!   consume garbage.
//!
//! Generation *restarts* — a deposit of any generation over already
//! consumed data — are legal: every layer phase re-runs the batch
//! sequence 0‥n, so slot generations restart at each layer boundary.
//! The pass deliberately skips the phased executor's whole-buffer
//! resources (`DevRep`/`DevGrad`): under `P2pRu` their ℕ^gpu reuse
//! window legitimately reads the previous batch's generation, which is
//! exactly the pattern the slot lifecycle must reject.

use crate::diag::{push, DiagCode, Diagnostic, Location, Report};
use crate::trace::{incomplete, location_of};
use hongtu_sim::{Access, Event, Intent, ResourceId, Trace};
use std::collections::{HashMap, HashSet};

/// Lifecycle of one staging slot: the generation currently installed,
/// whether anything has consumed (read) it yet, and the installing
/// event (for messages).
struct SlotState {
    cur: u32,
    consumed: bool,
    installed_at: usize,
}

fn is_grad_slot(r: ResourceId) -> bool {
    matches!(r, ResourceId::DevGradSlot { .. })
}

fn slot_location(r: ResourceId) -> Location {
    match r {
        ResourceId::DevRepSlot { gpu, .. }
        | ResourceId::DevGradSlot { gpu, .. }
        | ResourceId::AggCache { gpu, .. } => Location::gpu(gpu as usize),
        _ => Location::default(),
    }
}

fn check_agg(
    diags: &mut Vec<Diagnostic>,
    stored: &mut HashSet<ResourceId>,
    idx: usize,
    ev: &Event,
    a: &Access,
) {
    match a.intent {
        Intent::Write | Intent::Accum => {
            stored.insert(a.resource);
        }
        Intent::Read => {
            if !stored.contains(&a.resource) {
                push(
                    diags,
                    Diagnostic::new(
                        DiagCode::ReloadBeforeStore,
                        location_of(ev.device),
                        format!(
                            "event {idx} ({:?} on {}) reloads {} before any store wrote \
                             it — the backward recompute would consume garbage",
                            ev.kind, ev.device, a.resource,
                        ),
                    ),
                );
            }
        }
    }
}

fn check_slot(
    diags: &mut Vec<Diagnostic>,
    slots: &mut HashMap<ResourceId, SlotState>,
    idx: usize,
    ev: &Event,
    a: &Access,
) {
    let Some(g) = a.gen else {
        // Untagged slot accesses are only ever reads of whatever is
        // currently staged (the compute steps' `Region::All` reads);
        // they consume the installed generation.
        if a.intent == Intent::Read {
            match slots.get_mut(&a.resource) {
                Some(st) => st.consumed = true,
                None => push(
                    diags,
                    Diagnostic::new(
                        DiagCode::UseAfterEvict,
                        location_of(ev.device),
                        format!(
                            "event {idx} ({:?} on {}) reads {} but nothing was ever \
                             installed in it",
                            ev.kind, ev.device, a.resource,
                        ),
                    ),
                ),
            }
        }
        return;
    };
    match a.intent {
        Intent::Write | Intent::Accum => match slots.get_mut(&a.resource) {
            None => {
                slots.insert(
                    a.resource,
                    SlotState {
                        cur: g,
                        consumed: false,
                        installed_at: idx,
                    },
                );
            }
            Some(st) if st.cur == g && !st.consumed => {
                // Additional deposit of the same install (the `All` /
                // `Owned` / `Fetched` pieces of one batch load, or the
                // local and remote halves of one gradient accumulation).
            }
            Some(st) if st.consumed => {
                // The previous install was consumed — this is a fresh
                // lifetime (the next batch, or a layer-boundary restart
                // reusing the same batch index).
                st.cur = g;
                st.consumed = false;
                st.installed_at = idx;
            }
            Some(st) => {
                // Live, never-consumed data of a *different* generation
                // is being clobbered.
                let (code, what) = if a.intent == Intent::Write {
                    (DiagCode::DoubleInstall, "staged batch data")
                } else {
                    (DiagCode::StagingSlotLeak, "accumulated gradients")
                };
                push(
                    diags,
                    Diagnostic::new(
                        code,
                        location_of(ev.device),
                        format!(
                            "event {idx} ({:?} on {}) installs generation {g} into {} \
                             while generation {} (installed by event {}) is live — the \
                             {what} of that generation were never consumed",
                            ev.kind, ev.device, a.resource, st.cur, st.installed_at,
                        ),
                    ),
                );
                st.cur = g;
                st.consumed = false;
                st.installed_at = idx;
            }
        },
        Intent::Read => match slots.get_mut(&a.resource) {
            Some(st) if st.cur == g => st.consumed = true,
            Some(st) => {
                push(
                    diags,
                    Diagnostic::new(
                        DiagCode::UseAfterEvict,
                        location_of(ev.device),
                        format!(
                            "event {idx} ({:?} on {}) reads generation {g} of {} but \
                             the slot holds generation {} (installed by event {}) — \
                             generation {g} was evicted or never staged",
                            ev.kind, ev.device, a.resource, st.cur, st.installed_at,
                        ),
                    ),
                );
                // The read did consume whatever is there; marking it
                // keeps one corruption from cascading into leak reports.
                st.consumed = true;
            }
            None => push(
                diags,
                Diagnostic::new(
                    DiagCode::UseAfterEvict,
                    location_of(ev.device),
                    format!(
                        "event {idx} ({:?} on {}) reads generation {g} of {} but \
                         nothing was ever installed in it",
                        ev.kind, ev.device, a.resource,
                    ),
                ),
            ),
        },
    }
}

pub(crate) fn check_lifetimes(trace: &Trace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut slots: HashMap<ResourceId, SlotState> = HashMap::new();
    let mut stored: HashSet<ResourceId> = HashSet::new();
    for (idx, ev) in trace.events().enumerate() {
        for a in &ev.accesses {
            match a.resource {
                ResourceId::AggCache { .. } => check_agg(&mut diags, &mut stored, idx, ev, a),
                ResourceId::DevRepSlot { .. } | ResourceId::DevGradSlot { .. } => {
                    check_slot(&mut diags, &mut slots, idx, ev, a)
                }
                _ => {}
            }
        }
    }
    // A gradient staging slot still holding unconsumed accumulations at
    // the end of the trace was never drained to the host store.
    let mut leaked: Vec<(&ResourceId, &SlotState)> = slots
        .iter()
        .filter(|(r, st)| is_grad_slot(**r) && !st.consumed)
        .collect();
    leaked.sort_by_key(|(_, st)| st.installed_at);
    for (r, st) in leaked {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::StagingSlotLeak,
                slot_location(*r),
                format!(
                    "{} still holds generation {} (installed by event {}) when the \
                     trace ends — the accumulated gradients were never drained",
                    r, st.cur, st.installed_at,
                ),
            ),
        );
    }
    diags
}

/// Certifies resource lifetimes over a recorded or synthesized trace:
/// staging-slot install/consume discipline (`L601`–`L603`) and hybrid
/// checkpoint store-before-reload (`L604`). Refuses (`R400`) traces
/// that are disabled or evicted events.
pub fn verify_lifetimes(trace: &Trace) -> Report {
    let mut report = Report::default();
    if let Some(d) = incomplete(trace) {
        report.extend_pass(vec![d]);
        return report;
    }
    report.extend_pass(check_lifetimes(trace));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_sim::{Device, Event, EventKind, Region};

    const SLOT: ResourceId = ResourceId::DevRepSlot { gpu: 0, slot: 0 };
    const GSLOT: ResourceId = ResourceId::DevGradSlot { gpu: 0, slot: 1 };
    const AGG: ResourceId = ResourceId::AggCache {
        layer: 0,
        gpu: 0,
        chunk: 0,
    };

    fn ev(accesses: Vec<Access>) -> Event {
        Event::new(EventKind::GpuCompute, Device::Gpu(0), 0, 1e-6, 0.0).with_accesses(accesses)
    }

    fn trace_of(events: Vec<Event>) -> Trace {
        let mut t = Trace::unbounded();
        for e in events {
            t.record(e);
        }
        t
    }

    fn codes(t: &Trace) -> Vec<&'static str> {
        verify_lifetimes(t)
            .diagnostics
            .iter()
            .map(|d| d.code.code())
            .collect()
    }

    #[test]
    fn install_consume_reinstall_is_clean() {
        // Batches 0, 2, 4 through one slot; each consumed before the
        // next install; then a layer restart back to generation 0.
        let t = trace_of(vec![
            ev(vec![Access::write(SLOT, Region::All).with_gen(0)]),
            ev(vec![Access::read(SLOT, Region::All)]),
            ev(vec![Access::write(SLOT, Region::All).with_gen(2)]),
            ev(vec![Access::read(SLOT, Region::All).with_gen(2)]),
            ev(vec![Access::write(SLOT, Region::All).with_gen(0)]),
            ev(vec![Access::read(SLOT, Region::All)]),
        ]);
        assert!(
            verify_lifetimes(&t).is_ok(),
            "{}",
            verify_lifetimes(&t).render()
        );
    }

    #[test]
    fn multi_piece_install_is_one_lifetime() {
        // `All` + `Owned` + `Fetched` deposits of one generation merge.
        let t = trace_of(vec![
            ev(vec![Access::write(SLOT, Region::Owned).with_gen(1)]),
            ev(vec![Access::write(SLOT, Region::Fetched).with_gen(1)]),
            ev(vec![Access::read(SLOT, Region::Owned).with_gen(1)]),
        ]);
        assert!(verify_lifetimes(&t).is_ok());
    }

    #[test]
    fn stale_tagged_read_is_use_after_evict() {
        let t = trace_of(vec![
            ev(vec![Access::write(SLOT, Region::All).with_gen(0)]),
            ev(vec![Access::read(SLOT, Region::All)]),
            ev(vec![Access::write(SLOT, Region::All).with_gen(2)]),
            ev(vec![Access::read(SLOT, Region::All).with_gen(0)]),
        ]);
        assert_eq!(codes(&t), vec!["L601"]);
    }

    #[test]
    fn read_of_never_installed_slot_is_use_after_evict() {
        let t = trace_of(vec![ev(vec![Access::read(SLOT, Region::All).with_gen(3)])]);
        assert_eq!(codes(&t), vec!["L601"]);
    }

    #[test]
    fn clobbering_live_data_is_double_install() {
        let t = trace_of(vec![
            ev(vec![Access::write(SLOT, Region::All).with_gen(0)]),
            ev(vec![Access::write(SLOT, Region::All).with_gen(2)]),
            ev(vec![Access::read(SLOT, Region::All)]),
        ]);
        assert_eq!(codes(&t), vec!["L602"]);
    }

    #[test]
    fn undrained_grad_slot_leaks() {
        // Generation 1 accumulated, never drained, clobbered by 3; and
        // generation 3 is still live when the trace ends.
        let t = trace_of(vec![
            ev(vec![Access::accum(GSLOT, Region::All).with_gen(1)]),
            ev(vec![Access::accum(GSLOT, Region::All).with_gen(3)]),
        ]);
        assert_eq!(codes(&t), vec!["L603", "L603"]);
    }

    #[test]
    fn drained_grad_slot_is_clean() {
        let t = trace_of(vec![
            ev(vec![Access::accum(GSLOT, Region::All).with_gen(1)]),
            ev(vec![Access::accum(GSLOT, Region::All).with_gen(1)]),
            ev(vec![Access::read(GSLOT, Region::All).with_gen(1)]),
        ]);
        assert!(verify_lifetimes(&t).is_ok());
    }

    #[test]
    fn reload_before_store_is_flagged() {
        let t = trace_of(vec![ev(vec![Access::read(AGG, Region::All)])]);
        assert_eq!(codes(&t), vec!["L604"]);
        let ok = trace_of(vec![
            ev(vec![Access::write(AGG, Region::All)]),
            ev(vec![Access::read(AGG, Region::All)]),
        ]);
        assert!(verify_lifetimes(&ok).is_ok());
    }

    #[test]
    fn disabled_trace_is_refused() {
        let r = verify_lifetimes(&Trace::disabled());
        assert_eq!(r.diagnostics[0].code.code(), "R400");
    }
}
