//! Static verification of HongTu execution plans.
//!
//! The engine executes three precomputed artifacts — the 2-level
//! partition (§4.1), the dedup communication plan (§5.1–5.2), and the
//! in-place buffer index plan (§6) — with **no runtime checks**: a wrong
//! slot index or a mis-routed transition vertex silently corrupts
//! training data rather than crashing. This crate is the borrow checker
//! for those artifacts: it statically analyzes a
//! `(TwoLevelPartition, DedupPlan, Vec<GpuBufferPlan>)` triple and
//! returns typed diagnostics (code + GPU/batch/vertex location +
//! message) instead of panicking.
//!
//! Four passes, upstream to downstream:
//!
//! 1. [`verify_partition`] — chunks tile `V` disjointly, every in-edge is
//!    present, local CSC structure is sound (codes `P001`–`P005`);
//! 2. [`verify_dedup`] — transition sets are sorted, owner-routed,
//!    pairwise disjoint, and tile the batch neighbor union; CPU-load
//!    splits, reuse counts, and the fetch matrix are exact
//!    (`D101`–`D109`);
//! 3. [`verify_buffers`] — symbolic replay of the slot plan: no
//!    aliasing, no reads of never-written slots, no use-after-free, no
//!    capacity overrun (`B201`–`B205`);
//! 4. [`verify_volumes`] — `V_ori`/`V_+p2p`/`V_+ru` recomputed
//!    independently and cross-checked (`V301`–`V303`).
//!
//! A fifth, *dynamic* pass family certifies executed schedules rather
//! than plans: [`verify_trace`] runs a vector-clock happens-before
//! analysis over a recorded simulator trace (races, write-before-read,
//! stale generations, batch barrier coverage — `R400`–`R405`, `S501`) and
//! [`verify_determinism`] compares two traces of the same plan modulo
//! commutable reorderings (`S502`).
//!
//! Passes 6–8 close the loop back to *static*: the engine's symbolic
//! schedule synthesizer replays the executor's own step functions with
//! a no-compute backend and hands the resulting event DAG to
//! [`verify_schedule`], which re-runs the happens-before analysis over
//! the synthesized schedule (pass 6), checks resource lifetimes —
//! staging-slot install/consume discipline and checkpoint
//! store-before-reload, `L601`–`L604` (pass 7, [`verify_lifetimes`]) —
//! and, for small configs, explores *every* barrier-respecting
//! interleaving of the schedule with DPOR-style partial-order
//! reduction, reporting the first racy linearization as a
//! counterexample — `X701`/`X702` (pass 8, [`verify_interleavings`]).
//!
//! Pass 9 ([`verify_dataflow`]) certifies *value* conservation on top of
//! schedule safety: contribution multisets reconstructed from the
//! trace's provenance annotations are balanced against a
//! [`DataflowSpec`] derived independently from the plans — dropped or
//! double-counted aggregation inputs, clobbered activations,
//! early-flushed or orphaned gradients, and dedup-vs-vanilla multiset
//! divergence (`F801`–`F806`).
//!
//! Pass 11 ([`verify_cache`]) certifies the hot-vertex feature cache:
//! the engine's cache journal (sweep hit tables, installs, delta
//! invalidations) is replayed against load sets recomputed independently
//! from the plans — headroom overflow, phantom hits (hit-before-install),
//! stale rows after a delta commit, and unplanned installs
//! (`H1001`–`H1004`). Pass 10 ([`verify_cone`]) sits between them in the
//! numbering: cone-mask closure for pruned sweeps (`C901`/`C902`).
//!
//! See `DESIGN.md` ("Checked invariants", "Happens-before invariants",
//! "Static vs dynamic certification", and "F8xx dataflow conservation")
//! for the full code catalogue.

#![forbid(unsafe_code)]

pub mod buffers;
pub mod cache;
pub mod cone;
pub mod dataflow;
pub mod dedup;
pub mod diag;
pub mod lifetime;
pub mod partition;
pub mod schedule;
pub mod trace;
pub mod volumes;

pub use buffers::{verify_all_buffers, verify_buffers};
pub use cache::verify_cache;
pub use cone::{verify_cone, ConeDir};
pub use dataflow::{demand_by_owner, verify_dataflow, ChunkFlow, CommKind, DataflowSpec};
pub use dedup::verify_dedup;
pub use diag::{DiagCode, Diagnostic, Location, Report, ValidationLevel};
pub use lifetime::verify_lifetimes;
pub use partition::verify_partition;
pub use schedule::{verify_interleavings, verify_schedule, DEFAULT_EXPLORE_BUDGET};
pub use trace::{verify_determinism, verify_trace};
pub use volumes::{expected_volumes, verify_volumes};

use hongtu_graph::Graph;
use hongtu_partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};

/// Runs all four passes against a complete plan triple.
pub fn verify_all(
    g: &Graph,
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bufplans: &[GpuBufferPlan],
) -> Report {
    let mut report = Report::default();
    report.extend_pass(verify_partition(g, plan));
    report.extend_pass(verify_dedup(plan, dedup));
    report.extend_pass(verify_all_buffers(plan, dedup, bufplans));
    report.extend_pass(verify_volumes(plan, dedup));
    report
}

/// Runs the graph-free passes (dedup, buffers, volumes) — what the
/// engine's `Paranoid` level re-checks per epoch, when the source graph
/// is no longer at hand.
pub fn verify_runtime(
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bufplans: &[GpuBufferPlan],
) -> Report {
    let mut report = Report::default();
    report.extend_pass(verify_dedup(plan, dedup));
    report.extend_pass(verify_all_buffers(plan, dedup, bufplans));
    report.extend_pass(verify_volumes(plan, dedup));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hongtu_graph::generators;
    use hongtu_tensor::SeededRng;

    fn triple(
        n_vertices: usize,
        m: usize,
        n: usize,
        seed: u64,
    ) -> (Graph, TwoLevelPartition, DedupPlan, Vec<GpuBufferPlan>) {
        let mut rng = SeededRng::new(seed);
        let g = generators::web_hybrid(n_vertices, 6.0, 0.9, 30.0, &mut rng);
        let plan = TwoLevelPartition::build(&g, m, n, seed);
        let dedup = DedupPlan::build(&plan);
        let bufs = GpuBufferPlan::build_all(&plan, &dedup);
        (g, plan, dedup, bufs)
    }

    #[test]
    fn well_formed_plans_verify_clean() {
        for (seed, m, n) in [(1u64, 2, 3), (2, 4, 4), (3, 1, 5), (4, 3, 1)] {
            let (g, plan, dedup, bufs) = triple(900, m, n, seed);
            let report = verify_all(&g, &plan, &dedup, &bufs);
            assert!(
                report.is_ok(),
                "seed {seed} m {m} n {n}:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn runtime_subset_is_clean_too() {
        let (_, plan, dedup, bufs) = triple(700, 3, 3, 9);
        assert!(verify_runtime(&plan, &dedup, &bufs).is_ok());
    }

    #[test]
    fn reorganized_plans_also_verify() {
        // The reorg pass permutes chunks; rebuilt downstream plans must
        // still satisfy every invariant.
        let mut rng = SeededRng::new(11);
        let g = generators::rmat(10, 8000, generators::RmatParams::social(), &mut rng);
        let plan = TwoLevelPartition::build(&g, 4, 6, 1);
        // Simulate a batch permutation like reorganization performs.
        let mut grid = plan.chunks.clone();
        for row in &mut grid {
            row.reverse();
        }
        let plan = plan.with_chunks(grid);
        let dedup = DedupPlan::build(&plan);
        let bufs = GpuBufferPlan::build_all(&plan, &dedup);
        let report = verify_all(&g, &plan, &dedup, &bufs);
        assert!(report.is_ok(), "{}", report.render());
    }
}
