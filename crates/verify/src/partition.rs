//! Pass 1 — partition integrity (paper §4.1).
//!
//! The 2-level partition's contract is what makes chunk-local execution
//! exact: destination sets tile `V` disjointly, and every chunk carries
//! **all** in-edges of its destinations (full-neighbor aggregation, the
//! property GAT's per-destination softmax depends on). This pass replays
//! each chunk against the source graph.

use crate::diag::{push, DiagCode, Diagnostic, Location};
use hongtu_graph::Graph;
use hongtu_partition::TwoLevelPartition;

/// Checks the partition plan against the graph it claims to partition.
pub fn verify_partition(g: &Graph, plan: &TwoLevelPartition) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let nv = g.num_vertices();

    // ---- grid shape and level-1 assignment consistency (P005) ----
    if plan.assignment.num_parts != plan.m {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::GridShape,
                Location::default(),
                format!(
                    "assignment has {} parts but the plan declares m = {}",
                    plan.assignment.num_parts, plan.m
                ),
            ),
        );
    }
    if plan.assignment.partition_of.len() != nv {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::GridShape,
                Location::default(),
                format!(
                    "assignment covers {} vertices but the graph has {nv}",
                    plan.assignment.partition_of.len()
                ),
            ),
        );
        // Ownership checks below index partition_of; bail out.
        return diags;
    }
    if plan.chunks.len() != plan.m {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::GridShape,
                Location::default(),
                format!(
                    "chunk grid has {} rows, expected m = {}",
                    plan.chunks.len(),
                    plan.m
                ),
            ),
        );
    }
    for (i, row) in plan.chunks.iter().enumerate() {
        if row.len() != plan.n {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::GridShape,
                    Location::gpu(i),
                    format!(
                        "partition has {} chunks, expected n = {}",
                        row.len(),
                        plan.n
                    ),
                ),
            );
        }
        for (j, c) in row.iter().enumerate() {
            if (c.part, c.chunk) != (i, j) {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::GridShape,
                        Location::gpu_batch(i, j),
                        format!(
                            "chunk carries ids ({}, {}), expected ({i}, {j})",
                            c.part, c.chunk
                        ),
                    ),
                );
            }
        }
    }

    // ---- destination coverage (P001 / P002) and ownership (P005) ----
    let mut owner_chunk: Vec<Option<(usize, usize)>> = vec![None; nv];
    for (i, row) in plan.chunks.iter().enumerate() {
        for (j, c) in row.iter().enumerate() {
            for &d in &c.dests {
                let du = d as usize;
                if du >= nv {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::GridShape,
                            Location::gpu_batch(i, j).with_vertex(d),
                            format!("destination {d} is outside the graph (|V| = {nv})"),
                        ),
                    );
                    continue;
                }
                if let Some((pi, pj)) = owner_chunk[du] {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::ChunkOverlap,
                            Location::gpu_batch(i, j).with_vertex(d),
                            format!("vertex {d} already owned by chunk ({pi}, {pj})"),
                        ),
                    );
                } else {
                    owner_chunk[du] = Some((i, j));
                }
                if plan.assignment.partition_of[du] as usize != i {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::GridShape,
                            Location::gpu_batch(i, j).with_vertex(d),
                            format!(
                                "vertex {d} sits in partition {i}'s chunk but the assignment \
                                 places it in partition {}",
                                plan.assignment.partition_of[du]
                            ),
                        ),
                    );
                }
            }
        }
    }
    for (v, owner) in owner_chunk.iter().enumerate() {
        if owner.is_none() {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::CoverageGap,
                    Location::vertex(v as u32),
                    format!("vertex {v} is owned by no chunk"),
                ),
            );
        }
    }

    // ---- per-chunk structure (P003 / P004) ----
    for (i, row) in plan.chunks.iter().enumerate() {
        for (j, c) in row.iter().enumerate() {
            let loc = Location::gpu_batch(i, j);
            // Local CSC integrity first; edge resolution below assumes it.
            let mut structural = false;
            if c.offsets.len() != c.dests.len() + 1
                || c.offsets.first() != Some(&0)
                || c.offsets.windows(2).any(|w| w[0] > w[1])
                || c.offsets.last() != Some(&c.nbr_index.len())
            {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::ChunkStructure,
                        loc,
                        format!(
                            "malformed CSC offsets (len {} for {} dests, {} edges)",
                            c.offsets.len(),
                            c.dests.len(),
                            c.nbr_index.len()
                        ),
                    ),
                );
                structural = true;
            }
            if c.nbr_index.len() != c.gcn_weights.len() {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::ChunkStructure,
                        loc,
                        format!(
                            "{} edge indices vs {} edge weights",
                            c.nbr_index.len(),
                            c.gcn_weights.len()
                        ),
                    ),
                );
            }
            if let Some(w) = c.neighbors.windows(2).find(|w| w[0] >= w[1]) {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::ChunkStructure,
                        loc.with_vertex(w[1]),
                        "neighbor list is not sorted strictly ascending",
                    ),
                );
                structural = true;
            }
            if let Some(&bad) = c
                .nbr_index
                .iter()
                .find(|&&li| li as usize >= c.neighbors.len())
            {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::ChunkStructure,
                        loc,
                        format!(
                            "edge index {bad} out of range (|N_ij| = {})",
                            c.neighbors.len()
                        ),
                    ),
                );
                structural = true;
            }
            if structural {
                continue; // edge resolution would index out of bounds
            }
            // Every in-edge of every owned destination, resolved exactly.
            for (k, &d) in c.dests.iter().enumerate() {
                if d as usize >= nv {
                    continue; // reported above
                }
                let expect = g.in_neighbors(d);
                let got = &c.nbr_index[c.offsets[k]..c.offsets[k + 1]];
                if expect.len() != got.len() {
                    push(
                        &mut diags,
                        Diagnostic::new(
                            DiagCode::MissingInEdge,
                            loc.with_vertex(d),
                            format!(
                                "destination {d} has {} in-edges in the graph but {} in the chunk",
                                expect.len(),
                                got.len()
                            ),
                        ),
                    );
                    continue;
                }
                for (&want, &li) in expect.iter().zip(got) {
                    if c.neighbors[li as usize] != want {
                        push(
                            &mut diags,
                            Diagnostic::new(
                                DiagCode::MissingInEdge,
                                loc.with_vertex(d),
                                format!(
                                    "an in-edge of {d} resolves to neighbor {} instead of {want}",
                                    c.neighbors[li as usize]
                                ),
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }
    diags
}
