//! Pass 3 — in-place buffer plan (paper §6): a borrow checker for device
//! buffer slots.
//!
//! The engine never compacts the merged buffer `M_ij`; it trusts the
//! precomputed slot indices completely. A wrong slot is silent data
//! corruption, not a crash — exactly the class of bug worth a static
//! checker. This pass replays every [`BatchIndices`] with a symbolic
//! buffer (slot → vertex), checking that:
//!
//! - every slot a batch uses lies below the declared capacity (B204);
//! - no two live vertices share a slot within a batch (B201);
//! - a vertex *not* in the batch's incoming list really is resident at
//!   its claimed slot from the previous batch — anything else is a read
//!   of never-written or stale data (B202 / B203);
//! - `nbr_slot` routes every neighbor access to the slot that actually
//!   holds that neighbor's row (B202);
//! - `M_ij`, `position`, `incoming`, and `nbr_slot` are mutually
//!   consistent and equal to `ℕ_ij ∪ N_ij` (B205).

use crate::diag::{push, DiagCode, Diagnostic, Location};
use hongtu_graph::VertexId;
use hongtu_partition::{DedupPlan, GpuBufferPlan, TwoLevelPartition};
use std::collections::{HashMap, HashSet};

/// Checks one GPU's buffer plan by symbolic execution.
pub fn verify_buffers(
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bp: &GpuBufferPlan,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let gpu = bp.gpu;
    if gpu >= plan.m || bp.batches.len() != plan.n || dedup.batches.len() != plan.n {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::MergedSetWrong,
                Location::gpu(gpu),
                format!(
                    "buffer plan shape: gpu {gpu} (m = {}), {} batches (n = {})",
                    plan.m,
                    bp.batches.len(),
                    plan.n
                ),
            ),
        );
        return diags;
    }

    // Symbolic buffer: which vertex each slot currently holds. A slot not
    // in the map holds no live data (never written, or freed).
    let mut live: HashMap<u32, VertexId> = HashMap::new();
    // Vertices that were resident at some earlier batch and then evicted —
    // used to tell use-after-free (B203) from never-written (B202).
    let mut evicted: HashSet<VertexId> = HashSet::new();

    for (j, b) in bp.batches.iter().enumerate() {
        let loc = Location::gpu_batch(gpu, j);
        let chunk = &plan.chunks[gpu][j];
        let transition = &dedup.batches[j].transition[gpu];

        // ---- index-vector consistency (B205) ----
        let expected_merged = union_sorted(transition, &chunk.neighbors);
        if b.merged != expected_merged {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::MergedSetWrong,
                    loc,
                    format!(
                        "M_ij has {} vertices, expected |ℕ_ij ∪ N_ij| = {}",
                        b.merged.len(),
                        expected_merged.len()
                    ),
                ),
            );
        }
        if b.position.len() != b.merged.len() {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::MergedSetWrong,
                    loc,
                    format!(
                        "{} positions for {} merged vertices",
                        b.position.len(),
                        b.merged.len()
                    ),
                ),
            );
            continue; // the replay below would index out of bounds
        }
        if b.nbr_slot.len() != chunk.neighbors.len() {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::MergedSetWrong,
                    loc,
                    format!(
                        "{} neighbor slots for {} neighbors",
                        b.nbr_slot.len(),
                        chunk.neighbors.len()
                    ),
                ),
            );
        }
        let mut incoming_idx: HashSet<u32> = HashSet::new();
        let mut incoming_ok = true;
        for &(t, slot) in &b.incoming {
            if t as usize >= b.merged.len() {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::MergedSetWrong,
                        loc,
                        format!(
                            "incoming index {t} out of range (|M_ij| = {})",
                            b.merged.len()
                        ),
                    ),
                );
                incoming_ok = false;
                continue;
            }
            if b.position[t as usize] != slot {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::MergedSetWrong,
                        loc.with_vertex(b.merged[t as usize]),
                        format!(
                            "incoming row targets slot {slot} but position[{t}] = {}",
                            b.position[t as usize]
                        ),
                    ),
                );
            }
            if !incoming_idx.insert(t) {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::SlotAliased,
                        loc.with_vertex(b.merged[t as usize]),
                        format!("vertex {} written twice in one batch", b.merged[t as usize]),
                    ),
                );
            }
        }
        if !incoming_ok {
            continue;
        }

        // ---- capacity (B204) ----
        for (t, &slot) in b.position.iter().enumerate() {
            if slot as usize >= bp.capacity {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::CapacityExceeded,
                        loc.with_vertex(b.merged[t]),
                        format!("slot {slot} beyond declared capacity {}", bp.capacity),
                    ),
                );
            }
        }

        // ---- per-batch slot uniqueness (B201) ----
        let mut slot_claims: HashMap<u32, VertexId> = HashMap::new();
        for (t, &slot) in b.position.iter().enumerate() {
            let v = b.merged[t];
            if let Some(&w) = slot_claims.get(&slot) {
                push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::SlotAliased,
                        loc.with_vertex(v),
                        format!("vertices {w} and {v} both live in slot {slot}"),
                    ),
                );
            } else {
                slot_claims.insert(slot, v);
            }
        }

        // ---- reuse claims: non-incoming rows must already be resident ----
        for (t, (&v, &slot)) in b.merged.iter().zip(&b.position).enumerate() {
            if incoming_idx.contains(&(t as u32)) {
                continue; // written this batch
            }
            match live.get(&slot) {
                Some(&resident) if resident == v => {} // genuine in-place reuse
                _ => {
                    // Distinguish how the plan went wrong for the message.
                    let prev_slot = live.iter().find(|&(_, &r)| r == v).map(|(&s, _)| s);
                    let (code, why) = match prev_slot {
                        Some(s) => (
                            DiagCode::SlotMoved,
                            format!("vertex {v} is resident at slot {s}, not {slot} (moved without rewrite)"),
                        ),
                        None if evicted.contains(&v) => (
                            DiagCode::SlotMoved,
                            format!("vertex {v} was evicted earlier; reading slot {slot} is use-after-free"),
                        ),
                        None => (
                            DiagCode::ReadUnwritten,
                            format!("vertex {v} claims in-place reuse of slot {slot}, which never held it"),
                        ),
                    };
                    push(&mut diags, Diagnostic::new(code, loc.with_vertex(v), why));
                }
            }
        }

        // ---- neighbor reads route to the right slots (B202) ----
        for (t, &nv) in chunk.neighbors.iter().enumerate() {
            if t >= b.nbr_slot.len() {
                break; // length mismatch reported above
            }
            match b.merged.binary_search(&nv) {
                Err(_) => push(
                    &mut diags,
                    Diagnostic::new(
                        DiagCode::MergedSetWrong,
                        loc.with_vertex(nv),
                        format!("neighbor {nv} missing from M_ij"),
                    ),
                ),
                Ok(ti) => {
                    if b.nbr_slot[t] != b.position[ti] {
                        push(
                            &mut diags,
                            Diagnostic::new(
                                DiagCode::ReadUnwritten,
                                loc.with_vertex(nv),
                                format!(
                                    "neighbor {nv} read from slot {} but its row lives in slot {}",
                                    b.nbr_slot[t], b.position[ti]
                                ),
                            ),
                        );
                    }
                }
            }
        }

        // ---- commit the batch: new residency map, track evictions ----
        let next: HashMap<u32, VertexId> = b
            .position
            .iter()
            .copied()
            .zip(b.merged.iter().copied())
            .collect();
        for &v in live.values() {
            if b.merged.binary_search(&v).is_err() {
                evicted.insert(v);
            }
        }
        evicted.retain(|v| b.merged.binary_search(v).is_err());
        live = next;
    }
    diags
}

/// Checks every GPU's buffer plan (plus the collection's shape).
pub fn verify_all_buffers(
    plan: &TwoLevelPartition,
    dedup: &DedupPlan,
    bufplans: &[GpuBufferPlan],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if bufplans.len() != plan.m {
        push(
            &mut diags,
            Diagnostic::new(
                DiagCode::MergedSetWrong,
                Location::default(),
                format!("{} buffer plans for {} GPUs", bufplans.len(), plan.m),
            ),
        );
        return diags;
    }
    for (i, bp) in bufplans.iter().enumerate() {
        if bp.gpu != i {
            push(
                &mut diags,
                Diagnostic::new(
                    DiagCode::MergedSetWrong,
                    Location::gpu(i),
                    format!("plan at index {i} claims GPU {}", bp.gpu),
                ),
            );
            continue;
        }
        diags.extend(verify_buffers(plan, dedup, bp));
    }
    diags
}

/// Union of two sorted, deduplicated slices (mirror of the planner's).
fn union_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut k) = (0usize, 0usize);
    while i < a.len() && k < b.len() {
        match a[i].cmp(&b[k]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[k]);
                k += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                k += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[k..]);
    out
}
