//! Figure 10: runtime and peak GPU memory of HongTu when the chunk *size*
//! grows ×1..×4 (i.e. the chunk count shrinks /1../4) — the
//! memory-vs-communication knob of §7.5.
//!
//! NOTE: the paper sweeps chunk **size** upward by *reducing* the number
//! of chunks... (its Figure 10 shows memory ↓ and runtime ↑ as the factor
//! grows, i.e. the factor multiplies the chunk *count*). We follow the
//! measured behaviour: multiplying the chunk count by k reduces memory
//! 51–65% and increases runtime 1.5×–2.2× at k = 4.

use hongtu_bench::{
    config::ExperimentConfig as C, dataset, format_bytes, format_seconds, header, Table,
};
use hongtu_core::HongTuConfig;
use hongtu_datasets::registry::large_keys;
use hongtu_nn::ModelKind;

fn main() {
    header(
        "Figure 10: runtime & peak GPU memory vs chunk-count factor (GCN)",
        "HongTu (SIGMOD 2023), Figure 10",
    );
    for key in large_keys() {
        let ds = dataset(key);
        println!("\n--- {} ---", key.abbrev());
        let mut t = Table::new(vec![
            "factor",
            "chunks/part",
            "epoch time",
            "peak GPU mem",
            "vs x1",
        ]);
        let base_chunks = C::chunks(key, ModelKind::Gcn);
        let mut base: Option<(f64, usize)> = None;
        for factor in 1..=4usize {
            let n = base_chunks * factor;
            let mut engine = hongtu_core::HongTuEngine::new(
                &ds,
                ModelKind::Gcn,
                C::hidden(key),
                2,
                n,
                HongTuConfig::full(C::machine(4)),
            )
            .expect("engine");
            let r = engine.train_epoch().expect("epoch");
            let peak = engine.machine().max_gpu_peak();
            let (bt, bp) = *base.get_or_insert((r.time, peak));
            t.row(vec![
                format!("x{factor}"),
                n.to_string(),
                format_seconds(r.time),
                format_bytes(peak),
                format!(
                    "time {:.2}x, mem {:.0}%",
                    r.time / bt,
                    100.0 * peak as f64 / bp as f64
                ),
            ]);
        }
        t.print();
    }
    println!();
    println!("paper shape: at x4 chunks, memory consumption drops 51%-65% while the");
    println!("epoch time grows 1.5x-2.2x, linearly or sub-linearly in the factor.");
}
