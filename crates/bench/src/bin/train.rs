//! Command-line trainer: run HongTu end-to-end on any built-in dataset
//! proxy (or an edge-list file) from the shell.
//!
//! ```text
//! cargo run -p hongtu-bench --bin train -- \
//!     --dataset rdt --model gcn --layers 2 --hidden 32 \
//!     --epochs 50 --chunks 4 --gpus 4 --gpu-mem-mb 256 \
//!     [--comm full|p2p|vanilla] [--memory hybrid|recompute] \
//!     [--no-reorg] [--seed N] [--save model.htgm] [--quiet]
//! ```

use hongtu_core::{
    CommMode, ExecutionMode, HongTuConfig, HongTuEngine, MemoryStrategy, OverlapMode,
};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_sim::MachineConfig;
use hongtu_tensor::SeededRng;

#[derive(Debug)]
struct Args {
    dataset: DatasetKey,
    model: ModelKind,
    layers: usize,
    hidden: usize,
    epochs: usize,
    chunks: usize,
    gpus: usize,
    gpu_mem_mb: usize,
    comm: CommMode,
    memory: MemoryStrategy,
    reorganize: bool,
    seed: u64,
    save: Option<String>,
    quiet: bool,
    exec: ExecutionMode,
    overlap: OverlapMode,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            dataset: DatasetKey::Rdt,
            model: ModelKind::Gcn,
            layers: 2,
            hidden: 32,
            epochs: 30,
            chunks: 4,
            gpus: 4,
            gpu_mem_mb: 256,
            comm: CommMode::P2pRu,
            memory: MemoryStrategy::Hybrid,
            reorganize: true,
            seed: 42,
            save: None,
            quiet: false,
            exec: ExecutionMode::Sequential,
            overlap: OverlapMode::Off,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: train [--dataset rdt|opt|it|opr|fds] [--model gcn|gat|sage|gin|commnet|ggnn]\n\
         \x20            [--layers N] [--hidden N] [--epochs N] [--chunks N] [--gpus N]\n\
         \x20            [--gpu-mem-mb N] [--comm full|p2p|vanilla]\n\
         \x20            [--memory hybrid|recompute] [--no-reorg] [--seed N]\n\
         \x20            [--exec sequential|parallel] [--overlap off|doublebuffer]\n\
         \x20            [--save FILE] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    let bad = |flag: &str, val: &str| -> ! {
        eprintln!("invalid value {val:?} for {flag}");
        usage()
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--no-reorg" => {
                args.reorganize = false;
                continue;
            }
            "--quiet" => {
                args.quiet = true;
                continue;
            }
            "--help" | "-h" => usage(),
            _ => {}
        }
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--dataset" => {
                args.dataset = match value.to_lowercase().as_str() {
                    "rdt" | "reddit" => DatasetKey::Rdt,
                    "opt" | "products" => DatasetKey::Opt,
                    "it" | "it-2004" => DatasetKey::It,
                    "opr" | "papers" => DatasetKey::Opr,
                    "fds" | "friendster" => DatasetKey::Fds,
                    _ => bad("--dataset", &value),
                }
            }
            "--model" => {
                args.model = match value.to_lowercase().as_str() {
                    "gcn" => ModelKind::Gcn,
                    "gat" => ModelKind::Gat,
                    "sage" => ModelKind::Sage,
                    "gin" => ModelKind::Gin,
                    "commnet" => ModelKind::CommNet,
                    "ggnn" | "ggcn" => ModelKind::Ggnn,
                    _ => bad("--model", &value),
                }
            }
            "--comm" => {
                args.comm = match value.to_lowercase().as_str() {
                    "full" | "p2pru" => CommMode::P2pRu,
                    "p2p" => CommMode::P2p,
                    "vanilla" | "baseline" => CommMode::Vanilla,
                    _ => bad("--comm", &value),
                }
            }
            "--memory" => {
                args.memory = match value.to_lowercase().as_str() {
                    "hybrid" => MemoryStrategy::Hybrid,
                    "recompute" => MemoryStrategy::Recompute,
                    _ => bad("--memory", &value),
                }
            }
            "--exec" => {
                args.exec = match value.to_lowercase().as_str() {
                    "sequential" | "seq" => ExecutionMode::Sequential,
                    "parallel" | "par" => ExecutionMode::Parallel,
                    _ => bad("--exec", &value),
                }
            }
            "--overlap" => {
                args.overlap = match value.to_lowercase().as_str() {
                    "off" => OverlapMode::Off,
                    "doublebuffer" | "db" => OverlapMode::DoubleBuffer,
                    _ => bad("--overlap", &value),
                }
            }
            "--save" => args.save = Some(value),
            "--layers" | "--hidden" | "--epochs" | "--chunks" | "--gpus" | "--gpu-mem-mb"
            | "--seed" => {
                let Ok(n) = value.parse::<usize>() else {
                    bad(&flag, &value)
                };
                match flag.as_str() {
                    "--layers" => args.layers = n,
                    "--hidden" => args.hidden = n,
                    "--epochs" => args.epochs = n,
                    "--chunks" => args.chunks = n,
                    "--gpus" => args.gpus = n,
                    "--gpu-mem-mb" => args.gpu_mem_mb = n,
                    "--seed" => args.seed = n as u64,
                    _ => unreachable!(),
                }
            }
            _ => {
                eprintln!("unknown flag {flag:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let dataset = load(args.dataset, &mut SeededRng::new(args.seed));
    if !args.quiet {
        println!(
            "dataset {} ({}): {} vertices, {} edges, {} classes",
            args.dataset.abbrev(),
            args.dataset.real_name(),
            dataset.num_vertices(),
            dataset.num_edges(),
            dataset.num_classes
        );
    }
    let machine = MachineConfig::scaled(args.gpus, args.gpu_mem_mb << 20);
    let config = HongTuConfig {
        comm: args.comm,
        memory: args.memory,
        reorganize: args.reorganize,
        machine,
        lr: 0.01,
        interleaved: true,
        validation: hongtu_core::engine::ValidationLevel::Plan,
        exec: args.exec,
        overlap: args.overlap,
    };
    let mut engine = match HongTuEngine::new(
        &dataset,
        args.model,
        args.hidden,
        args.layers,
        args.chunks,
        config,
    ) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("engine construction failed: {e}");
            std::process::exit(1);
        }
    };
    if !args.quiet {
        let v = &engine.preprocessing().volumes;
        println!(
            "plan: {} x {} chunks | V_ori {:.2}|V| | H2D reduction {:.0}%",
            engine.plan().m,
            engine.plan().n,
            v.v_ori as f64 / dataset.num_vertices() as f64,
            100.0 * v.h2d_reduction()
        );
    }
    for epoch in 1..=args.epochs {
        match engine.train_epoch() {
            Ok(r) => {
                if !args.quiet && (epoch % 10 == 0 || epoch == 1 || epoch == args.epochs) {
                    println!(
                        "epoch {epoch:>4}: loss {:.4}  train-acc {:.3}  sim {:.3} ms",
                        r.loss.loss,
                        r.loss.accuracy,
                        r.time * 1e3
                    );
                }
            }
            Err(e) => {
                eprintln!("epoch {epoch} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "final: val {:.3}, test {:.3} | peak GPU {:.1} MB",
        engine.accuracy(&dataset.splits.val),
        engine.accuracy(&dataset.splits.test),
        engine.machine().max_gpu_peak() as f64 / (1 << 20) as f64
    );
    if let Some(path) = args.save {
        match hongtu_nn::save_model_file(engine.model(), &path) {
            Ok(()) => println!("model saved to {path}"),
            Err(e) => {
                eprintln!("saving model failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
