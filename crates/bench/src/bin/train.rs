//! Command-line trainer: run HongTu end-to-end on any built-in dataset
//! proxy (or an edge-list file) from the shell.
//!
//! ```text
//! cargo run -p hongtu-bench --bin train -- \
//!     --dataset rdt --model gcn --layers 2 --hidden 32 \
//!     --epochs 50 --chunks 4 --gpus 4 --gpu-mem-mb 256 \
//!     [--comm full|p2p|vanilla] [--memory hybrid|recompute] \
//!     [--no-reorg] [--seed N] [--save model.htgm] [--quiet]
//! ```

use hongtu_core::cli::{
    parse_cache, parse_comm, parse_dataset, parse_exec, parse_memory, parse_model, parse_overlap,
    FlagParser,
};
use hongtu_core::{
    CacheOff, CachePolicy, CommMode, ExecutionMode, HongTuConfig, HongTuEngine, MemoryStrategy,
    OverlapMode,
};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_tensor::SeededRng;
use std::sync::Arc;

struct Args {
    dataset: DatasetKey,
    model: ModelKind,
    layers: usize,
    hidden: usize,
    epochs: usize,
    chunks: usize,
    gpus: usize,
    gpu_mem_mb: usize,
    comm: CommMode,
    memory: MemoryStrategy,
    reorganize: bool,
    seed: u64,
    save: Option<String>,
    quiet: bool,
    exec: ExecutionMode,
    overlap: OverlapMode,
    cache: Arc<dyn CachePolicy>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            dataset: DatasetKey::Rdt,
            model: ModelKind::Gcn,
            layers: 2,
            hidden: 32,
            epochs: 30,
            chunks: 4,
            gpus: 4,
            gpu_mem_mb: 256,
            comm: CommMode::P2pRu,
            memory: MemoryStrategy::Hybrid,
            reorganize: true,
            seed: 42,
            save: None,
            quiet: false,
            exec: ExecutionMode::Sequential,
            overlap: OverlapMode::Off,
            cache: Arc::new(CacheOff),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: train [--dataset rdt|opt|it|opr|fds] [--model gcn|gat|sage|gin|commnet|ggnn]\n\
         \x20            [--layers N] [--hidden N] [--epochs N] [--chunks N] [--gpus N]\n\
         \x20            [--gpu-mem-mb N] [--comm full|p2p|vanilla]\n\
         \x20            [--memory hybrid|recompute] [--no-reorg] [--seed N]\n\
         \x20            [--exec sequential|parallel] [--overlap off|doublebuffer]\n\
         \x20            [--cache off|freq|degree] [--save FILE] [--quiet]"
    );
    std::process::exit(2);
}

fn try_parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut p = FlagParser::from_env();
    while let Some(flag) = p.next_flag() {
        match flag.as_str() {
            "--no-reorg" => args.reorganize = false,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            "--dataset" => args.dataset = p.value_with("--dataset", parse_dataset)?,
            "--model" => args.model = p.value_with("--model", parse_model)?,
            "--comm" => args.comm = p.value_with("--comm", parse_comm)?,
            "--memory" => args.memory = p.value_with("--memory", parse_memory)?,
            "--exec" => args.exec = p.value_with("--exec", parse_exec)?,
            "--overlap" => args.overlap = p.value_with("--overlap", parse_overlap)?,
            "--cache" => args.cache = p.value_with("--cache", parse_cache)?,
            "--save" => args.save = Some(p.value("--save")?),
            "--layers" => args.layers = p.parse_value("--layers")?,
            "--hidden" => args.hidden = p.parse_value("--hidden")?,
            "--epochs" => args.epochs = p.parse_value("--epochs")?,
            "--chunks" => args.chunks = p.parse_value("--chunks")?,
            "--gpus" => args.gpus = p.parse_value("--gpus")?,
            "--gpu-mem-mb" => args.gpu_mem_mb = p.parse_value("--gpu-mem-mb")?,
            "--seed" => args.seed = p.parse_value("--seed")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn parse_args() -> Args {
    try_parse_args().unwrap_or_else(|msg| {
        eprintln!("{msg}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let dataset = load(args.dataset, &mut SeededRng::new(args.seed));
    if !args.quiet {
        println!(
            "dataset {} ({}): {} vertices, {} edges, {} classes",
            args.dataset.abbrev(),
            args.dataset.real_name(),
            dataset.num_vertices(),
            dataset.num_edges(),
            dataset.num_classes
        );
    }
    let config = match HongTuConfig::builder()
        .gpus(args.gpus)
        .gpu_mem_mb(args.gpu_mem_mb)
        .comm(args.comm)
        .memory(args.memory)
        .reorganize(args.reorganize)
        .exec(args.exec)
        .overlap(args.overlap)
        .cache(args.cache.clone())
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let mut engine = match HongTuEngine::new(
        &dataset,
        args.model,
        args.hidden,
        args.layers,
        args.chunks,
        config,
    ) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("engine construction failed: {e}");
            std::process::exit(1);
        }
    };
    if !args.quiet {
        let v = &engine.preprocessing().volumes;
        let plans = engine.plans();
        println!(
            "plan: {} x {} chunks | V_ori {:.2}|V| | H2D reduction {:.0}%",
            plans.partition.m,
            plans.partition.n,
            v.v_ori as f64 / dataset.num_vertices() as f64,
            100.0 * v.h2d_reduction()
        );
        if let Some(cache) = plans.cache {
            println!(
                "cache: policy {} | {} resident rows | {:.1} MB",
                args.cache.name(),
                cache.total_rows(),
                cache.per_gpu.iter().map(|g| g.bytes).sum::<usize>() as f64 / (1 << 20) as f64
            );
        }
    }
    for epoch in 1..=args.epochs {
        match engine.train_epoch() {
            Ok(r) => {
                if !args.quiet && (epoch % 10 == 0 || epoch == 1 || epoch == args.epochs) {
                    println!(
                        "epoch {epoch:>4}: loss {:.4}  train-acc {:.3}  sim {:.3} ms",
                        r.loss.loss,
                        r.loss.accuracy,
                        r.time * 1e3
                    );
                }
            }
            Err(e) => {
                eprintln!("epoch {epoch} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "final: val {:.3}, test {:.3} | peak GPU {:.1} MB",
        engine.accuracy(&dataset.splits.val),
        engine.accuracy(&dataset.splits.test),
        engine.machine().max_gpu_peak() as f64 / (1 << 20) as f64
    );
    if let Some(rt) = engine.session().cache() {
        println!(
            "cache: {} hits / {} scheduled loads ({:.0}% hit rate)",
            rt.total_hits(),
            rt.total_loads(),
            100.0 * rt.hit_rate()
        );
    }
    if let Some(path) = args.save {
        match hongtu_nn::save_model_file(engine.model(), &path) {
            Ok(()) => println!("model saved to {path}"),
            Err(e) => {
                eprintln!("saving model failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
