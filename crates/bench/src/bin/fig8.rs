//! Figure 8: validation-accuracy curves of DGL (full-graph), DistDGL
//! (mini-batch) and HongTu for GCN over 100 epochs on the two labelled
//! datasets, with final (validation, test) accuracy.
//!
//! This experiment runs *real* training: HongTu must match the full-graph
//! reference exactly (same semantics), while mini-batch training follows a
//! different (sampled) trajectory.

use hongtu_bench::{config::ExperimentConfig as C, dataset, header, run, Table};
use hongtu_core::systems::MiniBatchSystem;
use hongtu_datasets::registry::small_keys;
use hongtu_nn::model::whole_graph_chunk;
use hongtu_nn::{loss::masked_accuracy, GnnModel, ModelKind};
use hongtu_tensor::{Adam, SeededRng};

const EPOCHS: usize = 100;
const REPORT_EVERY: usize = 10;

fn main() {
    header(
        "Figure 8: validation accuracy, DGL vs DistDGL vs HongTu (GCN, 100 epochs)",
        "HongTu (SIGMOD 2023), Figure 8",
    );
    for key in small_keys() {
        let ds = dataset(key);
        let layers = 2;
        let hidden = C::hidden(key);
        let chunk = whole_graph_chunk(&ds.graph);

        // --- DGL: reference full-graph training ---
        let mut rng = SeededRng::new(ds.seed ^ 0x686F6E67);
        let mut dgl = GnnModel::new(ModelKind::Gcn, &ds.model_dims(hidden, layers), &mut rng);
        let mut dgl_opt = Adam::new(0.01);
        let mut dgl_curve = Vec::new();

        // --- HongTu: partitioned offloading engine (same seed) ---
        let mut hongtu = run::hongtu_engine(&ds, ModelKind::Gcn, layers, 4).expect("engine");
        let mut hongtu_curve = Vec::new();

        // --- DistDGL: sampled mini-batch training ---
        let mb = MiniBatchSystem::new(C::machine(4), C::minibatch_size(), hongtu_bench::SEED);
        let mut mb_rng = SeededRng::new(ds.seed ^ 0xD15D);
        let mut mb_model = GnnModel::new(
            ModelKind::Gcn,
            &ds.model_dims(hidden, layers),
            &mut mb_rng.fork(1),
        );
        let mut mb_opt = Adam::new(0.01);
        let mut mb_curve = Vec::new();

        for epoch in 1..=EPOCHS {
            dgl.train_epoch_reference(
                &chunk,
                &ds.features,
                &ds.labels,
                &ds.splits.train,
                &mut dgl_opt,
            );
            hongtu.train_epoch().expect("hongtu epoch");
            mb.train_epoch_real(&mut mb_model, &ds, &mut mb_opt, &mut mb_rng);
            if epoch % REPORT_EVERY == 0 {
                let dgl_logits = dgl.forward_reference(&chunk, &ds.features).pop().unwrap();
                let mb_logits = mb_model
                    .forward_reference(&chunk, &ds.features)
                    .pop()
                    .unwrap();
                dgl_curve.push(masked_accuracy(&dgl_logits, &ds.labels, &ds.splits.val));
                hongtu_curve.push(hongtu.accuracy(&ds.splits.val));
                mb_curve.push(masked_accuracy(&mb_logits, &ds.labels, &ds.splits.val));
            }
        }

        println!("\n--- {} ({}) ---", key.real_name(), key.abbrev());
        let mut t = Table::new(
            std::iter::once("epoch".to_string())
                .chain((1..=EPOCHS / REPORT_EVERY).map(|i| (i * REPORT_EVERY).to_string()))
                .collect::<Vec<_>>(),
        );
        let fmt = |c: &[f32]| c.iter().map(|a| format!("{:.3}", a)).collect::<Vec<_>>();
        t.row(
            std::iter::once("DGL-FG".to_string())
                .chain(fmt(&dgl_curve))
                .collect(),
        );
        t.row(
            std::iter::once("HongTu".to_string())
                .chain(fmt(&hongtu_curve))
                .collect(),
        );
        t.row(
            std::iter::once("DistDGL".to_string())
                .chain(fmt(&mb_curve))
                .collect(),
        );
        t.print();

        // Final (val, test) accuracies, as in the figure's legend.
        let dgl_logits = dgl.forward_reference(&chunk, &ds.features).pop().unwrap();
        let mb_logits = mb_model
            .forward_reference(&chunk, &ds.features)
            .pop()
            .unwrap();
        println!(
            "final (val, test): DGL-FG ({:.3}, {:.3})  HongTu ({:.3}, {:.3})  DistDGL ({:.3}, {:.3})",
            masked_accuracy(&dgl_logits, &ds.labels, &ds.splits.val),
            masked_accuracy(&dgl_logits, &ds.labels, &ds.splits.test),
            hongtu.accuracy(&ds.splits.val),
            hongtu.accuracy(&ds.splits.test),
            masked_accuracy(&mb_logits, &ds.labels, &ds.splits.val),
            masked_accuracy(&mb_logits, &ds.labels, &ds.splits.test),
        );
        let gap = dgl_curve
            .iter()
            .zip(&hongtu_curve)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!("max |DGL − HongTu| accuracy gap along the curve: {gap:.4}");
    }
    println!();
    println!("paper shape: HongTu and DGL full-graph curves coincide (training");
    println!("semantics unchanged); mini-batch training follows a different curve");
    println!("and can end above or below full-graph depending on the dataset.");
}
