//! Table 1: memory consumption of graph topology, vertex data, and
//! intermediate data for 3-layer full-graph GCN training on the three
//! billion-scale graphs — computed analytically at the paper's full scale.

use hongtu_bench::{header, Table};
use hongtu_datasets::memory_model::{gb, table1_datasets, MemoryModel};

fn main() {
    header(
        "Table 1: memory consumption of 3-layer full-graph GCN training",
        "HongTu (SIGMOD 2023), Table 1",
    );
    let mut t = Table::new(vec![
        "Dataset",
        "Model Config",
        "Topology",
        "Vtx Data",
        "Intr Data",
        "paper (topo/vtx/intr)",
    ]);
    for (ps, dims) in table1_datasets() {
        let m = MemoryModel::gcn(ps.vertices, ps.edges, &dims);
        let paper = match ps.name {
            "it-2004" => "12.8 / 177.2 / 108.3 GB",
            "ogbn-paper" => "18.0 / 519.4 / 425.3 GB",
            _ => "28.9 / 293.3 / 179.3 GB",
        };
        t.row(vec![
            ps.name.to_string(),
            dims.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("-"),
            format!("{:.1}GB", gb(m.topology)),
            format!("{:.1}GB", gb(m.vertex_data)),
            format!("{:.1}GB", gb(m.intermediate)),
            paper.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("(analytic model; see DESIGN.md §Table 1 for the formulas — the paper's");
    println!(" exact bookkeeping is not published, so agreement is within ~2x per cell");
    println!(" with the cross-dataset ordering preserved)");
    println!();
    println!("extension — the paper's footnote 1 (edge-heavy models): the same");
    println!("datasets under GAT, where the |E| x d edge messages dominate:");
    let mut t = Table::new(vec!["Dataset", "Intr Data (GAT)", "vs GCN"]);
    for (ps, dims) in table1_datasets() {
        let gcn = MemoryModel::gcn(ps.vertices, ps.edges, &dims);
        let gat = MemoryModel::gat(ps.vertices, ps.edges, &dims);
        t.row(vec![
            ps.name.to_string(),
            format!("{:.1}GB", gb(gat.intermediate)),
            format!("{:.1}x", gat.intermediate as f64 / gcn.intermediate as f64),
        ]);
    }
    t.print();
}
