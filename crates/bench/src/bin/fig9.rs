//! Figure 9: performance breakdown of HongTu on GCN and GAT with 2/3/4
//! hidden layers on the three large graphs, enabling inter-GPU
//! deduplication (+P2P) and intra-GPU reuse (+RU) one by one over the
//! vanilla baseline. Each bar is split into GPU compute, host-GPU (H2D),
//! inter-GPU (D2D) and CPU gradient-accumulation time.

use hongtu_bench::{dataset, format_seconds, header, run, Table};
use hongtu_core::CommMode;
use hongtu_datasets::registry::large_keys;
use hongtu_nn::ModelKind;

fn main() {
    header(
        "Figure 9: per-epoch breakdown, Baseline vs +P2P vs +RU",
        "HongTu (SIGMOD 2023), Figure 9 + §7.4/§7.5",
    );
    for kind in [ModelKind::Gcn, ModelKind::Gat] {
        for key in large_keys() {
            let ds = dataset(key);
            println!("\n--- {} on {} ---", kind.name(), key.abbrev());
            // Bucket times are summed over the 4 GPUs; show the per-GPU
            // average so components add up to the (critical-path) total.
            let mut t = Table::new(vec![
                "Layers", "Mode", "total", "GPU/gpu", "H2D/gpu", "D2D/gpu", "CPU/gpu", "speedup",
            ]);
            for layers in [2usize, 3, 4] {
                let mut baseline_time = None;
                for (mode, name) in [
                    (CommMode::Vanilla, "Baseline"),
                    (CommMode::P2p, "+P2P"),
                    (CommMode::P2pRu, "+RU"),
                ] {
                    let r = run::hongtu_epoch_with(&ds, kind, layers, 4, mode)
                        .expect("large graphs must fit the offloading engine");
                    let base = *baseline_time.get_or_insert(r.time);
                    let g = 4.0;
                    t.row(vec![
                        layers.to_string(),
                        name.to_string(),
                        format_seconds(r.time),
                        format_seconds((r.buckets.gpu + r.buckets.reuse) / g),
                        format_seconds(r.buckets.h2d / g),
                        format_seconds(r.buckets.d2d / g),
                        format_seconds(r.buckets.cpu / g),
                        format!("{:.2}x", base / r.time),
                    ]);
                }
            }
            t.print();
        }
    }
    println!();
    println!("paper shape: +P2P and +RU each cut communication; total speedup over");
    println!("the baseline is 1.3x-3.4x and stable across layer counts; GCN is");
    println!("communication-bound (~58-61% comm) while GAT spends far more GPU time;");
    println!("CPU gradient accumulation is 8-30% of the epoch.");
}
