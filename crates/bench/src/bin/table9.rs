//! Table 9: cost of communication deduplication — 100-epoch runtime of a
//! 2-layer GCN with and without CD, plus the preprocessing overhead.
//!
//! Per-epoch simulated time is deterministic for a fixed plan, so the
//! 100-epoch figure is `100 × epoch_time` (verified identical across
//! epochs by the integration tests).

use hongtu_bench::{config::ExperimentConfig as C, dataset, format_seconds, header, run, Table};
use hongtu_core::{CommMode, HongTuConfig};
use hongtu_datasets::registry::large_keys;
use hongtu_nn::ModelKind;

fn main() {
    header(
        "Table 9: cost of communication deduplication (100-epoch GCN-2)",
        "HongTu (SIGMOD 2023), Table 9",
    );
    let mut t = Table::new(vec!["Engine", "IT", "OPR", "FDS"]);
    let mut without = vec!["HongTu w/o CD".to_string()];
    let mut with_cd = vec!["HongTu w/ CD".to_string()];
    let mut prep = vec!["Preprocessing".to_string()];
    for key in large_keys() {
        let ds = dataset(key);
        let wo = run::hongtu_epoch_with(&ds, ModelKind::Gcn, 2, 4, CommMode::Vanilla)
            .expect("vanilla epoch");
        let mut engine =
            run::hongtu_engine_with(&ds, ModelKind::Gcn, 2, 4, HongTuConfig::full(C::machine(4)))
                .expect("engine");
        let wc = engine.train_epoch().expect("CD epoch");
        without.push(format_seconds(100.0 * wo.time));
        with_cd.push(format_seconds(100.0 * wc.time));
        prep.push(format!(
            "+{}",
            format_seconds(engine.preprocessing().seconds)
        ));
    }
    t.row(without);
    t.row(with_cd);
    t.row(prep);
    t.print();
    println!();
    println!("paper: 502.8/6260.2/4907.5 s without CD vs 359.6/2513.0/1554.1 s with,");
    println!("       preprocessing +4.5/+33.9/+22.7 s (≤1.5% of the 100-epoch run).");
}
