//! Extension: the full model zoo under HongTu — per-epoch time, strategy
//! support, and parameter count for every implemented architecture on a
//! small and a large graph.

use hongtu_bench::{dataset, header, run, time_cell, Table};
use hongtu_datasets::DatasetKey;
use hongtu_nn::ModelKind;

fn main() {
    header(
        "Extension: model zoo under HongTu (2 layers, 4 GPUs)",
        "paper §4.2's model classification, exercised end-to-end",
    );
    let rdt = dataset(DatasetKey::Rdt);
    let fds = dataset(DatasetKey::Fds);
    let mut t = Table::new(vec!["model", "agg cache", "RDT epoch", "FDS epoch", "note"]);
    for kind in [
        ModelKind::Gcn,
        ModelKind::Sage,
        ModelKind::Gin,
        ModelKind::CommNet,
        ModelKind::Ggnn,
        ModelKind::Gat,
    ] {
        let note = match kind {
            ModelKind::Gcn => "weighted-sum aggregate, Linear+ReLU update",
            ModelKind::Sage => "mean aggregate + self projection",
            ModelKind::Gin => "sum aggregate (injective)",
            ModelKind::CommNet => "mean over *other* neighbors",
            ModelKind::Ggnn => "GRU update recomputed from O(|V|) checkpoint",
            ModelKind::Gat => "edge softmax -> falls back to recomputation",
        };
        t.row(vec![
            kind.name().to_string(),
            if kind.supports_agg_cache() {
                "yes"
            } else {
                "no (recompute)"
            }
            .to_string(),
            time_cell(&run::hongtu_epoch(&rdt, kind, 2, 4).map(|r| r.time)),
            time_cell(&run::hongtu_epoch(&fds, kind, 2, 4).map(|r| r.time)),
            note.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("every architecture trains through the same partitioned, deduplicated,");
    println!("recomputation-managed pipeline; only GAT declines the aggregate cache");
    println!("(its AGGREGATE produces O(|E|) intermediates, §4.2).");
}
