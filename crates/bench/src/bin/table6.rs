//! Table 6: comparison with multi-GPU systems (Sancus, HongTu-IM, DistDGL)
//! on 4 GPUs, running GCN on all five graphs. Small graphs use 2/4/8
//! layers, large ones 2/3/4 (the paper's "2/2", "4/3", "8/4" row pairs).

use hongtu_bench::{config::ExperimentConfig as C, dataset, header, run, time_cell, Table};
use hongtu_core::systems::{InMemoryKind, MiniBatchSystem, MultiGpuInMemory, Workload};
use hongtu_datasets::registry::all_keys;
use hongtu_nn::ModelKind;

fn main() {
    header(
        "Table 6: vs multi-GPU systems (4 GPUs), GCN on all five graphs",
        "HongTu (SIGMOD 2023), Table 6",
    );
    let datasets: Vec<_> = all_keys().iter().map(|&k| dataset(k)).collect();
    let kind = ModelKind::Gcn;
    let mut t = Table::new(vec![
        "Layers(sm/lg)",
        "System",
        "RDT",
        "OPT",
        "IT",
        "OPR",
        "FDS",
    ]);
    for depth in 0..3 {
        let mut rows: Vec<(&str, Vec<String>)> = vec![
            ("Sancus", Vec::new()),
            ("HongTu-IM", Vec::new()),
            ("HongTu", Vec::new()),
            ("DistDGL", Vec::new()),
        ];
        let mut label = (0, 0);
        for ds in &datasets {
            let layers = C::layer_sweep(ds.key)[depth];
            if ds.key.is_small() {
                label.0 = layers;
            } else {
                label.1 = layers;
            }
            let w = Workload::new(ds, kind, C::hidden(ds.key), layers);
            rows[0].1.push(time_cell(
                &MultiGpuInMemory::new(InMemoryKind::Sancus, C::machine(4), ds, 1).epoch_time(&w),
            ));
            rows[1].1.push(time_cell(
                &MultiGpuInMemory::new(InMemoryKind::HongTuIm, C::machine(4), ds, 1).epoch_time(&w),
            ));
            rows[2].1.push(time_cell(
                &run::hongtu_epoch(ds, kind, layers, 4).map(|r| r.time),
            ));
            // DistDGL: 4 sampling/training workers share the epoch.
            let mb = MiniBatchSystem::new(C::machine(4), C::minibatch_size(), hongtu_bench::SEED);
            rows[3]
                .1
                .push(time_cell(&mb.epoch_time(&w).map(|t| t / 4.0)));
        }
        for (name, cells) in rows {
            t.row(
                std::iter::once(format!("{}/{}", label.0, label.1))
                    .chain(std::iter::once(name.to_string()))
                    .chain(cells)
                    .collect(),
            );
        }
    }
    t.print();
    println!();
    println!("paper shape: Sancus and HongTu-IM OOM on all three large graphs; only");
    println!("HongTu trains them. DistDGL grows super-linearly with depth (neighbor");
    println!("explosion) and OOMs when deep; it wins only on OPR, whose training set");
    println!("is ~1.1% of the vertices.");
}
