//! `bench_infer` — simulated-time and peak-memory comparison of the
//! forward-only inference executor against a full training epoch (whose
//! forward half it must reproduce bit for bit), emitted as
//! machine-readable JSON for CI.
//!
//! For each model × overlap mode × GPU count the same plan is driven by
//! both executors; the report records *simulated* per-epoch seconds,
//! peak GPU/host memory for both, the infer/train time fraction, and
//! the inference logits digest. The process exits 1 if inference is not
//! strictly faster than the training epoch or not strictly smaller on
//! both memory tiers, or if the inference digest diverges across
//! overlap modes.
//!
//! ```text
//! cargo run -p hongtu-bench --bin bench_infer -- [--out FILE] \
//!     [--dataset rdt|opt|it|opr|fds]
//! ```
//!
//! Default output is `BENCH_infer.json` in the current directory.

use hongtu_bench::harness::{
    scaled_machine, BenchCli, Gate, JsonReport, JsonRow, GPU_COUNTS, MODELS,
};
use hongtu_core::cli::logits_digest;
use hongtu_core::{CommMode, HongTuConfig, HongTuEngine, Mode, OverlapMode, Session};
use hongtu_tensor::SeededRng;

struct Sample {
    model: &'static str,
    overlap: &'static str,
    gpus: usize,
    train_epoch_s: f64,
    infer_epoch_s: f64,
    train_peak_gpu: usize,
    infer_peak_gpu: usize,
    train_peak_host: usize,
    infer_peak_host: usize,
    digest: u64,
}

fn config(gpus: usize, overlap: OverlapMode, mode: Mode) -> HongTuConfig {
    HongTuConfig::builder()
        .machine(scaled_machine(gpus))
        .comm(CommMode::P2pRu)
        .overlap(overlap)
        .mode(mode)
        .build()
        .expect("valid config")
}

fn main() {
    let cli = BenchCli::parse("bench_infer", "BENCH_infer.json", 1);
    let ds = hongtu_datasets::load(cli.dataset, &mut SeededRng::new(99));
    let mut samples = Vec::new();
    for (kind, model) in MODELS {
        for (overlap, overlap_name) in [
            (OverlapMode::Off, "off"),
            (OverlapMode::DoubleBuffer, "doublebuffer"),
        ] {
            for gpus in GPU_COUNTS {
                let mut engine =
                    HongTuEngine::new(&ds, kind, 32, 2, 4, config(gpus, overlap, Mode::Train))
                        .expect("engine construction");
                let train = engine.train_epoch().expect("train epoch");
                let mut session =
                    Session::new(&ds, kind, 32, 2, 4, config(gpus, overlap, Mode::Infer))
                        .expect("session construction");
                let infer = session.infer_epoch().expect("infer epoch");
                println!(
                    "{model}/{overlap_name}/{gpus} GPUs: train {:.3} ms, infer {:.3} ms \
                     ({:.0}% of epoch), peak GPU {:.1} -> {:.1} MB, digest {:016x}",
                    train.time * 1e3,
                    infer.time * 1e3,
                    100.0 * infer.time / train.time,
                    engine.machine().max_gpu_peak() as f64 / (1 << 20) as f64,
                    infer.peak_gpu_bytes as f64 / (1 << 20) as f64,
                    logits_digest(&infer.logits),
                );
                samples.push(Sample {
                    model,
                    overlap: overlap_name,
                    gpus,
                    train_epoch_s: train.time,
                    infer_epoch_s: infer.time,
                    train_peak_gpu: engine.machine().max_gpu_peak(),
                    infer_peak_gpu: infer.peak_gpu_bytes,
                    train_peak_host: engine.machine().host_memory().peak(),
                    infer_peak_host: infer.peak_host_bytes,
                    digest: logits_digest(&infer.logits),
                });
            }
        }
    }

    let mut report = JsonReport::new().str("dataset", cli.dataset.abbrev());
    for s in &samples {
        report.sample(
            JsonRow::new()
                .str("model", s.model)
                .str("overlap", s.overlap)
                .int("gpus", s.gpus as u64)
                .f64("train_sim_epoch_s", s.train_epoch_s)
                .f64("infer_sim_epoch_s", s.infer_epoch_s)
                .ratio("infer_fraction", s.infer_epoch_s / s.train_epoch_s)
                .int("train_peak_gpu_bytes", s.train_peak_gpu as u64)
                .int("infer_peak_gpu_bytes", s.infer_peak_gpu as u64)
                .int("train_peak_host_bytes", s.train_peak_host as u64)
                .int("infer_peak_host_bytes", s.infer_peak_host as u64)
                .hex("logits_digest", s.digest),
        );
    }
    report.write(&cli.out);

    let mut gate = Gate::new();
    for s in &samples {
        gate.check(
            s.infer_epoch_s < s.train_epoch_s,
            &format!(
                "{}/{}/{} GPUs: infer {} s not strictly below train epoch {} s",
                s.model, s.overlap, s.gpus, s.infer_epoch_s, s.train_epoch_s
            ),
        );
        gate.check(
            s.infer_peak_gpu < s.train_peak_gpu && s.infer_peak_host < s.train_peak_host,
            &format!(
                "{}/{}/{} GPUs: inference peaks (gpu {}, host {}) not strictly \
                 below training's (gpu {}, host {})",
                s.model,
                s.overlap,
                s.gpus,
                s.infer_peak_gpu,
                s.infer_peak_host,
                s.train_peak_gpu,
                s.train_peak_host
            ),
        );
    }
    // The digest must agree across overlap modes (and execution modes —
    // pinned by the test suite); divergence here is a determinism bug.
    for s in &samples {
        if let Some(other) = samples
            .iter()
            .find(|o| o.model == s.model && o.gpus == s.gpus && o.digest != s.digest)
        {
            gate.fail(&format!(
                "{}/{} GPUs: logits digest diverged across overlap modes \
                 ({} {:016x} vs {} {:016x})",
                s.model, s.gpus, s.overlap, s.digest, other.overlap, other.digest
            ));
            break;
        }
    }
    gate.finish();
}
