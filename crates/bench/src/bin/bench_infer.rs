//! `bench_infer` — simulated-time and peak-memory comparison of the
//! forward-only inference executor against a full training epoch (whose
//! forward half it must reproduce bit for bit), emitted as
//! machine-readable JSON for CI.
//!
//! For each model × overlap mode × GPU count the same plan is driven by
//! both executors; the report records *simulated* per-epoch seconds,
//! peak GPU/host memory for both, the infer/train time fraction, and
//! the inference logits digest. The process exits 1 if inference is not
//! strictly faster than the training epoch or not strictly smaller on
//! both memory tiers, or if the inference digest diverges across
//! overlap modes.
//!
//! ```text
//! cargo run -p hongtu-bench --bin bench_infer -- [--out FILE] \
//!     [--dataset rdt|opt|it|opr|fds]
//! ```
//!
//! Default output is `BENCH_infer.json` in the current directory.

use hongtu_core::cli::{logits_digest, parse_dataset};
use hongtu_core::{CommMode, HongTuConfig, HongTuEngine, Mode, OverlapMode, Session};
use hongtu_datasets::{load, DatasetKey};
use hongtu_nn::ModelKind;
use hongtu_sim::MachineConfig;
use hongtu_tensor::SeededRng;

struct Sample {
    model: &'static str,
    overlap: &'static str,
    gpus: usize,
    train_epoch_s: f64,
    infer_epoch_s: f64,
    train_peak_gpu: usize,
    infer_peak_gpu: usize,
    train_peak_host: usize,
    infer_peak_host: usize,
    digest: u64,
}

fn config(gpus: usize, overlap: OverlapMode, mode: Mode) -> HongTuConfig {
    HongTuConfig::builder()
        .machine(MachineConfig::scaled(gpus, 512 << 20))
        .comm(CommMode::P2pRu)
        .overlap(overlap)
        .mode(mode)
        .build()
        .expect("valid config")
}

fn main() {
    let mut out = String::from("BENCH_infer.json");
    let mut dataset = DatasetKey::Rdt;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("usage: bench_infer [--out FILE] [--dataset rdt|opt|it|opr|fds]");
            std::process::exit(2);
        };
        match flag.as_str() {
            "--out" => out = value,
            "--dataset" => {
                dataset = parse_dataset(&value).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let ds = load(dataset, &mut SeededRng::new(99));
    let mut samples = Vec::new();
    for (kind, model) in [
        (ModelKind::Gcn, "gcn"),
        (ModelKind::Gat, "gat"),
        (ModelKind::Sage, "sage"),
    ] {
        for (overlap, overlap_name) in [
            (OverlapMode::Off, "off"),
            (OverlapMode::DoubleBuffer, "doublebuffer"),
        ] {
            for gpus in [1usize, 2, 4] {
                let mut engine =
                    HongTuEngine::new(&ds, kind, 32, 2, 4, config(gpus, overlap, Mode::Train))
                        .expect("engine construction");
                let train = engine.train_epoch().expect("train epoch");
                let mut session =
                    Session::new(&ds, kind, 32, 2, 4, config(gpus, overlap, Mode::Infer))
                        .expect("session construction");
                let infer = session.infer_epoch().expect("infer epoch");
                println!(
                    "{model}/{overlap_name}/{gpus} GPUs: train {:.3} ms, infer {:.3} ms \
                     ({:.0}% of epoch), peak GPU {:.1} -> {:.1} MB, digest {:016x}",
                    train.time * 1e3,
                    infer.time * 1e3,
                    100.0 * infer.time / train.time,
                    engine.machine().max_gpu_peak() as f64 / (1 << 20) as f64,
                    infer.peak_gpu_bytes as f64 / (1 << 20) as f64,
                    logits_digest(&infer.logits),
                );
                samples.push(Sample {
                    model,
                    overlap: overlap_name,
                    gpus,
                    train_epoch_s: train.time,
                    infer_epoch_s: infer.time,
                    train_peak_gpu: engine.machine().max_gpu_peak(),
                    infer_peak_gpu: infer.peak_gpu_bytes,
                    train_peak_host: engine.machine().host_memory().peak(),
                    infer_peak_host: infer.peak_host_bytes,
                    digest: logits_digest(&infer.logits),
                });
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"dataset\": \"{}\",\n", dataset.abbrev()));
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"overlap\": \"{}\", \"gpus\": {}, \
             \"train_sim_epoch_s\": {:.9}, \"infer_sim_epoch_s\": {:.9}, \
             \"infer_fraction\": {:.4}, \"train_peak_gpu_bytes\": {}, \
             \"infer_peak_gpu_bytes\": {}, \"train_peak_host_bytes\": {}, \
             \"infer_peak_host_bytes\": {}, \"logits_digest\": \"{:016x}\"}}{}\n",
            s.model,
            s.overlap,
            s.gpus,
            s.train_epoch_s,
            s.infer_epoch_s,
            s.infer_epoch_s / s.train_epoch_s,
            s.train_peak_gpu,
            s.infer_peak_gpu,
            s.train_peak_host,
            s.infer_peak_host,
            s.digest,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("writing report");
    println!("wrote {out}");

    let mut bad = false;
    for s in &samples {
        if s.infer_epoch_s >= s.train_epoch_s {
            eprintln!(
                "FAIL: {}/{}/{} GPUs: infer {} s not strictly below train epoch {} s",
                s.model, s.overlap, s.gpus, s.infer_epoch_s, s.train_epoch_s
            );
            bad = true;
        }
        if s.infer_peak_gpu >= s.train_peak_gpu || s.infer_peak_host >= s.train_peak_host {
            eprintln!(
                "FAIL: {}/{}/{} GPUs: inference peaks (gpu {}, host {}) not strictly \
                 below training's (gpu {}, host {})",
                s.model,
                s.overlap,
                s.gpus,
                s.infer_peak_gpu,
                s.infer_peak_host,
                s.train_peak_gpu,
                s.train_peak_host
            );
            bad = true;
        }
    }
    // The digest must agree across overlap modes (and execution modes —
    // pinned by the test suite); divergence here is a determinism bug.
    for s in &samples {
        if let Some(other) = samples
            .iter()
            .find(|o| o.model == s.model && o.gpus == s.gpus && o.digest != s.digest)
        {
            eprintln!(
                "FAIL: {}/{} GPUs: logits digest diverged across overlap modes \
                 ({} {:016x} vs {} {:016x})",
                s.model, s.gpus, s.overlap, s.digest, other.overlap, other.digest
            );
            bad = true;
            break;
        }
    }
    if bad {
        std::process::exit(1);
    }
}
