//! `bench_delta` — certification and cost benchmark of the
//! dynamic-graph delta path (`hongtu-delta` + `Session::apply_deltas`),
//! emitted as machine-readable JSON for CI.
//!
//! Three experiments on sparse synthetic graphs (batch-granular cone
//! pruning needs a topology where one vertex's out-neighborhood does
//! not scatter across every batch, which the dense registry proxies
//! do):
//!
//! - **matrix** — for each model × overlap × GPU count, the same delta
//!   batch is committed two ways: incrementally (`apply_deltas`, replay
//!   pruned to the upward-closed affected cone) and as a full
//!   recompute (`apply_deltas_full`). The report records both simulated
//!   times, event counts, and full-logits digests. A minimal feature
//!   delta (the vertex with the fewest out-edges) exercises the strict
//!   small-cone gates; a mixed edge+feature toggle batch (GCN cells)
//!   exercises digest equality through chunk rebuilds.
//! - **curve** — nested dirty-seed sets of growing spread on one
//!   configuration: cost (active steps, events, sim time) as a
//!   function of cone size.
//! - **scaling** — the same single-vertex delta on graphs of growing
//!   size at fixed chunk width: incremental cost must track the cone,
//!   not the graph.
//!
//! The process exits 1 if any invariant fails:
//! - any incremental logits digest != the full-recompute digest;
//! - for any delta whose cone is ≤ 10% of the sweep: not strictly
//!   fewer sim events or not strictly faster (sim-time) than the full
//!   recompute — and at least one such small-cone sample must exist;
//! - curve cost (active steps, events, sim time) not non-decreasing in
//!   cone size over nested seed sets;
//! - incremental cost growing as fast as the full sweep across graph
//!   sizes (growth ratio must be strictly smaller).
//!
//! ```text
//! cargo run -p hongtu-bench --bin bench_delta -- [--out FILE] \
//!     [--size N] [--chunks N] [--gpus N] [--overlap off|doublebuffer] \
//!     [--seed N]
//! ```
//!
//! Default output is `BENCH_delta.json` in the current directory.

use hongtu_core::cli::{logits_digest, parse_overlap, FlagParser};
use hongtu_core::{CommMode, HongTuConfig, Mode, OverlapMode, Session};
use hongtu_datasets::dataset::{with_self_loops, Dataset, DatasetKey, Splits};
use hongtu_delta::{toggle_workload, Delta, DeltaMix, DynamicGraph};
use hongtu_graph::generators;
use hongtu_nn::ModelKind;
use hongtu_sim::MachineConfig;
use hongtu_tensor::{Matrix, SeededRng};

const USAGE: &str = "usage: bench_delta [--out FILE] [--size N] [--chunks N] \
     [--gpus N] [--overlap off|doublebuffer] [--seed N]";

struct Args {
    out: String,
    size: usize,
    chunks: usize,
    gpus: Option<usize>,
    overlap: Option<OverlapMode>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: String::from("BENCH_delta.json"),
        size: 360,
        chunks: 12,
        gpus: None,
        overlap: None,
        seed: 99,
    };
    let mut p = FlagParser::from_env();
    while let Some(flag) = p.next_flag() {
        match flag.as_str() {
            "--out" => args.out = p.value("--out")?,
            "--size" => args.size = p.parse_value("--size")?,
            "--chunks" => args.chunks = p.parse_value("--chunks")?,
            "--gpus" => args.gpus = Some(p.parse_value("--gpus")?),
            "--overlap" => args.overlap = Some(p.value_with("--overlap", parse_overlap)?),
            "--seed" => args.seed = p.parse_value("--seed")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

/// A sparse synthetic dataset (average out-degree 5 plus self-loops)
/// outside the registry, sized on demand.
fn random_dataset(seed: u64, n: usize) -> Dataset {
    let rng = SeededRng::new(seed);
    let g = generators::erdos_renyi(n, 5.0, &mut rng.fork(1));
    let graph = with_self_loops(&g);
    let mut frng = rng.fork(2);
    let features = Matrix::from_fn(n, 6, |_, _| frng.normal() * 0.5);
    let mut lrng = rng.fork(3);
    let labels: Vec<u32> = (0..n).map(|_| lrng.index(3) as u32).collect();
    let splits = Splits::random(n, 0.4, 0.2, &mut rng.fork(4));
    Dataset {
        key: DatasetKey::Rdt,
        graph,
        features,
        labels,
        splits,
        num_classes: 3,
        seed,
    }
}

fn config(gpus: usize, overlap: OverlapMode) -> HongTuConfig {
    HongTuConfig::builder()
        .machine(MachineConfig::scaled(gpus, 512 << 20))
        .comm(CommMode::P2pRu)
        .overlap(overlap)
        .mode(Mode::Infer)
        .build()
        .expect("valid config")
}

/// The `count` vertices with the fewest out-edges, ascending — nested
/// prefixes give nested dirty sets, hence nested (upward-closed) cones.
fn quiet_vertices(ds: &Dataset, count: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..ds.graph.num_vertices() as u32).collect();
    order.sort_by_key(|&v| (ds.graph.out_degree(v), v));
    order.truncate(count);
    order
}

fn feature_deltas(ds: &Dataset, vertices: &[u32]) -> Vec<Delta> {
    vertices
        .iter()
        .map(|&v| Delta::UpdateFeatures {
            vertex: v,
            features: vec![0.25; ds.features.cols()],
        })
        .collect()
}

/// One measured commit: sim time, sim events, cone occupancy, and the
/// digest of the full post-commit logits.
struct Cost {
    sim_s: f64,
    events: usize,
    active_steps: usize,
    total_steps: usize,
    dirty: usize,
    rebuilt_chunks: usize,
    digest: u64,
}

/// Commits `deltas` on a fresh session (primed by one full sweep) and
/// measures the replay alone, incrementally or as a full recompute.
fn measure(
    ds: &Dataset,
    kind: ModelKind,
    gpus: usize,
    chunks: usize,
    overlap: OverlapMode,
    deltas: &[Delta],
    incremental: bool,
) -> Cost {
    let mut dg = DynamicGraph::from_dataset(ds);
    let mut s =
        Session::new(ds, kind, 16, 2, chunks, config(gpus, overlap)).expect("session construction");
    s.infer_epoch().expect("initial full sweep");
    s.machine_mut().enable_unbounded_trace();
    let r = if incremental {
        s.apply_deltas(&mut dg, deltas).expect("incremental commit")
    } else {
        s.apply_deltas_full(&mut dg, deltas)
            .expect("full-recompute commit")
    };
    Cost {
        sim_s: r.time,
        events: s.machine().trace().len(),
        active_steps: r.active_steps,
        total_steps: r.total_steps,
        dirty: r.dirty_vertices,
        rebuilt_chunks: r.rebuilt_chunks,
        digest: logits_digest(&r.logits),
    }
}

struct Sample {
    section: &'static str,
    model: &'static str,
    overlap: &'static str,
    gpus: usize,
    n: usize,
    chunks: usize,
    delta_kind: &'static str,
    spread: usize,
    inc: Cost,
    full: Cost,
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let gpu_counts: Vec<usize> = match args.gpus {
        Some(g) => vec![g],
        None => vec![1, 2, 4],
    };
    let overlaps: Vec<(OverlapMode, &'static str)> = match args.overlap {
        Some(OverlapMode::Off) => vec![(OverlapMode::Off, "off")],
        Some(OverlapMode::DoubleBuffer) => vec![(OverlapMode::DoubleBuffer, "doublebuffer")],
        None => vec![
            (OverlapMode::Off, "off"),
            (OverlapMode::DoubleBuffer, "doublebuffer"),
        ],
    };
    let ds = random_dataset(args.seed, args.size);
    let quiet = quiet_vertices(&ds, 1);
    let small = feature_deltas(&ds, &quiet);
    let mut samples: Vec<Sample> = Vec::new();

    // Matrix: the minimal feature delta everywhere; a mixed toggle
    // batch (edge add/remove + feature rewrite, forcing chunk rebuilds)
    // on the GCN cells.
    for (kind, model) in [
        (ModelKind::Gcn, "gcn"),
        (ModelKind::Gat, "gat"),
        (ModelKind::Sage, "sage"),
    ] {
        for &(overlap, overlap_name) in &overlaps {
            for &gpus in &gpu_counts {
                let mut cell = vec![("feature", small.clone())];
                if kind == ModelKind::Gcn {
                    let mut rng = SeededRng::new(args.seed ^ 0x006d_6978);
                    let mixed = toggle_workload(
                        &ds.graph,
                        ds.features.cols(),
                        1,
                        2,
                        DeltaMix::Mixed,
                        &mut rng,
                    )
                    .pop()
                    .expect("one batch");
                    cell.push(("mixed", mixed));
                }
                for (delta_kind, deltas) in cell {
                    let inc = measure(&ds, kind, gpus, args.chunks, overlap, &deltas, true);
                    let full = measure(&ds, kind, gpus, args.chunks, overlap, &deltas, false);
                    println!(
                        "{model}/{overlap_name}/{gpus} GPUs [{delta_kind}]: \
                         inc {:.3} ms vs full {:.3} ms, events {} vs {}, \
                         cone {}/{} steps",
                        inc.sim_s * 1e3,
                        full.sim_s * 1e3,
                        inc.events,
                        full.events,
                        inc.active_steps,
                        inc.total_steps,
                    );
                    samples.push(Sample {
                        section: "matrix",
                        model,
                        overlap: overlap_name,
                        gpus,
                        n: args.size,
                        chunks: args.chunks,
                        delta_kind,
                        spread: deltas.len(),
                        inc,
                        full,
                    });
                }
            }
        }
    }

    // Curve: nested dirty-seed prefixes of growing spread on one
    // configuration — cost as a function of cone size.
    let curve_gpus = *gpu_counts.first().expect("at least one GPU count");
    let (curve_overlap, curve_overlap_name) = overlaps[0];
    for spread in [1usize, 2, 4, 8, 16] {
        let seeds = quiet_vertices(&ds, spread);
        let deltas = feature_deltas(&ds, &seeds);
        let inc = measure(
            &ds,
            ModelKind::Gcn,
            curve_gpus,
            args.chunks,
            curve_overlap,
            &deltas,
            true,
        );
        let full = measure(
            &ds,
            ModelKind::Gcn,
            curve_gpus,
            args.chunks,
            curve_overlap,
            &deltas,
            false,
        );
        println!(
            "curve spread {spread}: dirty {} cone {}/{} steps, inc {:.3} ms ({} events)",
            inc.dirty,
            inc.active_steps,
            inc.total_steps,
            inc.sim_s * 1e3,
            inc.events,
        );
        samples.push(Sample {
            section: "curve",
            model: "gcn",
            overlap: curve_overlap_name,
            gpus: curve_gpus,
            n: args.size,
            chunks: args.chunks,
            delta_kind: "feature",
            spread,
            inc,
            full,
        });
    }

    // Scaling: same minimal delta, growing graph, fixed chunk width —
    // total steps grow with the graph, the cone does not.
    let width = args.size.div_euclid(args.chunks).max(1);
    for scale in [1usize, 2, 4] {
        let n = args.size * scale;
        let chunks = n.div_euclid(width);
        let big = random_dataset(args.seed, n);
        let seeds = quiet_vertices(&big, 1);
        let deltas = feature_deltas(&big, &seeds);
        let inc = measure(
            &big,
            ModelKind::Gcn,
            curve_gpus,
            chunks,
            curve_overlap,
            &deltas,
            true,
        );
        let full = measure(
            &big,
            ModelKind::Gcn,
            curve_gpus,
            chunks,
            curve_overlap,
            &deltas,
            false,
        );
        println!(
            "scaling n={n} ({chunks} chunks): inc {:.3} ms vs full {:.3} ms, cone {}/{} steps",
            inc.sim_s * 1e3,
            full.sim_s * 1e3,
            inc.active_steps,
            inc.total_steps,
        );
        samples.push(Sample {
            section: "scaling",
            model: "gcn",
            overlap: curve_overlap_name,
            gpus: curve_gpus,
            n,
            chunks,
            delta_kind: "feature",
            spread: 1,
            inc,
            full,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"base_size\": {},\n", args.size));
    json.push_str(&format!("  \"base_chunks\": {},\n", args.chunks));
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"section\": \"{}\", \"model\": \"{}\", \"overlap\": \"{}\", \
             \"gpus\": {}, \"n\": {}, \"chunks\": {}, \"delta\": \"{}\", \
             \"spread\": {}, \"dirty\": {}, \"rebuilt_chunks\": {}, \
             \"active_steps\": {}, \"total_steps\": {}, \
             \"inc_sim_s\": {:.9}, \"full_sim_s\": {:.9}, \"speedup\": {:.4}, \
             \"inc_events\": {}, \"full_events\": {}, \
             \"inc_digest\": \"{:016x}\", \"full_digest\": \"{:016x}\"}}{}\n",
            s.section,
            s.model,
            s.overlap,
            s.gpus,
            s.n,
            s.chunks,
            s.delta_kind,
            s.spread,
            s.inc.dirty,
            s.inc.rebuilt_chunks,
            s.inc.active_steps,
            s.inc.total_steps,
            s.inc.sim_s,
            s.full.sim_s,
            s.full.sim_s / s.inc.sim_s,
            s.inc.events,
            s.full.events,
            s.inc.digest,
            s.full.digest,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("writing report");
    println!("wrote {}", args.out);

    let mut bad = false;
    let mut small_cone_samples = 0usize;
    for s in &samples {
        let tag = format!(
            "{}:{}/{}/{} GPUs [{}] spread {}",
            s.section, s.model, s.overlap, s.gpus, s.delta_kind, s.spread
        );
        if s.inc.digest != s.full.digest {
            eprintln!(
                "FAIL: {tag}: incremental digest {:016x} != full-recompute digest {:016x}",
                s.inc.digest, s.full.digest
            );
            bad = true;
        }
        if s.inc.active_steps * 10 <= s.inc.total_steps {
            small_cone_samples += 1;
            if s.inc.events >= s.full.events {
                eprintln!(
                    "FAIL: {tag}: small cone ({}/{} steps) but incremental ran {} sim events, \
                     full recompute {}",
                    s.inc.active_steps, s.inc.total_steps, s.inc.events, s.full.events
                );
                bad = true;
            }
            if s.inc.sim_s >= s.full.sim_s {
                eprintln!(
                    "FAIL: {tag}: small cone ({}/{} steps) but incremental {} s not strictly \
                     below full recompute {} s",
                    s.inc.active_steps, s.inc.total_steps, s.inc.sim_s, s.full.sim_s
                );
                bad = true;
            }
        }
    }
    if small_cone_samples == 0 {
        eprintln!("FAIL: no sample had a cone ≤ 10% of the sweep — strict gates were vacuous");
        bad = true;
    }

    // Curve: nested seed prefixes give nested cones, so every cost
    // coordinate must be non-decreasing in spread.
    let curve: Vec<&Sample> = samples.iter().filter(|s| s.section == "curve").collect();
    for pair in curve.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b.inc.active_steps < a.inc.active_steps
            || b.inc.events < a.inc.events
            || b.inc.sim_s < a.inc.sim_s
        {
            eprintln!(
                "FAIL: curve not non-decreasing from spread {} to {}: \
                 steps {} -> {}, events {} -> {}, time {} -> {} s",
                a.spread,
                b.spread,
                a.inc.active_steps,
                b.inc.active_steps,
                a.inc.events,
                b.inc.events,
                a.inc.sim_s,
                b.inc.sim_s
            );
            bad = true;
        }
    }

    // Scaling: incremental cost must grow strictly slower than the
    // full sweep as the graph grows at fixed chunk width.
    let scaling: Vec<&Sample> = samples.iter().filter(|s| s.section == "scaling").collect();
    for s in &scaling {
        if s.inc.sim_s >= s.full.sim_s {
            eprintln!(
                "FAIL: scaling n={}: incremental {} s not strictly below full {} s",
                s.n, s.inc.sim_s, s.full.sim_s
            );
            bad = true;
        }
    }
    if let (Some(first), Some(last)) = (scaling.first(), scaling.last()) {
        let inc_growth = last.inc.sim_s / first.inc.sim_s;
        let full_growth = last.full.sim_s / first.full.sim_s;
        if inc_growth >= full_growth {
            eprintln!(
                "FAIL: incremental cost grew {inc_growth:.3}x from n={} to n={}, \
                 full sweep only {full_growth:.3}x — cost is not tracking the cone",
                first.n, last.n
            );
            bad = true;
        }
    }
    if bad {
        std::process::exit(1);
    }
}
