//! Table 7: comparison with DistGNN on a 16-node CPU cluster, GCN and GAT
//! on the three large graphs with 2/3/4 layers.

use hongtu_bench::{config::ExperimentConfig as C, dataset, header, run, time_cell, Table};
use hongtu_core::systems::{CpuSystem, CpuSystemKind, Workload};
use hongtu_datasets::registry::large_keys;
use hongtu_nn::ModelKind;

fn main() {
    header(
        "Table 7: vs DistGNN on a 16-node CPU cluster, large graphs",
        "HongTu (SIGMOD 2023), Table 7",
    );
    let mut t = Table::new(vec![
        "Layers",
        "Dataset",
        "GCN DistGNN",
        "GCN HongTu",
        "GAT DistGNN",
        "GAT HongTu",
    ]);
    for layers in [2usize, 3, 4] {
        for key in large_keys() {
            let ds = dataset(key);
            let mut cells = vec![layers.to_string(), key.abbrev().to_string()];
            for kind in [ModelKind::Gcn, ModelKind::Gat] {
                let w = Workload::new(&ds, kind, C::hidden(key), layers);
                let dist =
                    CpuSystem::new(CpuSystemKind::Cluster, C::cpu_cluster(), &ds).epoch_time(&w);
                let hongtu = run::hongtu_epoch(&ds, kind, layers, 4).map(|r| r.time);
                let speed = match (&dist, &hongtu) {
                    (Ok(d), Ok(h)) => format!("{} ({:.1}x)", time_cell(&hongtu), d / h),
                    _ => time_cell(&hongtu),
                };
                cells.push(time_cell(&dist));
                cells.push(speed);
            }
            t.row(cells);
        }
    }
    t.print();
    println!();
    println!("paper shape: DistGNN OOMs for 4-layer GCN on OPR and for every GAT");
    println!("workload except 2-layer IT; where both run, HongTu is ~7.8x-20.2x");
    println!("faster (avg 10.1x GCN / 20.2x GAT), at ~1/4 the per-hour cost.");
}
