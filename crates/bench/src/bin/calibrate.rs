//! Memory-boundary calibration: prints every system's footprint vs its
//! capacity for every (dataset, model, layers) cell, so the scaled
//! constants in `config.rs` can be checked against the paper's OOM
//! pattern.

use hongtu_bench::{config::ExperimentConfig as C, dataset, format_bytes, header, Table};
use hongtu_core::systems::{
    CpuSystem, CpuSystemKind, InMemoryKind, MultiGpuInMemory, SingleGpuFullGraph, Workload,
};
use hongtu_datasets::registry::all_keys;
use hongtu_nn::ModelKind;

fn main() {
    header("calibration: memory footprints vs capacities", "internal");
    println!(
        "GPU mem {}  | single-CPU {}  | ECS node {}",
        format_bytes(C::GPU_MEM),
        format_bytes(C::cpu_single().node_memory),
        format_bytes(C::cpu_cluster().node_memory),
    );
    let mut t = Table::new(vec![
        "dataset",
        "model",
        "L",
        "DGL(1gpu)",
        "Sancus/gpu",
        "IM/gpu",
        "CPU1/node",
        "ECS16/node",
    ]);
    for key in all_keys() {
        let ds = dataset(key);
        let hidden = C::hidden(key);
        for kind in [ModelKind::Gcn, ModelKind::Gat] {
            for layers in C::layer_sweep(key) {
                let w = Workload::new(&ds, kind, hidden, layers);
                let dgl = SingleGpuFullGraph::new(C::machine(1)).required_bytes(&w);
                let sancus = MultiGpuInMemory::new(InMemoryKind::Sancus, C::machine(4), &ds, 1)
                    .max_gpu_bytes(&w);
                let im = MultiGpuInMemory::new(InMemoryKind::HongTuIm, C::machine(4), &ds, 1)
                    .max_gpu_bytes(&w);
                let cpu1 = CpuSystem::new(CpuSystemKind::SingleNode, C::cpu_single(), &ds)
                    .per_node_bytes(&w);
                let ecs = CpuSystem::new(CpuSystemKind::Cluster, C::cpu_cluster(), &ds)
                    .per_node_bytes(&w);
                let mark = |need: usize, cap: usize| {
                    format!(
                        "{}{}",
                        format_bytes(need),
                        if need > cap { " !OOM" } else { "" }
                    )
                };
                t.row(vec![
                    ds.key.abbrev().to_string(),
                    kind.name().to_string(),
                    layers.to_string(),
                    mark(dgl, C::GPU_MEM),
                    mark(sancus, C::GPU_MEM),
                    mark(im, C::GPU_MEM),
                    mark(cpu1, C::cpu_single().node_memory),
                    mark(ecs, C::cpu_cluster().node_memory),
                ]);
            }
        }
    }
    t.print();
}
